#include "mapmatch/hmm_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "roadnet/shortest_path.h"

namespace pcde {
namespace mapmatch {

using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::kInvalidEdge;
using roadnet::Path;
using roadnet::SpatialIndex;
using traj::GpsRecord;
using traj::MatchedTrajectory;
using traj::Trajectory;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct Candidate {
  EdgeId edge = kInvalidEdge;
  double fraction = 0.0;
  double distance_m = 0.0;
};

}  // namespace

HmmMatcher::HmmMatcher(const Graph& g, const MapMatchConfig& config)
    : graph_(g), config_(config), index_(g, config.candidate_radius_m) {}

double HmmMatcher::RouteRecovery(const Path& truth, const Path& matched) {
  if (truth.empty()) return 0.0;
  // Longest-common-subsequence on edge ids, order preserving.
  const auto& a = truth.edges();
  const auto& b = matched.edges();
  std::vector<std::vector<int>> lcs(a.size() + 1,
                                    std::vector<int>(b.size() + 1, 0));
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      lcs[i][j] = a[i - 1] == b[j - 1]
                      ? lcs[i - 1][j - 1] + 1
                      : std::max(lcs[i - 1][j], lcs[i][j - 1]);
    }
  }
  return static_cast<double>(lcs[a.size()][b.size()]) /
         static_cast<double>(a.size());
}

StatusOr<MatchResult> HmmMatcher::Match(const Trajectory& t) const {
  if (t.records.size() < 2) {
    return Status::InvalidArgument("Match: trajectory needs >= 2 records");
  }

  // --- Preprocessing: thin records closer than min spacing (N&K Sec. 4).
  std::vector<GpsRecord> recs;
  recs.push_back(t.records.front());
  for (const GpsRecord& r : t.records) {
    const GpsRecord& last = recs.back();
    if (roadnet::Distance(last.x, last.y, r.x, r.y) >=
        config_.min_record_spacing_m) {
      recs.push_back(r);
    }
  }
  if (recs.size() < 2) recs.push_back(t.records.back());

  // --- Candidate generation.
  std::vector<std::vector<Candidate>> cands(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto near =
        index_.EdgesNear(recs[i].x, recs[i].y, config_.candidate_radius_m);
    for (size_t k = 0; k < near.size() && k < config_.max_candidates; ++k) {
      cands[i].push_back(
          Candidate{near[k].edge, near[k].fraction, near[k].distance_m});
    }
    if (cands[i].empty()) {
      return Status::NotFound("Match: no candidate road near record " +
                              std::to_string(i));
    }
  }

  // --- Viterbi.
  const double sigma2 = config_.gps_sigma_m * config_.gps_sigma_m;
  auto emission = [&](const Candidate& c) {
    return -0.5 * c.distance_m * c.distance_m / sigma2;
  };
  const auto length_weight = roadnet::LengthWeight(graph_);
  // GPS noise can move the projected fraction slightly *backwards* along
  // the same edge; treating that as a real reversal would wrongly insert a
  // U-turn loop. Within this slack the vehicle is considered stationary.
  const double back_slack_m = std::max(10.0, 2.0 * config_.gps_sigma_m);
  auto same_edge_forward = [&](const Candidate& a, const Candidate& b) {
    if (a.edge != b.edge) return false;
    return (b.fraction - a.fraction) * graph_.edge(a.edge).length_m >=
           -back_slack_m;
  };

  std::vector<std::vector<double>> score(recs.size());
  std::vector<std::vector<int>> parent(recs.size());
  size_t broken = 0;

  score[0].resize(cands[0].size());
  parent[0].assign(cands[0].size(), -1);
  for (size_t j = 0; j < cands[0].size(); ++j) score[0][j] = emission(cands[0][j]);

  for (size_t i = 1; i < recs.size(); ++i) {
    const double crow = roadnet::Distance(recs[i - 1].x, recs[i - 1].y,
                                          recs[i].x, recs[i].y);
    const double bound = crow * config_.max_detour_factor + 300.0;
    score[i].assign(cands[i].size(), kNegInf);
    parent[i].assign(cands[i].size(), -1);

    // One bounded Dijkstra tree per previous candidate.
    for (size_t p = 0; p < cands[i - 1].size(); ++p) {
      if (score[i - 1][p] == kNegInf) continue;
      const Candidate& cp = cands[i - 1][p];
      const Edge& ep = graph_.edge(cp.edge);
      const std::vector<double> tree = roadnet::ShortestPathTree(
          graph_, ep.to, length_weight, bound);
      const double remainder = (1.0 - cp.fraction) * ep.length_m;
      for (size_t j = 0; j < cands[i].size(); ++j) {
        const Candidate& cj = cands[i][j];
        double route;
        if (cj.edge == cp.edge) {
          // Forward progress, or noise-induced backward wobble. A vehicle
          // on one directed edge never needs a loop; backward moves are
          // costed by their magnitude (they become gap penalty), not by a
          // fictitious U-turn route.
          route = same_edge_forward(cp, cj)
                      ? std::max((cj.fraction - cp.fraction) * ep.length_m, 0.0)
                      : (cp.fraction - cj.fraction) * ep.length_m;
        } else {
          const Edge& ej = graph_.edge(cj.edge);
          const double mid = tree[ej.from];
          if (mid == roadnet::kInfCost) continue;
          route = remainder + mid + cj.fraction * ej.length_m;
        }
        const double gap = std::fabs(route - crow);
        // Tiny stickiness: the two directions of a road are collinear, so
        // staying put and hopping to the reverse edge can tie exactly at a
        // shared vertex; prefer not to change edges on ties.
        const double stickiness = cj.edge == cp.edge ? 0.0 : -0.05;
        const double cand_score = score[i - 1][p] + emission(cj) -
                                  gap / config_.transition_beta_m + stickiness;
        if (cand_score > score[i][j]) {
          score[i][j] = cand_score;
          parent[i][j] = static_cast<int>(p);
        }
      }
    }

    // HMM break: no previous candidate reaches this step. Re-anchor on
    // emissions alone; the gap is bridged during reconstruction.
    bool any = false;
    for (double s : score[i]) any = any || s != kNegInf;
    if (!any) {
      ++broken;
      for (size_t j = 0; j < cands[i].size(); ++j) {
        score[i][j] = emission(cands[i][j]);
        parent[i][j] = -2;  // break marker: keep best previous chain ending
      }
    }
  }

  // --- Backtrack the best chain.
  std::vector<int> choice(recs.size(), -1);
  {
    const auto& last = score.back();
    choice.back() = static_cast<int>(
        std::max_element(last.begin(), last.end()) - last.begin());
  }
  for (size_t i = recs.size(); i-- > 1;) {
    const int par = parent[i][static_cast<size_t>(choice[i])];
    if (par >= 0) {
      choice[i - 1] = par;
    } else {
      // Break: choose the best-scoring candidate of the previous step.
      const auto& prev = score[i - 1];
      choice[i - 1] = static_cast<int>(
          std::max_element(prev.begin(), prev.end()) - prev.begin());
    }
  }

  // --- Reconstruct the edge path and each record's position on it.
  std::vector<EdgeId> path_edges;
  std::vector<size_t> rec_pos(recs.size());
  path_edges.push_back(cands[0][static_cast<size_t>(choice[0])].edge);
  rec_pos[0] = 0;
  for (size_t i = 1; i < recs.size(); ++i) {
    const Candidate& cp = cands[i - 1][static_cast<size_t>(choice[i - 1])];
    const Candidate& cj = cands[i][static_cast<size_t>(choice[i])];
    if (cj.edge == cp.edge) {  // same edge: never synthesize a loop
      rec_pos[i] = rec_pos[i - 1];
      continue;
    }
    const Edge& ep = graph_.edge(cp.edge);
    const Edge& ej = graph_.edge(cj.edge);
    if (ep.to != ej.from) {
      auto bridge =
          roadnet::ShortestPath(graph_, ep.to, ej.from, length_weight);
      if (!bridge.ok()) {
        // Unbridgeable: keep the record on the previous edge.
        rec_pos[i] = rec_pos[i - 1];
        ++broken;
        continue;
      }
      for (EdgeId e : bridge.value()) path_edges.push_back(e);
    }
    path_edges.push_back(cj.edge);
    rec_pos[i] = path_edges.size() - 1;
  }

  // --- Per-edge entry times by distance interpolation over the records.
  std::vector<double> cum(path_edges.size() + 1, 0.0);
  for (size_t k = 0; k < path_edges.size(); ++k) {
    cum[k + 1] = cum[k] + graph_.edge(path_edges[k]).length_m;
  }
  std::vector<double> rec_dist(recs.size());
  for (size_t i = 0; i < recs.size(); ++i) {
    const Candidate& c = cands[i][static_cast<size_t>(choice[i])];
    // The record may have been re-homed to the previous edge on a break.
    const size_t pos = rec_pos[i];
    const double frac =
        path_edges[pos] == c.edge ? c.fraction : 1.0;
    rec_dist[i] = cum[pos] + frac * graph_.edge(path_edges[pos]).length_m;
    if (i > 0) rec_dist[i] = std::max(rec_dist[i], rec_dist[i - 1]);
  }

  auto time_at_distance = [&](double d) {
    if (d <= rec_dist.front()) return recs.front().time;
    if (d >= rec_dist.back()) return recs.back().time;
    const auto it = std::lower_bound(rec_dist.begin(), rec_dist.end(), d);
    const size_t hi = static_cast<size_t>(it - rec_dist.begin());
    const size_t lo = hi - 1;
    const double span = rec_dist[hi] - rec_dist[lo];
    const double f = span > 0.0 ? (d - rec_dist[lo]) / span : 0.0;
    return recs[lo].time + f * (recs[hi].time - recs[lo].time);
  };

  MatchResult result;
  result.used_records = recs.size();
  result.broken_transitions = broken;
  result.matched.id = t.id;
  result.matched.path = Path(path_edges);
  constexpr double kMinEdgeSeconds = 0.1;
  for (size_t k = 0; k < path_edges.size(); ++k) {
    const double enter = time_at_distance(cum[k]);
    const double exit = time_at_distance(cum[k + 1]);
    result.matched.edge_enter_times.push_back(enter);
    result.matched.edge_travel_seconds.push_back(
        std::max(exit - enter, kMinEdgeSeconds));
    // Emissions cannot be recovered from GPS alone without a vehicle model;
    // approximate with the surrogate's rolling term (speed-based).
    const Edge& e = graph_.edge(path_edges[k]);
    const double dur = std::max(exit - enter, kMinEdgeSeconds);
    const double v = e.length_m / dur;
    result.matched.edge_emission_grams.push_back(
        0.4 * dur + 9.0 * e.length_m / 1000.0 + 0.0025 * v * v * dur);
  }
  return result;
}

}  // namespace mapmatch
}  // namespace pcde
