// Hidden-Markov-Model map matching after Newson & Krumm (SIGSPATIAL 2009)
// — the "well-known method [16]" the paper applies to align GPS records
// with road-network paths.
//
//  * Candidate states: road segments within a radius of each GPS fix.
//  * Emission: zero-mean Gaussian on the point-to-segment distance.
//  * Transition: exponential in |route distance - great-circle distance|
//    between consecutive fixes (here Euclidean; the synthetic cities live
//    on a plane).
//  * Decoding: Viterbi; the matched path is reconstructed by stitching the
//    winning candidates with shortest paths.
#pragma once

#include <vector>

#include "common/status.h"
#include "roadnet/graph.h"
#include "roadnet/path.h"
#include "roadnet/spatial_index.h"
#include "traj/types.h"

namespace pcde {
namespace mapmatch {

struct MapMatchConfig {
  double gps_sigma_m = 5.0;        // emission noise; N&K estimate from data
  double candidate_radius_m = 40.0;
  size_t max_candidates = 8;
  double transition_beta_m = 8.0;  // exponential scale on the distance gap
  double max_detour_factor = 4.0;  // bound on route search per hop
  double min_record_spacing_m = 10.0;  // N&K preprocessing: thin dense fixes
};

/// \brief Result of matching one trajectory.
struct MatchResult {
  traj::MatchedTrajectory matched;
  size_t used_records = 0;     // records kept after thinning
  size_t broken_transitions = 0;  // hops bridged despite an HMM break
};

/// \brief HMM map matcher over a road network.
class HmmMatcher {
 public:
  HmmMatcher(const roadnet::Graph& g, const MapMatchConfig& config);

  /// Matches a GPS trajectory to a road path with per-edge entry times and
  /// travel times (interpolated from the fix timestamps). Returns NotFound
  /// when no candidate roads exist for any fix.
  StatusOr<MatchResult> Match(const traj::Trajectory& t) const;

  /// Fraction of `truth`'s edges present (in order) in `matched` — the
  /// route-recovery accuracy measure used in the tests.
  static double RouteRecovery(const roadnet::Path& truth,
                              const roadnet::Path& matched);

 private:
  const roadnet::Graph& graph_;
  MapMatchConfig config_;
  roadnet::SpatialIndex index_;
};

}  // namespace mapmatch
}  // namespace pcde
