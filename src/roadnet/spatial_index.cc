#include "roadnet/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace pcde {
namespace roadnet {

SpatialIndex::SpatialIndex(const Graph& g, double cell_size_m)
    : graph_(g), cell_size_m_(cell_size_m) {
  for (const Edge& e : g.edges()) {
    const Vertex& a = g.vertex(e.from);
    const Vertex& b = g.vertex(e.to);
    // Insert the edge into every cell its bounding box overlaps. Edges are
    // short relative to cells, so the box is a tight approximation.
    const int64_t cx0 = static_cast<int64_t>(
        std::floor(std::min(a.x, b.x) / cell_size_m_));
    const int64_t cx1 = static_cast<int64_t>(
        std::floor(std::max(a.x, b.x) / cell_size_m_));
    const int64_t cy0 = static_cast<int64_t>(
        std::floor(std::min(a.y, b.y) / cell_size_m_));
    const int64_t cy1 = static_cast<int64_t>(
        std::floor(std::max(a.y, b.y) / cell_size_m_));
    for (int64_t cx = cx0; cx <= cx1; ++cx) {
      for (int64_t cy = cy0; cy <= cy1; ++cy) {
        cells_[(cx << 32) ^ (cy & 0xffffffff)].push_back(e.id);
      }
    }
  }
}

SpatialIndex::CellKey SpatialIndex::KeyFor(double x, double y) const {
  const int64_t cx = static_cast<int64_t>(std::floor(x / cell_size_m_));
  const int64_t cy = static_cast<int64_t>(std::floor(y / cell_size_m_));
  return (cx << 32) ^ (cy & 0xffffffff);
}

std::vector<SpatialIndex::Candidate> SpatialIndex::EdgesNear(
    double x, double y, double radius_m) const {
  std::vector<Candidate> result;
  std::unordered_set<EdgeId> seen;
  const int64_t cx0 = static_cast<int64_t>(std::floor((x - radius_m) / cell_size_m_));
  const int64_t cx1 = static_cast<int64_t>(std::floor((x + radius_m) / cell_size_m_));
  const int64_t cy0 = static_cast<int64_t>(std::floor((y - radius_m) / cell_size_m_));
  const int64_t cy1 = static_cast<int64_t>(std::floor((y + radius_m) / cell_size_m_));
  for (int64_t cx = cx0; cx <= cx1; ++cx) {
    for (int64_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find((cx << 32) ^ (cy & 0xffffffff));
      if (it == cells_.end()) continue;
      for (EdgeId e : it->second) {
        if (!seen.insert(e).second) continue;
        double fraction = 0.0;
        const double d = graph_.DistanceToEdge(e, x, y, &fraction);
        if (d <= radius_m) result.push_back(Candidate{e, d, fraction});
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.distance_m < b.distance_m;
            });
  return result;
}

SpatialIndex::Candidate SpatialIndex::NearestEdge(double x, double y,
                                                  double radius_m) const {
  std::vector<Candidate> all = EdgesNear(x, y, radius_m);
  if (all.empty()) return Candidate{};
  return all.front();
}

}  // namespace roadnet
}  // namespace pcde
