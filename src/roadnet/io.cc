#include "roadnet/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace pcde {
namespace roadnet {

namespace {

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

}  // namespace

Status SaveGraphCsv(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("SaveGraphCsv: cannot open " + path);
  }
  out.precision(17);
  out << "# pcde road network v1\n";
  for (const Vertex& v : g.vertices()) {
    out << "V," << v.id << "," << v.x << "," << v.y << "\n";
  }
  for (const Edge& e : g.edges()) {
    out << "E," << e.id << "," << e.from << "," << e.to << "," << e.length_m
        << "," << e.speed_limit_mps << ","
        << static_cast<int>(e.road_class) << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("SaveGraphCsv: write failed");
  return Status::OK();
}

StatusOr<Graph> LoadGraphCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("LoadGraphCsv: cannot open " + path);
  }
  Graph g;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitCsv(line);
    const std::string where = path + ":" + std::to_string(line_no);
    if (fields[0] == "V") {
      if (fields.size() != 4) {
        return Status::InvalidArgument("LoadGraphCsv: bad vertex at " + where);
      }
      const VertexId expected = static_cast<VertexId>(g.NumVertices());
      if (std::stoul(fields[1]) != expected) {
        return Status::InvalidArgument(
            "LoadGraphCsv: vertex ids must be dense and ordered at " + where);
      }
      g.AddVertex(std::stod(fields[2]), std::stod(fields[3]));
    } else if (fields[0] == "E") {
      if (fields.size() != 7) {
        return Status::InvalidArgument("LoadGraphCsv: bad edge at " + where);
      }
      const EdgeId expected = static_cast<EdgeId>(g.NumEdges());
      if (std::stoul(fields[1]) != expected) {
        return Status::InvalidArgument(
            "LoadGraphCsv: edge ids must be dense and ordered at " + where);
      }
      const int rc = std::stoi(fields[6]);
      if (rc < 0 || rc > 2) {
        return Status::InvalidArgument("LoadGraphCsv: bad road class at " +
                                       where);
      }
      auto added = g.AddEdge(static_cast<VertexId>(std::stoul(fields[2])),
                             static_cast<VertexId>(std::stoul(fields[3])),
                             std::stod(fields[4]), std::stod(fields[5]),
                             static_cast<RoadClass>(rc));
      if (!added.ok()) return added.status();
    } else {
      return Status::InvalidArgument("LoadGraphCsv: unknown record at " +
                                     where);
    }
  }
  return g;
}

}  // namespace roadnet
}  // namespace pcde
