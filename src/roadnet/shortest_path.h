// Dijkstra shortest paths over the road network. Shared substrate: the
// trajectory generator routes trips with it, the HMM map matcher uses
// bounded searches for transition probabilities, and the stochastic router
// uses reverse-Dijkstra lower bounds for pruning.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "common/status.h"
#include "roadnet/graph.h"
#include "roadnet/path.h"

namespace pcde {
namespace roadnet {

/// Edge weight callback; must return a non-negative weight.
using EdgeWeightFn = std::function<double(const Edge&)>;

/// Weight = free-flow travel time (length / speed limit).
EdgeWeightFn FreeFlowWeight(const Graph& g);

/// Weight = length in meters.
EdgeWeightFn LengthWeight(const Graph& g);

constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// \brief Single-pair shortest path; returns NotFound if unreachable.
/// The result is a valid Path unless the shortest edge walk revisits a
/// vertex (impossible with positive weights).
StatusOr<Path> ShortestPath(const Graph& g, VertexId from, VertexId to,
                            const EdgeWeightFn& weight);

/// \brief Cost of the shortest path between two vertices (kInfCost if
/// unreachable). `max_cost` bounds the search (early exit) when finite.
double ShortestPathCost(const Graph& g, VertexId from, VertexId to,
                        const EdgeWeightFn& weight,
                        double max_cost = kInfCost);

/// \brief One-to-all costs from `from`; entry is kInfCost when unreachable.
/// Searches only vertices within `max_cost` when finite.
std::vector<double> ShortestPathTree(const Graph& g, VertexId from,
                                     const EdgeWeightFn& weight,
                                     double max_cost = kInfCost);

/// \brief All-to-one costs into `to` (runs Dijkstra on reversed edges);
/// this is the admissible lower bound used by the stochastic router.
std::vector<double> ReverseShortestPathTree(const Graph& g, VertexId to,
                                            const EdgeWeightFn& weight);

}  // namespace roadnet
}  // namespace pcde
