// Synthetic city road-network generators. These stand in for the paper's
// Aalborg (OSM, all roads) and Beijing (traffic bureau, highways + main
// roads) networks — see DESIGN.md "Substitutions".
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "roadnet/graph.h"
#include "roadnet/path.h"

namespace pcde {
namespace roadnet {

/// \brief Configuration for the city generator.
///
/// The generator lays out a jittered grid; every `arterial_every`-th row and
/// column is an arterial with a higher speed limit, and the outermost ring
/// is a highway. A fraction of non-arterial edges is removed to break the
/// regular grid (real street networks are not complete grids).
struct CityConfig {
  int rows = 24;
  int cols = 24;
  double spacing_m = 150.0;
  int arterial_every = 6;
  double removal_fraction = 0.08;     // residential edges removed at random
  double jitter_fraction = 0.15;      // vertex position jitter (x spacing)
  double residential_mps = 13.9;      // 50 km/h
  double arterial_mps = 16.7;         // 60 km/h
  double highway_mps = 22.2;          // 80 km/h
  bool ring_road = true;              // outer ring is highway class
  uint64_t seed = 7;
};

/// Dense "city A" (Aalborg-like): all road classes, small blocks.
CityConfig CityAConfig();

/// Coarse "city B" (Beijing-like): only main roads, bigger blocks, higher
/// speeds, more vertices pruned.
CityConfig CityBConfig();

/// Generates the city network. Edges are bidirectional (one directed edge
/// each way). The graph is guaranteed strongly connected on its largest
/// component by construction (arterial skeleton is never removed).
Graph MakeCity(const CityConfig& config);

/// \brief Uniform random simple path of exactly `cardinality` edges via
/// self-avoiding walk with restarts. Returns NotFound if no such path was
/// found within `max_attempts` restarts (e.g., cardinality exceeds what the
/// network supports).
StatusOr<Path> RandomSimplePath(const Graph& g, size_t cardinality, Rng* rng,
                                int max_attempts = 200);

}  // namespace roadnet
}  // namespace pcde
