#include "roadnet/graph.h"

#include <algorithm>
#include <cmath>

namespace pcde {
namespace roadnet {

double Distance(double x1, double y1, double x2, double y2) {
  const double dx = x2 - x1;
  const double dy = y2 - y1;
  return std::sqrt(dx * dx + dy * dy);
}

VertexId Graph::AddVertex(double x, double y) {
  const VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(Vertex{id, x, y});
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

StatusOr<EdgeId> Graph::AddEdge(VertexId from, VertexId to, double length_m,
                                double speed_limit_mps, RoadClass road_class) {
  if (from >= vertices_.size() || to >= vertices_.size()) {
    return Status::InvalidArgument("AddEdge: unknown endpoint vertex");
  }
  if (from == to) {
    return Status::InvalidArgument("AddEdge: self loops are not road segments");
  }
  if (length_m <= 0.0) {
    return Status::InvalidArgument("AddEdge: non-positive length");
  }
  if (speed_limit_mps <= 0.0) {
    return Status::InvalidArgument("AddEdge: non-positive speed limit");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{id, from, to, length_m, speed_limit_mps, road_class});
  out_edges_[from].push_back(id);
  in_edges_[to].push_back(id);
  return id;
}

EdgeId Graph::FindEdge(VertexId from, VertexId to) const {
  if (from >= vertices_.size()) return kInvalidEdge;
  for (EdgeId e : out_edges_[from]) {
    if (edges_[e].to == to) return e;
  }
  return kInvalidEdge;
}

void Graph::PointAlongEdge(EdgeId e, double fraction, double* x,
                           double* y) const {
  const Edge& ed = edges_[e];
  const Vertex& a = vertices_[ed.from];
  const Vertex& b = vertices_[ed.to];
  fraction = std::clamp(fraction, 0.0, 1.0);
  *x = a.x + fraction * (b.x - a.x);
  *y = a.y + fraction * (b.y - a.y);
}

double Graph::DistanceToEdge(EdgeId e, double x, double y,
                             double* closest_fraction) const {
  const Edge& ed = edges_[e];
  const Vertex& a = vertices_[ed.from];
  const Vertex& b = vertices_[ed.to];
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((x - a.x) * abx + (y - a.y) * aby) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double px = a.x + t * abx;
  const double py = a.y + t * aby;
  if (closest_fraction != nullptr) *closest_fraction = t;
  return Distance(x, y, px, py);
}

}  // namespace roadnet
}  // namespace pcde
