// Paths (Sec. 2.1): sequences of adjacent edges connecting distinct
// vertices, plus the path algebra the paper uses — sub-path testing,
// intersection (Pi ∩ Pj), difference (Pi \ Pj), and concatenation.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "roadnet/graph.h"

namespace pcde {
namespace roadnet {

/// \brief A path: an ordered sequence of edge ids.
///
/// Construction via Path::Make validates the paper's definition: edges are
/// pairwise adjacent (e_i.d == e_{i+1}.s) and the visited vertices are
/// distinct (simple path). A default-constructed Path is empty; an empty
/// path is a valid identity for Append but is not a paper-path (|P| >= 1
/// for unit paths).
class Path {
 public:
  Path() = default;
  /// Unvalidated construction; used internally where validity is implied
  /// (e.g., contiguous slices of an already-valid path).
  explicit Path(std::vector<EdgeId> edges) : edges_(std::move(edges)) {}

  /// Validated construction per the paper's definition.
  static StatusOr<Path> Make(const Graph& g, std::vector<EdgeId> edges);

  size_t size() const { return edges_.size(); }  // |P|, the cardinality
  bool empty() const { return edges_.empty(); }
  EdgeId front() const { return edges_.front(); }
  EdgeId back() const { return edges_.back(); }
  EdgeId operator[](size_t i) const { return edges_[i]; }
  const std::vector<EdgeId>& edges() const { return edges_; }

  auto begin() const { return edges_.begin(); }
  auto end() const { return edges_.end(); }

  /// Contiguous slice [begin, begin+count) — always a valid sub-path of a
  /// valid path.
  Path Slice(size_t begin, size_t count) const;

  /// True iff `other` occurs in this path as a contiguous edge sequence
  /// (the paper's sub-path relation). Empty paths are not sub-paths.
  bool ContainsSubPath(const Path& other) const;

  /// Index of the first edge of `other` within this path, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindSubPath(const Path& other) const;

  /// Pi ∩ Pj: the longest contiguous edge sequence shared by both paths
  /// (e.g., <e1,e2,e3> ∩ <e2,e3,e4> = <e2,e3>). Returns an empty path when
  /// the paths share nothing.
  Path Intersect(const Path& other) const;

  /// Pi minus Pj: the edges of this path that are not in `other`, which form
  /// a contiguous prefix/suffix in the paper's usage (e.g., <e1,e2,e3> minus
  /// <e2,e3,e4> = <e1>). Returns InvalidArgument if the remainder is not
  /// contiguous (so the result would not be a path).
  StatusOr<Path> Subtract(const Path& other) const;

  /// Concatenation P = this ∘ other; valid only if `other` continues where
  /// this path ends and the result is still simple.
  StatusOr<Path> Concat(const Graph& g, const Path& other) const;

  /// Extends the path by one adjacent edge ("path + another edge", the
  /// exploration pattern of stochastic routing algorithms, Sec. 4.3).
  StatusOr<Path> Append(const Graph& g, EdgeId e) const;

  /// Total length in meters.
  double LengthMeters(const Graph& g) const;

  /// Sum of free-flow edge traversal times (lower bound on travel time).
  double FreeFlowSeconds(const Graph& g) const;

  /// Ordered list of visited vertices (|P| + 1 entries for non-empty paths).
  std::vector<VertexId> Vertices(const Graph& g) const;

  std::string ToString() const;

  bool operator==(const Path& o) const { return edges_ == o.edges_; }
  bool operator!=(const Path& o) const { return !(*this == o); }

 private:
  std::vector<EdgeId> edges_;
};

/// Hash functor so paths can key unordered containers (sub-path occurrence
/// counting, instantiated-variable lookup).
struct PathHash {
  size_t operator()(const Path& p) const {
    size_t h = 1469598103934665603ull;  // FNV offset basis
    for (EdgeId e : p.edges()) {
      h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Validates the paper's path definition on a raw edge sequence.
Status ValidatePath(const Graph& g, const std::vector<EdgeId>& edges);

}  // namespace roadnet
}  // namespace pcde
