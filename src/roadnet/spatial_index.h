// Uniform-grid spatial index over edge segments. The map matcher uses it to
// find candidate road segments near each GPS point (Newson & Krumm restrict
// candidates to a radius around the observation).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "roadnet/graph.h"

namespace pcde {
namespace roadnet {

/// \brief Buckets edge segments into square cells for radius queries.
class SpatialIndex {
 public:
  /// Builds the index; `cell_size_m` should be on the order of the query
  /// radius for good performance.
  SpatialIndex(const Graph& g, double cell_size_m = 100.0);

  /// \brief Candidate edge within `radius_m` of a query location.
  struct Candidate {
    EdgeId edge = kInvalidEdge;
    double distance_m = 0.0;  // distance from query point to the segment
    double fraction = 0.0;    // closest point, as fraction along the edge
  };

  /// All edges whose segment lies within `radius_m` of (x, y), sorted by
  /// ascending distance.
  std::vector<Candidate> EdgesNear(double x, double y, double radius_m) const;

  /// The single nearest edge, or kInvalidEdge if none within `radius_m`.
  Candidate NearestEdge(double x, double y, double radius_m) const;

 private:
  using CellKey = int64_t;
  CellKey KeyFor(double x, double y) const;

  const Graph& graph_;
  double cell_size_m_;
  std::unordered_map<CellKey, std::vector<EdgeId>> cells_;
};

}  // namespace roadnet
}  // namespace pcde
