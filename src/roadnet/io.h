// Plain-text (CSV) persistence for road networks, so users can load their
// own (e.g., OSM-extracted) graphs instead of the synthetic cities.
//
// Format — two sections, one record per line:
//   V,<id>,<x>,<y>
//   E,<id>,<from>,<to>,<length_m>,<speed_limit_mps>,<road_class>
// Vertices must precede the edges that reference them; ids must be dense
// and in order (the library uses ids as array indices).
#pragma once

#include <string>

#include "common/status.h"
#include "roadnet/graph.h"

namespace pcde {
namespace roadnet {

/// Writes the graph to `path` (overwrites).
Status SaveGraphCsv(const Graph& g, const std::string& path);

/// Reads a graph written by SaveGraphCsv (or hand-assembled in the same
/// format). Fails with InvalidArgument on malformed or out-of-order input.
StatusOr<Graph> LoadGraphCsv(const std::string& path);

}  // namespace roadnet
}  // namespace pcde
