#include "roadnet/path.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace pcde {
namespace roadnet {

Status ValidatePath(const Graph& g, const std::vector<EdgeId>& edges) {
  if (edges.empty()) {
    return Status::InvalidArgument("path must contain at least one edge");
  }
  std::unordered_set<VertexId> seen;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] >= g.NumEdges()) {
      return Status::InvalidArgument("unknown edge id in path");
    }
    if (i + 1 < edges.size() && !g.AreAdjacent(edges[i], edges[i + 1])) {
      return Status::InvalidArgument("edges are not adjacent at position " +
                                     std::to_string(i));
    }
    if (!seen.insert(g.edge(edges[i]).from).second) {
      return Status::InvalidArgument("path revisits a vertex (not simple)");
    }
  }
  if (!seen.insert(g.edge(edges.back()).to).second) {
    return Status::InvalidArgument("path revisits its final vertex");
  }
  return Status::OK();
}

StatusOr<Path> Path::Make(const Graph& g, std::vector<EdgeId> edges) {
  PCDE_RETURN_NOT_OK(ValidatePath(g, edges));
  return Path(std::move(edges));
}

Path Path::Slice(size_t begin, size_t count) const {
  if (begin >= edges_.size()) return Path();
  count = std::min(count, edges_.size() - begin);
  return Path(std::vector<EdgeId>(edges_.begin() + begin,
                                  edges_.begin() + begin + count));
}

size_t Path::FindSubPath(const Path& other) const {
  if (other.empty() || other.size() > edges_.size()) return npos;
  auto it = std::search(edges_.begin(), edges_.end(), other.edges_.begin(),
                        other.edges_.end());
  if (it == edges_.end()) return npos;
  return static_cast<size_t>(it - edges_.begin());
}

bool Path::ContainsSubPath(const Path& other) const {
  return FindSubPath(other) != npos;
}

Path Path::Intersect(const Path& other) const {
  // Longest contiguous common edge sequence. Paths in this library are
  // simple, so each edge occurs at most once per path; an O(n*m) sweep over
  // aligned runs is ample for road-path cardinalities.
  size_t best_len = 0;
  size_t best_start = 0;
  for (size_t i = 0; i < edges_.size(); ++i) {
    for (size_t j = 0; j < other.edges_.size(); ++j) {
      if (edges_[i] != other.edges_[j]) continue;
      size_t len = 0;
      while (i + len < edges_.size() && j + len < other.edges_.size() &&
             edges_[i + len] == other.edges_[j + len]) {
        ++len;
      }
      if (len > best_len) {
        best_len = len;
        best_start = i;
      }
    }
  }
  return Slice(best_start, best_len);
}

StatusOr<Path> Path::Subtract(const Path& other) const {
  std::unordered_set<EdgeId> exclude(other.edges_.begin(), other.edges_.end());
  std::vector<EdgeId> kept;
  // The remainder must be contiguous to be a path; detect gaps.
  bool in_run = false;
  bool run_ended = false;
  for (EdgeId e : edges_) {
    if (exclude.count(e) == 0) {
      if (run_ended) {
        return Status::InvalidArgument(
            "Subtract: remainder is not contiguous; not a path");
      }
      kept.push_back(e);
      in_run = true;
    } else if (in_run) {
      run_ended = true;
      in_run = false;
    }
  }
  return Path(std::move(kept));
}

StatusOr<Path> Path::Concat(const Graph& g, const Path& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  std::vector<EdgeId> joined = edges_;
  joined.insert(joined.end(), other.edges_.begin(), other.edges_.end());
  PCDE_RETURN_NOT_OK(ValidatePath(g, joined));
  return Path(std::move(joined));
}

StatusOr<Path> Path::Append(const Graph& g, EdgeId e) const {
  std::vector<EdgeId> joined = edges_;
  joined.push_back(e);
  PCDE_RETURN_NOT_OK(ValidatePath(g, joined));
  return Path(std::move(joined));
}

double Path::LengthMeters(const Graph& g) const {
  double total = 0.0;
  for (EdgeId e : edges_) total += g.edge(e).length_m;
  return total;
}

double Path::FreeFlowSeconds(const Graph& g) const {
  double total = 0.0;
  for (EdgeId e : edges_) total += g.edge(e).FreeFlowSeconds();
  return total;
}

std::vector<VertexId> Path::Vertices(const Graph& g) const {
  std::vector<VertexId> vs;
  if (empty()) return vs;
  vs.reserve(edges_.size() + 1);
  for (EdgeId e : edges_) vs.push_back(g.edge(e).from);
  vs.push_back(g.edge(edges_.back()).to);
  return vs;
}

std::string Path::ToString() const {
  std::ostringstream os;
  os << "<";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) os << ",";
    os << "e" << edges_[i];
  }
  os << ">";
  return os.str();
}

}  // namespace roadnet
}  // namespace pcde
