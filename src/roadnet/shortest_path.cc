#include "roadnet/shortest_path.h"

#include <algorithm>
#include <queue>

namespace pcde {
namespace roadnet {

EdgeWeightFn FreeFlowWeight(const Graph&) {
  return [](const Edge& e) { return e.FreeFlowSeconds(); };
}

EdgeWeightFn LengthWeight(const Graph&) {
  return [](const Edge& e) { return e.length_m; };
}

namespace {

struct QueueEntry {
  double cost;
  VertexId vertex;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

StatusOr<Path> ShortestPath(const Graph& g, VertexId from, VertexId to,
                            const EdgeWeightFn& weight) {
  if (from >= g.NumVertices() || to >= g.NumVertices()) {
    return Status::InvalidArgument("ShortestPath: unknown vertex");
  }
  if (from == to) {
    return Status::InvalidArgument("ShortestPath: trivial query (from == to)");
  }
  std::vector<double> dist(g.NumVertices(), kInfCost);
  std::vector<EdgeId> parent_edge(g.NumVertices(), kInvalidEdge);
  MinQueue queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.cost > dist[top.vertex]) continue;
    if (top.vertex == to) break;
    for (EdgeId e : g.OutEdges(top.vertex)) {
      const Edge& edge = g.edge(e);
      const double next = top.cost + weight(edge);
      if (next < dist[edge.to]) {
        dist[edge.to] = next;
        parent_edge[edge.to] = e;
        queue.push({next, edge.to});
      }
    }
  }
  if (parent_edge[to] == kInvalidEdge) {
    return Status::NotFound("ShortestPath: destination unreachable");
  }
  std::vector<EdgeId> edges;
  for (VertexId v = to; v != from;) {
    const EdgeId e = parent_edge[v];
    edges.push_back(e);
    v = g.edge(e).from;
  }
  std::reverse(edges.begin(), edges.end());
  return Path(std::move(edges));
}

double ShortestPathCost(const Graph& g, VertexId from, VertexId to,
                        const EdgeWeightFn& weight, double max_cost) {
  if (from == to) return 0.0;
  std::vector<double> dist(g.NumVertices(), kInfCost);
  MinQueue queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.cost > dist[top.vertex]) continue;
    if (top.vertex == to) return top.cost;
    if (top.cost > max_cost) break;
    for (EdgeId e : g.OutEdges(top.vertex)) {
      const Edge& edge = g.edge(e);
      const double next = top.cost + weight(edge);
      if (next < dist[edge.to]) {
        dist[edge.to] = next;
        queue.push({next, edge.to});
      }
    }
  }
  return dist[to];
}

std::vector<double> ShortestPathTree(const Graph& g, VertexId from,
                                     const EdgeWeightFn& weight,
                                     double max_cost) {
  std::vector<double> dist(g.NumVertices(), kInfCost);
  MinQueue queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.cost > dist[top.vertex]) continue;
    if (top.cost > max_cost) continue;
    for (EdgeId e : g.OutEdges(top.vertex)) {
      const Edge& edge = g.edge(e);
      const double next = top.cost + weight(edge);
      if (next < dist[edge.to]) {
        dist[edge.to] = next;
        queue.push({next, edge.to});
      }
    }
  }
  return dist;
}

std::vector<double> ReverseShortestPathTree(const Graph& g, VertexId to,
                                            const EdgeWeightFn& weight) {
  std::vector<double> dist(g.NumVertices(), kInfCost);
  MinQueue queue;
  dist[to] = 0.0;
  queue.push({0.0, to});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.cost > dist[top.vertex]) continue;
    for (EdgeId e : g.InEdges(top.vertex)) {
      const Edge& edge = g.edge(e);
      const double next = top.cost + weight(edge);
      if (next < dist[edge.from]) {
        dist[edge.from] = next;
        queue.push({next, edge.from});
      }
    }
  }
  return dist;
}

}  // namespace roadnet
}  // namespace pcde
