// Road network model (Sec. 2.1 of the paper): a directed graph G = (V, E)
// where vertices are intersections / road ends positioned on a planar
// coordinate system (meters) and edges are directed road segments with
// length, speed limit, and road class.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace pcde {
namespace roadnet {

using VertexId = uint32_t;
using EdgeId = uint32_t;

constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Functional class of a road segment; used by the generators and the
/// traffic model (arterials congest differently from residential streets).
enum class RoadClass : uint8_t {
  kResidential = 0,
  kArterial = 1,
  kHighway = 2,
};

/// \brief A road intersection (or dead end) with planar coordinates in
/// meters. The synthetic cities use a local tangent plane, which keeps all
/// geometry Euclidean; this is equivalent to projected OSM data.
struct Vertex {
  VertexId id = kInvalidVertex;
  double x = 0.0;
  double y = 0.0;
};

/// \brief A directed road segment from `from` to `to`.
struct Edge {
  EdgeId id = kInvalidEdge;
  VertexId from = kInvalidVertex;  // e.s in the paper
  VertexId to = kInvalidVertex;    // e.d in the paper
  double length_m = 0.0;
  double speed_limit_mps = 13.9;   // 50 km/h default
  RoadClass road_class = RoadClass::kResidential;

  /// Free-flow traversal time at the legal speed limit.
  double FreeFlowSeconds() const { return length_m / speed_limit_mps; }
};

/// \brief Directed road-network graph with O(1) incidence lookups.
///
/// The graph is append-only: vertices and edges receive dense consecutive
/// ids, which the rest of the library uses as array indices.
class Graph {
 public:
  Graph() = default;

  VertexId AddVertex(double x, double y);

  /// Adds a directed edge. Returns InvalidArgument for unknown endpoints or
  /// non-positive length.
  StatusOr<EdgeId> AddEdge(VertexId from, VertexId to, double length_m,
                           double speed_limit_mps,
                           RoadClass road_class = RoadClass::kResidential);

  size_t NumVertices() const { return vertices_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const Vertex& vertex(VertexId v) const { return vertices_[v]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edges leaving / entering a vertex.
  const std::vector<EdgeId>& OutEdges(VertexId v) const { return out_edges_[v]; }
  const std::vector<EdgeId>& InEdges(VertexId v) const { return in_edges_[v]; }

  /// True iff b can directly follow a (a.to == b.from); "adjacent" in the
  /// paper's terminology.
  bool AreAdjacent(EdgeId a, EdgeId b) const {
    return edges_[a].to == edges_[b].from;
  }

  /// Finds the edge from -> to if present.
  EdgeId FindEdge(VertexId from, VertexId to) const;

  /// Straight-line edge geometry helpers (edges are line segments).
  /// Point at fraction f in [0,1] along the edge.
  void PointAlongEdge(EdgeId e, double fraction, double* x, double* y) const;

  /// Euclidean distance from (x, y) to the edge segment, and the fraction of
  /// the closest point along the edge (out params may be null).
  double DistanceToEdge(EdgeId e, double x, double y,
                        double* closest_fraction = nullptr) const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

/// Euclidean distance between two points.
double Distance(double x1, double y1, double x2, double y2);

}  // namespace roadnet
}  // namespace pcde
