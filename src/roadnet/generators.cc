#include "roadnet/generators.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace pcde {
namespace roadnet {

CityConfig CityAConfig() {
  CityConfig c;
  c.rows = 26;
  c.cols = 26;
  c.spacing_m = 150.0;
  c.arterial_every = 5;
  c.removal_fraction = 0.08;
  c.seed = 101;
  return c;
}

CityConfig CityBConfig() {
  CityConfig c;
  c.rows = 18;
  c.cols = 18;
  c.spacing_m = 450.0;
  c.arterial_every = 3;
  c.removal_fraction = 0.05;
  c.residential_mps = 16.7;  // "main roads only": everything is fast
  c.arterial_mps = 19.4;     // 70 km/h
  c.highway_mps = 27.8;      // 100 km/h
  c.seed = 202;
  return c;
}

namespace {

bool IsArterialLine(int index, int extent, int every) {
  return index % every == 0 || index == extent - 1;
}

}  // namespace

Graph MakeCity(const CityConfig& config) {
  Graph g;
  Rng rng(config.seed);
  const int rows = config.rows;
  const int cols = config.cols;

  // Vertices on a jittered grid.
  std::vector<std::vector<VertexId>> grid(rows, std::vector<VertexId>(cols));
  const double jitter = config.jitter_fraction * config.spacing_m;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = c * config.spacing_m + rng.Uniform(-jitter, jitter);
      const double y = r * config.spacing_m + rng.Uniform(-jitter, jitter);
      grid[r][c] = g.AddVertex(x, y);
    }
  }

  auto classify = [&](int r1, int c1, int r2, int c2) -> RoadClass {
    const bool horizontal = (r1 == r2);
    const bool outer = horizontal ? (r1 == 0 || r1 == rows - 1)
                                  : (c1 == 0 || c1 == cols - 1);
    if (config.ring_road && outer) return RoadClass::kHighway;
    if (horizontal && IsArterialLine(r1, rows, config.arterial_every)) {
      return RoadClass::kArterial;
    }
    if (!horizontal && IsArterialLine(c1, cols, config.arterial_every)) {
      return RoadClass::kArterial;
    }
    (void)r2;
    (void)c2;
    return RoadClass::kResidential;
  };

  auto speed_for = [&](RoadClass rc) {
    switch (rc) {
      case RoadClass::kHighway: return config.highway_mps;
      case RoadClass::kArterial: return config.arterial_mps;
      case RoadClass::kResidential: return config.residential_mps;
    }
    return config.residential_mps;
  };

  auto add_both = [&](VertexId a, VertexId b, RoadClass rc) {
    const Vertex& va = g.vertex(a);
    const Vertex& vb = g.vertex(b);
    const double len = Distance(va.x, va.y, vb.x, vb.y);
    (void)g.AddEdge(a, b, len, speed_for(rc), rc);
    (void)g.AddEdge(b, a, len, speed_for(rc), rc);
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        const RoadClass rc = classify(r, c, r, c + 1);
        if (rc != RoadClass::kResidential ||
            rng.Uniform() >= config.removal_fraction) {
          add_both(grid[r][c], grid[r][c + 1], rc);
        }
      }
      if (r + 1 < rows) {
        const RoadClass rc = classify(r, c, r + 1, c);
        if (rc != RoadClass::kResidential ||
            rng.Uniform() >= config.removal_fraction) {
          add_both(grid[r][c], grid[r + 1][c], rc);
        }
      }
    }
  }
  return g;
}

StatusOr<Path> RandomSimplePath(const Graph& g, size_t cardinality, Rng* rng,
                                int max_attempts) {
  if (cardinality == 0 || g.NumEdges() == 0) {
    return Status::InvalidArgument("RandomSimplePath: empty request or graph");
  }
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const EdgeId start =
        static_cast<EdgeId>(rng->UniformInt(0, static_cast<int64_t>(g.NumEdges()) - 1));
    std::vector<EdgeId> edges{start};
    std::unordered_set<VertexId> visited{g.edge(start).from, g.edge(start).to};
    while (edges.size() < cardinality) {
      const VertexId head = g.edge(edges.back()).to;
      std::vector<EdgeId> options;
      for (EdgeId e : g.OutEdges(head)) {
        if (visited.count(g.edge(e).to) == 0) options.push_back(e);
      }
      if (options.empty()) break;  // dead end; restart
      const EdgeId next = options[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(options.size()) - 1))];
      edges.push_back(next);
      visited.insert(g.edge(next).to);
    }
    if (edges.size() == cardinality) return Path(std::move(edges));
  }
  return Status::NotFound("RandomSimplePath: no simple path of cardinality " +
                          std::to_string(cardinality) + " found");
}

}  // namespace roadnet
}  // namespace pcde
