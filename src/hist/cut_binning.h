// Sort-free ordering of flatten cut points, shared by the hist:: bucket
// machinery (FlattenToDisjoint, the divergence union refinements) and the
// chain sweeper's progressive compaction so the two pipelines stay
// arithmetically identical.
//
// Cut positions are arithmetic on a contiguous open range, so instead of a
// comparison sort they are scattered into a monotone bucket grid spanning
// [min, max] — bucket index floor((x - min) * scale) is nondecreasing in x,
// so concatenating the buckets in grid order yields the globally ascending
// sequence — and each small bucket is finished with an insertion pass.
// The output is the ascending multiset, exactly what std::sort produces
// (doubles that compare equal are interchangeable downstream), so callers'
// tolerance-based dedup (kMinWidth) behaves byte-identically.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/simd.h"

namespace pcde {
namespace hist {

/// Reusable buffers for SortCutsMonotone; hold one per thread (the chain
/// sweeper keeps one in its thread-local scratch) so steady-state sorting
/// allocates nothing.
struct CutBinningScratch {
  std::vector<uint32_t> counts;   // per-grid-bucket occupancy, then offsets
  std::vector<double> scattered;  // grid-ordered copy of the input
  std::vector<uint32_t> origins;  // matching original positions
  std::vector<std::pair<double, uint32_t>> pairs;  // skewed-bucket guard
  std::vector<uint32_t> order_unused;  // untracked overload's origin sink
};

namespace internal {

/// Insertion sort by value, carrying each value's original position along.
/// Exact ties keep their relative order, which is irrelevant downstream
/// (equal cuts land in the same dedup run either way).
inline void InsertionSortTracked(double* v, uint32_t* o, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    const double x = v[i];
    const uint32_t xo = o[i];
    size_t j = i;
    for (; j > 0 && x < v[j - 1]; --j) {
      v[j] = v[j - 1];
      o[j] = o[j - 1];
    }
    v[j] = x;
    o[j] = xo;
  }
}

/// Value-ordered sort of a (values, origins) range: insertion pass for the
/// common few-element case, std::sort over pairs to bound pathological
/// (skewed or degenerate-grid) ranges.
inline void SortRangeTracked(double* v, uint32_t* o, size_t n,
                             CutBinningScratch* scratch) {
  if (n <= 48) {
    InsertionSortTracked(v, o, n);
    return;
  }
  scratch->pairs.resize(n);
  for (size_t k = 0; k < n; ++k) scratch->pairs[k] = {v[k], o[k]};
  std::sort(scratch->pairs.begin(), scratch->pairs.end(),
            [](const std::pair<double, uint32_t>& a,
               const std::pair<double, uint32_t>& b) {
              return a.first < b.first;
            });
  for (size_t k = 0; k < n; ++k) {
    v[k] = scratch->pairs[k].first;
    o[k] = scratch->pairs[k].second;
  }
}

}  // namespace internal

/// Sorts `cuts` ascending without a comparison sort over the full range:
/// one counting pass over the monotone grid, one scatter, and per-bucket
/// insertion passes (buckets hold ~1 element when cuts spread over the
/// range; a std::sort guard bounds pathologically skewed buckets).
/// Produces exactly the ascending order std::sort would, and reports in
/// `order` (resized to cuts->size()) the input position each output value
/// came from — the chain sweeper's progressive compaction maps each sum
/// interval straight to its flatten slice with it instead of binary-
/// searching the deduped cut list per entry.
inline void SortCutsMonotoneTracked(std::vector<double>* cuts,
                                    std::vector<uint32_t>* order,
                                    CutBinningScratch* scratch) {
  const size_t n = cuts->size();
  order->resize(n);
  uint32_t* const ord = order->data();
  for (size_t i = 0; i < n; ++i) ord[i] = static_cast<uint32_t>(i);
  if (n < 2) return;
  double* const v = cuts->data();
  if (n <= 24) {
    internal::InsertionSortTracked(v, ord, n);
    return;
  }

  double mn, mx;
  simd::MinMax(v, n, &mn, &mx);
  if (!(mx > mn)) return;  // all cuts equal: any order is sorted
  // One grid bucket per element on average; power of two so the clamp is
  // the only branch. The scale can overflow to inf for a subnormal range —
  // fall back to the guarded range sort for that degenerate input.
  size_t n_buckets = 1;
  while (n_buckets < n) n_buckets <<= 1;
  const double scale = static_cast<double>(n_buckets) / (mx - mn);
  if (!std::isfinite(scale)) {
    internal::SortRangeTracked(v, ord, n, scratch);
    return;
  }
  auto bucket_of = [mn, scale, n_buckets](double x) {
    const double t = (x - mn) * scale;
    size_t b = t >= 0.0 ? static_cast<size_t>(t) : 0;
    return b < n_buckets ? b : n_buckets - 1;
  };

  scratch->counts.assign(n_buckets + 1, 0);
  for (size_t i = 0; i < n; ++i) ++scratch->counts[bucket_of(v[i])];
  // Exclusive prefix: counts[b] becomes the write offset of bucket b.
  uint32_t offset = 0;
  for (size_t b = 0; b <= n_buckets; ++b) {
    const uint32_t c = scratch->counts[b];
    scratch->counts[b] = offset;
    offset += c;
  }
  scratch->scattered.resize(n);
  scratch->origins.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t at = scratch->counts[bucket_of(v[i])]++;
    scratch->scattered[at] = v[i];
    scratch->origins[at] = static_cast<uint32_t>(i);
  }
  // counts[b] now holds the *end* offset of bucket b (begin is b-1's end).
  uint32_t begin = 0;
  for (size_t b = 0; b < n_buckets; ++b) {
    const uint32_t end = scratch->counts[b];
    if (end - begin > 1) {
      internal::SortRangeTracked(scratch->scattered.data() + begin,
                                 scratch->origins.data() + begin,
                                 end - begin, scratch);
    }
    begin = end;
  }
  std::copy(scratch->scattered.begin(), scratch->scattered.end(), v);
  std::copy(scratch->origins.begin(), scratch->origins.end(), ord);
}

/// Untracked variant: same single implementation, origins discarded.
inline void SortCutsMonotone(std::vector<double>* cuts,
                             CutBinningScratch* scratch) {
  std::vector<uint32_t> order = std::move(scratch->order_unused);
  SortCutsMonotoneTracked(cuts, &order, scratch);
  scratch->order_unused = std::move(order);
}

/// Convenience overload on a per-thread scratch, so callers without their
/// own buffers (FlattenToDisjoint in every Finalize, the divergence union
/// refinements) stay allocation-free in steady state too.
inline void SortCutsMonotone(std::vector<double>* cuts) {
  static thread_local CutBinningScratch scratch;
  SortCutsMonotone(cuts, &scratch);
}

}  // namespace hist
}  // namespace pcde
