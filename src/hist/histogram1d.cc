#include "hist/histogram1d.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "common/mathutil.h"
#include "hist/cut_binning.h"
#include "hist/greedy_merge.h"

namespace pcde {
namespace hist {

namespace {

constexpr double kMassTolerance = 1e-6;
constexpr double kMinWidth = 1e-12;

void Normalize(std::vector<Bucket>* buckets) {
  double total = 0.0;
  for (const Bucket& b : *buckets) total += b.prob;
  if (total <= 0.0) return;
  for (Bucket& b : *buckets) b.prob /= total;
}

}  // namespace

StatusOr<Histogram1D> Histogram1D::Make(std::vector<Bucket> buckets) {
  if (buckets.empty()) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const Bucket& a, const Bucket& b) {
              return a.range.lo < b.range.lo;
            });
  double total = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].range.width() < kMinWidth) {
      return Status::InvalidArgument("bucket has non-positive width");
    }
    if (buckets[i].prob < 0.0) {
      return Status::InvalidArgument("negative bucket probability");
    }
    if (i > 0 && buckets[i].range.lo < buckets[i - 1].range.hi - kMinWidth) {
      return Status::InvalidArgument("buckets overlap");
    }
    total += buckets[i].prob;
  }
  if (std::fabs(total - 1.0) > kMassTolerance) {
    return Status::InvalidArgument("bucket probabilities sum to " +
                                   std::to_string(total) + ", expected 1");
  }
  Normalize(&buckets);
  return Histogram1D(std::move(buckets));
}

Histogram1D Histogram1D::Single(double lo, double hi) {
  assert(hi > lo);
  return Histogram1D({Bucket(lo, hi, 1.0)});
}

double Histogram1D::Mean() const {
  double m = 0.0;
  for (const Bucket& b : buckets_) m += b.prob * b.range.mid();
  return m;
}

double Histogram1D::Variance() const {
  const double mu = Mean();
  double v = 0.0;
  for (const Bucket& b : buckets_) {
    // Uniform within bucket: E[X^2] over the bucket is mid^2 + w^2/12.
    const double mid = b.range.mid();
    const double w = b.range.width();
    v += b.prob * (mid * mid + w * w / 12.0);
  }
  return v - mu * mu;
}

double Histogram1D::Cdf(double x) const {
  double acc = 0.0;
  for (const Bucket& b : buckets_) {
    if (x >= b.range.hi) {
      acc += b.prob;
    } else if (x > b.range.lo) {
      acc += b.prob * (x - b.range.lo) / b.range.width();
      break;
    } else {
      break;
    }
  }
  return acc;
}

double Histogram1D::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  double acc = 0.0;
  for (const Bucket& b : buckets_) {
    if (acc + b.prob >= q) {
      if (b.prob <= 0.0) return b.range.lo;
      const double frac = (q - acc) / b.prob;
      return b.range.lo + frac * b.range.width();
    }
    acc += b.prob;
  }
  return buckets_.empty() ? 0.0 : Max();
}

double Histogram1D::Mass(const Interval& iv) const {
  double acc = 0.0;
  for (const Bucket& b : buckets_) {
    const Interval x = b.range.Intersect(iv);
    if (!x.empty()) acc += b.prob * x.width() / b.range.width();
  }
  return acc;
}

double Histogram1D::DiscreteEntropy() const {
  double h = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.prob > 0.0) h -= b.prob * std::log(b.prob);
  }
  return h;
}

double Histogram1D::DifferentialEntropy() const {
  double h = 0.0;
  for (const Bucket& b : buckets_) {
    if (b.prob > 0.0) h -= b.prob * std::log(b.prob / b.range.width());
  }
  return h;
}

double Histogram1D::Sample(Rng* rng) const {
  assert(!buckets_.empty());
  double u = rng->Uniform();
  for (const Bucket& b : buckets_) {
    if (u < b.prob) {
      return b.range.lo + rng->Uniform() * b.range.width();
    }
    u -= b.prob;
  }
  const Bucket& last = buckets_.back();
  return last.range.lo + rng->Uniform() * last.range.width();
}

size_t Histogram1D::MemoryUsageBytes() const {
  return sizeof(Histogram1D) + buckets_.size() * sizeof(Bucket);
}

std::string Histogram1D::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  os << "{";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "[" << buckets_[i].range.lo << "," << buckets_[i].range.hi
       << "):" << buckets_[i].prob;
  }
  os << "}";
  return os.str();
}

StatusOr<Histogram1D> FlattenToDisjoint(std::vector<WeightedInterval> parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("FlattenToDisjoint: no input intervals");
  }
  // Collect breakpoints.
  std::vector<double> cuts;
  cuts.reserve(parts.size() * 2);
  double total_mass = 0.0;
  for (const WeightedInterval& w : parts) {
    if (w.prob < 0.0) {
      return Status::InvalidArgument("FlattenToDisjoint: negative weight");
    }
    if (w.range.width() < kMinWidth && w.prob > 0.0) {
      return Status::InvalidArgument(
          "FlattenToDisjoint: zero-width interval with positive mass");
    }
    total_mass += w.prob;
    cuts.push_back(w.range.lo);
    cuts.push_back(w.range.hi);
  }
  if (total_mass <= 0.0) {
    return Status::InvalidArgument("FlattenToDisjoint: zero total mass");
  }
  SortCutsMonotone(&cuts);
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) {
                           return std::fabs(a - b) < kMinWidth;
                         }),
             cuts.end());

  // Accumulate density per elementary slice with a difference array:
  // O(parts log parts + slices) instead of walking every covered slice per
  // part (the walk is quadratic when many wide intervals overlap, and this
  // accumulation is the hot inner step of the chain sweep's progressive
  // compaction). A parallel cover counter keeps slices no interval covers
  // at exactly zero density — the float prefix sum alone would leave
  // cancellation residue there and emit phantom buckets.
  const size_t n_slices = cuts.size() - 1;
  std::vector<double> diff(n_slices + 1, 0.0);
  std::vector<int32_t> cover(n_slices + 1, 0);
  for (const WeightedInterval& w : parts) {
    if (w.prob <= 0.0) continue;
    const double d = w.prob / w.range.width();
    const auto lo_it = std::lower_bound(cuts.begin(), cuts.end(),
                                        w.range.lo - kMinWidth);
    const size_t s = static_cast<size_t>(lo_it - cuts.begin());
    const auto hi_it = std::lower_bound(cuts.begin() + static_cast<ptrdiff_t>(s),
                                        cuts.end(), w.range.hi - kMinWidth);
    const size_t s_end =
        std::min(n_slices, static_cast<size_t>(hi_it - cuts.begin()));
    if (s >= s_end) continue;
    diff[s] += d;
    diff[s_end] -= d;
    ++cover[s];
    --cover[s_end];
  }
  std::vector<double> density(n_slices, 0.0);
  double running = 0.0;
  int32_t covering = 0;
  for (size_t s = 0; s < n_slices; ++s) {
    covering += cover[s];
    running += diff[s];
    if (covering == 0) running = 0.0;  // drop cancellation residue exactly
    density[s] = running;
  }

  // Emit slices with positive mass, merging equal-density neighbours (this
  // is what keeps the paper's [70,90) bucket whole in Fig. 7).
  std::vector<Bucket> out;
  out.reserve(n_slices);
  for (size_t s = 0; s < n_slices; ++s) {
    const double w = cuts[s + 1] - cuts[s];
    const double mass = density[s] * w;
    if (mass <= 0.0) continue;
    const bool contiguous =
        !out.empty() && std::fabs(out.back().range.hi - cuts[s]) < kMinWidth;
    if (contiguous) {
      const double prev_density = out.back().prob / out.back().range.width();
      if (std::fabs(prev_density - density[s]) <=
          1e-9 * std::max(prev_density, density[s])) {
        out.back().range.hi = cuts[s + 1];
        out.back().prob += mass;
        continue;
      }
    }
    out.emplace_back(cuts[s], cuts[s + 1], mass);
  }
  // Normalize (mass was conserved up to float error).
  for (Bucket& b : out) b.prob /= total_mass;
  return Histogram1D::Make(std::move(out));
}

Histogram1D Compact(const Histogram1D& h, size_t max_buckets) {
  if (h.NumBuckets() <= max_buckets || max_buckets == 0) return h;
  std::vector<Bucket> bs = h.buckets();
  // The shared size-dispatched greedy merge (hist/greedy_merge.h) — the
  // same loop the chain sweeper's progressive compaction runs on
  // thread-local scratch. Its merge sequence is identical to the
  // full-rescan reference (ties break toward the smaller left index),
  // pinned by the randomized equivalence test.
  GreedyMergeScratch scratch;
  GreedyMergeToCap(&bs, max_buckets, &scratch);
  auto result = Histogram1D::Make(std::move(bs));
  assert(result.ok());
  return std::move(result).value();
}

StatusOr<Histogram1D> Convolve(const Histogram1D& a, const Histogram1D& b,
                               size_t max_buckets) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("Convolve: empty histogram");
  }
  std::vector<WeightedInterval> parts;
  parts.reserve(a.NumBuckets() * b.NumBuckets());
  for (const Bucket& x : a.buckets()) {
    for (const Bucket& y : b.buckets()) {
      const double p = x.prob * y.prob;
      if (p <= 0.0) continue;
      parts.emplace_back(x.range + y.range, p);
    }
  }
  PCDE_ASSIGN_OR_RETURN(flat, FlattenToDisjoint(std::move(parts)));
  return Compact(flat, max_buckets);
}

namespace {

// Merges the breakpoints of two histograms over the union of supports.
std::vector<double> UnionCuts(const Histogram1D& p, const Histogram1D& q) {
  std::vector<double> cuts;
  for (const Bucket& b : p.buckets()) {
    cuts.push_back(b.range.lo);
    cuts.push_back(b.range.hi);
  }
  for (const Bucket& b : q.buckets()) {
    cuts.push_back(b.range.lo);
    cuts.push_back(b.range.hi);
  }
  SortCutsMonotone(&cuts);
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) {
                           return std::fabs(a - b) < kMinWidth;
                         }),
             cuts.end());
  return cuts;
}

}  // namespace

double KlDivergence(const Histogram1D& p, const Histogram1D& q,
                    double epsilon) {
  if (p.empty() || q.empty()) return 0.0;
  const std::vector<double> cuts = UnionCuts(p, q);
  const double support = cuts.back() - cuts.front();
  double kl = 0.0;
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    const Interval slice(cuts[s], cuts[s + 1]);
    const double mp = p.Mass(slice);
    if (mp <= 0.0) continue;
    double mq = q.Mass(slice);
    // Epsilon-smooth q with a uniform component over the union support.
    mq = (1.0 - epsilon) * mq + epsilon * slice.width() / support;
    kl += mp * (SafeLog(mp) - SafeLog(mq));
  }
  return std::max(kl, 0.0);
}

double L1Distance(const Histogram1D& p, const Histogram1D& q) {
  if (p.empty() || q.empty()) return 2.0;
  const std::vector<double> cuts = UnionCuts(p, q);
  double l1 = 0.0;
  for (size_t s = 0; s + 1 < cuts.size(); ++s) {
    const Interval slice(cuts[s], cuts[s + 1]);
    l1 += std::fabs(p.Mass(slice) - q.Mass(slice));
  }
  return l1;
}

}  // namespace hist
}  // namespace pcde
