// The greedy cheapest-adjacent-merge loop shared by hist::Compact and the
// chain sweeper's progressive compaction (ChainSweeper::CompactSums): merge
// the adjacent bucket pair whose merge increases the L2 density error the
// least (MergeCost), until at most `cap` buckets remain.
//
// GreedyMergeToCap dispatches on job size between two strategies with an
// *identical* merge sequence:
//
//   * GreedyMergeBlocked — cached cost per surviving pair (left-indexed)
//     with per-block minima: a merge touches at most three cost entries,
//     so it rescans those blocks (O(block)) and the global pick scans
//     block minima (O(n/block)). The scans are contiguous double compares,
//     so for jobs up to a few thousand entries (the sweeper's progressive
//     compaction lives here) its constant factor beats any heap — swapping
//     it for the heap across the board measured the whole chain kernel
//     ~45% slower.
//   * GreedyMergeHeap — a lazy pair min-heap over adjacent survivors plus
//     a doubly-linked survivor list: O(n log n) instead of O(n²/block),
//     taking over where the blocked scan's linear global pick starts to
//     dominate.
//
// Identical because (a) a merge only changes the costs of the pairs
// touching the merged bucket — the blocked path recomputes exactly those
// entries, the heap path detects stale entries by per-bucket version
// stamps and drops them — and (b) exact cost ties break toward the
// smaller left index, the left-to-right rescan's first-minimum rule (the
// blocked path keeps the first minimum within a block and the earlier
// block across blocks; the heap orders by (cost, index); survivor order
// never changes, so original indices compare like scan positions). All
// working storage lives in a caller-owned GreedyMergeScratch, so
// steady-state callers (the sweeper's per-thread scratch) allocate
// nothing.
//
// GreedyMergeToCapRescan is the frozen reference loop (global rescan per
// merge) that defines the semantics; the randomized equivalence test
// (tests/greedy_merge_test.cc) checks all three against each other.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "hist/histogram1d.h"

namespace pcde {
namespace hist {

struct GreedyMergeScratch {
  /// One adjacent-pair candidate of the heap path; stale once either
  /// endpoint's version moved past the recorded stamp.
  struct PairEntry {
    double cost;
    uint32_t left, right;
    uint32_t left_ver, right_ver;
  };
  std::vector<PairEntry> heap;
  std::vector<uint32_t> next, prev, ver;
  std::vector<char> alive;
  // Blocked-argmin path.
  std::vector<double> cost;        // per-pair cost, left-indexed
  std::vector<double> block_cost;  // per-block minimum of cost
  std::vector<uint32_t> block_idx; // index of that minimum
};

/// Above this entry count GreedyMergeToCap switches from the blocked
/// argmin to the lazy pair heap: the blocked global pick costs O(n/block)
/// per merge, so its total is O(n²/block) — fine into the thousands,
/// heap-bound beyond.
inline constexpr size_t kGreedyMergeHeapThreshold = 4096;

/// The blocked-argmin strategy (see the header comment). Call through
/// GreedyMergeToCap unless pinning the strategy (tests).
inline void GreedyMergeBlocked(std::vector<Bucket>* entries, size_t cap,
                               GreedyMergeScratch* scratch) {
  const size_t n = entries->size();
  if (n <= cap || cap == 0) return;
  std::vector<Bucket>& bs = *entries;
  GreedyMergeScratch& sc = *scratch;
  auto merge_cost = [&bs](size_t i, size_t j) {
    return MergeCost(bs[i].range, bs[i].prob, bs[j].range, bs[j].prob);
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr size_t kBlock = 64;
  sc.next.resize(n);
  sc.prev.resize(n);
  sc.alive.assign(n, 1);
  sc.cost.resize(n);
  for (size_t i = 0; i < n; ++i) {
    sc.next[i] = static_cast<uint32_t>(i + 1);  // n == end sentinel
    sc.prev[i] = static_cast<uint32_t>(i == 0 ? n : i - 1);
    sc.cost[i] = i + 1 < n ? merge_cost(i, i + 1) : kInf;
  }
  const size_t n_blocks = (n + kBlock - 1) / kBlock;
  sc.block_cost.resize(n_blocks);
  sc.block_idx.resize(n_blocks);
  auto rescan_block = [&sc, n](size_t blk) {
    const size_t lo = blk * kBlock;
    const size_t hi = std::min(n, lo + kBlock);
    const double* const costs = sc.cost.data();
    double best_cost = kInf;
    size_t best = lo;
    for (size_t k = lo; k < hi; ++k) {
      if (costs[k] < best_cost) {
        best_cost = costs[k];
        best = k;
      }
    }
    sc.block_cost[blk] = best_cost;
    sc.block_idx[blk] = static_cast<uint32_t>(best);
  };
  for (size_t blk = 0; blk < n_blocks; ++blk) rescan_block(blk);

  size_t remaining = n;
  while (remaining > cap) {
    double best_cost = kInf;
    size_t best_blk = 0;
    for (size_t blk = 0; blk < n_blocks; ++blk) {
      if (sc.block_cost[blk] < best_cost) {
        best_cost = sc.block_cost[blk];
        best_blk = blk;
      }
    }
    if (best_cost == kInf) break;  // no mergeable pair left
    const uint32_t i = sc.block_idx[best_blk];
    const uint32_t j = sc.next[i];
    bs[i] = Bucket(bs[i].range.lo, bs[j].range.hi, bs[i].prob + bs[j].prob);
    sc.alive[j] = 0;
    sc.cost[j] = kInf;
    sc.next[i] = sc.next[j];
    if (sc.next[j] < n) sc.prev[sc.next[j]] = i;
    sc.cost[i] = sc.next[i] < n ? merge_cost(i, sc.next[i]) : kInf;
    const uint32_t left_nbr = sc.prev[i];
    if (left_nbr < n) sc.cost[left_nbr] = merge_cost(left_nbr, i);
    --remaining;
    rescan_block(j / kBlock);
    if (i / kBlock != j / kBlock) rescan_block(i / kBlock);
    if (left_nbr < n && left_nbr / kBlock != i / kBlock &&
        left_nbr / kBlock != j / kBlock) {
      rescan_block(left_nbr / kBlock);
    }
  }
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sc.alive[i] != 0) bs[out++] = bs[i];
  }
  bs.resize(out);
}

/// The lazy pair-heap strategy (see the header comment). Call through
/// GreedyMergeToCap unless pinning the strategy (tests).
inline void GreedyMergeHeap(std::vector<Bucket>* entries, size_t cap,
                            GreedyMergeScratch* scratch) {
  const size_t n = entries->size();
  if (n <= cap || cap == 0) return;
  std::vector<Bucket>& bs = *entries;
  GreedyMergeScratch& sc = *scratch;

  auto merge_cost = [&bs](size_t i, size_t j) {
    return MergeCost(bs[i].range, bs[i].prob, bs[j].range, bs[j].prob);
  };
  // Min-heap via the std heap algorithms on scratch storage (the front is
  // the smallest (cost, left) under the inverted comparator).
  auto later = [](const GreedyMergeScratch::PairEntry& a,
                  const GreedyMergeScratch::PairEntry& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.left > b.left;
  };

  sc.next.resize(n);
  sc.prev.resize(n);
  sc.ver.assign(n, 0);
  sc.alive.assign(n, 1);
  for (size_t i = 0; i < n; ++i) {
    sc.next[i] = static_cast<uint32_t>(i + 1);  // n == end sentinel
    sc.prev[i] = static_cast<uint32_t>(i == 0 ? n : i - 1);
  }
  sc.heap.clear();
  sc.heap.reserve(2 * n);
  for (size_t i = 0; i + 1 < n; ++i) {
    sc.heap.push_back(GreedyMergeScratch::PairEntry{
        merge_cost(i, i + 1), static_cast<uint32_t>(i),
        static_cast<uint32_t>(i + 1), 0, 0});
  }
  std::make_heap(sc.heap.begin(), sc.heap.end(), later);

  size_t remaining = n;
  while (remaining > cap && !sc.heap.empty()) {
    std::pop_heap(sc.heap.begin(), sc.heap.end(), later);
    const GreedyMergeScratch::PairEntry top = sc.heap.back();
    sc.heap.pop_back();
    const uint32_t i = top.left, j = top.right;
    if (sc.alive[i] == 0 || sc.alive[j] == 0 || sc.next[i] != j ||
        sc.ver[i] != top.left_ver || sc.ver[j] != top.right_ver) {
      continue;  // stale entry
    }
    bs[i] = Bucket(bs[i].range.lo, bs[j].range.hi, bs[i].prob + bs[j].prob);
    sc.alive[j] = 0;
    ++sc.ver[i];
    sc.next[i] = sc.next[j];
    if (sc.next[j] < n) sc.prev[sc.next[j]] = i;
    --remaining;
    if (sc.prev[i] < n) {
      sc.heap.push_back(GreedyMergeScratch::PairEntry{
          merge_cost(sc.prev[i], i), sc.prev[i], i, sc.ver[sc.prev[i]],
          sc.ver[i]});
      std::push_heap(sc.heap.begin(), sc.heap.end(), later);
    }
    if (sc.next[i] < n) {
      sc.heap.push_back(GreedyMergeScratch::PairEntry{
          merge_cost(i, sc.next[i]), i, sc.next[i], sc.ver[i],
          sc.ver[sc.next[i]]});
      std::push_heap(sc.heap.begin(), sc.heap.end(), later);
    }
  }

  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sc.alive[i] != 0) bs[out++] = bs[i];
  }
  bs.resize(out);
}

/// Merges `entries` (disjoint, sorted, positive-width buckets) down to at
/// most `cap` buckets in place, dispatching on job size. No-op when
/// already within the cap or when `cap` is 0.
inline void GreedyMergeToCap(std::vector<Bucket>* entries, size_t cap,
                             GreedyMergeScratch* scratch) {
  if (entries->size() <= kGreedyMergeHeapThreshold) {
    GreedyMergeBlocked(entries, cap, scratch);
  } else {
    GreedyMergeHeap(entries, cap, scratch);
  }
}

/// The reference loop: full rescan per merge, first minimum wins. O(n²);
/// exists to pin the production strategies' semantics in the equivalence
/// test.
inline void GreedyMergeToCapRescan(std::vector<Bucket>* entries, size_t cap) {
  if (cap == 0) return;
  std::vector<Bucket>& bs = *entries;
  while (bs.size() > cap) {
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < bs.size(); ++i) {
      const double c =
          MergeCost(bs[i].range, bs[i].prob, bs[i + 1].range, bs[i + 1].prob);
      if (c < best_cost) {
        best_cost = c;
        best = i;
      }
    }
    bs[best] = Bucket(bs[best].range.lo, bs[best + 1].range.hi,
                      bs[best].prob + bs[best + 1].prob);
    bs.erase(bs.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
}

}  // namespace hist
}  // namespace pcde
