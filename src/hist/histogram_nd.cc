#include "hist/histogram_nd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "common/mathutil.h"
#include "hist/raw_distribution.h"

namespace pcde {
namespace hist {

namespace {
constexpr double kMassTolerance = 1e-6;
}

HistogramND HistogramND::FromValidated(
    const std::vector<std::vector<double>>& dim_boundaries,
    const std::vector<HyperBucket>& buckets) {
  auto payload = std::make_shared<OwnedPayload>();
  payload->bound_off.reserve(dim_boundaries.size() + 1);
  payload->bound_off.push_back(0);
  for (const auto& bounds : dim_boundaries) {
    payload->bounds.insert(payload->bounds.end(), bounds.begin(), bounds.end());
    payload->bound_off.push_back(payload->bounds.size());
  }
  payload->probs.reserve(buckets.size());
  payload->idx.reserve(buckets.size() * dim_boundaries.size());
  for (const HyperBucket& hb : buckets) {
    payload->probs.push_back(hb.prob);
    payload->idx.insert(payload->idx.end(), hb.idx.begin(), hb.idx.end());
  }
  HistogramND h;
  h.bounds_ = payload->bounds.data();
  h.bound_off_ = payload->bound_off.data();
  h.probs_ = payload->probs.data();
  h.idx_ = payload->idx.data();
  h.ndims_ = static_cast<uint32_t>(dim_boundaries.size());
  h.nbuckets_ = static_cast<uint32_t>(buckets.size());
  h.owner_ = std::move(payload);
  return h;
}

HistogramND HistogramND::FromFlatUnchecked(
    std::shared_ptr<const void> keepalive, const double* bounds,
    const uint64_t* bound_off, uint32_t ndims, const double* probs,
    const uint32_t* idx, uint32_t nbuckets) {
  HistogramND h;
  h.bounds_ = bounds;
  h.bound_off_ = bound_off;
  h.probs_ = probs;
  h.idx_ = idx;
  h.ndims_ = ndims;
  h.nbuckets_ = nbuckets;
  h.owner_ = std::move(keepalive);
  return h;
}

StatusOr<HistogramND> HistogramND::Make(
    std::vector<std::vector<double>> dim_boundaries,
    std::vector<HyperBucket> buckets, bool renormalize) {
  if (dim_boundaries.empty()) {
    return Status::InvalidArgument("HistogramND: no dimensions");
  }
  for (const auto& bounds : dim_boundaries) {
    if (bounds.size() < 2) {
      return Status::InvalidArgument("HistogramND: dimension needs >= 2 bounds");
    }
    if (!std::is_sorted(bounds.begin(), bounds.end())) {
      return Status::InvalidArgument("HistogramND: unsorted boundaries");
    }
  }
  double total = 0.0;
  for (const HyperBucket& hb : buckets) {
    if (hb.idx.size() != dim_boundaries.size()) {
      return Status::InvalidArgument("HistogramND: index arity mismatch");
    }
    for (size_t d = 0; d < hb.idx.size(); ++d) {
      if (hb.idx[d] + 1 >= dim_boundaries[d].size()) {
        return Status::InvalidArgument("HistogramND: bucket index out of range");
      }
    }
    if (hb.prob < 0.0) {
      return Status::InvalidArgument("HistogramND: negative probability");
    }
    total += hb.prob;
  }
  if (std::fabs(total - 1.0) > kMassTolerance) {
    return Status::InvalidArgument("HistogramND: probabilities sum to " +
                                   std::to_string(total));
  }
  if (renormalize) {
    for (HyperBucket& hb : buckets) hb.prob /= total;
  }
  return FromValidated(dim_boundaries, buckets);
}

StatusOr<HistogramND> HistogramND::BuildFromSamples(
    const std::vector<std::vector<double>>& samples,
    const AutoBucketOptions& options, size_t fixed_buckets_per_dim) {
  if (samples.empty()) {
    return Status::InvalidArgument("BuildFromSamples: no samples");
  }
  const size_t dims = samples.front().size();
  if (dims == 0) {
    return Status::InvalidArgument("BuildFromSamples: zero-dimensional");
  }
  for (const auto& s : samples) {
    if (s.size() != dims) {
      return Status::InvalidArgument("BuildFromSamples: ragged sample matrix");
    }
  }

  // Per-dimension boundaries via V-Optimal on the marginal.
  std::vector<std::vector<double>> boundaries(dims);
  for (size_t d = 0; d < dims; ++d) {
    std::vector<double> column(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) column[i] = samples[i][d];
    const size_t b = fixed_buckets_per_dim > 0
                         ? fixed_buckets_per_dim
                         : AutoSelectBucketCount(column, options);
    const RawDistribution raw =
        RawDistribution::FromSamples(column, options.resolution);
    PCDE_ASSIGN_OR_RETURN(marginal, BuildVOptimalHistogram(raw, b));
    std::vector<double>& bounds = boundaries[d];
    // Keep both edges of every marginal bucket: gaps between support
    // clusters become their own (empty) index ranges, so per-dimension
    // densities are preserved exactly in the joint representation.
    for (const Bucket& bucket : marginal.buckets()) {
      if (bounds.empty() || bucket.range.lo > bounds.back() + 1e-12) {
        bounds.push_back(bucket.range.lo);
      }
      bounds.push_back(bucket.range.hi);
    }
  }

  // Tally hyper-bucket counts.
  std::map<std::vector<uint32_t>, double> counts;
  for (const auto& s : samples) {
    std::vector<uint32_t> idx(dims);
    for (size_t d = 0; d < dims; ++d) {
      const auto& bounds = boundaries[d];
      // Last boundary <= value; clamp into [0, nbuckets-1].
      auto it = std::upper_bound(bounds.begin(), bounds.end(), s[d]);
      size_t i = it == bounds.begin() ? 0 : static_cast<size_t>(it - bounds.begin()) - 1;
      i = std::min(i, bounds.size() - 2);
      idx[d] = static_cast<uint32_t>(i);
    }
    counts[idx] += 1.0;
  }
  std::vector<HyperBucket> buckets;
  buckets.reserve(counts.size());
  const double n = static_cast<double>(samples.size());
  for (auto& [idx, count] : counts) {
    buckets.push_back(HyperBucket{idx, count / n});
  }
  return Make(std::move(boundaries), std::move(buckets));
}

HistogramND HistogramND::FromHistogram1D(const Histogram1D& h) {
  assert(!h.empty());
  std::vector<double> bounds;
  std::vector<HyperBucket> buckets;
  // 1-D histograms may have gaps between buckets; represent each gap as a
  // zero-probability region by inserting both endpoints.
  for (size_t i = 0; i < h.NumBuckets(); ++i) {
    const Bucket& b = h.bucket(i);
    if (bounds.empty() || std::fabs(bounds.back() - b.range.lo) > 1e-12) {
      bounds.push_back(b.range.lo);
    }
    buckets.push_back(
        HyperBucket{{static_cast<uint32_t>(bounds.size() - 1)}, b.prob});
    bounds.push_back(b.range.hi);
  }
  auto result = Make({std::move(bounds)}, std::move(buckets));
  assert(result.ok());
  return std::move(result).value();
}

StatusOr<Histogram1D> HistogramND::Marginal1D(size_t dim) const {
  if (dim >= NumDims()) {
    return Status::InvalidArgument("Marginal1D: bad dimension");
  }
  std::vector<double> mass(NumDimBuckets(dim), 0.0);
  for (const BucketRef hb : buckets()) mass[hb.idx[dim]] += hb.prob;
  const double* bounds = bounds_ + bound_off_[dim];
  std::vector<Bucket> out;
  for (size_t i = 0; i < mass.size(); ++i) {
    if (mass[i] <= 0.0) continue;
    out.emplace_back(bounds[i], bounds[i + 1], mass[i]);
  }
  return Histogram1D::Make(std::move(out));
}

StatusOr<HistogramND> HistogramND::MarginalOverDims(
    const std::vector<size_t>& dims) const {
  if (dims.empty()) {
    return Status::InvalidArgument("MarginalOverDims: empty dim set");
  }
  for (size_t k = 0; k < dims.size(); ++k) {
    if (dims[k] >= NumDims()) {
      return Status::InvalidArgument("MarginalOverDims: bad dimension");
    }
    if (k > 0 && dims[k] <= dims[k - 1]) {
      return Status::InvalidArgument("MarginalOverDims: dims must increase");
    }
  }
  std::vector<std::vector<double>> bounds(dims.size());
  for (size_t k = 0; k < dims.size(); ++k) {
    const Span<double> b = boundaries(dims[k]);
    bounds[k].assign(b.begin(), b.end());
  }
  std::map<std::vector<uint32_t>, double> mass;
  for (const BucketRef hb : buckets()) {
    std::vector<uint32_t> idx(dims.size());
    for (size_t k = 0; k < dims.size(); ++k) idx[k] = hb.idx[dims[k]];
    mass[idx] += hb.prob;
  }
  std::vector<HyperBucket> out;
  out.reserve(mass.size());
  for (auto& [idx, p] : mass) out.push_back(HyperBucket{idx, p});
  return Make(std::move(bounds), std::move(out));
}

StatusOr<Histogram1D> HistogramND::SumDistribution(size_t max_buckets) const {
  if (NumBuckets() == 0) {
    return Status::InvalidArgument("SumDistribution: empty histogram");
  }
  std::vector<WeightedInterval> parts;
  parts.reserve(NumBuckets());
  for (const BucketRef hb : buckets()) {
    Interval sum(0.0, 0.0);
    for (size_t d = 0; d < NumDims(); ++d) sum = sum + Box(hb, d);
    parts.emplace_back(sum, hb.prob);
  }
  PCDE_ASSIGN_OR_RETURN(flat, FlattenToDisjoint(std::move(parts)));
  return Compact(flat, max_buckets);
}

double HistogramND::DiscreteEntropy() const {
  double h = 0.0;
  for (uint32_t b = 0; b < nbuckets_; ++b) {
    const double p = probs_[b];
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

double HistogramND::DifferentialEntropy() const {
  double h = 0.0;
  for (const BucketRef hb : buckets()) {
    if (hb.prob <= 0.0) continue;
    double volume = 1.0;
    for (size_t d = 0; d < NumDims(); ++d) volume *= Box(hb, d).width();
    h -= hb.prob * std::log(hb.prob / std::max(volume, 1e-300));
  }
  return h;
}

double HistogramND::MinSum() const {
  double s = 0.0;
  for (size_t d = 0; d < NumDims(); ++d) s += bounds_[bound_off_[d]];
  return s;
}

double HistogramND::MaxSum() const {
  double s = 0.0;
  for (size_t d = 0; d < NumDims(); ++d) s += bounds_[bound_off_[d + 1] - 1];
  return s;
}

size_t HistogramND::MemoryUsageBytes() const {
  size_t bytes = 0;
  if (ndims_ > 0) {
    bytes += static_cast<size_t>(bound_off_[ndims_] - bound_off_[0]) *
             sizeof(double);
  }
  bytes += static_cast<size_t>(nbuckets_) *
           (NumDims() * sizeof(uint16_t) + sizeof(double));
  return bytes;
}

}  // namespace hist
}  // namespace pcde
