#include "hist/voptimal.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace pcde {
namespace hist {

namespace {

// The DP is O(cells^2 * b); the dense grid is capped and coarsened so
// instantiating thousands of variables stays fast.
constexpr size_t kMaxDenseCells = 512;

/// Dense probability vector over consecutive grid cells spanning the raw
/// distribution's support (including empty cells — V-Optimal must see the
/// gaps, or boundary placement between value clusters is arbitrary).
struct DenseGrid {
  double origin = 0.0;      // left edge of cell 0
  double cell_width = 1.0;  // resolution * stride after coarsening
  std::vector<double> probs;
};

DenseGrid Densify(const RawDistribution& raw) {
  DenseGrid grid;
  const double res = raw.resolution();
  const auto& entries = raw.entries();
  const int64_t first = static_cast<int64_t>(
      std::floor(entries.front().value / res + 0.5));
  const int64_t last = static_cast<int64_t>(
      std::floor(entries.back().value / res + 0.5));
  const size_t cells = static_cast<size_t>(last - first + 1);
  const size_t stride = (cells + kMaxDenseCells - 1) / kMaxDenseCells;
  grid.origin = static_cast<double>(first) * res;
  grid.cell_width = res * static_cast<double>(stride);
  grid.probs.assign((cells + stride - 1) / stride, 0.0);
  for (const RawDistribution::Entry& e : entries) {
    const int64_t cell = static_cast<int64_t>(
        std::floor(e.value / res + 0.5)) - first;
    grid.probs[static_cast<size_t>(cell) / stride] += e.prob;
  }
  return grid;
}

/// DP over the probability vector; returns, for every bucket count
/// k = 1..b_max, the group start indices of the optimal partition.
std::vector<std::vector<size_t>> PartitionAll(const std::vector<double>& probs,
                                              size_t b_max) {
  const size_t n = probs.size();
  std::vector<std::vector<size_t>> result;
  if (n == 0) return result;
  b_max = std::min(b_max, n);

  std::vector<double> s1(n + 1, 0.0), s2(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    s1[i + 1] = s1[i] + probs[i];
    s2[i + 1] = s2[i] + probs[i] * probs[i];
  }
  auto sse = [&](size_t i, size_t j) {  // inclusive [i, j]
    const double sum = s1[j + 1] - s1[i];
    const double sq = s2[j + 1] - s2[i];
    const double cnt = static_cast<double>(j - i + 1);
    return std::max(sq - sum * sum / cnt, 0.0);
  };

  const double inf = std::numeric_limits<double>::infinity();
  // dp[k][j]: best error covering [0..j] with k+1 groups.
  std::vector<std::vector<double>> dp(b_max, std::vector<double>(n, inf));
  std::vector<std::vector<size_t>> split(b_max, std::vector<size_t>(n, 0));
  for (size_t j = 0; j < n; ++j) dp[0][j] = sse(0, j);
  for (size_t k = 1; k < b_max; ++k) {
    for (size_t j = k; j < n; ++j) {
      double best = inf;
      size_t best_i = k;
      for (size_t i = k; i <= j; ++i) {
        const double cand = dp[k - 1][i - 1] + sse(i, j);
        if (cand < best) {
          best = cand;
          best_i = i;
        }
      }
      dp[k][j] = best;
      split[k][j] = best_i;
    }
  }

  result.resize(b_max);
  for (size_t b = 1; b <= b_max; ++b) {
    std::vector<size_t> starts(b);
    size_t j = n - 1;
    for (size_t k = b; k-- > 1;) {
      starts[k] = split[k][j];
      j = split[k][j] - 1;
    }
    starts[0] = 0;
    result[b - 1] = std::move(starts);
  }
  return result;
}

/// Converts one partition of a dense grid into histogram buckets, trimming
/// empty cells at group edges (the trimmed range carries the same mass and
/// a tighter uniform density; gaps between buckets are legal).
StatusOr<Histogram1D> BucketsFromPartition(const DenseGrid& grid,
                                           const std::vector<size_t>& starts) {
  std::vector<Bucket> buckets;
  for (size_t k = 0; k < starts.size(); ++k) {
    const size_t first = starts[k];
    const size_t last = (k + 1 < starts.size()) ? starts[k + 1] - 1
                                                : grid.probs.size() - 1;
    size_t lo = first, hi = last;
    while (lo <= hi && grid.probs[lo] <= 0.0) ++lo;
    while (hi > lo && grid.probs[hi] <= 0.0) --hi;
    if (lo > hi || grid.probs[lo] <= 0.0) continue;  // all-empty group
    double mass = 0.0;
    for (size_t i = lo; i <= hi; ++i) mass += grid.probs[i];
    buckets.emplace_back(grid.origin + static_cast<double>(lo) * grid.cell_width,
                         grid.origin + static_cast<double>(hi + 1) * grid.cell_width,
                         mass);
  }
  return Histogram1D::Make(std::move(buckets));
}

}  // namespace

namespace {

/// Window-3 moving average used for *boundary selection only*: sampling
/// noise on flat frequency plateaus otherwise makes the V-Optimal split
/// placement arbitrary (ties), letting boundaries land inside value
/// clusters instead of at the gaps between them. Masses always come from
/// the raw vector.
std::vector<double> SmoothForPartition(const std::vector<double>& probs) {
  if (probs.size() < 3) return probs;
  std::vector<double> out(probs.size());
  out.front() = (2.0 * probs[0] + probs[1]) / 3.0;
  out.back() = (2.0 * probs.back() + probs[probs.size() - 2]) / 3.0;
  for (size_t i = 1; i + 1 < probs.size(); ++i) {
    out[i] = (probs[i - 1] + probs[i] + probs[i + 1]) / 3.0;
  }
  return out;
}

}  // namespace

std::vector<size_t> VOptimalPartition(const std::vector<double>& probs,
                                      size_t b) {
  if (probs.empty()) return {};
  auto all = PartitionAll(probs, b);
  return all.empty() ? std::vector<size_t>{} : all.back();
}

StatusOr<Histogram1D> BuildVOptimalHistogram(const RawDistribution& raw,
                                             size_t b) {
  if (raw.empty()) {
    return Status::InvalidArgument("BuildVOptimalHistogram: empty input");
  }
  const DenseGrid grid = Densify(raw);
  auto all = PartitionAll(SmoothForPartition(grid.probs), b);
  if (all.empty()) {
    return Status::InvalidArgument("BuildVOptimalHistogram: no cells");
  }
  return BucketsFromPartition(grid, all.back());
}

namespace {

/// E_b for every b = 1..b_max in one pass (the DP computes all bucket
/// counts at once, so evaluating the full series costs one DP per fold).
std::vector<double> CrossValidationSeries(const std::vector<double>& samples,
                                          size_t b_max,
                                          const AutoBucketOptions& options) {
  std::vector<double> errors(b_max, 0.0);
  const size_t f = std::max<size_t>(options.folds, 2);
  if (samples.size() < f || b_max == 0) return errors;

  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(options.seed);
  rng.Shuffle(&order);

  size_t evaluated = 0;
  for (size_t fold = 0; fold < f; ++fold) {
    std::vector<double> train, held;
    train.reserve(samples.size());
    for (size_t i = 0; i < order.size(); ++i) {
      if (i % f == fold) {
        held.push_back(samples[order[i]]);
      } else {
        train.push_back(samples[order[i]]);
      }
    }
    if (train.empty() || held.empty()) continue;
    const RawDistribution train_raw =
        RawDistribution::FromSamples(train, options.resolution);
    const double cv_resolution =
        options.resolution * std::max(options.cv_resolution_factor, 1.0);
    const RawDistribution held_raw =
        RawDistribution::FromSamples(held, cv_resolution);
    const DenseGrid grid = Densify(train_raw);
    const auto partitions = PartitionAll(SmoothForPartition(grid.probs), b_max);
    if (partitions.empty()) continue;
    ++evaluated;
    for (size_t b = 1; b <= b_max; ++b) {
      const auto& starts = partitions[std::min(b, partitions.size()) - 1];
      auto hist = BucketsFromPartition(grid, starts);
      if (hist.ok()) errors[b - 1] += held_raw.SquaredError(hist.value());
    }
  }
  if (evaluated > 0) {
    for (double& e : errors) e /= static_cast<double>(evaluated);
  }
  return errors;
}

}  // namespace

double CrossValidationError(const std::vector<double>& samples, size_t b,
                            const AutoBucketOptions& options) {
  const std::vector<double> series = CrossValidationSeries(samples, b, options);
  return series.empty() ? 0.0 : series.back();
}

size_t AutoSelectBucketCount(const std::vector<double>& samples,
                             const AutoBucketOptions& options,
                             std::vector<double>* error_series) {
  if (error_series != nullptr) error_series->clear();
  if (samples.size() < std::max<size_t>(options.folds, 2)) return 1;

  const size_t distinct =
      RawDistribution::FromSamples(samples, options.resolution).NumDistinct();
  const size_t b_max =
      std::min(options.max_buckets, std::max<size_t>(distinct, 1));
  const std::vector<double> series =
      CrossValidationSeries(samples, b_max, options);
  if (error_series != nullptr) *error_series = series;

  // Walk the series: stop when the drop from b-1 to b stops being
  // significant, choose b-1 (Sec. 3.1).
  for (size_t b = 2; b <= series.size(); ++b) {
    const double prev = series[b - 2];
    const double drop = prev - series[b - 1];
    if (prev <= 0.0 || drop < options.rel_improvement * prev) {
      return b - 1;
    }
  }
  return series.empty() ? 1 : series.size();
}

StatusOr<Histogram1D> BuildAutoHistogram(const std::vector<double>& samples,
                                         const AutoBucketOptions& options) {
  if (samples.empty()) {
    return Status::InvalidArgument("BuildAutoHistogram: no samples");
  }
  const size_t b = AutoSelectBucketCount(samples, options);
  const RawDistribution raw =
      RawDistribution::FromSamples(samples, options.resolution);
  return BuildVOptimalHistogram(raw, b);
}

StatusOr<Histogram1D> BuildStaticHistogram(const std::vector<double>& samples,
                                           size_t b, double resolution) {
  if (samples.empty()) {
    return Status::InvalidArgument("BuildStaticHistogram: no samples");
  }
  const RawDistribution raw = RawDistribution::FromSamples(samples, resolution);
  return BuildVOptimalHistogram(raw, b);
}

}  // namespace hist
}  // namespace pcde
