// Parametric distribution fits for the Fig. 1(b) / Fig. 11(a) comparisons:
// the paper fits Gaussian, Gamma, and Exponential distributions by maximum
// likelihood and shows that real travel-cost distributions follow none of
// them.
#pragma once

#include <string>
#include <vector>

#include "hist/raw_distribution.h"

namespace pcde {
namespace hist {

enum class FitKind { kGaussian, kGamma, kExponential };

/// \brief A fitted parametric distribution with the CDF evaluations needed
/// to compare against empirical data on a grid.
class ParametricFit {
 public:
  /// Maximum-likelihood fit of the given family to the samples.
  static ParametricFit Fit(FitKind kind, const std::vector<double>& samples);

  FitKind kind() const { return kind_; }
  /// P(X <= x).
  double Cdf(double x) const;
  /// P(lo <= X < hi).
  double Mass(double lo, double hi) const;

  std::string ToString() const;

  double param1() const { return p1_; }  // mean / shape / rate
  double param2() const { return p2_; }  // stddev / scale / unused

 private:
  ParametricFit(FitKind kind, double p1, double p2)
      : kind_(kind), p1_(p1), p2_(p2) {}
  FitKind kind_;
  double p1_;
  double p2_;
};

/// KL(raw || fit) in nats over the raw grid: sum_c D[c] log(D[c] / F[c])
/// with F[c] the fitted mass of cell c (floored at epsilon to stay finite).
double KlRawVsFit(const RawDistribution& raw, const ParametricFit& fit,
                  double epsilon = 1e-9);

/// KL(raw || histogram) on the same grid, for an apples-to-apples
/// comparison with the parametric fits (Fig. 11a/b).
double KlRawVsHistogram(const RawDistribution& raw, const Histogram1D& h,
                        double epsilon = 1e-9);

/// Regularized lower incomplete gamma P(a, x); exposed for testing.
double RegularizedGammaP(double a, double x);

}  // namespace hist
}  // namespace pcde
