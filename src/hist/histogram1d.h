// One-dimensional histograms (Sec. 3.1): compact approximations of
// arbitrary univariate travel-cost distributions. A histogram is a set of
// disjoint, sorted (bucket, probability) pairs with probabilities summing
// to 1; probability is uniform within a bucket.
//
// This header also implements the bucket machinery the paper's Sec. 4.2
// builds on: flattening overlapping weighted intervals into a disjoint
// histogram (the "rearrangement" of Fig. 7), convolution of independent
// histograms (the legacy baseline), compaction, KL divergence, and entropy.
#pragma once

#include <string>
#include <vector>

#include "common/interval.h"
#include "common/rng.h"
#include "common/status.h"

namespace pcde {
namespace hist {

/// \brief A (bucket, probability) pair; the bucket is half-open [lo, hi).
struct Bucket {
  Interval range;
  double prob = 0.0;

  Bucket() = default;
  Bucket(double lo, double hi, double p) : range(lo, hi), prob(p) {}
  Bucket(Interval iv, double p) : range(iv), prob(p) {}
};

/// \brief Weighted interval used as input to FlattenToDisjoint; unlike
/// Bucket lists in a Histogram1D, these may overlap.
using WeightedInterval = Bucket;

/// \brief Immutable 1-D histogram: disjoint sorted buckets, total mass 1.
class Histogram1D {
 public:
  Histogram1D() = default;

  /// Validates: buckets sorted, pairwise disjoint, positive widths,
  /// non-negative probabilities summing to 1 within tolerance (mass is then
  /// renormalized exactly).
  static StatusOr<Histogram1D> Make(std::vector<Bucket> buckets);

  /// Degenerate single-bucket histogram covering [lo, hi).
  static Histogram1D Single(double lo, double hi);

  bool empty() const { return buckets_.empty(); }
  size_t NumBuckets() const { return buckets_.size(); }
  const std::vector<Bucket>& buckets() const { return buckets_; }
  const Bucket& bucket(size_t i) const { return buckets_[i]; }

  /// Exact per-bucket equality (lo, hi, prob compared with ==) — the
  /// model artifact round-trip guarantee: an estimate served from a
  /// saved-then-reloaded weight function must be BitIdentical to the
  /// just-built model's estimate (examples and tests/model_artifact_test
  /// gate on this).
  bool BitIdentical(const Histogram1D& other) const {
    if (buckets_.size() != other.buckets_.size()) return false;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].range.lo != other.buckets_[i].range.lo ||
          buckets_[i].range.hi != other.buckets_[i].range.hi ||
          buckets_[i].prob != other.buckets_[i].prob) {
        return false;
      }
    }
    return true;
  }

  /// Support bounds: V.min and V.max in the paper's shift-and-enlarge
  /// procedure (Eq. 3).
  double Min() const { return buckets_.front().range.lo; }
  double Max() const { return buckets_.back().range.hi; }

  double Mean() const;
  double Variance() const;

  /// P(X < x) under the piecewise-uniform density.
  double Cdf(double x) const;

  /// P(X <= budget): the quantity stochastic routing maximizes ("probability
  /// of arriving within 60 min", Fig. 1a).
  double ProbWithin(double budget) const { return Cdf(budget); }

  /// Smallest x with Cdf(x) >= q.
  double Quantile(double q) const;

  /// Probability mass falling inside `iv`.
  double Mass(const Interval& iv) const;

  /// Entropy treating buckets as discrete outcomes: -sum p log p (nats).
  double DiscreteEntropy() const;

  /// Differential entropy of the piecewise-uniform density:
  /// -sum p_i ln(p_i / w_i). Invariant to splitting a bucket in two, which
  /// makes it the right quantity for the paper's entropy comparisons
  /// (Fig. 8b, Fig. 15).
  double DifferentialEntropy() const;

  /// Draws one sample (bucket by mass, then uniform within bucket).
  double Sample(Rng* rng) const;

  /// Bytes used by the bucket representation; Fig. 11(c) / Fig. 12.
  size_t MemoryUsageBytes() const;

  std::string ToString(int precision = 4) const;

 private:
  explicit Histogram1D(std::vector<Bucket> buckets)
      : buckets_(std::move(buckets)) {}
  std::vector<Bucket> buckets_;
};

/// \brief The Sec. 4.2 rearrangement: turns overlapping weighted intervals
/// into a disjoint histogram under the uniform-within-bucket assumption.
///
/// Reproduces the paper's Fig. 7 example exactly: adjacent output slices
/// with equal density are merged back into one bucket, zero-mass gaps are
/// dropped. Total mass is preserved (then normalized to counter float
/// drift).
StatusOr<Histogram1D> FlattenToDisjoint(std::vector<WeightedInterval> parts);

/// \brief Convolution of independent histograms (the legacy paradigm's
/// cost-aggregation step, Sec. 2.3): Minkowski-sums every bucket pair, then
/// flattens and compacts to at most `max_buckets`.
StatusOr<Histogram1D> Convolve(const Histogram1D& a, const Histogram1D& b,
                               size_t max_buckets = 64);

/// \brief Cost of merging two adjacent buckets into one uniform bucket:
/// the integrated squared density error (covering any gap between them,
/// where the old density is 0). Shared by Compact and the chain sweeper's
/// scratch-based progressive compaction, which must replicate Compact's
/// merge decisions exactly.
inline double MergeCost(const Interval& a_range, double a_prob,
                        const Interval& b_range, double b_prob) {
  const double w_merged = b_range.hi - a_range.lo;
  const double d = (a_prob + b_prob) / w_merged;
  const double da = a_prob / a_range.width();
  const double db = b_prob / b_range.width();
  const double gap = b_range.lo - a_range.hi;
  return (da - d) * (da - d) * a_range.width() +
         (db - d) * (db - d) * b_range.width() +
         d * d * std::max(gap, 0.0);
}

/// \brief Reduces a histogram to at most `max_buckets` buckets by greedily
/// merging the adjacent pair whose merge increases the L2 density error
/// the least (MergeCost).
Histogram1D Compact(const Histogram1D& h, size_t max_buckets);

/// \brief KL(p || q) in nats between two histograms, computed on the union
/// refinement of their breakpoints. `q` is smoothed with mass `epsilon`
/// spread over the union support so the divergence stays finite where q has
/// holes (standard practice; the paper reports finite KL values
/// throughout).
double KlDivergence(const Histogram1D& p, const Histogram1D& q,
                    double epsilon = 1e-6);

/// L1 (total variation x2) distance on the union refinement.
double L1Distance(const Histogram1D& p, const Histogram1D& q);

}  // namespace hist
}  // namespace pcde
