// The "raw cost distribution" of Sec. 3.1: a multiset of travel-cost values
// from qualified trajectories, reduced to <cost, perc> pairs on a fixed
// resolution grid (travel times are measured in seconds; GPS sampling makes
// sub-second resolution meaningless).
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "hist/histogram1d.h"

namespace pcde {
namespace hist {

/// \brief Empirical distribution over a discrete value grid.
class RawDistribution {
 public:
  RawDistribution() = default;

  /// Snaps each sample to `resolution * floor(v / resolution)` and tallies.
  static RawDistribution FromSamples(const std::vector<double>& samples,
                                     double resolution = 1.0);

  struct Entry {
    double value = 0.0;  // grid-aligned cost
    double prob = 0.0;   // perc: fraction of trajectories with this cost
  };

  bool empty() const { return entries_.empty(); }
  size_t NumDistinct() const { return entries_.size(); }
  size_t SampleCount() const { return sample_count_; }
  double resolution() const { return resolution_; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Probability of the grid cell containing `value` (0 if absent).
  double ProbAt(double value) const;

  double Min() const { return entries_.front().value; }
  /// Exclusive upper bound of the support (last grid cell's right edge).
  double Max() const { return entries_.back().value + resolution_; }

  double Mean() const;

  /// The paper's S_R: storage of the raw form, one (cost, frequency) pair
  /// per distinct value (Fig. 11c space-saving ratio).
  size_t MemoryUsageBytes() const { return entries_.size() * 2 * sizeof(double); }

  /// Exact histogram with one bucket per grid cell; useful as "ground truth
  /// distribution" D_GT for KL comparisons.
  StatusOr<Histogram1D> ToExactHistogram() const;

  /// Squared error between a histogram approximation and this raw
  /// distribution, evaluated per grid cell over the union of supports:
  /// SE = sum_c (H[c] - D[c])^2 where H[c] is the histogram mass of cell c.
  /// This is the error the paper's f-fold cross-validation minimizes.
  double SquaredError(const Histogram1D& h) const;

 private:
  std::vector<Entry> entries_;
  size_t sample_count_ = 0;
  double resolution_ = 1.0;
};

}  // namespace hist
}  // namespace pcde
