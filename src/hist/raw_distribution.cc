#include "hist/raw_distribution.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace pcde {
namespace hist {

RawDistribution RawDistribution::FromSamples(const std::vector<double>& samples,
                                             double resolution) {
  RawDistribution raw;
  raw.resolution_ = resolution;
  if (samples.empty()) return raw;
  std::map<int64_t, size_t> counts;
  for (double s : samples) {
    counts[static_cast<int64_t>(std::floor(s / resolution))] += 1;
  }
  raw.sample_count_ = samples.size();
  raw.entries_.reserve(counts.size());
  const double n = static_cast<double>(samples.size());
  for (const auto& [cell, count] : counts) {
    raw.entries_.push_back(
        Entry{static_cast<double>(cell) * resolution,
              static_cast<double>(count) / n});
  }
  return raw;
}

double RawDistribution::ProbAt(double value) const {
  const double cell = std::floor(value / resolution_) * resolution_;
  auto it = std::lower_bound(entries_.begin(), entries_.end(), cell,
                             [](const Entry& e, double v) { return e.value < v; });
  if (it != entries_.end() && std::fabs(it->value - cell) < resolution_ * 0.5) {
    return it->prob;
  }
  return 0.0;
}

double RawDistribution::Mean() const {
  double m = 0.0;
  for (const Entry& e : entries_) m += e.prob * (e.value + 0.5 * resolution_);
  return m;
}

StatusOr<Histogram1D> RawDistribution::ToExactHistogram() const {
  if (entries_.empty()) {
    return Status::InvalidArgument("empty raw distribution");
  }
  std::vector<Bucket> buckets;
  buckets.reserve(entries_.size());
  for (const Entry& e : entries_) {
    buckets.emplace_back(e.value, e.value + resolution_, e.prob);
  }
  return Histogram1D::Make(std::move(buckets));
}

double RawDistribution::SquaredError(const Histogram1D& h) const {
  if (entries_.empty() || h.empty()) return 0.0;
  // Union of grid cells: this support plus the histogram's span.
  const double lo = std::min(Min(), h.Min());
  const double hi = std::max(Max(), h.Max());
  double se = 0.0;
  const int64_t first = static_cast<int64_t>(std::floor(lo / resolution_));
  const int64_t last = static_cast<int64_t>(std::ceil(hi / resolution_));
  for (int64_t cell = first; cell < last; ++cell) {
    const double c = static_cast<double>(cell) * resolution_;
    const double hc = h.Mass(Interval(c, c + resolution_));
    const double dc = ProbAt(c);
    if (hc == 0.0 && dc == 0.0) continue;
    se += (hc - dc) * (hc - dc);
  }
  return se;
}

}  // namespace hist
}  // namespace pcde
