// V-Optimal histogram construction (Jagadish et al., VLDB 1998 [12]) and
// the paper's "Auto" bucket-count selection via f-fold cross-validation
// with an elbow stopping rule (Sec. 3.1, Fig. 5).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "hist/histogram1d.h"
#include "hist/raw_distribution.h"

namespace pcde {
namespace hist {

/// \brief Optimal partition of a probability vector into `b` contiguous
/// groups minimizing the within-group sum of squared deviations from the
/// group mean (the V-Optimal objective). Returns the start index of each
/// group (size b', b' <= b when fewer values than buckets).
std::vector<size_t> VOptimalPartition(const std::vector<double>& probs,
                                      size_t b);

/// \brief V-Optimal histogram with (at most) `b` buckets over a raw
/// distribution. Bucket i spans [first_value, last_value + resolution).
StatusOr<Histogram1D> BuildVOptimalHistogram(const RawDistribution& raw,
                                             size_t b);

/// \brief Options for the Auto bucket-count procedure.
struct AutoBucketOptions {
  size_t folds = 5;              // f in the paper's f-fold cross validation
  size_t max_buckets = 16;       // upper bound on the search
  double rel_improvement = 0.06; // stop when (E_{b-1}-E_b)/E_{b-1} < this
  double resolution = 1.0;       // grid resolution (seconds)
  /// The held-out squared error is evaluated on a grid coarsened by this
  /// factor: at beta-sized samples (~30), per-second cells are dominated
  /// by sampling noise and the cross-validation would stop at one bucket
  /// even for clearly multi-modal data.
  double cv_resolution_factor = 4.0;
  uint64_t seed = 1234;          // fold assignment shuffle
};

/// \brief E_b: cross-validation squared error of using b buckets, averaged
/// over f folds (Sec. 3.1). Requires >= folds samples.
double CrossValidationError(const std::vector<double>& samples, size_t b,
                            const AutoBucketOptions& options);

/// \brief The Auto procedure: increases b from 1 and stops at the elbow,
/// returning b-1 (>= 1). Also exposes the E_b series for Fig. 5(a).
size_t AutoSelectBucketCount(const std::vector<double>& samples,
                             const AutoBucketOptions& options,
                             std::vector<double>* error_series = nullptr);

/// \brief Convenience: Auto bucket count, then V-Optimal on the full data.
StatusOr<Histogram1D> BuildAutoHistogram(const std::vector<double>& samples,
                                         const AutoBucketOptions& options);

/// \brief Fixed-bucket variant ("Sta-b" in Fig. 11): V-Optimal with exactly
/// b buckets on the full data.
StatusOr<Histogram1D> BuildStaticHistogram(const std::vector<double>& samples,
                                           size_t b, double resolution = 1.0);

}  // namespace hist
}  // namespace pcde
