#include "hist/fit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "common/mathutil.h"

namespace pcde {
namespace hist {

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (a <= 0.0) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

ParametricFit ParametricFit::Fit(FitKind kind,
                                 const std::vector<double>& samples) {
  switch (kind) {
    case FitKind::kGaussian: {
      const GaussianFit f = FitGaussianMle(samples);
      return ParametricFit(kind, f.mean, f.stddev);
    }
    case FitKind::kGamma: {
      const GammaFit f = FitGammaMle(samples);
      return ParametricFit(kind, f.shape, f.scale);
    }
    case FitKind::kExponential: {
      const ExponentialFit f = FitExponentialMle(samples);
      return ParametricFit(kind, f.rate, 0.0);
    }
  }
  return ParametricFit(FitKind::kGaussian, 0.0, 1.0);
}

double ParametricFit::Cdf(double x) const {
  switch (kind_) {
    case FitKind::kGaussian:
      return 0.5 * (1.0 + std::erf((x - p1_) / (p2_ * M_SQRT2)));
    case FitKind::kGamma:
      return RegularizedGammaP(p1_, std::max(x, 0.0) / p2_);
    case FitKind::kExponential:
      return x <= 0.0 ? 0.0 : 1.0 - std::exp(-p1_ * x);
  }
  return 0.0;
}

double ParametricFit::Mass(double lo, double hi) const {
  return std::max(Cdf(hi) - Cdf(lo), 0.0);
}

std::string ParametricFit::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case FitKind::kGaussian:
      os << "Gaussian(mean=" << p1_ << ", stddev=" << p2_ << ")";
      break;
    case FitKind::kGamma:
      os << "Gamma(shape=" << p1_ << ", scale=" << p2_ << ")";
      break;
    case FitKind::kExponential:
      os << "Exponential(rate=" << p1_ << ")";
      break;
  }
  return os.str();
}

double KlRawVsFit(const RawDistribution& raw, const ParametricFit& fit,
                  double epsilon) {
  double kl = 0.0;
  const double res = raw.resolution();
  for (const RawDistribution::Entry& e : raw.entries()) {
    if (e.prob <= 0.0) continue;
    const double f = std::max(fit.Mass(e.value, e.value + res), epsilon);
    kl += e.prob * (SafeLog(e.prob) - SafeLog(f));
  }
  return std::max(kl, 0.0);
}

double KlRawVsHistogram(const RawDistribution& raw, const Histogram1D& h,
                        double epsilon) {
  double kl = 0.0;
  const double res = raw.resolution();
  for (const RawDistribution::Entry& e : raw.entries()) {
    if (e.prob <= 0.0) continue;
    const double f = std::max(h.Mass(Interval(e.value, e.value + res)), epsilon);
    kl += e.prob * (SafeLog(e.prob) - SafeLog(f));
  }
  return std::max(kl, 0.0);
}

}  // namespace hist
}  // namespace pcde
