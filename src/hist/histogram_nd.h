// Multi-dimensional histograms (Sec. 3.2): compact representations of the
// joint travel-cost distribution of a path's edges. One dimension per edge;
// per-dimension bucket boundaries are chosen by V-Optimal with the Auto
// bucket-count procedure; hyper-bucket probabilities are empirical
// fractions. Storage is sparse: zero hyper-buckets are not materialized.
//
// The payload is flat structure-of-arrays — one boundary pool with
// per-dimension offsets, one probability lane, one bucket-major index lane —
// so a histogram is four contiguous ranges rather than a vector of
// per-bucket heap nodes. A histogram either owns its payload (construction
// from samples or explicit buckets) or is a zero-copy view into an external
// arena (the frozen weight-function model loaded from a binary artifact);
// both modes share the same accessors, and copying either is O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/interval.h"
#include "common/span.h"
#include "common/status.h"
#include "hist/histogram1d.h"
#include "hist/voptimal.h"

namespace pcde {
namespace hist {

/// \brief Sparse N-dimensional histogram over hyper-buckets.
class HistogramND {
 public:
  /// \brief Construction input for one hyper-bucket: a per-dimension bucket
  /// index plus the joint probability that all dimensions fall in their
  /// respective buckets. Only used to *build* histograms; reads go through
  /// the flat BucketRef view below.
  struct HyperBucket {
    std::vector<uint32_t> idx;
    double prob = 0.0;
  };

  /// \brief Read view of one hyper-bucket in the flat payload: `idx` points
  /// at NumDims() contiguous per-dimension bucket indices.
  struct BucketRef {
    const uint32_t* idx = nullptr;
    double prob = 0.0;
  };

  /// \brief Random-access range of BucketRef over the flat payload.
  class BucketList {
   public:
    class iterator {
     public:
      iterator(const BucketList* list, size_t i) : list_(list), i_(i) {}
      BucketRef operator*() const { return (*list_)[i_]; }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      bool operator!=(const iterator& o) const { return i_ != o.i_; }
      bool operator==(const iterator& o) const { return i_ == o.i_; }

     private:
      const BucketList* list_;
      size_t i_;
    };

    BucketList() = default;
    BucketList(const double* probs, const uint32_t* idx, uint32_t ndims,
               uint32_t n)
        : probs_(probs), idx_(idx), ndims_(ndims), n_(n) {}

    size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    BucketRef operator[](size_t i) const {
      return BucketRef{idx_ + i * ndims_, probs_[i]};
    }
    BucketRef front() const { return (*this)[0]; }
    iterator begin() const { return iterator(this, 0); }
    iterator end() const { return iterator(this, n_); }

   private:
    const double* probs_ = nullptr;
    const uint32_t* idx_ = nullptr;
    uint32_t ndims_ = 0;
    uint32_t n_ = 0;
  };

  HistogramND() = default;

  /// Validated construction from per-dimension boundaries (each sorted,
  /// size >= 2) and sparse hyper-buckets (probabilities sum to 1 within
  /// tolerance). Bucket order is preserved. `renormalize` divides the
  /// probabilities by their sum (the build-from-data path); pass false when
  /// the values are already authoritative (artifact loading), where the
  /// division would perturb the low bits and break byte-identical round
  /// trips.
  static StatusOr<HistogramND> Make(
      std::vector<std::vector<double>> dim_boundaries,
      std::vector<HyperBucket> buckets, bool renormalize = true);

  /// \brief Builds the joint histogram from per-sample cost vectors
  /// (samples[i] has one cost per dimension). Boundaries per dimension come
  /// from V-Optimal on the marginal with the Auto bucket count (Sec. 3.2);
  /// pass `fixed_buckets_per_dim` > 0 to bypass Auto (the Sta-b baseline).
  static StatusOr<HistogramND> BuildFromSamples(
      const std::vector<std::vector<double>>& samples,
      const AutoBucketOptions& options, size_t fixed_buckets_per_dim = 0);

  /// Lifts a 1-D histogram into a 1-dimensional HistogramND (unit paths).
  static HistogramND FromHistogram1D(const Histogram1D& h);

  /// \brief Zero-copy view over an externally owned flat payload (the
  /// binary model arena). No validation — the caller (the artifact loader)
  /// has already validated offsets and indices. `keepalive` pins the arena;
  /// `bound_off` holds ndims + 1 offsets into `bounds`; `idx` is
  /// bucket-major with ndims entries per bucket.
  static HistogramND FromFlatUnchecked(std::shared_ptr<const void> keepalive,
                                       const double* bounds,
                                       const uint64_t* bound_off,
                                       uint32_t ndims, const double* probs,
                                       const uint32_t* idx, uint32_t nbuckets);

  size_t NumDims() const { return ndims_; }
  size_t NumBuckets() const { return nbuckets_; }
  BucketList buckets() const {
    return BucketList(probs_, idx_, ndims_, nbuckets_);
  }
  Span<double> boundaries(size_t dim) const {
    return Span<double>(bounds_ + bound_off_[dim],
                        static_cast<size_t>(bound_off_[dim + 1] -
                                            bound_off_[dim]));
  }
  size_t NumDimBuckets(size_t dim) const {
    return static_cast<size_t>(bound_off_[dim + 1] - bound_off_[dim]) - 1;
  }

  /// The bucket interval of `hb` along `dim`.
  Interval Box(const BucketRef& hb, size_t dim) const {
    const double* b = bounds_ + bound_off_[dim];
    const uint32_t i = hb.idx[dim];
    return Interval(b[i], b[i + 1]);
  }

  /// Support range along a dimension.
  Interval DimRange(size_t dim) const {
    const Span<double> b = boundaries(dim);
    return Interval(b.front(), b.back());
  }

  /// Marginal distribution of one dimension.
  StatusOr<Histogram1D> Marginal1D(size_t dim) const;

  /// Marginal over a subset of dimensions (indices into this histogram's
  /// dims, strictly increasing). The result's dimension k corresponds to
  /// dims[k].
  StatusOr<HistogramND> MarginalOverDims(const std::vector<size_t>& dims) const;

  /// \brief The Sec. 4.2 reduction: each hyper-bucket becomes the 1-D bucket
  /// [sum of lower bounds, sum of upper bounds), then overlapping buckets
  /// are rearranged into a disjoint histogram and compacted.
  StatusOr<Histogram1D> SumDistribution(size_t max_buckets = 64) const;

  /// Entropy treating hyper-buckets as discrete outcomes (nats).
  double DiscreteEntropy() const;

  /// Differential entropy of the piecewise-uniform joint density:
  /// -sum p ln(p / volume).
  double DifferentialEntropy() const;

  /// Minimum / maximum possible sum of the dimensions.
  double MinSum() const;
  double MaxSum() const;

  /// The paper's Fig. 12 storage accounting *model*: boundary values (8 B)
  /// + per hyper-bucket one 2-byte index per dimension and an 8-byte
  /// probability. Deliberately not the physical footprint — the flat lanes
  /// store 4-byte indices; use PathWeightFunction::ResidentBytes for real
  /// serving memory.
  size_t MemoryUsageBytes() const;

 private:
  /// Owned flat payload (construction path); view histograms keep the
  /// external arena alive through `owner_` instead.
  struct OwnedPayload {
    std::vector<double> bounds;
    std::vector<uint64_t> bound_off;  // ndims + 1
    std::vector<double> probs;
    std::vector<uint32_t> idx;  // nbuckets * ndims, bucket-major
  };

  /// Builds an owning histogram from validated AoS inputs.
  static HistogramND FromValidated(
      const std::vector<std::vector<double>>& dim_boundaries,
      const std::vector<HyperBucket>& buckets);

  const double* bounds_ = nullptr;     // boundary pool
  const uint64_t* bound_off_ = nullptr;  // ndims_ + 1 offsets into bounds_
  const double* probs_ = nullptr;      // nbuckets_
  const uint32_t* idx_ = nullptr;      // nbuckets_ * ndims_
  uint32_t ndims_ = 0;
  uint32_t nbuckets_ = 0;
  std::shared_ptr<const void> owner_;  // OwnedPayload or external arena
};

}  // namespace hist
}  // namespace pcde
