// Multi-dimensional histograms (Sec. 3.2): compact representations of the
// joint travel-cost distribution of a path's edges. One dimension per edge;
// per-dimension bucket boundaries are chosen by V-Optimal with the Auto
// bucket-count procedure; hyper-bucket probabilities are empirical
// fractions. Storage is sparse: zero hyper-buckets are not materialized.
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "hist/histogram1d.h"
#include "hist/voptimal.h"

namespace pcde {
namespace hist {

/// \brief Sparse N-dimensional histogram over hyper-buckets.
class HistogramND {
 public:
  /// \brief One hyper-bucket: a per-dimension bucket index plus the joint
  /// probability that all dimensions fall in their respective buckets.
  struct HyperBucket {
    std::vector<uint32_t> idx;
    double prob = 0.0;
  };

  HistogramND() = default;

  /// Validated construction from per-dimension boundaries (each sorted,
  /// size >= 2) and sparse hyper-buckets (probabilities sum to 1).
  static StatusOr<HistogramND> Make(
      std::vector<std::vector<double>> dim_boundaries,
      std::vector<HyperBucket> buckets);

  /// \brief Builds the joint histogram from per-sample cost vectors
  /// (samples[i] has one cost per dimension). Boundaries per dimension come
  /// from V-Optimal on the marginal with the Auto bucket count (Sec. 3.2);
  /// pass `fixed_buckets_per_dim` > 0 to bypass Auto (the Sta-b baseline).
  static StatusOr<HistogramND> BuildFromSamples(
      const std::vector<std::vector<double>>& samples,
      const AutoBucketOptions& options, size_t fixed_buckets_per_dim = 0);

  /// Lifts a 1-D histogram into a 1-dimensional HistogramND (unit paths).
  static HistogramND FromHistogram1D(const Histogram1D& h);

  size_t NumDims() const { return dim_boundaries_.size(); }
  size_t NumBuckets() const { return buckets_.size(); }
  const std::vector<HyperBucket>& buckets() const { return buckets_; }
  const std::vector<double>& boundaries(size_t dim) const {
    return dim_boundaries_[dim];
  }
  size_t NumDimBuckets(size_t dim) const {
    return dim_boundaries_[dim].size() - 1;
  }

  /// The bucket interval of `hb` along `dim`.
  Interval Box(const HyperBucket& hb, size_t dim) const {
    const uint32_t i = hb.idx[dim];
    return Interval(dim_boundaries_[dim][i], dim_boundaries_[dim][i + 1]);
  }

  /// Support range along a dimension.
  Interval DimRange(size_t dim) const {
    return Interval(dim_boundaries_[dim].front(), dim_boundaries_[dim].back());
  }

  /// Marginal distribution of one dimension.
  StatusOr<Histogram1D> Marginal1D(size_t dim) const;

  /// Marginal over a subset of dimensions (indices into this histogram's
  /// dims, strictly increasing). The result's dimension k corresponds to
  /// dims[k].
  StatusOr<HistogramND> MarginalOverDims(const std::vector<size_t>& dims) const;

  /// \brief The Sec. 4.2 reduction: each hyper-bucket becomes the 1-D bucket
  /// [sum of lower bounds, sum of upper bounds), then overlapping buckets
  /// are rearranged into a disjoint histogram and compacted.
  StatusOr<Histogram1D> SumDistribution(size_t max_buckets = 64) const;

  /// Entropy treating hyper-buckets as discrete outcomes (nats).
  double DiscreteEntropy() const;

  /// Differential entropy of the piecewise-uniform joint density:
  /// -sum p ln(p / volume).
  double DifferentialEntropy() const;

  /// Minimum / maximum possible sum of the dimensions.
  double MinSum() const;
  double MaxSum() const;

  /// Storage accounting: boundary values (8 B) + per hyper-bucket one
  /// 2-byte index per dimension and an 8-byte probability.
  size_t MemoryUsageBytes() const;

 private:
  HistogramND(std::vector<std::vector<double>> dim_boundaries,
              std::vector<HyperBucket> buckets)
      : dim_boundaries_(std::move(dim_boundaries)),
        buckets_(std::move(buckets)) {}

  std::vector<std::vector<double>> dim_boundaries_;
  std::vector<HyperBucket> buckets_;
};

}  // namespace hist
}  // namespace pcde
