#include "traj/generator.h"

#include <algorithm>
#include <cmath>

namespace pcde {
namespace traj {

using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::kInvalidEdge;
using roadnet::Path;
using roadnet::VertexId;

TrajectoryGenerator::TrajectoryGenerator(const TrafficModel& model,
                                         const GeneratorConfig& config)
    : model_(model), config_(config) {
  // Hubs: deterministic sample of well-spread vertices.
  Rng rng(config_.seed ^ 0xabcdef);
  const Graph& g = model_.graph();
  const size_t n = g.NumVertices();
  for (size_t i = 0; i < config_.num_hubs && i < n; ++i) {
    hubs_.push_back(static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
  }
}

double TrajectoryGenerator::SampleDeparture(Rng* rng) const {
  const double u = rng->Uniform();
  double t;
  if (u < config_.morning_fraction) {
    t = HoursToSeconds(rng->Gaussian(config_.morning_mean_h, config_.morning_std_h));
  } else if (u < config_.morning_fraction + config_.evening_fraction) {
    t = HoursToSeconds(rng->Gaussian(config_.evening_mean_h, config_.evening_std_h));
  } else {
    t = HoursToSeconds(
        rng->Uniform(config_.uniform_start_h, config_.uniform_end_h));
  }
  // Keep within the day with a safety margin for the trip itself.
  return std::clamp(t, 0.0, kSecondsPerDay - 3600.0);
}

GeneratedTrip TrajectoryGenerator::SimulateTrip(uint64_t id, const Path& path,
                                                double depart_s,
                                                Rng* rng) const {
  GeneratedTrip trip;
  trip.truth.id = id;
  trip.truth.path = path;
  const TripContext ctx = model_.SampleTrip(rng);
  double t = depart_s;
  EdgeId prev = kInvalidEdge;
  for (EdgeId e : path) {
    const double dt = model_.SampleTravelSeconds(e, prev, t, ctx, rng);
    trip.truth.edge_enter_times.push_back(t);
    trip.truth.edge_travel_seconds.push_back(dt);
    trip.truth.edge_emission_grams.push_back(
        model_.EmissionGrams(e, dt, ctx));
    t += dt;
    prev = e;
  }
  if (config_.emit_gps) EmitGps(&trip, rng);
  return trip;
}

void TrajectoryGenerator::EmitGps(GeneratedTrip* trip, Rng* rng) const {
  const Graph& g = model_.graph();
  const MatchedTrajectory& truth = trip->truth;
  trip->gps.id = truth.id;
  if (truth.NumEdges() == 0) return;
  const double start = truth.DepartureTime();
  const double end = truth.edge_enter_times.back() +
                     truth.edge_travel_seconds.back();
  size_t edge_pos = 0;
  for (double t = start; t <= end + 1e-9; t += config_.sampling_interval_s) {
    while (edge_pos + 1 < truth.NumEdges() &&
           truth.edge_enter_times[edge_pos + 1] <= t) {
      ++edge_pos;
    }
    const double enter = truth.edge_enter_times[edge_pos];
    const double dur = std::max(truth.edge_travel_seconds[edge_pos], 1e-9);
    const double frac = std::clamp((t - enter) / dur, 0.0, 1.0);
    double x = 0.0, y = 0.0;
    g.PointAlongEdge(truth.path[edge_pos], frac, &x, &y);
    x += rng->Gaussian(0.0, config_.gps_noise_std_m);
    y += rng->Gaussian(0.0, config_.gps_noise_std_m);
    trip->gps.records.push_back(GpsRecord{x, y, t});
  }
}

GeneratedTrip TrajectoryGenerator::GenerateOnPath(const Path& path,
                                                  double depart_s,
                                                  Rng* rng) const {
  return SimulateTrip(0, path, depart_s, rng);
}

std::vector<GeneratedTrip> TrajectoryGenerator::GenerateAll() {
  const Graph& g = model_.graph();
  Rng rng(config_.seed);
  std::vector<GeneratedTrip> trips;
  trips.reserve(config_.num_trips);

  const auto free_flow = roadnet::FreeFlowWeight(g);
  uint64_t id = 0;
  size_t failures = 0;
  while (trips.size() < config_.num_trips && failures < config_.num_trips * 4) {
    const double depart = SampleDeparture(&rng);
    VertexId from, to;
    bool hub_trip = rng.Bernoulli(config_.hub_fraction) && hubs_.size() >= 2;
    if (hub_trip) {
      // Zipf-skewed hub popularity: hub i drawn with weight 1/(i+1), so a
      // handful of commuter destinations dominate (as in real fleet data).
      std::vector<double> weights(hubs_.size());
      for (size_t i = 0; i < weights.size(); ++i) {
        weights[i] = 1.0 / static_cast<double>(i + 1);
      }
      if (rng.Bernoulli(config_.commute_share)) {
        // Commute between a random vertex and a hub; direction follows the
        // time of day (inbound before ~13:00, outbound after).
        const VertexId hub = hubs_[rng.Categorical(weights)];
        const VertexId other = static_cast<VertexId>(
            rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
        const bool inbound = depart < HoursToSeconds(13.0);
        from = inbound ? other : hub;
        to = inbound ? hub : other;
      } else {
        const size_t a = rng.Categorical(weights);
        size_t b = rng.Categorical(weights);
        if (a == b) b = (b + 1) % hubs_.size();
        from = hubs_[a];
        to = hubs_[b];
      }
    } else {
      from = static_cast<VertexId>(
          rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
      to = static_cast<VertexId>(
          rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    }
    const auto& va = g.vertex(from);
    const auto& vb = g.vertex(to);
    if (from == to ||
        roadnet::Distance(va.x, va.y, vb.x, vb.y) < config_.min_trip_crow_m) {
      ++failures;
      continue;
    }

    StatusOr<Path> route = Status::NotFound("");
    if (hub_trip) {
      // Commuters use the canonical fastest route — repeated paths.
      route = roadnet::ShortestPath(g, from, to, free_flow);
    } else {
      // Background traffic: per-trip jittered weights diversify routes.
      const uint64_t trip_seed = rng.engine()();
      const double jitter = config_.route_jitter;
      auto weight = [&g, trip_seed, jitter](const roadnet::Edge& e) {
        uint64_t h = (static_cast<uint64_t>(e.id) + 1) * 0x9e3779b97f4a7c15ull ^
                     trip_seed;
        h ^= h >> 31;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 29;
        const double u = static_cast<double>(h % 100000) / 100000.0;
        return e.FreeFlowSeconds() * std::exp((2.0 * u - 1.0) * jitter);
      };
      route = roadnet::ShortestPath(g, from, to, weight);
    }
    if (!route.ok()) {
      ++failures;
      continue;
    }
    trips.push_back(SimulateTrip(id++, route.value(), depart, &rng));
  }
  return trips;
}

std::vector<MatchedTrajectory> Dataset::MatchedSlice(double fraction) const {
  const size_t n = static_cast<size_t>(
      std::round(fraction * static_cast<double>(trips.size())));
  std::vector<MatchedTrajectory> out;
  out.reserve(n);
  for (size_t i = 0; i < n && i < trips.size(); ++i) {
    out.push_back(trips[i].truth);
  }
  return out;
}

namespace {

Dataset MakeDataset(std::string name, const roadnet::CityConfig& city,
                    const TrafficConfig& traffic, GeneratorConfig gen) {
  Dataset ds;
  ds.name = std::move(name);
  ds.graph = std::make_unique<roadnet::Graph>(roadnet::MakeCity(city));
  ds.traffic = std::make_unique<TrafficModel>(*ds.graph, traffic);
  ds.generator_config = gen;
  TrajectoryGenerator generator(*ds.traffic, gen);
  ds.trips = generator.GenerateAll();
  return ds;
}

}  // namespace

Dataset MakeDatasetA(size_t num_trips, bool emit_gps) {
  roadnet::CityConfig city = roadnet::CityAConfig();
  TrafficConfig traffic;
  traffic.seed = 11;
  GeneratorConfig gen;
  gen.num_trips = num_trips;
  gen.emit_gps = emit_gps;
  gen.sampling_interval_s = 1.0;  // 1 Hz, like D1
  gen.seed = 1001;
  return MakeDataset("A", city, traffic, gen);
}

Dataset MakeDatasetB(size_t num_trips, bool emit_gps) {
  roadnet::CityConfig city = roadnet::CityBConfig();
  TrafficConfig traffic;
  traffic.seed = 23;
  traffic.cell_size_m = 1800.0;
  traffic.morning_peak_gain = 1.1;  // heavier congestion (megacity)
  traffic.evening_peak_gain = 0.9;
  GeneratorConfig gen;
  gen.num_trips = num_trips;
  gen.emit_gps = emit_gps;
  gen.sampling_interval_s = 5.0;  // 0.2 Hz, like D2
  gen.hub_fraction = 0.6;
  gen.num_hubs = 18;
  gen.min_trip_crow_m = 2500.0;
  gen.seed = 2002;
  return MakeDataset("B", city, traffic, gen);
}

}  // namespace traj
}  // namespace pcde
