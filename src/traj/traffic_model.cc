#include "traj/traffic_model.h"

#include <algorithm>
#include <cmath>

#include "traj/types.h"

namespace pcde {
namespace traj {

using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::kInvalidEdge;

TrafficModel::TrafficModel(const Graph& g, const TrafficConfig& config)
    : graph_(g), config_(config) {
  Rng rng(config.seed);
  edge_cell_gain_.resize(g.NumEdges(), 0.0);
  edge_has_signal_.resize(g.NumEdges(), 0);

  // Congestion cells: hash the cell coordinates through a per-model RNG so
  // adjacent edges in the same cell share a gain (spatial correlation).
  auto cell_gain = [&](int64_t cx, int64_t cy) {
    // Deterministic per-cell pseudo-random value.
    uint64_t h = static_cast<uint64_t>(cx) * 0x9e3779b97f4a7c15ull ^
                 (static_cast<uint64_t>(cy) + 0x7f4a7c15u) * 0xbf58476d1ce4e5b9ull ^
                 config_.seed;
    h ^= h >> 31;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 29;
    return config_.cell_gain_max *
           (static_cast<double>(h % 10000) / 10000.0);
  };
  for (const Edge& e : g.edges()) {
    const auto& a = g.vertex(e.from);
    const auto& b = g.vertex(e.to);
    const double mx = 0.5 * (a.x + b.x);
    const double my = 0.5 * (a.y + b.y);
    const int64_t cx = static_cast<int64_t>(std::floor(mx / config_.cell_size_m));
    const int64_t cy = static_cast<int64_t>(std::floor(my / config_.cell_size_m));
    edge_cell_gain_[e.id] = cell_gain(cx, cy);
    // Arterial/highway entries are more likely to be signalized.
    const double p_signal =
        e.road_class == roadnet::RoadClass::kResidential ? 0.35 : 0.6;
    edge_has_signal_[e.id] = rng.Bernoulli(p_signal) ? 1 : 0;
  }
}

TripContext TrafficModel::SampleTrip(Rng* rng) const {
  TripContext ctx;
  ctx.driver_factor = std::exp(rng->Gaussian(0.0, config_.driver_sigma));
  if (rng->Bernoulli(config_.incident_probability)) {
    ctx.incident_factor =
        rng->Uniform(config_.incident_factor_min, config_.incident_factor_max);
  }
  ctx.signal_bias =
      rng->Uniform(-config_.signal_luck_range, config_.signal_luck_range);
  return ctx;
}

double TrafficModel::CongestionFactor(EdgeId e, double time_s) const {
  const double hour = time_s / 3600.0;
  auto bump = [&](double peak_hour, double gain) {
    const double d = (hour - peak_hour) / config_.peak_width_hours;
    return gain * std::exp(-0.5 * d * d);
  };
  const double tod = bump(config_.morning_peak_hour, config_.morning_peak_gain) +
                     bump(config_.evening_peak_hour, config_.evening_peak_gain);
  // Residential streets congest less than arterials during peaks.
  const double class_scale =
      graph_.edge(e).road_class == roadnet::RoadClass::kResidential ? 0.6 : 1.0;
  return 1.0 + class_scale * tod * (1.0 + edge_cell_gain_[e]);
}

int TrafficModel::TurnClass(EdgeId prev, EdgeId e) const {
  if (prev == kInvalidEdge) return 0;
  const Edge& pe = graph_.edge(prev);
  const Edge& ce = graph_.edge(e);
  const auto& pa = graph_.vertex(pe.from);
  const auto& pb = graph_.vertex(pe.to);
  const auto& cb = graph_.vertex(ce.to);
  const double ax = pb.x - pa.x;
  const double ay = pb.y - pa.y;
  const double bx = cb.x - pb.x;
  const double by = cb.y - pb.y;
  const double cross = ax * by - ay * bx;
  const double dot = ax * bx + ay * by;
  const double angle = std::atan2(cross, dot);  // (-pi, pi], left positive
  const double deg = angle * 180.0 / M_PI;
  if (std::fabs(deg) < 30.0) return 0;   // straight
  if (deg <= -30.0 && deg > -135.0) return 1;  // right
  if (deg >= 30.0 && deg < 135.0) return 2;    // left
  return 3;  // sharp / U turn
}

double TrafficModel::TurnDelayMean(EdgeId prev, EdgeId e) const {
  switch (TurnClass(prev, e)) {
    case 0: return config_.straight_s;
    case 1: return config_.right_turn_s;
    case 2: return config_.left_turn_s;
    default: return config_.left_turn_s * 1.5;
  }
}

double TrafficModel::SampleTravelSeconds(EdgeId e, EdgeId prev,
                                         double enter_time_s,
                                         const TripContext& trip,
                                         Rng* rng) const {
  const Edge& edge = graph_.edge(e);
  const double congestion = CongestionFactor(e, enter_time_s);
  // Driving time along the edge.
  double seconds = edge.FreeFlowSeconds() * congestion * trip.driver_factor *
                   trip.incident_factor *
                   std::exp(rng->Gaussian(0.0, config_.edge_noise_sigma));
  // Entry delay: turn penalty plus a possible signal wait. This component
  // depends on the *previous* edge, which is exactly what path-level joint
  // distributions capture and per-edge marginals lose.
  if (prev != kInvalidEdge) {
    seconds += TurnDelayMean(prev, e) * trip.driver_factor;
    const double red_probability =
        std::clamp(config_.signal_probability + trip.signal_bias, 0.0, 1.0);
    if (edge_has_signal_[e] != 0 && rng->Bernoulli(red_probability)) {
      seconds += rng->Uniform(0.0, config_.signal_max_wait_s * congestion);
    }
  }
  return seconds;
}

double TrafficModel::ExpectedTravelSeconds(EdgeId e, EdgeId prev,
                                           double enter_time_s) const {
  const Edge& edge = graph_.edge(e);
  const double congestion = CongestionFactor(e, enter_time_s);
  // E[lognormal(0, s)] = exp(s^2/2); incidents add their expected factor.
  const double noise_mean = std::exp(0.5 * config_.edge_noise_sigma *
                                     config_.edge_noise_sigma);
  const double driver_mean =
      std::exp(0.5 * config_.driver_sigma * config_.driver_sigma);
  const double incident_mean =
      1.0 + config_.incident_probability *
                (0.5 * (config_.incident_factor_min +
                        config_.incident_factor_max) -
                 1.0);
  double seconds = edge.FreeFlowSeconds() * congestion * driver_mean *
                   incident_mean * noise_mean;
  if (prev != kInvalidEdge) {
    seconds += TurnDelayMean(prev, e) * driver_mean;
    if (edge_has_signal_[e] != 0) {
      seconds += config_.signal_probability * 0.5 *
                 config_.signal_max_wait_s * congestion;
    }
  }
  return seconds;
}

double TrafficModel::EmissionGrams(EdgeId e, double travel_s,
                                   const TripContext& trip) const {
  const Edge& edge = graph_.edge(e);
  if (travel_s <= 0.0) return 0.0;
  const double v = edge.length_m / travel_s;  // average speed m/s
  // VT-micro-style surrogate: idling term + rolling resistance + drag.
  const double idle = 0.4 * travel_s;                  // g per second idling
  const double rolling = 0.09 * edge.length_m / 1000.0 * 1000.0 / 10.0;
  const double drag = 0.0025 * v * v * travel_s;
  return (idle + rolling + drag) * trip.incident_factor;
}

}  // namespace traj
}  // namespace pcde
