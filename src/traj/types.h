// Trajectory data model (Sec. 2.1): raw GPS trajectories and map-matched
// trajectories aligned with road-network paths, carrying per-edge travel
// times and GHG emissions.
#pragma once

#include <cstdint>
#include <vector>

#include "roadnet/path.h"

namespace pcde {
namespace traj {

/// Travel-cost types the paper studies (travel time in the main paper, GHG
/// emissions in the companion report [30]).
enum class CostType : uint8_t {
  kTravelTimeSeconds = 0,
  kEmissionGrams = 1,
};

/// Seconds since midnight; all trips happen within one day of a "typical
/// weekday" (the paper bins by time-of-day intervals, Sec. 3.1).
constexpr double kSecondsPerDay = 86400.0;

inline constexpr double HoursToSeconds(double h) { return h * 3600.0; }
inline constexpr double MinutesToSeconds(double m) { return m * 60.0; }

/// \brief One GPS fix: planar position (meters) and timestamp (seconds
/// since midnight).
struct GpsRecord {
  double x = 0.0;
  double y = 0.0;
  double time = 0.0;
};

/// \brief A raw GPS trajectory T = <p1, ..., pC> for one trip.
struct Trajectory {
  uint64_t id = 0;
  std::vector<GpsRecord> records;
};

/// \brief A trajectory aligned with a road-network path (the output of map
/// matching): the path P_T plus, for every edge, the entry time and the
/// travel costs incurred while traversing it.
struct MatchedTrajectory {
  uint64_t id = 0;
  roadnet::Path path;
  std::vector<double> edge_enter_times;    // seconds since midnight
  std::vector<double> edge_travel_seconds; // per-edge travel time
  std::vector<double> edge_emission_grams; // per-edge GHG emissions

  size_t NumEdges() const { return path.size(); }

  double DepartureTime() const {
    return edge_enter_times.empty() ? 0.0 : edge_enter_times.front();
  }

  double TotalSeconds() const {
    double t = 0.0;
    for (double s : edge_travel_seconds) t += s;
    return t;
  }

  const std::vector<double>& costs(CostType type) const {
    return type == CostType::kTravelTimeSeconds ? edge_travel_seconds
                                                : edge_emission_grams;
  }
};

}  // namespace traj
}  // namespace pcde
