// Trip and GPS-trace generation over a TrafficModel. Substitutes for the
// paper's fleet data (D1: Aalborg, 37M records @1 Hz; D2: Beijing, >50B
// records @>=0.2 Hz) at laptop scale — see DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "traj/traffic_model.h"
#include "traj/types.h"

namespace pcde {
namespace traj {

/// \brief Demand + measurement configuration for the generator.
struct GeneratorConfig {
  size_t num_trips = 15000;

  // Measurement process.
  bool emit_gps = false;            // GPS traces are only needed by the
                                    // map-matching pipeline; matched truth
                                    // is always produced.
  double sampling_interval_s = 1.0; // 1 Hz (D1); use 5 s for the D2 analogue
  double gps_noise_std_m = 5.0;

  // Demand: a share of trips involves a few Zipf-popular hubs (workplaces,
  // airport, center). Half of those are commutes between a random vertex
  // and a hub — their routes form trees converging on the hub, so corridor
  // edges near hubs are shared by many distinct routes joining at
  // different points (as in real cities). The other half are hub-to-hub
  // trips along the canonical fastest route (repeated full paths). The
  // remainder is background traffic between random vertices with jittered
  // routing. Morning commutes head into hubs, evening ones out.
  double hub_fraction = 0.6;
  double commute_share = 0.5;  // of hub trips: vertex <-> hub commutes
  size_t num_hubs = 10;
  double min_trip_crow_m = 900.0;
  double route_jitter = 0.3;        // log-uniform multiplicative edge jitter

  // Departure-time mixture: morning/evening Gaussians + daytime uniform.
  double morning_fraction = 0.32;
  double evening_fraction = 0.26;
  double morning_mean_h = 8.1;
  double morning_std_h = 0.7;
  double evening_mean_h = 17.2;
  double evening_std_h = 0.9;
  double uniform_start_h = 6.0;
  double uniform_end_h = 22.0;

  uint64_t seed = 4242;
};

/// \brief One generated trip: the ground-truth matched trajectory and,
/// optionally, the raw GPS trace the map matcher consumes.
struct GeneratedTrip {
  MatchedTrajectory truth;
  Trajectory gps;  // empty when emit_gps is false
};

/// \brief Simulates trips over a traffic model.
class TrajectoryGenerator {
 public:
  TrajectoryGenerator(const TrafficModel& model, const GeneratorConfig& config);

  /// Generates `config.num_trips` trips (deterministic under the seed).
  std::vector<GeneratedTrip> GenerateAll();

  /// Generates a single trip along a *given* path at a given departure
  /// time; used by tests and by the accuracy-optimal ground-truth harness.
  GeneratedTrip GenerateOnPath(const roadnet::Path& path, double depart_s,
                               Rng* rng) const;

  /// Samples a departure time from the configured mixture.
  double SampleDeparture(Rng* rng) const;

 private:
  GeneratedTrip SimulateTrip(uint64_t id, const roadnet::Path& path,
                             double depart_s, Rng* rng) const;
  void EmitGps(GeneratedTrip* trip, Rng* rng) const;

  const TrafficModel& model_;
  GeneratorConfig config_;
  std::vector<roadnet::VertexId> hubs_;
};

/// \brief A complete synthetic dataset: network, traffic ground truth, and
/// generated trips. The two presets mirror the paper's D1/D2 contrast.
struct Dataset {
  std::string name;
  std::unique_ptr<roadnet::Graph> graph;
  std::unique_ptr<TrafficModel> traffic;
  GeneratorConfig generator_config;
  std::vector<GeneratedTrip> trips;

  /// The matched trajectories of the first `fraction` of trips (dataset
  /// scaling experiments, Figs. 10, 12, 17).
  std::vector<MatchedTrajectory> MatchedSlice(double fraction = 1.0) const;
};

/// City A (Aalborg-like): dense network, 1 Hz sampling.
Dataset MakeDatasetA(size_t num_trips = 15000, bool emit_gps = false);

/// City B (Beijing-like): main-roads network, 0.2 Hz sampling, more trips.
Dataset MakeDatasetB(size_t num_trips = 22000, bool emit_gps = false);

}  // namespace traj
}  // namespace pcde
