// TrajectoryStore: the queryable collection of map-matched trajectories.
// Supports the paper's central primitive — "find the qualified trajectories
// that occurred on path P at a time in interval I" (Sec. 2.2) — via an
// inverted index from edges to trajectory positions.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "roadnet/path.h"
#include "traj/types.h"

namespace pcde {
namespace traj {

/// \brief An occurrence of a path inside a stored trajectory: trajectory
/// `traj_index` traverses the path starting at edge position `pos`, entering
/// its first edge at `entry_time`.
struct Occurrence {
  size_t traj_index = 0;
  size_t pos = 0;
  double entry_time = 0.0;
};

/// \brief Immutable-after-build store of matched trajectories.
class TrajectoryStore {
 public:
  TrajectoryStore() = default;
  explicit TrajectoryStore(std::vector<MatchedTrajectory> trajectories);

  void Add(MatchedTrajectory t);

  size_t NumTrajectories() const { return trajectories_.size(); }
  const MatchedTrajectory& trajectory(size_t i) const { return trajectories_[i]; }
  const std::vector<MatchedTrajectory>& trajectories() const {
    return trajectories_;
  }

  /// All occurrences of `path` (as a contiguous sub-path of stored
  /// trajectories), in no particular order.
  std::vector<Occurrence> FindOccurrences(const roadnet::Path& path) const;

  /// Occurrences whose entry time lies in `interval` — the paper's
  /// "qualified trajectories" for (P, I).
  std::vector<Occurrence> FindQualified(const roadnet::Path& path,
                                        const Interval& interval) const;

  /// \brief Per-edge cost vectors for a set of occurrences: result[i][d] is
  /// the cost of the d-th edge of the path in occurrence i. These rows are
  /// the samples a joint histogram is built from (Sec. 3.2).
  std::vector<std::vector<double>> CostMatrix(
      const roadnet::Path& path, const std::vector<Occurrence>& occurrences,
      CostType type = CostType::kTravelTimeSeconds) const;

  /// Total path cost per occurrence (row sums of CostMatrix) — the samples
  /// behind the accuracy-optimal baseline's distribution D_GT.
  std::vector<double> TotalCosts(
      const roadnet::Path& path, const std::vector<Occurrence>& occurrences,
      CostType type = CostType::kTravelTimeSeconds) const;

  /// True if the edge appears in at least one trajectory (the |E''| measure
  /// behind the Fig. 8a coverage ratio).
  bool EdgeObserved(roadnet::EdgeId e) const {
    return edge_index_.count(e) > 0;
  }
  size_t NumObservedEdges() const { return edge_index_.size(); }

  /// Number of trajectory traversals of an edge (its popularity).
  size_t EdgeOccurrenceCount(roadnet::EdgeId e) const {
    auto it = edge_index_.find(e);
    return it == edge_index_.end() ? 0 : it->second.size();
  }

 private:
  void IndexTrajectory(size_t idx);

  std::vector<MatchedTrajectory> trajectories_;
  // edge id -> (trajectory index, position of the edge inside it)
  std::unordered_map<roadnet::EdgeId, std::vector<std::pair<size_t, size_t>>>
      edge_index_;
};

}  // namespace traj
}  // namespace pcde
