#include "traj/io.h"

#include <fstream>
#include <sstream>

namespace pcde {
namespace traj {

Status SaveMatchedCsv(const std::vector<MatchedTrajectory>& trajectories,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("SaveMatchedCsv: cannot open " + path);
  }
  out.precision(17);
  out << "# pcde matched trajectories v1\n";
  for (const MatchedTrajectory& t : trajectories) {
    for (size_t i = 0; i < t.NumEdges(); ++i) {
      out << t.id << "," << t.path[i] << "," << t.edge_enter_times[i] << ","
          << t.edge_travel_seconds[i] << "," << t.edge_emission_grams[i]
          << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::Internal("SaveMatchedCsv: write failed");
  return Status::OK();
}

StatusOr<std::vector<MatchedTrajectory>> LoadMatchedCsv(
    const roadnet::Graph& graph, const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("LoadMatchedCsv: cannot open " + path);
  }
  std::vector<MatchedTrajectory> out;
  std::vector<roadnet::EdgeId> edges;
  MatchedTrajectory current;
  bool has_current = false;

  auto flush_current = [&]() -> Status {
    if (!has_current) return Status::OK();
    PCDE_RETURN_NOT_OK(roadnet::ValidatePath(graph, edges));
    current.path = roadnet::Path(edges);
    out.push_back(std::move(current));
    current = MatchedTrajectory();
    edges.clear();
    return Status::OK();
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 5) {
      return Status::InvalidArgument("LoadMatchedCsv: bad row at " + path +
                                     ":" + std::to_string(line_no));
    }
    const uint64_t id = std::stoull(fields[0]);
    if (!has_current || id != current.id) {
      PCDE_RETURN_NOT_OK(flush_current());
      current.id = id;
      has_current = true;
    }
    const unsigned long edge = std::stoul(fields[1]);
    if (edge >= graph.NumEdges()) {
      return Status::InvalidArgument("LoadMatchedCsv: unknown edge at " +
                                     path + ":" + std::to_string(line_no));
    }
    edges.push_back(static_cast<roadnet::EdgeId>(edge));
    current.edge_enter_times.push_back(std::stod(fields[2]));
    current.edge_travel_seconds.push_back(std::stod(fields[3]));
    current.edge_emission_grams.push_back(std::stod(fields[4]));
  }
  PCDE_RETURN_NOT_OK(flush_current());
  return out;
}

}  // namespace traj
}  // namespace pcde
