// CSV persistence for matched trajectories, so pipelines can checkpoint
// between map matching and instantiation (the paper treats these as
// separate offline stages).
//
// Format — one record per edge traversal:
//   <trajectory_id>,<edge_id>,<enter_time_s>,<travel_s>,<emission_g>
// Rows of one trajectory are contiguous and ordered by position.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "roadnet/graph.h"
#include "traj/types.h"

namespace pcde {
namespace traj {

Status SaveMatchedCsv(const std::vector<MatchedTrajectory>& trajectories,
                      const std::string& path);

/// Loads trajectories written by SaveMatchedCsv; paths are validated
/// against `graph` (adjacency), invalid rows fail the load.
StatusOr<std::vector<MatchedTrajectory>> LoadMatchedCsv(
    const roadnet::Graph& graph, const std::string& path);

}  // namespace traj
}  // namespace pcde
