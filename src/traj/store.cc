#include "traj/store.h"

namespace pcde {
namespace traj {

TrajectoryStore::TrajectoryStore(std::vector<MatchedTrajectory> trajectories)
    : trajectories_(std::move(trajectories)) {
  for (size_t i = 0; i < trajectories_.size(); ++i) IndexTrajectory(i);
}

void TrajectoryStore::Add(MatchedTrajectory t) {
  trajectories_.push_back(std::move(t));
  IndexTrajectory(trajectories_.size() - 1);
}

void TrajectoryStore::IndexTrajectory(size_t idx) {
  const MatchedTrajectory& t = trajectories_[idx];
  for (size_t pos = 0; pos < t.path.size(); ++pos) {
    edge_index_[t.path[pos]].emplace_back(idx, pos);
  }
}

std::vector<Occurrence> TrajectoryStore::FindOccurrences(
    const roadnet::Path& path) const {
  std::vector<Occurrence> out;
  if (path.empty()) return out;
  auto it = edge_index_.find(path.front());
  if (it == edge_index_.end()) return out;
  for (const auto& [traj_idx, pos] : it->second) {
    const MatchedTrajectory& t = trajectories_[traj_idx];
    if (pos + path.size() > t.path.size()) continue;
    bool match = true;
    for (size_t d = 1; d < path.size(); ++d) {
      if (t.path[pos + d] != path[d]) {
        match = false;
        break;
      }
    }
    if (match) {
      out.push_back(Occurrence{traj_idx, pos, t.edge_enter_times[pos]});
    }
  }
  return out;
}

std::vector<Occurrence> TrajectoryStore::FindQualified(
    const roadnet::Path& path, const Interval& interval) const {
  std::vector<Occurrence> all = FindOccurrences(path);
  std::vector<Occurrence> out;
  out.reserve(all.size());
  for (const Occurrence& o : all) {
    if (interval.Contains(o.entry_time)) out.push_back(o);
  }
  return out;
}

std::vector<std::vector<double>> TrajectoryStore::CostMatrix(
    const roadnet::Path& path, const std::vector<Occurrence>& occurrences,
    CostType type) const {
  std::vector<std::vector<double>> rows;
  rows.reserve(occurrences.size());
  for (const Occurrence& o : occurrences) {
    const std::vector<double>& costs = trajectories_[o.traj_index].costs(type);
    rows.emplace_back(costs.begin() + static_cast<ptrdiff_t>(o.pos),
                      costs.begin() + static_cast<ptrdiff_t>(o.pos + path.size()));
  }
  return rows;
}

std::vector<double> TrajectoryStore::TotalCosts(
    const roadnet::Path& path, const std::vector<Occurrence>& occurrences,
    CostType type) const {
  std::vector<double> totals;
  totals.reserve(occurrences.size());
  for (const Occurrence& o : occurrences) {
    const std::vector<double>& costs = trajectories_[o.traj_index].costs(type);
    double sum = 0.0;
    for (size_t d = 0; d < path.size(); ++d) sum += costs[o.pos + d];
    totals.push_back(sum);
  }
  return totals;
}

}  // namespace traj
}  // namespace pcde
