// Synthetic traffic ground truth. Stands in for the unknown real-world
// process behind the paper's Aalborg/Beijing trajectories; deliberately
// produces the three pathologies the paper is built around:
//
//  * complex, multi-modal, time-varying cost distributions (Fig. 1b)
//    — via congestion peaks, traffic-signal waits, and incident modes;
//  * dependence between the costs of edges in a path (Fig. 4)
//    — via a per-trip driver factor shared by all edges of a trip and
//      turn/signal delays that depend on the preceding edge;
//  * costs that are properties of *paths*, not just edges
//    — the turn delay is charged to the edge being entered, so per-edge
//      marginals cannot reconstruct it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "roadnet/graph.h"

namespace pcde {
namespace traj {

/// Tuning knobs for the traffic process.
struct TrafficConfig {
  // Time-of-day congestion: two Gaussian rush-hour bumps on top of 1.0.
  double morning_peak_hour = 8.0;
  double evening_peak_hour = 17.0;
  double peak_width_hours = 1.2;
  double morning_peak_gain = 0.9;   // multiplies free-flow time at the peak
  double evening_peak_gain = 0.7;

  // Spatial congestion cells (downtown congests more than the edge of town).
  double cell_size_m = 900.0;
  double cell_gain_max = 0.6;

  // Per-trip driver factor: lognormal sigma (shared across a trip's edges —
  // the main source of inter-edge dependence).
  double driver_sigma = 0.45;

  // Traffic signals: probability of hitting a red when turning onto an
  // edge, and the maximum wait (scaled by congestion). The per-trip
  // "signal luck" shifts the red probability for the whole trip (platoon /
  // green-wave effects), adding a second dependence channel.
  double signal_probability = 0.45;
  double signal_max_wait_s = 40.0;
  double signal_luck_range = 0.3;

  // Turn penalties in seconds (left turns cross traffic).
  double left_turn_s = 8.0;
  double right_turn_s = 3.0;
  double straight_s = 0.0;

  // Incidents: a slow "mode" that affects a whole trip; creates the second
  // mode of the Fig. 1(b)-style distributions.
  double incident_probability = 0.12;
  double incident_factor_min = 1.5;
  double incident_factor_max = 2.2;

  // Per-edge idiosyncratic noise (lognormal sigma).
  double edge_noise_sigma = 0.06;

  uint64_t seed = 97;
};

/// \brief Per-trip latent state sampled once per trajectory.
struct TripContext {
  double driver_factor = 1.0;    // shared across edges -> dependence
  double incident_factor = 1.0;  // 1.0 or a slow mode
  double signal_bias = 0.0;      // shifts red-light probability trip-wide
};

/// \brief Deterministic-parameter stochastic traffic process over a graph.
///
/// All per-edge static parameters (cell congestion gains, signal presence)
/// are derived from the seed at construction, so two models built with the
/// same graph and config are identical.
class TrafficModel {
 public:
  TrafficModel(const roadnet::Graph& g, const TrafficConfig& config);

  const roadnet::Graph& graph() const { return graph_; }
  const TrafficConfig& config() const { return config_; }

  /// Samples the latent per-trip state.
  TripContext SampleTrip(Rng* rng) const;

  /// Time-of-day congestion multiplier (>= 1) for an edge entered at
  /// `time_s` seconds since midnight.
  double CongestionFactor(roadnet::EdgeId e, double time_s) const;

  /// \brief Samples the travel time (seconds) for traversing `e` having
  /// arrived from `prev` (kInvalidEdge at the trip start). Includes the
  /// turn/signal delay charged at the entry of `e` — the path-dependent
  /// component the legacy edge model cannot see.
  double SampleTravelSeconds(roadnet::EdgeId e, roadnet::EdgeId prev,
                             double enter_time_s, const TripContext& trip,
                             Rng* rng) const;

  /// \brief GHG emissions (grams) for traversing `e` in `travel_s` seconds,
  /// VT-micro-style surrogate: idling + rolling + speed^2 drag terms.
  double EmissionGrams(roadnet::EdgeId e, double travel_s,
                       const TripContext& trip) const;

  /// Mean travel seconds for an edge at a time (expectation over the
  /// stochastic terms, used by tests and demand generation).
  double ExpectedTravelSeconds(roadnet::EdgeId e, roadnet::EdgeId prev,
                               double enter_time_s) const;

  /// Classifies the turn from `prev` onto `e` by geometry; exposed for
  /// tests. 0 = straight, 1 = right, 2 = left, 3 = sharp/U.
  int TurnClass(roadnet::EdgeId prev, roadnet::EdgeId e) const;

 private:
  double TurnDelayMean(roadnet::EdgeId prev, roadnet::EdgeId e) const;

  const roadnet::Graph& graph_;
  TrafficConfig config_;
  std::vector<double> edge_cell_gain_;   // spatial congestion gain per edge
  std::vector<uint8_t> edge_has_signal_; // signalized entry per edge
};

}  // namespace traj
}  // namespace pcde
