// First-order stochastic-dominance machinery for the pruned DFS
// (src/routing/stochastic_router.cc): direction-aware CDF step-function
// sketches of prefix-cost distributions, and a per-vertex frontier of
// nondominated prefixes.
//
// Soundness contract: a candidate prefix B may be cut at vertex v only
// when some stored prefix A at v satisfies
//   (1) visited(A) ⊆ visited(B) — every simple-path completion of B is
//       also available to A, so A can reach anything B can; and
//   (2) A's *pessimistic* cost CDF dominates B's *optimistic* cost CDF
//       pointwise (Pr[cost_A ≤ x] ≥ Pr[cost_B ≤ x] for all x, measured
//       with A charged at support maxima and B at support minima) — so
//       for every completion, A's arrival probability is no worse.
// Both sketches are deliberately one-sided: coarsening an optimistic
// sketch rounds mass down-cost (CDF up) and a pessimistic sketch up-cost
// (CDF down), so sketch compression can only make the dominance test
// *harder* to pass, never unsound.
#pragma once

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "roadnet/graph.h"

namespace pcde {
namespace routing {

/// Right-continuous CDF step function over a small set of breakpoints.
class CdfSketch {
 public:
  /// Builds a sketch from (cost, mass) support points. When the point set
  /// exceeds `max_points`, points are binned into equal-width cost bins;
  /// `round_down` selects the direction of the rounding: true moves mass
  /// to the bin's lower cost edge (CDF can only grow — correct for an
  /// optimistic / upper-bound sketch), false to the upper edge (CDF can
  /// only shrink — correct for a pessimistic / lower-bound sketch).
  static CdfSketch FromPoints(std::vector<std::pair<double, double>> points,
                              size_t max_points, bool round_down) {
    CdfSketch s;
    if (points.empty()) return s;
    std::sort(points.begin(), points.end());
    if (max_points == 0) max_points = 1;
    if (points.size() > max_points) {
      const double lo = points.front().first;
      const double hi = points.back().first;
      const double width = (hi - lo) / static_cast<double>(max_points);
      std::vector<std::pair<double, double>> binned;
      binned.reserve(max_points);
      if (width <= 0.0) {
        double mass = 0.0;
        for (const auto& p : points) mass += p.second;
        binned.emplace_back(lo, mass);
      } else {
        for (const auto& p : points) {
          size_t bin = static_cast<size_t>((p.first - lo) / width);
          bin = std::min(bin, max_points - 1);
          const double edge =
              round_down ? lo + static_cast<double>(bin) * width
                         : lo + static_cast<double>(bin + 1) * width;
          if (!binned.empty() && binned.back().first == edge) {
            binned.back().second += p.second;
          } else {
            binned.emplace_back(edge, p.second);
          }
        }
      }
      points.swap(binned);
    }
    s.x_.reserve(points.size());
    s.cum_.reserve(points.size());
    double running = 0.0;
    for (const auto& p : points) {
      running += p.second;
      if (!s.x_.empty() && s.x_.back() == p.first) {
        s.cum_.back() = running;
      } else {
        s.x_.push_back(p.first);
        s.cum_.push_back(running);
      }
    }
    return s;
  }

  bool empty() const { return x_.empty(); }

  /// CDF value at cost v: total mass at breakpoints ≤ v.
  double At(double v) const {
    const auto it = std::upper_bound(x_.begin(), x_.end(), v);
    if (it == x_.begin()) return 0.0;
    return cum_[static_cast<size_t>(it - x_.begin()) - 1];
  }

  /// True when this CDF ≥ other pointwise (checked on the union of both
  /// breakpoint sets — sufficient for step functions).
  bool DominatesEverywhere(const CdfSketch& other) const {
    size_t i = 0;
    size_t j = 0;
    while (i < x_.size() || j < other.x_.size()) {
      double v;
      if (j >= other.x_.size()) {
        v = x_[i++];
      } else if (i >= x_.size()) {
        v = other.x_[j++];
      } else if (x_[i] <= other.x_[j]) {
        v = x_[i];
        if (other.x_[j] == v) ++j;
        ++i;
      } else {
        v = other.x_[j++];
      }
      if (At(v) < other.At(v)) return false;
    }
    return true;
  }

 private:
  std::vector<double> x_;    // sorted breakpoints (costs)
  std::vector<double> cum_;  // cumulative mass at each breakpoint
};

/// Per-branch map vertex → nondominated prefix entries. Sharded per DFS
/// root branch, so no synchronization: cross-branch pruning signal flows
/// through the SharedIncumbent instead.
class DominanceFrontier {
 public:
  explicit DominanceFrontier(size_t max_entries_per_vertex)
      : cap_(max_entries_per_vertex == 0 ? 1 : max_entries_per_vertex) {}

  /// True when `visited` (sorted) already contains every vertex of
  /// `subset` (sorted) — merge walk.
  static bool IsSubset(const std::vector<roadnet::VertexId>& subset,
                       const std::vector<roadnet::VertexId>& superset) {
    size_t i = 0;
    for (roadnet::VertexId v : superset) {
      if (i == subset.size()) return true;
      if (subset[i] == v) ++i;
    }
    return i == subset.size();
  }

  /// True when a stored prefix at `at` dominates the candidate described
  /// by (`optimistic` sketch, sorted `visited` set).
  bool IsDominated(roadnet::VertexId at, const CdfSketch& optimistic,
                   const std::vector<roadnet::VertexId>& visited) const {
    const auto it = entries_.find(at);
    if (it == entries_.end()) return false;
    for (const Entry& e : it->second) {
      if (!IsSubset(e.visited, visited)) continue;
      if (e.pessimistic.DominatesEverywhere(optimistic)) return true;
    }
    return false;
  }

  /// Records a surviving prefix; first-come up to the per-vertex cap
  /// (cheap-first expansion ordering lands strong prefixes early).
  void Insert(roadnet::VertexId at, CdfSketch pessimistic,
              std::vector<roadnet::VertexId> visited) {
    std::vector<Entry>& slot = entries_[at];
    if (slot.size() >= cap_) return;
    slot.push_back(Entry{std::move(pessimistic), std::move(visited)});
  }

 private:
  struct Entry {
    CdfSketch pessimistic;
    std::vector<roadnet::VertexId> visited;  // sorted
  };
  size_t cap_;
  std::unordered_map<roadnet::VertexId, std::vector<Entry>> entries_;
};

}  // namespace routing
}  // namespace pcde
