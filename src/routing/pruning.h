// Opt-in pruning knobs and the small lock-free helpers the pruned DFS
// shares across its root fan-out (src/routing/stochastic_router.cc).
//
// Every pruner here is sound under the same assumptions the baseline
// search already makes (admissible reverse-Dijkstra lower bounds,
// per-position unit-variable support minima): with num_threads == 1,
// incumbent and dominance pruning return exactly the same
// (path, probability) as the unpruned search (a pruned candidate provably
// cannot strictly beat the final best); cheap_first — a pure exploration
// reorder — and the parallel fan-out preserve the probability exactly but
// may resolve an exact probability tie to a different (equally good) path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace pcde {
namespace routing {

/// Which pruners the DFS runs. All default off: a default-constructed
/// config is bit-identical to the pre-pruning router.
struct PruningOptions {
  /// Share the best-so-far arrival probability across root branches and
  /// cut any extension whose optimistic arrival-probability upper bound
  /// (prefix CDF at budget − lower_bound[v]) cannot beat it.
  bool incumbent = false;
  /// Per-vertex frontier of nondominated prefix-cost CDF sketches; a
  /// prefix whose optimistic CDF is dominated by a stored pessimistic
  /// CDF with a subset visited-set is cut (first-order stochastic
  /// dominance — every completion available to the loser is available to
  /// the winner, at no worse arrival probability).
  bool dominance = false;
  /// Order out-edges by lower_bound[to] so cheap completions (and thus
  /// strong incumbents) are found early. Pure exploration-order change.
  bool cheap_first = false;
  /// Max nondominated entries kept per vertex (per branch).
  size_t dominance_frontier_size = 4;
  /// Max breakpoints per CDF sketch (coarser sketches prune less but
  /// compare faster; never unsound — coarsening is direction-aware).
  size_t dominance_sketch_points = 16;

  bool any() const { return incumbent || dominance || cheap_first; }
};

/// Monotone shared maximum of arrival probabilities. Relaxed ordering is
/// enough: the value only ever grows, and a stale read merely prunes less.
class SharedIncumbent {
 public:
  double Load() const { return best_.load(std::memory_order_relaxed); }

  void Update(double p) {
    double cur = best_.load(std::memory_order_relaxed);
    while (p > cur &&
           !best_.compare_exchange_weak(cur, p, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> best_{0.0};
};

/// Per-branch strided reservation against the shared expansion budget:
/// instead of one fetch_add per DFS node, a branch grabs `stride` slots at
/// a time and consumes them locally. Total consumed across branches for a
/// non-truncated search equals the plain per-node count; a truncated
/// search remains an anytime cutoff (run-to-run variable), exactly as the
/// baseline documents.
class ExpansionBudget {
 public:
  ExpansionBudget(std::atomic<size_t>* cursor, size_t max_expansions,
                  size_t stride)
      : cursor_(cursor),
        max_(max_expansions),
        stride_(stride == 0 ? 1 : stride) {}

  /// Returns false when the global budget is exhausted (caller truncates).
  bool TryConsume() {
    if (available_ == 0) {
      const size_t r = cursor_->fetch_add(stride_, std::memory_order_relaxed);
      if (r >= max_) return false;
      available_ = std::min(stride_, max_ - r);
    }
    --available_;
    ++consumed_;
    return true;
  }

  /// Expansions actually performed by this branch (reserved-but-unused
  /// slots are not counted, so summing consumed() over branches gives the
  /// true expansion count).
  size_t consumed() const { return consumed_; }

 private:
  std::atomic<size_t>* cursor_;
  size_t max_;
  size_t stride_;
  size_t available_ = 0;
  size_t consumed_ = 0;
};

}  // namespace routing
}  // namespace pcde
