#include "routing/stochastic_router.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "common/thread_pool.h"

namespace pcde {
namespace routing {

using core::IncrementalEstimator;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

DfsStochasticRouter::DfsStochasticRouter(const Graph& graph,
                                         const core::PathWeightFunction& wp,
                                         core::EstimateOptions estimate_options,
                                         RouterConfig config)
    : graph_(graph),
      wp_(wp),
      estimate_options_(estimate_options),
      config_(config) {}

namespace {

/// Search state shared by all root branches: the expansion budget is
/// global, so the parallel search does the same total work as the
/// sequential one.
struct SharedSearch {
  std::atomic<size_t> expansions{0};
  std::atomic<bool> truncated{false};
  /// Cooperative cancellation (not owned, may be null): polled once per
  /// expansion. `cancelled` latches the observation so every branch stops
  /// at its next checkpoint without re-reading the clock.
  const CancelToken* cancel = nullptr;
  std::atomic<bool> cancelled{false};
};

struct SearchContext {
  const Graph* graph;
  const RouterConfig* config;
  const std::vector<double>* lower_bound;  // admissible min time to dest
  VertexId destination;
  double budget;
  SharedSearch* shared;
  RouteResult* result;            // this branch's local result
  std::vector<bool>* visited;     // this branch's visited set
};

void Dfs(SearchContext* ctx, const IncrementalEstimator& estimator,
         VertexId at, size_t depth) {
  RouteResult& res = *ctx->result;
  if (ctx->shared->truncated.load(std::memory_order_relaxed)) return;
  // Per-expansion cancellation checkpoint: the deepest recursion still
  // polls once per node it expands, so the overshoot past a deadline is
  // bounded by one expansion's work.
  if (ctx->shared->cancelled.load(std::memory_order_relaxed)) return;
  if (CancelToken::Check(ctx->shared->cancel)) {
    ctx->shared->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  if (ctx->shared->expansions.fetch_add(1, std::memory_order_relaxed) >=
      ctx->config->max_expansions) {
    ctx->shared->truncated.store(true, std::memory_order_relaxed);
    return;
  }

  if (at == ctx->destination) {
    ++res.candidate_paths;
    auto dist = estimator.CurrentDistribution(ctx->config->query_cache);
    if (dist.ok()) {
      const double p = dist.value().ProbWithin(ctx->budget);
      if (p > res.best_probability) {
        res.best_probability = p;
        res.best_path = estimator.path();
      }
    }
    return;  // extending past the destination cannot arrive earlier
  }
  if (depth >= ctx->config->max_path_edges) return;

  for (EdgeId e : ctx->graph->OutEdges(at)) {
    const roadnet::Edge& edge = ctx->graph->edge(e);
    if ((*ctx->visited)[edge.to]) continue;
    // Admissible pruning: fastest completion already busts the budget.
    const double bound = (*ctx->lower_bound)[edge.to];
    if (bound == roadnet::kInfCost) continue;
    IncrementalEstimator next = estimator;
    if (!next.ExtendByEdge(e).ok()) continue;
    if (next.MinTotalCost() + bound > ctx->budget) continue;
    (*ctx->visited)[edge.to] = true;
    Dfs(ctx, next, edge.to, depth + 1);
    (*ctx->visited)[edge.to] = false;
    if (ctx->shared->truncated.load(std::memory_order_relaxed)) return;
    if (ctx->shared->cancelled.load(std::memory_order_relaxed)) return;
  }
}

}  // namespace

StatusOr<RouteResult> DfsStochasticRouter::Route(VertexId from, VertexId to,
                                                 double departure_time,
                                                 double budget_seconds,
                                                 const CancelToken* cancel) const {
  if (from >= graph_.NumVertices() || to >= graph_.NumVertices()) {
    return Status::InvalidArgument("Route: unknown vertex");
  }
  if (from == to) return Status::InvalidArgument("Route: from == to");
  if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);

  // Admissible completion bound: reverse Dijkstra on scaled free-flow times.
  const double factor = config_.lower_bound_factor;
  auto optimistic = [factor](const roadnet::Edge& e) {
    return e.FreeFlowSeconds() * factor;
  };
  const std::vector<double> lower_bound =
      roadnet::ReverseShortestPathTree(graph_, to, optimistic);
  if (lower_bound[from] == roadnet::kInfCost) {
    return Status::NotFound("Route: destination unreachable");
  }
  if (lower_bound[from] > budget_seconds) {
    return Status::NotFound("Route: budget infeasible even at free flow");
  }

  // Root fan-out: the DFS subtrees under distinct first edges are
  // independent (each branch owns its visited set), so they run as
  // parallel pool tasks sharing only the expansion budget. Pruning is
  // budget-driven, not best-so-far-driven, so as long as the expansion
  // cap is not hit the branch partition does not change which paths are
  // explored; a truncated search explores whichever prefix of the work
  // the scheduler reached, so its result (like any anytime cutoff) can
  // vary run to run.
  std::vector<EdgeId> roots;
  for (EdgeId e : graph_.OutEdges(from)) {
    const roadnet::Edge& edge = graph_.edge(e);
    if (edge.to == from) continue;
    if (lower_bound[edge.to] == roadnet::kInfCost) continue;
    roots.push_back(e);
  }

  SharedSearch shared;
  shared.cancel = cancel;
  std::vector<RouteResult> branch_results(roots.size());
  auto run_branch = [&](size_t i) {
    const EdgeId e = roots[i];
    const roadnet::Edge& edge = graph_.edge(e);
    IncrementalEstimator estimator(wp_, estimate_options_, e, departure_time);
    if (estimator.MinTotalCost() + lower_bound[edge.to] > budget_seconds) {
      return;
    }
    // Per-branch prefix chain-state reuse: the DFS copies the estimator
    // per explored edge, so every copy under this root shares the branch's
    // cache through the pointer — single-threaded by construction.
    std::unique_ptr<core::PrefixStateCache> prefix_cache;
    if (config_.prefix_cache_bytes > 0) {
      core::PrefixStateCacheOptions cache_options;
      cache_options.max_bytes = config_.prefix_cache_bytes;
      prefix_cache = std::make_unique<core::PrefixStateCache>(cache_options);
      estimator.set_prefix_cache(prefix_cache.get());
    }
    std::vector<bool> visited(graph_.NumVertices(), false);
    visited[from] = true;
    visited[edge.to] = true;

    SearchContext ctx;
    ctx.graph = &graph_;
    ctx.config = &config_;
    ctx.lower_bound = &lower_bound;
    ctx.destination = to;
    ctx.budget = budget_seconds;
    ctx.shared = &shared;
    ctx.result = &branch_results[i];
    ctx.visited = &visited;
    Dfs(&ctx, estimator, edge.to, 1);
    if (prefix_cache != nullptr) {
      const core::PrefixStateCacheStats stats = prefix_cache->stats();
      branch_results[i].prefix_cache_hits = stats.hits;
      branch_results[i].prefix_cache_misses = stats.misses;
    }
  };
  if (config_.num_threads == 1 || roots.size() <= 1) {
    // Nothing to fan out (or parallelism disabled): skip pool start-up.
    for (size_t i = 0; i < roots.size(); ++i) run_branch(i);
  } else if (config_.pool != nullptr) {
    // Shared external pool (serving::Engine): no per-Route thread start-up.
    config_.pool->ParallelFor(roots.size(), run_branch);
  } else {
    ThreadPool pool(config_.num_threads);
    pool.ParallelFor(roots.size(), run_branch);
  }

  // A cancelled search unwinds with the token's Status — an anytime cutoff
  // would otherwise return whichever partial best the scheduler happened to
  // reach, which the deadline contract forbids.
  if (shared.cancelled.load(std::memory_order_relaxed) ||
      CancelToken::Check(cancel)) {
    return CancelToken::StatusOf(cancel);
  }

  // Merge in root-edge order, so for non-truncated searches ties resolve
  // exactly as the sequential search did regardless of thread scheduling.
  RouteResult result;
  for (const RouteResult& br : branch_results) {
    result.candidate_paths += br.candidate_paths;
    result.prefix_cache_hits += br.prefix_cache_hits;
    result.prefix_cache_misses += br.prefix_cache_misses;
    if (br.best_probability > result.best_probability) {
      result.best_probability = br.best_probability;
      result.best_path = br.best_path;
    }
  }
  // The racy fetch_adds can overshoot the cap slightly; clamp so the
  // old invariant expansions <= max_expansions holds for callers.
  result.expansions = std::min(
      shared.expansions.load(std::memory_order_relaxed),
      config_.max_expansions);
  result.truncated = shared.truncated.load(std::memory_order_relaxed);

  if (result.best_path.empty()) {
    return Status::NotFound("Route: no path within budget found");
  }
  return result;
}

}  // namespace routing
}  // namespace pcde
