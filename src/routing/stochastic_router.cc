#include "routing/stochastic_router.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "routing/frontier.h"

namespace pcde {
namespace routing {

using core::IncrementalEstimator;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

DfsStochasticRouter::DfsStochasticRouter(const Graph& graph,
                                         const core::PathWeightFunction& wp,
                                         core::EstimateOptions estimate_options,
                                         RouterConfig config)
    : graph_(graph),
      wp_(wp),
      estimate_options_(estimate_options),
      config_(config) {
  // Shared lower-bound oracle for the pruned search: per edge, the larger
  // (tighter) of the two admissible traversal-time lower bounds available
  // — the scaled free-flow time the baseline bound uses, and the minimum
  // support cost over the edge's unit variables (every distribution the
  // estimator produces streams some unit variable of the edge, and joint
  // marginals only restrict the trajectory set, so no realization costs
  // less). Built once per router and shared by every Route call's
  // reverse-Dijkstra completion bound when incumbent or dominance pruning
  // is on; model minima usually sit well above factor * free-flow, so the
  // residual budgets the pruners reason about shrink substantially.
  oracle_weight_seconds_.assign(graph_.NumEdges(), roadnet::kInfCost);
  for (const core::InstantiatedVariable& var : wp_.variables()) {
    if (var.rank() != 1) continue;
    const EdgeId e = var.path[0];
    if (e >= oracle_weight_seconds_.size()) continue;
    oracle_weight_seconds_[e] =
        std::min(oracle_weight_seconds_[e], var.joint.DimRange(0).lo);
  }
  for (EdgeId e = 0; e < oracle_weight_seconds_.size(); ++e) {
    const double free_flow_bound =
        graph_.edge(e).FreeFlowSeconds() * config_.lower_bound_factor;
    oracle_weight_seconds_[e] =
        oracle_weight_seconds_[e] == roadnet::kInfCost
            ? free_flow_bound
            : std::max(oracle_weight_seconds_[e], free_flow_bound);
  }
}

namespace {

/// Search state shared by all root branches: the expansion budget is
/// global, so the parallel search does the same total work as the
/// sequential one.
struct SharedSearch {
  /// Reservation cursor for the strided per-branch expansion budget
  /// (routing/pruning.h); may overshoot max_expansions, the per-branch
  /// consumed() counts are the true expansion tally.
  std::atomic<size_t> expansions{0};
  std::atomic<bool> truncated{false};
  /// Cooperative cancellation (not owned, may be null): polled once per
  /// expansion. `cancelled` latches the observation so every branch stops
  /// at its next checkpoint without re-reading the clock.
  const CancelToken* cancel = nullptr;
  std::atomic<bool> cancelled{false};
  /// Best arrival probability found by any branch so far; only written
  /// (and only read) when incumbent pruning is enabled, so the plain
  /// search stays free of the extra atomic traffic.
  SharedIncumbent incumbent;
};

struct SearchContext {
  const Graph* graph;
  const RouterConfig* config;
  const PruningOptions* prune;             // effective pruner set
  const std::vector<double>* lower_bound;  // admissible min time to dest
  VertexId destination;
  double budget;
  SharedSearch* shared;
  RouteResult* result;            // this branch's local result
  std::vector<bool>* visited;     // this branch's visited set
  ExpansionBudget* budget_counter;          // this branch's strided budget
  DominanceFrontier* frontier;              // per-branch; null unless on
  std::vector<VertexId>* path_vertices;     // current path incl. origin
};

/// Out-edge surviving the pre-clone admissible bound check, with the data
/// the expansion loop needs: the reverse-Dijkstra completion bound and the
/// child's support minimum (parent min + edge unit minimum).
struct ChildEdge {
  EdgeId e;
  VertexId to;
  double lb;
  double next_min;
};

void Dfs(SearchContext* ctx, const IncrementalEstimator& estimator,
         VertexId at, size_t depth) {
  RouteResult& res = *ctx->result;
  const PruningOptions& prune = *ctx->prune;
  if (ctx->shared->truncated.load(std::memory_order_relaxed)) return;
  // Per-expansion cancellation checkpoint: the deepest recursion still
  // polls once per node it expands, so the overshoot past a deadline is
  // bounded by one expansion's work.
  if (ctx->shared->cancelled.load(std::memory_order_relaxed)) return;
  if (CancelToken::Check(ctx->shared->cancel)) {
    ctx->shared->cancelled.store(true, std::memory_order_relaxed);
    return;
  }
  if (!ctx->budget_counter->TryConsume()) {
    ctx->shared->truncated.store(true, std::memory_order_relaxed);
    return;
  }

  if (at == ctx->destination) {
    if (prune.incumbent) {
      // Optimistic arrival-probability bound for this complete candidate:
      // if even the upper bound cannot beat the incumbent, skip the
      // (expensive) distribution finalization. Sound because the true
      // probability is <= the bound <= the incumbent <= the final best,
      // and the merge requires strictly greater to win.
      const double ub =
          estimator.ArrivalProbabilityUpperBound(ctx->budget, 0.0);
      if (ub <= ctx->shared->incumbent.Load()) {
        ++res.incumbent_pruned;
        return;
      }
    }
    ++res.candidate_paths;
    auto dist = estimator.CurrentDistribution(ctx->config->query_cache);
    if (dist.ok()) {
      const double p = dist.value().ProbWithin(ctx->budget);
      if (p > res.best_probability) {
        res.best_probability = p;
        res.best_path = estimator.path();
      }
      if (prune.incumbent) ctx->shared->incumbent.Update(p);
    }
    return;  // extending past the destination cannot arrive earlier
  }
  if (depth >= ctx->config->max_path_edges) return;

  if (prune.dominance && ctx->frontier != nullptr) {
    // First-order stochastic-dominance pruning: cut this prefix when a
    // previously explored prefix at the same vertex with a subset visited
    // set (so every completion of ours is available to it) has a
    // pessimistic cost CDF that dominates our optimistic one. The
    // envelope is unavailable (returns false) when the model lacks unit
    // variables for some position or the chain state lost mass.
    std::vector<std::pair<double, double>> optimistic;
    std::vector<std::pair<double, double>> pessimistic;
    if (estimator.PrefixCostEnvelope(&optimistic, &pessimistic)) {
      std::vector<VertexId> visited_sorted(*ctx->path_vertices);
      std::sort(visited_sorted.begin(), visited_sorted.end());
      const CdfSketch opt = CdfSketch::FromPoints(
          std::move(optimistic), prune.dominance_sketch_points,
          /*round_down=*/true);
      if (ctx->frontier->IsDominated(at, opt, visited_sorted)) {
        ++res.dominance_pruned;
        return;
      }
      ctx->frontier->Insert(
          at,
          CdfSketch::FromPoints(std::move(pessimistic),
                                prune.dominance_sketch_points,
                                /*round_down=*/false),
          std::move(visited_sorted));
    }
  }

  // Gather surviving out-edges before cloning anything: the admissible
  // bound uses the parent's support minimum plus the edge's unit minimum
  // (== the child's MinTotalCost()), so pruned edges never pay an
  // estimator copy.
  const double prefix_min = estimator.MinTotalCost();
  std::vector<ChildEdge> children;
  for (EdgeId e : ctx->graph->OutEdges(at)) {
    const roadnet::Edge& edge = ctx->graph->edge(e);
    if ((*ctx->visited)[edge.to]) continue;
    const double bound = (*ctx->lower_bound)[edge.to];
    if (bound == roadnet::kInfCost) continue;
    const double next_min = estimator.MinTotalCostWithEdge(e);
    if (next_min + bound > ctx->budget) {
      ++res.bound_pruned;
      continue;
    }
    children.push_back(ChildEdge{e, edge.to, bound, next_min});
  }
  if (prune.cheap_first) {
    // Cheapest completion first: strong incumbents land early, so the
    // incumbent pruner bites sooner. Stable, so equal bounds keep graph
    // order.
    std::stable_sort(children.begin(), children.end(),
                     [](const ChildEdge& a, const ChildEdge& b) {
                       return a.lb < b.lb;
                     });
  }
  for (const ChildEdge& c : children) {
    if (prune.incumbent) {
      // Optimistic bound on any arrival through this child: prefix CDF at
      // budget − (completion bound + edge unit minimum). Checked before
      // the clone, so incumbent-pruned edges are as cheap as bound-pruned
      // ones.
      const double ub = estimator.ArrivalProbabilityUpperBound(
          ctx->budget, c.lb + (c.next_min - prefix_min));
      if (ub <= ctx->shared->incumbent.Load()) {
        ++res.incumbent_pruned;
        continue;
      }
    }
    ++res.estimator_clones;
    IncrementalEstimator next = estimator;
    if (!next.ExtendByEdge(c.e).ok()) continue;
    (*ctx->visited)[c.to] = true;
    ctx->path_vertices->push_back(c.to);
    Dfs(ctx, next, c.to, depth + 1);
    ctx->path_vertices->pop_back();
    (*ctx->visited)[c.to] = false;
    if (ctx->shared->truncated.load(std::memory_order_relaxed)) return;
    if (ctx->shared->cancelled.load(std::memory_order_relaxed)) return;
  }
}

}  // namespace

StatusOr<RouteResult> DfsStochasticRouter::Route(
    VertexId from, VertexId to, double departure_time, double budget_seconds,
    const CancelToken* cancel, const PruningOptions* pruning_override) const {
  if (from >= graph_.NumVertices() || to >= graph_.NumVertices()) {
    return Status::InvalidArgument("Route: unknown vertex");
  }
  if (from == to) return Status::InvalidArgument("Route: from == to");
  if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);

  const PruningOptions& prune =
      pruning_override != nullptr ? *pruning_override : config_.pruning;

  // Admissible completion bound: reverse Dijkstra on scaled free-flow times.
  const double factor = config_.lower_bound_factor;
  auto optimistic = [factor](const roadnet::Edge& e) {
    return e.FreeFlowSeconds() * factor;
  };
  const std::vector<double> lower_bound =
      roadnet::ReverseShortestPathTree(graph_, to, optimistic);
  if (lower_bound[from] == roadnet::kInfCost) {
    return Status::NotFound("Route: destination unreachable");
  }
  if (lower_bound[from] > budget_seconds) {
    return Status::NotFound("Route: budget infeasible even at free flow");
  }

  // With incumbent or dominance pruning on, the search swaps in the
  // shared lower-bound oracle (constructor): the same reverse Dijkstra
  // over per-edge weights that fold in the model's unit support minima.
  // The tighter bound stays admissible, so the extra cuts remove only
  // prefixes whose every completion exceeds the budget with certainty
  // (arrival probability exactly zero) — the returned route and its
  // probability are unchanged. The feasibility preconditions above stay
  // on the baseline tree so NotFound reporting matches the plain search.
  std::vector<double> oracle_bound;
  const bool use_oracle = (prune.incumbent || prune.dominance) &&
                          oracle_weight_seconds_.size() == graph_.NumEdges();
  if (use_oracle) {
    oracle_bound = roadnet::ReverseShortestPathTree(
        graph_, to, [this](const roadnet::Edge& e) {
          return oracle_weight_seconds_[e.id];
        });
  }
  const std::vector<double>& search_bound =
      use_oracle ? oracle_bound : lower_bound;

  // Root fan-out: the DFS subtrees under distinct first edges are
  // independent (each branch owns its visited set), so they run as
  // parallel pool tasks sharing only the expansion budget (and, when
  // incumbent pruning is on, the incumbent). Budget pruning alone does
  // not depend on exploration order, so with pruning off the branch
  // partition does not change which paths are explored; a truncated
  // search explores whichever prefix of the work the scheduler reached,
  // so its result (like any anytime cutoff) can vary run to run.
  std::vector<EdgeId> roots;
  for (EdgeId e : graph_.OutEdges(from)) {
    const roadnet::Edge& edge = graph_.edge(e);
    if (edge.to == from) continue;
    if (search_bound[edge.to] == roadnet::kInfCost) continue;
    roots.push_back(e);
  }
  if (prune.cheap_first) {
    std::stable_sort(roots.begin(), roots.end(), [&](EdgeId a, EdgeId b) {
      return search_bound[graph_.edge(a).to] <
             search_bound[graph_.edge(b).to];
    });
  }

  // Clamp the reservation stride so small expansion caps still truncate
  // at (not far past) the cap; total consumable slots across branches is
  // exactly max_expansions either way.
  const size_t stride = std::max<size_t>(
      1, std::min(config_.expansion_stride, config_.max_expansions / 8 + 1));

  SharedSearch shared;
  shared.cancel = cancel;
  std::vector<RouteResult> branch_results(roots.size());
  auto run_branch = [&](size_t i) {
    const EdgeId e = roots[i];
    const roadnet::Edge& edge = graph_.edge(e);
    IncrementalEstimator estimator(wp_, estimate_options_, e, departure_time);
    ++branch_results[i].estimator_clones;  // the root estimator itself
    if (estimator.MinTotalCost() + search_bound[edge.to] > budget_seconds) {
      ++branch_results[i].bound_pruned;
      return;
    }
    // Per-branch prefix chain-state reuse: the DFS copies the estimator
    // per explored edge, so every copy under this root shares the branch's
    // cache through the pointer — single-threaded by construction.
    std::unique_ptr<core::PrefixStateCache> prefix_cache;
    if (config_.prefix_cache_bytes > 0) {
      core::PrefixStateCacheOptions cache_options;
      cache_options.max_bytes = config_.prefix_cache_bytes;
      prefix_cache = std::make_unique<core::PrefixStateCache>(cache_options);
      estimator.set_prefix_cache(prefix_cache.get());
    }
    std::vector<bool> visited(graph_.NumVertices(), false);
    visited[from] = true;
    visited[edge.to] = true;
    std::vector<VertexId> path_vertices{from, edge.to};

    ExpansionBudget budget(&shared.expansions, config_.max_expansions, stride);
    std::unique_ptr<DominanceFrontier> frontier;
    if (prune.dominance) {
      frontier =
          std::make_unique<DominanceFrontier>(prune.dominance_frontier_size);
    }

    SearchContext ctx;
    ctx.graph = &graph_;
    ctx.config = &config_;
    ctx.prune = &prune;
    ctx.lower_bound = &search_bound;
    ctx.destination = to;
    ctx.budget = budget_seconds;
    ctx.shared = &shared;
    ctx.result = &branch_results[i];
    ctx.visited = &visited;
    ctx.budget_counter = &budget;
    ctx.frontier = frontier.get();
    ctx.path_vertices = &path_vertices;
    Dfs(&ctx, estimator, edge.to, 1);
    branch_results[i].expansions = budget.consumed();
    if (prefix_cache != nullptr) {
      const core::PrefixStateCacheStats stats = prefix_cache->stats();
      branch_results[i].prefix_cache_hits = stats.hits;
      branch_results[i].prefix_cache_misses = stats.misses;
    }
  };
  if (config_.num_threads == 1 || roots.size() <= 1) {
    // Nothing to fan out (or parallelism disabled): skip pool start-up.
    for (size_t i = 0; i < roots.size(); ++i) run_branch(i);
  } else if (config_.pool != nullptr) {
    // Shared external pool (serving::Engine): no per-Route thread start-up.
    config_.pool->ParallelFor(roots.size(), run_branch);
  } else {
    ThreadPool pool(config_.num_threads);
    pool.ParallelFor(roots.size(), run_branch);
  }

  // A cancelled search unwinds with the token's Status — an anytime cutoff
  // would otherwise return whichever partial best the scheduler happened to
  // reach, which the deadline contract forbids.
  if (shared.cancelled.load(std::memory_order_relaxed) ||
      CancelToken::Check(cancel)) {
    return CancelToken::StatusOf(cancel);
  }

  // Merge in root-edge order, so for non-truncated searches ties resolve
  // exactly as the sequential search did regardless of thread scheduling.
  RouteResult result;
  size_t total_expansions = 0;
  for (const RouteResult& br : branch_results) {
    total_expansions += br.expansions;
    result.candidate_paths += br.candidate_paths;
    result.prefix_cache_hits += br.prefix_cache_hits;
    result.prefix_cache_misses += br.prefix_cache_misses;
    result.bound_pruned += br.bound_pruned;
    result.incumbent_pruned += br.incumbent_pruned;
    result.dominance_pruned += br.dominance_pruned;
    result.estimator_clones += br.estimator_clones;
    if (br.best_probability > result.best_probability) {
      result.best_probability = br.best_probability;
      result.best_path = br.best_path;
    }
  }
  // Per-branch consumed() never double-counts reserved-but-unused slots,
  // so the sum is the true expansion tally; clamp anyway so the old
  // invariant expansions <= max_expansions holds for callers.
  result.expansions = std::min(total_expansions, config_.max_expansions);
  result.truncated = shared.truncated.load(std::memory_order_relaxed);

  if (result.best_path.empty()) {
    return Status::NotFound("Route: no path within budget found");
  }
  return result;
}

}  // namespace routing
}  // namespace pcde
