#include "routing/stochastic_router.h"

#include <vector>

namespace pcde {
namespace routing {

using core::IncrementalEstimator;
using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

DfsStochasticRouter::DfsStochasticRouter(const Graph& graph,
                                         const core::PathWeightFunction& wp,
                                         core::EstimateOptions estimate_options,
                                         RouterConfig config)
    : graph_(graph),
      wp_(wp),
      estimate_options_(estimate_options),
      config_(config) {}

namespace {

struct SearchContext {
  const Graph* graph;
  const RouterConfig* config;
  const std::vector<double>* lower_bound;  // admissible min time to dest
  VertexId destination;
  double budget;
  RouteResult* result;
  std::vector<bool>* visited;
};

void Dfs(SearchContext* ctx, const IncrementalEstimator& estimator,
         VertexId at, size_t depth) {
  RouteResult& res = *ctx->result;
  if (res.expansions >= ctx->config->max_expansions) {
    res.truncated = true;
    return;
  }
  ++res.expansions;

  if (at == ctx->destination) {
    ++res.candidate_paths;
    auto dist = estimator.CurrentDistribution();
    if (dist.ok()) {
      const double p = dist.value().ProbWithin(ctx->budget);
      if (p > res.best_probability) {
        res.best_probability = p;
        res.best_path = estimator.path();
      }
    }
    return;  // extending past the destination cannot arrive earlier
  }
  if (depth >= ctx->config->max_path_edges) return;

  for (EdgeId e : ctx->graph->OutEdges(at)) {
    const roadnet::Edge& edge = ctx->graph->edge(e);
    if ((*ctx->visited)[edge.to]) continue;
    // Admissible pruning: fastest completion already busts the budget.
    const double bound = (*ctx->lower_bound)[edge.to];
    if (bound == roadnet::kInfCost) continue;
    IncrementalEstimator next = estimator;
    if (!next.ExtendByEdge(e).ok()) continue;
    if (next.MinTotalCost() + bound > ctx->budget) continue;
    (*ctx->visited)[edge.to] = true;
    Dfs(ctx, next, edge.to, depth + 1);
    (*ctx->visited)[edge.to] = false;
    if (res.truncated) return;
  }
}

}  // namespace

StatusOr<RouteResult> DfsStochasticRouter::Route(VertexId from, VertexId to,
                                                 double departure_time,
                                                 double budget_seconds) const {
  if (from >= graph_.NumVertices() || to >= graph_.NumVertices()) {
    return Status::InvalidArgument("Route: unknown vertex");
  }
  if (from == to) return Status::InvalidArgument("Route: from == to");

  // Admissible completion bound: reverse Dijkstra on scaled free-flow times.
  const double factor = config_.lower_bound_factor;
  auto optimistic = [factor](const roadnet::Edge& e) {
    return e.FreeFlowSeconds() * factor;
  };
  const std::vector<double> lower_bound =
      roadnet::ReverseShortestPathTree(graph_, to, optimistic);
  if (lower_bound[from] == roadnet::kInfCost) {
    return Status::NotFound("Route: destination unreachable");
  }
  if (lower_bound[from] > budget_seconds) {
    return Status::NotFound("Route: budget infeasible even at free flow");
  }

  RouteResult result;
  std::vector<bool> visited(graph_.NumVertices(), false);
  visited[from] = true;

  SearchContext ctx;
  ctx.graph = &graph_;
  ctx.config = &config_;
  ctx.lower_bound = &lower_bound;
  ctx.destination = to;
  ctx.budget = budget_seconds;
  ctx.result = &result;
  ctx.visited = &visited;

  for (EdgeId e : graph_.OutEdges(from)) {
    const roadnet::Edge& edge = graph_.edge(e);
    if (visited[edge.to]) continue;
    if (lower_bound[edge.to] == roadnet::kInfCost) continue;
    IncrementalEstimator estimator(wp_, estimate_options_, e, departure_time);
    if (estimator.MinTotalCost() + lower_bound[edge.to] > budget_seconds) {
      continue;
    }
    visited[edge.to] = true;
    Dfs(&ctx, estimator, edge.to, 1);
    visited[edge.to] = false;
    if (result.truncated) break;
  }

  if (result.best_path.empty()) {
    return Status::NotFound("Route: no path within budget found");
  }
  return result;
}

}  // namespace routing
}  // namespace pcde
