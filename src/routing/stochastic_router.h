// DFS-based stochastic routing after Hua & Pei (EDBT 2010) [10] — the
// routing algorithm the paper integrates its estimator into (Sec. 4.3,
// Fig. 18): find the path that maximizes the probability of arriving
// within a travel-time budget.
//
// The search explores simple paths depth-first, extending "path + another
// edge" with an IncrementalEstimator, and prunes a prefix when even its
// fastest possible completion (prefix support minimum + admissible
// reverse-Dijkstra lower bound to the destination) exceeds the budget.
#pragma once

#include <cstddef>
#include <vector>

#include "common/cancel_token.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/estimator.h"
#include "roadnet/graph.h"
#include "roadnet/shortest_path.h"
#include "routing/pruning.h"

namespace pcde {
namespace routing {

struct RouterConfig {
  /// Safety factor (< 1) on free-flow edge times for the admissible lower
  /// bound; sampled travel can beat the speed limit slightly.
  double lower_bound_factor = 0.8;
  /// Hard cap on DFS expansions; the search space of simple paths within a
  /// generous budget is exponential (also true of [10]).
  size_t max_expansions = 500000;
  size_t max_path_edges = 150;
  /// Worker threads for the root fan-out (the DFS subtrees under distinct
  /// first edges run as parallel pool tasks); 0 = hardware concurrency.
  size_t num_threads = 0;
  /// External pool for the root fan-out (not owned): amortizes thread
  /// start-up across Route calls — serving::Engine passes its shared pool
  /// here. When set, `num_threads` only gates the fan-out decision
  /// (1 = run sequentially, skipping the pool entirely).
  ThreadPool* pool = nullptr;
  /// Optional shared result cache (not owned): complete candidate paths are
  /// looked up by decomposition identity before finalizing the chain state,
  /// so repeated Route() calls over the same region (multi-user serving)
  /// reuse each other's sub-path distributions. Must be backed by the same
  /// weight function as the router. nullptr disables caching.
  core::QueryCache* query_cache = nullptr;
  /// Byte budget for the per-root-branch prefix chain-state cache
  /// (core/prefix_state_cache.h): candidate paths sharing a costed
  /// decomposition prefix clone the sweeper state instead of replaying it
  /// — the sub-path cost reuse of routing exploration. One cache per DFS
  /// root branch, so the parallel fan-out stays contention-free; results
  /// are bit-identical with reuse on or off (tests/prefix_state_cache_test
  /// proves it). Opt-in (0 = disabled), like query_cache: on rich
  /// high-rank models absorption rewrites candidate tails, so hits land on
  /// the cheap shallow prefixes and the snapshot copies roughly cancel the
  /// replay savings (the paired route_dfs vs route_dfs_prefix_reuse bench
  /// series measures the trade on your workload); low-rank models
  /// (unit/pairwise chains) share deeper and benefit more.
  size_t prefix_cache_bytes = 0;
  /// Opt-in search pruners (routing/pruning.h). All default off, which is
  /// bit-identical to the pre-pruning router. With num_threads == 1,
  /// incumbent and dominance pruning return exactly the same
  /// (path, probability) as the plain search; cheap_first (an exploration
  /// reorder) and the parallel fan-out preserve the probability exactly
  /// but may resolve an exact probability tie to a different equally-good
  /// path.
  PruningOptions pruning;
  /// Expansion slots a branch reserves from the shared budget per
  /// fetch_add (clamped internally to max_expansions / 8 + 1 so small
  /// caps still truncate near the cap). 1 reproduces the per-node
  /// fetch_add of the baseline.
  size_t expansion_stride = 64;
};

struct RouteResult {
  roadnet::Path best_path;
  double best_probability = 0.0;  // P(travel time <= budget)
  size_t expansions = 0;
  size_t candidate_paths = 0;     // complete paths whose distribution was
                                  // evaluated
  bool truncated = false;         // expansion cap hit
  /// Prefix chain-state cache traffic summed over root branches (all zero
  /// when prefix reuse is disabled).
  uint64_t prefix_cache_hits = 0;
  uint64_t prefix_cache_misses = 0;
  /// Per-pruner attribution counters (summed over root branches).
  /// bound_pruned counts admissible free-flow bound cuts (always active);
  /// the other cut counters stay zero unless their pruner is enabled.
  uint64_t bound_pruned = 0;
  uint64_t incumbent_pruned = 0;
  uint64_t dominance_pruned = 0;
  /// IncrementalEstimator copies actually paid (pruned edges never clone).
  uint64_t estimator_clones = 0;
};

/// \brief Probabilistic budget routing with a pluggable cost-distribution
/// estimator (LB / HP / OD — Fig. 18 compares them by total routing time).
class DfsStochasticRouter {
 public:
  DfsStochasticRouter(const roadnet::Graph& graph,
                      const core::PathWeightFunction& wp,
                      core::EstimateOptions estimate_options,
                      RouterConfig config = RouterConfig());

  /// Finds the path from `from` to `to`, departing at `departure_time`,
  /// with the highest probability of total travel time <= `budget_seconds`.
  /// Returns NotFound when no path can make the budget.
  ///
  /// `cancel` (optional) is polled once per DFS expansion across every root
  /// branch; a tripped token makes the whole search unwind with the token's
  /// Status (kDeadlineExceeded / kCancelled) — never a partial best-path —
  /// with overshoot bounded by one expansion (one estimator extension +
  /// one candidate distribution).
  ///
  /// `pruning_override` (optional) replaces `config.pruning` for this call
  /// only — serving::Engine uses it for per-request pruning knobs.
  StatusOr<RouteResult> Route(roadnet::VertexId from, roadnet::VertexId to,
                              double departure_time, double budget_seconds,
                              const CancelToken* cancel = nullptr,
                              const PruningOptions* pruning_override =
                                  nullptr) const;

 private:
  const roadnet::Graph& graph_;
  const core::PathWeightFunction& wp_;
  core::EstimateOptions estimate_options_;
  RouterConfig config_;
  /// Shared lower-bound oracle (built once in the constructor): per edge,
  /// the larger of factor * free-flow and the minimum support cost over
  /// the edge's unit variables — still admissible, usually much tighter.
  /// Route() runs its reverse Dijkstra over these weights when incumbent
  /// or dominance pruning is on; cuts from the tighter bound remove only
  /// zero-probability completions, so route quality is unchanged.
  std::vector<double> oracle_weight_seconds_;
};

}  // namespace routing
}  // namespace pcde
