#include "serving/engine.h"

#include <optional>
#include <utility>

#include "common/stopwatch.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "roadnet/shortest_path.h"

namespace pcde {
namespace serving {

using core::PathWeightFunction;
using hist::Histogram1D;
using roadnet::Path;

CostSummary SummarizeDistribution(const Histogram1D& dist, StatsMask stats,
                                  double budget_seconds,
                                  const std::vector<double>& quantiles) {
  CostSummary summary;
  summary.num_buckets = dist.NumBuckets();
  if (dist.empty()) return summary;
  if (stats & kStatMean) summary.mean = dist.Mean();
  if (stats & kStatVariance) summary.variance = dist.Variance();
  if (stats & kStatSupport) {
    summary.support_lo = dist.Min();
    summary.support_hi = dist.Max();
  }
  if ((stats & kStatCdfAtBudget) && !std::isnan(budget_seconds)) {
    summary.prob_within_budget = dist.ProbWithin(budget_seconds);
  }
  if (stats & kStatQuantiles) {
    summary.quantiles.reserve(quantiles.size());
    for (double q : quantiles) summary.quantiles.push_back(dist.Quantile(q));
  }
  return summary;
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

namespace {

/// The last rung of the degradation ladder: synthesize an uncovered edge's
/// distribution exactly as instantiation's speed-limit prior would have —
/// an edge missing from the frozen model estimates identically to one
/// whose fallback variable was baked in at build time.
core::EdgeFallbackFn MakeEdgeFallback(const roadnet::Graph& graph) {
  return [&graph](roadnet::EdgeId e) -> StatusOr<hist::Histogram1D> {
    if (static_cast<size_t>(e) >= graph.NumEdges()) {
      return Status::InvalidArgument("edge fallback: unknown edge " +
                                     std::to_string(e));
    }
    return core::FreeFlowEdgeHistogram(graph.edge(e), core::HybridParams());
  };
}

}  // namespace

std::shared_ptr<const Engine::Epoch> Engine::BuildEpoch(
    std::shared_ptr<const PathWeightFunction> model, uint64_t sequence) const {
  auto epoch = std::make_shared<Epoch>();
  epoch->sequence = sequence;
  epoch->model = std::move(model);
  epoch->estimator = std::make_unique<core::HybridEstimator>(
      *epoch->model, options_.estimate);
  epoch->estimator->set_query_cache(cache_.get());
  if (options_.graph != nullptr) {
    epoch->estimator->set_edge_fallback(MakeEdgeFallback(*options_.graph));
    routing::RouterConfig config;
    config.lower_bound_factor = options_.route_lower_bound_factor;
    config.max_expansions = options_.route_max_expansions;
    config.max_path_edges = options_.route_max_path_edges;
    config.num_threads = pool_->num_threads();
    config.pool = pool_.get();
    config.query_cache = cache_.get();
    config.prefix_cache_bytes = options_.prefix_cache_bytes;
    config.pruning = options_.route_pruning;
    epoch->router = std::make_unique<routing::DfsStochasticRouter>(
        *options_.graph, *epoch->model, options_.estimate, config);
  }
  return epoch;
}

std::shared_ptr<const Engine::Epoch> Engine::CurrentEpoch() const {
  return std::atomic_load(&epoch_);
}

uint64_t Engine::PublishLocked(
    std::shared_ptr<const PathWeightFunction> model) {
  const uint64_t sequence = next_sequence_++;
  std::atomic_store(&epoch_, BuildEpoch(std::move(model), sequence));
  return sequence;
}

StatusOr<std::unique_ptr<Engine>> Engine::Make(
    EngineOptions options, std::unique_ptr<PathWeightFunction> model) {
  if (options.query_cache_bytes > 0 && options.cache_time_bucket_seconds <= 0.0) {
    return Status::InvalidArgument(
        "Engine: cache_time_bucket_seconds must be positive");
  }
  std::unique_ptr<Engine> engine(new Engine(std::move(options)));
  const EngineOptions& opts = engine->options_;
  if (opts.query_cache_bytes > 0) {
    core::QueryCacheOptions cache_options;
    cache_options.max_bytes = opts.query_cache_bytes;
    cache_options.num_shards = opts.query_cache_shards;
    cache_options.time_bucket_seconds = opts.cache_time_bucket_seconds;
    engine->cache_ = std::make_unique<core::QueryCache>(cache_options);
  }
  engine->pool_ = std::make_unique<ThreadPool>(opts.num_threads);
  AdmissionController::Options admission_options;
  admission_options.max_inflight = opts.max_inflight_requests;
  admission_options.max_queue_depth = opts.max_queue_depth;
  admission_options.queue_timeout_seconds = opts.queue_timeout_seconds;
  engine->admission_ =
      std::make_unique<AdmissionController>(admission_options);
  engine->PublishLocked(std::shared_ptr<const PathWeightFunction>(
      std::move(model)));  // first epoch; no concurrent readers yet
  return engine;
}

StatusOr<uint64_t> Engine::Swap(const std::string& model_path) {
  if (model_path.empty()) {
    return Status::InvalidArgument("Engine::Swap: model_path is empty");
  }
  std::lock_guard<std::mutex> lock(swap_mutex_);
  // Short-circuit a refresh to content already being served: the header
  // checksum IS the model fingerprint. A failed peek (text artifact,
  // unreadable file) is not a swap failure yet — the full load below is
  // the authority, and it validates the whole payload either way.
  auto peek = core::PeekBinaryArtifactFingerprint(model_path);
  const std::shared_ptr<const Epoch> current = CurrentEpoch();
  if (peek.ok() && peek.value() == current->model->fingerprint()) {
    return current->sequence;
  }
  auto loaded = options_.use_mmap
                    ? core::LoadWeightFunctionBinary(model_path,
                                                     /*use_mmap=*/true)
                    : core::LoadWeightFunction(model_path);
  // Rejection leaves the published epoch untouched: the old model keeps
  // serving and the caller gets the loader's Status verbatim.
  if (!loaded.ok()) return loaded.status();
  return PublishLocked(std::make_shared<PathWeightFunction>(
      std::move(loaded).value()));
}

StatusOr<uint64_t> Engine::Swap(PathWeightFunction model) {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  return PublishLocked(
      std::make_shared<PathWeightFunction>(std::move(model)));
}

uint64_t Engine::epoch_sequence() const { return CurrentEpoch()->sequence; }

const PathWeightFunction& Engine::model() const {
  return *CurrentEpoch()->model;
}

std::shared_ptr<const PathWeightFunction> Engine::model_snapshot() const {
  return CurrentEpoch()->model;
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(EngineOptions options) {
  if (options.model_path.empty()) {
    return Status::InvalidArgument(
        "Engine::Open: options.model_path is empty (or adopt a built model "
        "via Open(PathWeightFunction, options))");
  }
  auto loaded = options.use_mmap
                    ? core::LoadWeightFunctionBinary(options.model_path,
                                                     /*use_mmap=*/true)
                    : core::LoadWeightFunction(options.model_path);
  if (!loaded.ok()) return loaded.status();
  return Make(std::move(options), std::make_unique<PathWeightFunction>(
                                      std::move(loaded).value()));
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(PathWeightFunction model,
                                               EngineOptions options) {
  return Make(std::move(options),
              std::make_unique<PathWeightFunction>(std::move(model)));
}

StatusOr<Path> Engine::ResolvePath(const PathSpec& spec) const {
  if (spec.is_od) {
    const roadnet::Graph* graph = options_.graph;
    if (graph == nullptr) {
      return Status::FailedPrecondition(
          "ResolvePath: OD PathSpec needs EngineOptions::graph");
    }
    if (spec.from >= graph->NumVertices() || spec.to >= graph->NumVertices()) {
      return Status::InvalidArgument("ResolvePath: unknown vertex");
    }
    if (spec.from == spec.to) {
      return Status::InvalidArgument("ResolvePath: from == to");
    }
    // Free-flow resolution is deterministic and departure-independent, so
    // repeated OD queries select the same path — and therefore the same
    // decomposition and cache entries.
    return roadnet::ShortestPath(*graph, spec.from, spec.to,
                                 roadnet::FreeFlowWeight(*graph));
  }
  if (spec.edges.empty()) {
    return Status::InvalidArgument("ResolvePath: empty edge path");
  }
  if (options_.graph != nullptr) {
    PCDE_RETURN_NOT_OK(roadnet::ValidatePath(*options_.graph,
                                             spec.edges.edges()));
  }
  return spec.edges;
}

namespace {

/// Builds the response around an estimated distribution; moves the
/// histogram in when the request asked for it.
EstimateResponse MakeResponse(const EstimateRequest& request, Path path,
                              Histogram1D dist,
                              const core::EstimateBreakdown* breakdown) {
  EstimateResponse response;
  response.summary = SummarizeDistribution(
      dist, request.stats, request.budget_seconds, request.quantiles);
  response.resolved_path = std::move(path);
  if (breakdown != nullptr) {
    response.served_from_cache = breakdown->cache_hit;
    if (request.want_breakdown) response.breakdown = *breakdown;
  }
  if (request.want_distribution) response.distribution = std::move(dist);
  return response;
}

/// Stamps epoch + fallback provenance: which published model served this
/// response and how far the degradation ladder descended for it.
void StampProvenance(EstimateResponse* response, const uint64_t fingerprint,
                     const uint64_t epoch,
                     const core::FallbackProvenance& provenance) {
  response->model_fingerprint = fingerprint;
  response->epoch = epoch;
  response->summary.degradation = provenance.level;
  response->summary.covered_fraction = provenance.covered_fraction;
}

/// Builds the per-request cancellation context: when the request sets a
/// timeout, a deadline token lives in `storage` (the caller's frame, so
/// batch workers get independent deadlines) linked under the request's
/// external token. Returns the token the estimator polls — null when the
/// request has neither, which is the exact pre-deadline serving path.
const CancelToken* SetupCancel(double timeout_seconds,
                               const CancelToken* external,
                               std::optional<CancelToken>* storage) {
  if (timeout_seconds <= 0.0) return external;
  storage->emplace(CancelToken::DeadlineAfter(timeout_seconds));
  (*storage)->set_parent(external);
  return &storage->value();
}

}  // namespace

StatusOr<EstimateResponse> Engine::Estimate(
    const EstimateRequest& request) const {
  Stopwatch watch;
  // Admission before any work: at capacity the request sheds with
  // kResourceExhausted instead of joining an unbounded queue.
  AdmissionController::Slot slot;
  uint64_t inflight_now = 0;
  PCDE_RETURN_NOT_OK(admission_->Acquire(&slot, &inflight_now));
  // The deadline clock starts at admission, not at estimation: queueing
  // time (when queue_timeout_seconds allows it) counts against the budget.
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel =
      SetupCancel(request.timeout_seconds, request.cancel, &deadline_token);
  // Pin one epoch for the whole request: resolution, estimation, and
  // provenance all read the same published model even if Swap lands
  // mid-request.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  PCDE_ASSIGN_OR_RETURN(path, ResolvePath(request.path));
  core::EstimateBreakdown breakdown;
  core::FallbackProvenance provenance;
  auto dist = epoch->estimator->EstimateWithFallback(
      path, request.departure_time, &provenance, &breakdown, cancel);
  if (!dist.ok()) {
    CountUnwind(dist.status());
    return dist.status();
  }
  EstimateResponse response = MakeResponse(request, std::move(path),
                                           std::move(dist).value(), &breakdown);
  StampProvenance(&response, epoch->model->fingerprint(), epoch->sequence,
                  provenance);
  response.inflight_at_admit = inflight_now;
  response.serve_seconds = watch.ElapsedSeconds();
  return response;
}

std::vector<StatusOr<EstimateResponse>> Engine::EstimateBatch(
    const EstimateRequest* requests, size_t num_requests) const {
  // One epoch pin for the whole batch: every response of a batch is served
  // by the same published model, whatever Swap does meanwhile.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  const uint64_t fingerprint = epoch->model->fingerprint();
  std::vector<StatusOr<EstimateResponse>> responses(
      num_requests, Status::Internal("EstimateBatch: request not run"));
  // One pool task per request, resolution included (OD resolution is a
  // Dijkstra run — the dominant per-request cost of the OD scenario, so it
  // must not serialize on the caller thread). A request that fails
  // resolution or estimation gets its own Status and the rest proceed —
  // per-request error isolation. Resolution and estimation are
  // deterministic, so the fan-out cannot change results.
  pool_->ParallelFor(num_requests, [this, requests, &responses, &epoch,
                                    fingerprint](size_t i) {
    Stopwatch watch;
    // Admission is per request, inside the task: a shed request fails
    // alone with kResourceExhausted — the one-bad-request-never-fails-
    // the-batch contract extends to overload.
    AdmissionController::Slot slot;
    uint64_t inflight_now = 0;
    Status admitted = admission_->Acquire(&slot, &inflight_now);
    if (!admitted.ok()) {
      responses[i] = admitted;
      return;
    }
    // Each request's deadline runs from its own task start (admission
    // included), independent of its batch siblings.
    std::optional<CancelToken> deadline_token;
    const CancelToken* cancel = SetupCancel(requests[i].timeout_seconds,
                                            requests[i].cancel,
                                            &deadline_token);
    auto resolved = ResolvePath(requests[i].path);
    if (!resolved.ok()) {
      responses[i] = resolved.status();
      return;
    }
    core::EstimateBreakdown breakdown;
    core::FallbackProvenance provenance;
    auto dist = epoch->estimator->EstimateWithFallback(
        resolved.value(), requests[i].departure_time, &provenance, &breakdown,
        cancel);
    if (!dist.ok()) {
      CountUnwind(dist.status());
      responses[i] = dist.status();
      return;
    }
    EstimateResponse response =
        MakeResponse(requests[i], std::move(resolved).value(),
                     std::move(dist).value(), nullptr);
    response.served_from_cache = breakdown.cache_hit;
    StampProvenance(&response, fingerprint, epoch->sequence, provenance);
    response.inflight_at_admit = inflight_now;
    response.serve_seconds = watch.ElapsedSeconds();
    responses[i] = std::move(response);
  });
  return responses;
}

StatusOr<RouteResponse> Engine::Route(const RouteRequest& request) const {
  AdmissionController::Slot slot;
  uint64_t inflight_now = 0;
  PCDE_RETURN_NOT_OK(admission_->Acquire(&slot, &inflight_now));
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel =
      SetupCancel(request.timeout_seconds, request.cancel, &deadline_token);
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  if (epoch->router == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Route needs EngineOptions::graph");
  }
  auto result = epoch->router->Route(
      request.from, request.to, request.departure_time,
      request.budget_seconds, cancel,
      request.use_pruning_override ? &request.pruning : nullptr);
  if (!result.ok()) {
    CountUnwind(result.status());
    return result.status();
  }
  RouteResponse response;
  response.best_path = std::move(result.value().best_path);
  response.on_time_probability = result.value().best_probability;
  response.expansions = result.value().expansions;
  response.candidate_paths = result.value().candidate_paths;
  response.truncated = result.value().truncated;
  response.prefix_cache_hits = result.value().prefix_cache_hits;
  response.prefix_cache_misses = result.value().prefix_cache_misses;
  response.bound_pruned = result.value().bound_pruned;
  response.incumbent_pruned = result.value().incumbent_pruned;
  response.dominance_pruned = result.value().dominance_pruned;
  response.estimator_clones = result.value().estimator_clones;
  route_bound_pruned_.fetch_add(response.bound_pruned,
                                std::memory_order_relaxed);
  route_incumbent_pruned_.fetch_add(response.incumbent_pruned,
                                    std::memory_order_relaxed);
  route_dominance_pruned_.fetch_add(response.dominance_pruned,
                                    std::memory_order_relaxed);
  route_estimator_clones_.fetch_add(response.estimator_clones,
                                    std::memory_order_relaxed);
  response.model_fingerprint = epoch->model->fingerprint();
  response.epoch = epoch->sequence;
  response.inflight_at_admit = inflight_now;
  return response;
}

void Engine::CountUnwind(const Status& status) const {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() == StatusCode::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
}

EngineStats Engine::stats() const {
  const AdmissionController::Stats admission = admission_->stats();
  EngineStats stats;
  stats.admitted = admission.admitted;
  stats.shed = admission.shed;
  stats.inflight = admission.inflight;
  stats.inflight_highwater = admission.inflight_highwater;
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.route_bound_pruned =
      route_bound_pruned_.load(std::memory_order_relaxed);
  stats.route_incumbent_pruned =
      route_incumbent_pruned_.load(std::memory_order_relaxed);
  stats.route_dominance_pruned =
      route_dominance_pruned_.load(std::memory_order_relaxed);
  stats.route_estimator_clones =
      route_estimator_clones_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serving
}  // namespace pcde
