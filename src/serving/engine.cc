#include "serving/engine.h"

#include <utility>

#include "common/stopwatch.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "roadnet/shortest_path.h"

namespace pcde {
namespace serving {

using core::PathWeightFunction;
using hist::Histogram1D;
using roadnet::Path;

CostSummary SummarizeDistribution(const Histogram1D& dist, StatsMask stats,
                                  double budget_seconds,
                                  const std::vector<double>& quantiles) {
  CostSummary summary;
  summary.num_buckets = dist.NumBuckets();
  if (dist.empty()) return summary;
  if (stats & kStatMean) summary.mean = dist.Mean();
  if (stats & kStatVariance) summary.variance = dist.Variance();
  if (stats & kStatSupport) {
    summary.support_lo = dist.Min();
    summary.support_hi = dist.Max();
  }
  if ((stats & kStatCdfAtBudget) && !std::isnan(budget_seconds)) {
    summary.prob_within_budget = dist.ProbWithin(budget_seconds);
  }
  if (stats & kStatQuantiles) {
    summary.quantiles.reserve(quantiles.size());
    for (double q : quantiles) summary.quantiles.push_back(dist.Quantile(q));
  }
  return summary;
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

namespace {

/// The last rung of the degradation ladder: synthesize an uncovered edge's
/// distribution exactly as instantiation's speed-limit prior would have —
/// an edge missing from the frozen model estimates identically to one
/// whose fallback variable was baked in at build time.
core::EdgeFallbackFn MakeEdgeFallback(const roadnet::Graph& graph) {
  return [&graph](roadnet::EdgeId e) -> StatusOr<hist::Histogram1D> {
    if (static_cast<size_t>(e) >= graph.NumEdges()) {
      return Status::InvalidArgument("edge fallback: unknown edge " +
                                     std::to_string(e));
    }
    return core::FreeFlowEdgeHistogram(graph.edge(e), core::HybridParams());
  };
}

}  // namespace

std::shared_ptr<const Engine::Epoch> Engine::BuildEpoch(
    std::shared_ptr<const PathWeightFunction> model, uint64_t sequence) const {
  auto epoch = std::make_shared<Epoch>();
  epoch->sequence = sequence;
  epoch->model = std::move(model);
  epoch->estimator = std::make_unique<core::HybridEstimator>(
      *epoch->model, options_.estimate);
  epoch->estimator->set_query_cache(cache_.get());
  if (options_.graph != nullptr) {
    epoch->estimator->set_edge_fallback(MakeEdgeFallback(*options_.graph));
    routing::RouterConfig config;
    config.lower_bound_factor = options_.route_lower_bound_factor;
    config.max_expansions = options_.route_max_expansions;
    config.max_path_edges = options_.route_max_path_edges;
    config.num_threads = pool_->num_threads();
    config.pool = pool_.get();
    config.query_cache = cache_.get();
    config.prefix_cache_bytes = options_.prefix_cache_bytes;
    epoch->router = std::make_unique<routing::DfsStochasticRouter>(
        *options_.graph, *epoch->model, options_.estimate, config);
  }
  return epoch;
}

std::shared_ptr<const Engine::Epoch> Engine::CurrentEpoch() const {
  return std::atomic_load(&epoch_);
}

uint64_t Engine::PublishLocked(
    std::shared_ptr<const PathWeightFunction> model) {
  const uint64_t sequence = next_sequence_++;
  std::atomic_store(&epoch_, BuildEpoch(std::move(model), sequence));
  return sequence;
}

StatusOr<std::unique_ptr<Engine>> Engine::Make(
    EngineOptions options, std::unique_ptr<PathWeightFunction> model) {
  if (options.query_cache_bytes > 0 && options.cache_time_bucket_seconds <= 0.0) {
    return Status::InvalidArgument(
        "Engine: cache_time_bucket_seconds must be positive");
  }
  std::unique_ptr<Engine> engine(new Engine(std::move(options)));
  const EngineOptions& opts = engine->options_;
  if (opts.query_cache_bytes > 0) {
    core::QueryCacheOptions cache_options;
    cache_options.max_bytes = opts.query_cache_bytes;
    cache_options.num_shards = opts.query_cache_shards;
    cache_options.time_bucket_seconds = opts.cache_time_bucket_seconds;
    engine->cache_ = std::make_unique<core::QueryCache>(cache_options);
  }
  engine->pool_ = std::make_unique<ThreadPool>(opts.num_threads);
  engine->PublishLocked(std::shared_ptr<const PathWeightFunction>(
      std::move(model)));  // first epoch; no concurrent readers yet
  return engine;
}

StatusOr<uint64_t> Engine::Swap(const std::string& model_path) {
  if (model_path.empty()) {
    return Status::InvalidArgument("Engine::Swap: model_path is empty");
  }
  std::lock_guard<std::mutex> lock(swap_mutex_);
  // Short-circuit a refresh to content already being served: the header
  // checksum IS the model fingerprint. A failed peek (text artifact,
  // unreadable file) is not a swap failure yet — the full load below is
  // the authority, and it validates the whole payload either way.
  auto peek = core::PeekBinaryArtifactFingerprint(model_path);
  const std::shared_ptr<const Epoch> current = CurrentEpoch();
  if (peek.ok() && peek.value() == current->model->fingerprint()) {
    return current->sequence;
  }
  auto loaded = options_.use_mmap
                    ? core::LoadWeightFunctionBinary(model_path,
                                                     /*use_mmap=*/true)
                    : core::LoadWeightFunction(model_path);
  // Rejection leaves the published epoch untouched: the old model keeps
  // serving and the caller gets the loader's Status verbatim.
  if (!loaded.ok()) return loaded.status();
  return PublishLocked(std::make_shared<PathWeightFunction>(
      std::move(loaded).value()));
}

StatusOr<uint64_t> Engine::Swap(PathWeightFunction model) {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  return PublishLocked(
      std::make_shared<PathWeightFunction>(std::move(model)));
}

uint64_t Engine::epoch_sequence() const { return CurrentEpoch()->sequence; }

const PathWeightFunction& Engine::model() const {
  return *CurrentEpoch()->model;
}

std::shared_ptr<const PathWeightFunction> Engine::model_snapshot() const {
  return CurrentEpoch()->model;
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(EngineOptions options) {
  if (options.model_path.empty()) {
    return Status::InvalidArgument(
        "Engine::Open: options.model_path is empty (or adopt a built model "
        "via Open(PathWeightFunction, options))");
  }
  auto loaded = options.use_mmap
                    ? core::LoadWeightFunctionBinary(options.model_path,
                                                     /*use_mmap=*/true)
                    : core::LoadWeightFunction(options.model_path);
  if (!loaded.ok()) return loaded.status();
  return Make(std::move(options), std::make_unique<PathWeightFunction>(
                                      std::move(loaded).value()));
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(PathWeightFunction model,
                                               EngineOptions options) {
  return Make(std::move(options),
              std::make_unique<PathWeightFunction>(std::move(model)));
}

StatusOr<Path> Engine::ResolvePath(const PathSpec& spec) const {
  if (spec.is_od) {
    const roadnet::Graph* graph = options_.graph;
    if (graph == nullptr) {
      return Status::FailedPrecondition(
          "ResolvePath: OD PathSpec needs EngineOptions::graph");
    }
    if (spec.from >= graph->NumVertices() || spec.to >= graph->NumVertices()) {
      return Status::InvalidArgument("ResolvePath: unknown vertex");
    }
    if (spec.from == spec.to) {
      return Status::InvalidArgument("ResolvePath: from == to");
    }
    // Free-flow resolution is deterministic and departure-independent, so
    // repeated OD queries select the same path — and therefore the same
    // decomposition and cache entries.
    return roadnet::ShortestPath(*graph, spec.from, spec.to,
                                 roadnet::FreeFlowWeight(*graph));
  }
  if (spec.edges.empty()) {
    return Status::InvalidArgument("ResolvePath: empty edge path");
  }
  if (options_.graph != nullptr) {
    PCDE_RETURN_NOT_OK(roadnet::ValidatePath(*options_.graph,
                                             spec.edges.edges()));
  }
  return spec.edges;
}

namespace {

/// Builds the response around an estimated distribution; moves the
/// histogram in when the request asked for it.
EstimateResponse MakeResponse(const EstimateRequest& request, Path path,
                              Histogram1D dist,
                              const core::EstimateBreakdown* breakdown) {
  EstimateResponse response;
  response.summary = SummarizeDistribution(
      dist, request.stats, request.budget_seconds, request.quantiles);
  response.resolved_path = std::move(path);
  if (breakdown != nullptr) {
    response.served_from_cache = breakdown->cache_hit;
    if (request.want_breakdown) response.breakdown = *breakdown;
  }
  if (request.want_distribution) response.distribution = std::move(dist);
  return response;
}

/// Stamps epoch + fallback provenance: which published model served this
/// response and how far the degradation ladder descended for it.
void StampProvenance(EstimateResponse* response, const uint64_t fingerprint,
                     const uint64_t epoch,
                     const core::FallbackProvenance& provenance) {
  response->model_fingerprint = fingerprint;
  response->epoch = epoch;
  response->summary.degradation = provenance.level;
  response->summary.covered_fraction = provenance.covered_fraction;
}

}  // namespace

StatusOr<EstimateResponse> Engine::Estimate(
    const EstimateRequest& request) const {
  Stopwatch watch;
  // Pin one epoch for the whole request: resolution, estimation, and
  // provenance all read the same published model even if Swap lands
  // mid-request.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  PCDE_ASSIGN_OR_RETURN(path, ResolvePath(request.path));
  core::EstimateBreakdown breakdown;
  core::FallbackProvenance provenance;
  auto dist = epoch->estimator->EstimateWithFallback(
      path, request.departure_time, &provenance, &breakdown);
  if (!dist.ok()) return dist.status();
  EstimateResponse response = MakeResponse(request, std::move(path),
                                           std::move(dist).value(), &breakdown);
  StampProvenance(&response, epoch->model->fingerprint(), epoch->sequence,
                  provenance);
  response.serve_seconds = watch.ElapsedSeconds();
  return response;
}

std::vector<StatusOr<EstimateResponse>> Engine::EstimateBatch(
    const EstimateRequest* requests, size_t num_requests) const {
  // One epoch pin for the whole batch: every response of a batch is served
  // by the same published model, whatever Swap does meanwhile.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  const uint64_t fingerprint = epoch->model->fingerprint();
  std::vector<StatusOr<EstimateResponse>> responses(
      num_requests, Status::Internal("EstimateBatch: request not run"));
  // One pool task per request, resolution included (OD resolution is a
  // Dijkstra run — the dominant per-request cost of the OD scenario, so it
  // must not serialize on the caller thread). A request that fails
  // resolution or estimation gets its own Status and the rest proceed —
  // per-request error isolation. Resolution and estimation are
  // deterministic, so the fan-out cannot change results.
  pool_->ParallelFor(num_requests, [this, requests, &responses, &epoch,
                                    fingerprint](size_t i) {
    Stopwatch watch;
    auto resolved = ResolvePath(requests[i].path);
    if (!resolved.ok()) {
      responses[i] = resolved.status();
      return;
    }
    core::EstimateBreakdown breakdown;
    core::FallbackProvenance provenance;
    auto dist = epoch->estimator->EstimateWithFallback(
        resolved.value(), requests[i].departure_time, &provenance, &breakdown);
    if (!dist.ok()) {
      responses[i] = dist.status();
      return;
    }
    EstimateResponse response =
        MakeResponse(requests[i], std::move(resolved).value(),
                     std::move(dist).value(), nullptr);
    response.served_from_cache = breakdown.cache_hit;
    StampProvenance(&response, fingerprint, epoch->sequence, provenance);
    response.serve_seconds = watch.ElapsedSeconds();
    responses[i] = std::move(response);
  });
  return responses;
}

StatusOr<RouteResponse> Engine::Route(const RouteRequest& request) const {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  if (epoch->router == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Route needs EngineOptions::graph");
  }
  auto result = epoch->router->Route(request.from, request.to,
                                     request.departure_time,
                                     request.budget_seconds);
  if (!result.ok()) return result.status();
  RouteResponse response;
  response.best_path = std::move(result.value().best_path);
  response.on_time_probability = result.value().best_probability;
  response.expansions = result.value().expansions;
  response.candidate_paths = result.value().candidate_paths;
  response.truncated = result.value().truncated;
  response.prefix_cache_hits = result.value().prefix_cache_hits;
  response.prefix_cache_misses = result.value().prefix_cache_misses;
  response.model_fingerprint = epoch->model->fingerprint();
  response.epoch = epoch->sequence;
  return response;
}

}  // namespace serving
}  // namespace pcde
