#include "serving/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "roadnet/shortest_path.h"

namespace pcde {
namespace serving {

using core::PathWeightFunction;
using hist::Histogram1D;
using roadnet::Path;

CostSummary SummarizeDistribution(const Histogram1D& dist, StatsMask stats,
                                  double budget_seconds,
                                  const std::vector<double>& quantiles) {
  CostSummary summary;
  summary.num_buckets = dist.NumBuckets();
  if (dist.empty()) return summary;
  if (stats & kStatMean) summary.mean = dist.Mean();
  if (stats & kStatVariance) summary.variance = dist.Variance();
  if (stats & kStatSupport) {
    summary.support_lo = dist.Min();
    summary.support_hi = dist.Max();
  }
  if ((stats & kStatCdfAtBudget) && !std::isnan(budget_seconds)) {
    summary.prob_within_budget = dist.ProbWithin(budget_seconds);
  }
  if (stats & kStatQuantiles) {
    summary.quantiles.reserve(quantiles.size());
    for (double q : quantiles) summary.quantiles.push_back(dist.Quantile(q));
  }
  return summary;
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

namespace {

/// The last rung of the degradation ladder: synthesize an uncovered edge's
/// distribution exactly as instantiation's speed-limit prior would have —
/// an edge missing from the frozen model estimates identically to one
/// whose fallback variable was baked in at build time.
core::EdgeFallbackFn MakeEdgeFallback(const roadnet::Graph& graph) {
  return [&graph](roadnet::EdgeId e) -> StatusOr<hist::Histogram1D> {
    if (static_cast<size_t>(e) >= graph.NumEdges()) {
      return Status::InvalidArgument("edge fallback: unknown edge " +
                                     std::to_string(e));
    }
    return core::FreeFlowEdgeHistogram(graph.edge(e), core::HybridParams());
  };
}

}  // namespace

std::shared_ptr<const Engine::Epoch> Engine::BuildEpoch(
    std::shared_ptr<const PathWeightFunction> model, uint64_t sequence) const {
  auto epoch = std::make_shared<Epoch>();
  epoch->sequence = sequence;
  epoch->model = std::move(model);
  epoch->estimator = std::make_unique<core::HybridEstimator>(
      *epoch->model, options_.estimate);
  epoch->estimator->set_query_cache(cache_.get());
  if (options_.graph != nullptr) {
    epoch->estimator->set_edge_fallback(MakeEdgeFallback(*options_.graph));
    routing::RouterConfig config;
    config.lower_bound_factor = options_.route_lower_bound_factor;
    config.max_expansions = options_.route_max_expansions;
    config.max_path_edges = options_.route_max_path_edges;
    config.num_threads = pool_->num_threads();
    config.pool = pool_;
    config.query_cache = cache_.get();
    config.prefix_cache_bytes = options_.prefix_cache_bytes;
    config.pruning = options_.route_pruning;
    epoch->router = std::make_unique<routing::DfsStochasticRouter>(
        *options_.graph, *epoch->model, options_.estimate, config);
  }
  return epoch;
}

std::shared_ptr<const Engine::Epoch> Engine::CurrentEpoch() const {
  return std::atomic_load(&epoch_);
}

uint64_t Engine::PublishLocked(
    std::shared_ptr<const PathWeightFunction> model) {
  return PublishEpochLocked(BuildEpoch(std::move(model), next_sequence_));
}

uint64_t Engine::PublishEpochLocked(std::shared_ptr<const Epoch> epoch) {
  const uint64_t sequence = epoch->sequence;
  next_sequence_ = sequence + 1;
  std::shared_ptr<const Epoch> replaced = std::atomic_load(&epoch_);
  std::atomic_store(&epoch_, std::move(epoch));
  // Retain the replaced epoch for RollbackToPrevious when the policy keeps
  // a ring; with capacity 0 (default) `replaced` drops here and the old
  // model tears down when its last in-flight request finishes — the exact
  // policy-free lifecycle.
  const size_t capacity = options_.swap_policy.rollback_capacity;
  if (capacity > 0 && replaced != nullptr) {
    previous_epochs_.push_back(std::move(replaced));
    while (previous_epochs_.size() > capacity) previous_epochs_.pop_front();
  }
  return sequence;
}

Status Engine::VerifyCandidate(const Epoch& candidate,
                               const std::vector<GoldenProbe>& probes) const {
  auto reject = [this](const std::string& what) {
    probe_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("Engine::Swap: candidate rejected: " +
                                   what);
  };
  if (PCDE_FAULT_POINT("serving.swap.verify")) {
    return reject("injected verification fault");
  }
  for (size_t i = 0; i < probes.size(); ++i) {
    const GoldenProbe& probe = probes[i];
    const std::string which = "golden probe #" + std::to_string(i);
    auto resolved = ResolvePath(probe.request.path);
    if (!resolved.ok()) {
      return reject(which + " failed to resolve: " +
                    resolved.status().message());
    }
    core::EstimateBreakdown breakdown;
    core::FallbackProvenance provenance;
    auto dist = candidate.estimator->EstimateWithFallback(
        resolved.value(), probe.request.departure_time, &provenance,
        &breakdown, /*cancel=*/nullptr);
    if (!dist.ok()) {
      return reject(which + " errored: " + dist.status().message());
    }
    if (!probe.has_reference) continue;
    CostSummary got = SummarizeDistribution(
        dist.value(), probe.request.stats, probe.request.budget_seconds,
        probe.request.quantiles);
    // Mirror the provenance stamping of a served response: references are
    // stamped from EstimateResponse::summary, which carries it.
    got.degradation = provenance.level;
    got.covered_fraction = provenance.covered_fraction;
    if (!got.ExactlyEquals(probe.reference)) {
      return reject(which + " diverged from its stamped reference");
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> Engine::VerifyAndPublishLocked(
    std::shared_ptr<const PathWeightFunction> model,
    const SwapOptions& swap_options) {
  // Build ONE candidate epoch, verify it unpublished, and publish the very
  // object that was verified: a rejected candidate is dropped here without
  // ever being reachable by a request.
  std::shared_ptr<const Epoch> candidate =
      BuildEpoch(std::move(model), next_sequence_);
  const std::vector<GoldenProbe>& probes = swap_options.probes.empty()
                                               ? options_.swap_policy.probes
                                               : swap_options.probes;
  PCDE_RETURN_NOT_OK(VerifyCandidate(*candidate, probes));
  return PublishEpochLocked(std::move(candidate));
}

StatusOr<std::unique_ptr<Engine>> Engine::Make(
    EngineOptions options, std::unique_ptr<PathWeightFunction> model) {
  if (options.query_cache_bytes > 0 && options.cache_time_bucket_seconds <= 0.0) {
    return Status::InvalidArgument(
        "Engine: cache_time_bucket_seconds must be positive");
  }
  std::unique_ptr<Engine> engine(new Engine(std::move(options)));
  const EngineOptions& opts = engine->options_;
  if (opts.query_cache_bytes > 0) {
    core::QueryCacheOptions cache_options;
    cache_options.max_bytes = opts.query_cache_bytes;
    cache_options.num_shards = opts.query_cache_shards;
    cache_options.time_bucket_seconds = opts.cache_time_bucket_seconds;
    engine->cache_ = std::make_unique<core::QueryCache>(cache_options);
  }
  if (opts.shared_pool != nullptr) {
    engine->pool_ = opts.shared_pool;
  } else {
    engine->owned_pool_ = std::make_unique<ThreadPool>(opts.num_threads);
    engine->pool_ = engine->owned_pool_.get();
  }
  AdmissionController::Options admission_options;
  admission_options.max_inflight = opts.max_inflight_requests;
  admission_options.max_queue_depth = opts.max_queue_depth;
  admission_options.queue_timeout_seconds = opts.queue_timeout_seconds;
  engine->admission_ =
      std::make_unique<AdmissionController>(admission_options);
  engine->PublishLocked(std::shared_ptr<const PathWeightFunction>(
      std::move(model)));  // first epoch; no concurrent readers yet
  return engine;
}

namespace {

/// A transient swap failure is one a retry can plausibly fix: an IO error
/// (kInternal) or a missing file (kNotFound — a publisher mid-rename).
/// Content errors (kInvalidArgument: corrupt payload, version skew) are
/// permanent — the bytes will not fix themselves.
bool IsTransientSwapFailure(const Status& status) {
  return status.code() == StatusCode::kInternal ||
         status.code() == StatusCode::kNotFound;
}

/// Exponential backoff with deterministic jitter before retry `attempt`
/// (1-based count of attempts already made). Sleeps in short slices so a
/// tripping cancel token abandons the wait within ~10 ms.
void BackoffBeforeRetry(const SwapPolicy& policy, size_t attempt, Rng* jitter,
                        const CancelToken* cancel) {
  double backoff = policy.initial_backoff_seconds *
                   std::pow(policy.backoff_multiplier,
                            static_cast<double>(attempt - 1));
  backoff = std::min(backoff, policy.max_backoff_seconds);
  const double j = std::min(std::max(policy.jitter_fraction, 0.0), 1.0);
  if (j > 0.0) backoff *= jitter->Uniform(1.0 - j, 1.0 + j);
  if (backoff <= 0.0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(backoff));
  while (std::chrono::steady_clock::now() < deadline) {
    if (CancelToken::Check(cancel)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

StatusOr<uint64_t> Engine::Swap(const std::string& model_path) {
  return Swap(model_path, SwapOptions());
}

StatusOr<uint64_t> Engine::Swap(const std::string& model_path,
                                const SwapOptions& swap_options) {
  if (model_path.empty()) {
    return Status::InvalidArgument("Engine::Swap: model_path is empty");
  }
  std::lock_guard<std::mutex> lock(swap_mutex_);
  // Short-circuit a refresh to content already being served: the header
  // checksum IS the model fingerprint. A failed peek (text artifact,
  // unreadable file) is not a swap failure yet — the full load below is
  // the authority, and it validates the whole payload either way.
  auto peek = core::PeekBinaryArtifactFingerprint(model_path);
  const std::shared_ptr<const Epoch> current = CurrentEpoch();
  if (peek.ok() && peek.value() == current->model->fingerprint()) {
    return current->sequence;
  }
  const SwapPolicy& policy = options_.swap_policy;
  const size_t max_attempts = std::max<size_t>(policy.max_attempts, 1);
  Rng jitter(policy.jitter_seed);
  StatusOr<PathWeightFunction> loaded =
      Status::Internal("Engine::Swap: no load attempted");
  for (size_t attempt = 1;; ++attempt) {
    if (CancelToken::Check(swap_options.cancel)) {
      return CancelToken::StatusOf(swap_options.cancel);
    }
    swap_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (PCDE_FAULT_POINT("serving.swap.load")) {
      loaded = Status::Internal(
          "Engine::Swap: injected transient load fault for " + model_path);
    } else {
      loaded = options_.use_mmap
                   ? core::LoadWeightFunctionBinary(model_path,
                                                    /*use_mmap=*/true)
                   : core::LoadWeightFunction(model_path);
    }
    if (loaded.ok()) break;
    // Rejection leaves the published epoch untouched: the old model keeps
    // serving and the caller gets the loader's Status verbatim.
    if (!IsTransientSwapFailure(loaded.status()) || attempt >= max_attempts) {
      return loaded.status();
    }
    swap_retries_.fetch_add(1, std::memory_order_relaxed);
    BackoffBeforeRetry(policy, attempt, &jitter, swap_options.cancel);
  }
  return VerifyAndPublishLocked(
      std::make_shared<PathWeightFunction>(std::move(loaded).value()),
      swap_options);
}

StatusOr<uint64_t> Engine::Swap(PathWeightFunction model) {
  return Swap(std::move(model), SwapOptions());
}

StatusOr<uint64_t> Engine::Swap(PathWeightFunction model,
                                const SwapOptions& swap_options) {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  return VerifyAndPublishLocked(
      std::make_shared<PathWeightFunction>(std::move(model)), swap_options);
}

StatusOr<uint64_t> Engine::RollbackToPrevious() {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  if (previous_epochs_.empty()) {
    return Status::FailedPrecondition(
        "Engine::RollbackToPrevious: no retained epoch (set "
        "SwapPolicy::rollback_capacity > 0, and at least one successful "
        "swap must have replaced an epoch)");
  }
  std::shared_ptr<const Epoch> previous = previous_epochs_.back();
  previous_epochs_.pop_back();
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  // Republish the retained model under a NEW sequence (epoch numbers never
  // move backward in responses) WITHOUT retaining the epoch being rolled
  // back off of — it is the suspect one, not a known good.
  const uint64_t sequence = next_sequence_++;
  std::atomic_store(&epoch_, BuildEpoch(previous->model, sequence));
  return sequence;
}

size_t Engine::rollback_depth() const {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  return previous_epochs_.size();
}

uint64_t Engine::epoch_sequence() const { return CurrentEpoch()->sequence; }

const PathWeightFunction& Engine::model() const {
  return *CurrentEpoch()->model;
}

std::shared_ptr<const PathWeightFunction> Engine::model_snapshot() const {
  return CurrentEpoch()->model;
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(EngineOptions options) {
  if (options.model_path.empty()) {
    return Status::InvalidArgument(
        "Engine::Open: options.model_path is empty (or adopt a built model "
        "via Open(PathWeightFunction, options))");
  }
  if (PCDE_FAULT_POINT("serving.open.load")) {
    return Status::Internal("Engine::Open: injected load fault for " +
                            options.model_path);
  }
  auto loaded = options.use_mmap
                    ? core::LoadWeightFunctionBinary(options.model_path,
                                                     /*use_mmap=*/true)
                    : core::LoadWeightFunction(options.model_path);
  if (!loaded.ok()) return loaded.status();
  return Make(std::move(options), std::make_unique<PathWeightFunction>(
                                      std::move(loaded).value()));
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(PathWeightFunction model,
                                               EngineOptions options) {
  return Make(std::move(options),
              std::make_unique<PathWeightFunction>(std::move(model)));
}

StatusOr<Path> Engine::ResolvePath(const PathSpec& spec) const {
  if (spec.is_od) {
    const roadnet::Graph* graph = options_.graph;
    if (graph == nullptr) {
      return Status::FailedPrecondition(
          "ResolvePath: OD PathSpec needs EngineOptions::graph");
    }
    if (spec.from >= graph->NumVertices() || spec.to >= graph->NumVertices()) {
      return Status::InvalidArgument("ResolvePath: unknown vertex");
    }
    if (spec.from == spec.to) {
      return Status::InvalidArgument("ResolvePath: from == to");
    }
    // Free-flow resolution is deterministic and departure-independent, so
    // repeated OD queries select the same path — and therefore the same
    // decomposition and cache entries.
    return roadnet::ShortestPath(*graph, spec.from, spec.to,
                                 roadnet::FreeFlowWeight(*graph));
  }
  if (spec.edges.empty()) {
    return Status::InvalidArgument("ResolvePath: empty edge path");
  }
  if (options_.graph != nullptr) {
    PCDE_RETURN_NOT_OK(roadnet::ValidatePath(*options_.graph,
                                             spec.edges.edges()));
  }
  return spec.edges;
}

namespace {

/// Builds the response around an estimated distribution; moves the
/// histogram in when the request asked for it.
EstimateResponse MakeResponse(const EstimateRequest& request, Path path,
                              Histogram1D dist,
                              const core::EstimateBreakdown* breakdown) {
  EstimateResponse response;
  response.summary = SummarizeDistribution(
      dist, request.stats, request.budget_seconds, request.quantiles);
  response.resolved_path = std::move(path);
  if (breakdown != nullptr) {
    response.served_from_cache = breakdown->cache_hit;
    if (request.want_breakdown) response.breakdown = *breakdown;
  }
  if (request.want_distribution) response.distribution = std::move(dist);
  return response;
}

/// Stamps epoch + fallback provenance: which published model served this
/// response and how far the degradation ladder descended for it.
void StampProvenance(EstimateResponse* response, const uint64_t fingerprint,
                     const uint64_t epoch,
                     const core::FallbackProvenance& provenance) {
  response->model_fingerprint = fingerprint;
  response->epoch = epoch;
  response->summary.degradation = provenance.level;
  response->summary.covered_fraction = provenance.covered_fraction;
}

/// Builds the per-request cancellation context: when the request sets a
/// timeout, a deadline token lives in `storage` (the caller's frame, so
/// batch workers get independent deadlines) linked under the request's
/// external token. Returns the token the estimator polls — null when the
/// request has neither, which is the exact pre-deadline serving path.
const CancelToken* SetupCancel(double timeout_seconds,
                               const CancelToken* external,
                               std::optional<CancelToken>* storage) {
  if (timeout_seconds <= 0.0) return external;
  storage->emplace(CancelToken::DeadlineAfter(timeout_seconds));
  (*storage)->set_parent(external);
  return &storage->value();
}

}  // namespace

StatusOr<EstimateResponse> Engine::Estimate(
    const EstimateRequest& request) const {
  Stopwatch watch;
  // Admission before any work: at capacity the request sheds with
  // kResourceExhausted instead of joining an unbounded queue.
  AdmissionController::Slot slot;
  uint64_t inflight_now = 0;
  PCDE_RETURN_NOT_OK(admission_->Acquire(&slot, &inflight_now));
  // The deadline clock starts at admission, not at estimation: queueing
  // time (when queue_timeout_seconds allows it) counts against the budget.
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel =
      SetupCancel(request.timeout_seconds, request.cancel, &deadline_token);
  // Pin one epoch for the whole request: resolution, estimation, and
  // provenance all read the same published model even if Swap lands
  // mid-request.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  PCDE_ASSIGN_OR_RETURN(path, ResolvePath(request.path));
  core::EstimateBreakdown breakdown;
  core::FallbackProvenance provenance;
  auto dist = epoch->estimator->EstimateWithFallback(
      path, request.departure_time, &provenance, &breakdown, cancel);
  if (!dist.ok()) {
    CountUnwind(dist.status());
    return dist.status();
  }
  EstimateResponse response = MakeResponse(request, std::move(path),
                                           std::move(dist).value(), &breakdown);
  StampProvenance(&response, epoch->model->fingerprint(), epoch->sequence,
                  provenance);
  response.inflight_at_admit = inflight_now;
  response.serve_seconds = watch.ElapsedSeconds();
  return response;
}

std::vector<StatusOr<EstimateResponse>> Engine::EstimateBatch(
    const EstimateRequest* requests, size_t num_requests) const {
  // One epoch pin for the whole batch: every response of a batch is served
  // by the same published model, whatever Swap does meanwhile.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  const uint64_t fingerprint = epoch->model->fingerprint();
  std::vector<StatusOr<EstimateResponse>> responses(
      num_requests, Status::Internal("EstimateBatch: request not run"));
  // One pool task per request, resolution included (OD resolution is a
  // Dijkstra run — the dominant per-request cost of the OD scenario, so it
  // must not serialize on the caller thread). A request that fails
  // resolution or estimation gets its own Status and the rest proceed —
  // per-request error isolation. Resolution and estimation are
  // deterministic, so the fan-out cannot change results.
  pool_->ParallelFor(num_requests, [this, requests, &responses, &epoch,
                                    fingerprint](size_t i) {
    Stopwatch watch;
    // Admission is per request, inside the task: a shed request fails
    // alone with kResourceExhausted — the one-bad-request-never-fails-
    // the-batch contract extends to overload.
    AdmissionController::Slot slot;
    uint64_t inflight_now = 0;
    Status admitted = admission_->Acquire(&slot, &inflight_now);
    if (!admitted.ok()) {
      responses[i] = admitted;
      return;
    }
    // Each request's deadline runs from its own task start (admission
    // included), independent of its batch siblings.
    std::optional<CancelToken> deadline_token;
    const CancelToken* cancel = SetupCancel(requests[i].timeout_seconds,
                                            requests[i].cancel,
                                            &deadline_token);
    auto resolved = ResolvePath(requests[i].path);
    if (!resolved.ok()) {
      responses[i] = resolved.status();
      return;
    }
    core::EstimateBreakdown breakdown;
    core::FallbackProvenance provenance;
    auto dist = epoch->estimator->EstimateWithFallback(
        resolved.value(), requests[i].departure_time, &provenance, &breakdown,
        cancel);
    if (!dist.ok()) {
      CountUnwind(dist.status());
      responses[i] = dist.status();
      return;
    }
    EstimateResponse response =
        MakeResponse(requests[i], std::move(resolved).value(),
                     std::move(dist).value(), nullptr);
    response.served_from_cache = breakdown.cache_hit;
    StampProvenance(&response, fingerprint, epoch->sequence, provenance);
    response.inflight_at_admit = inflight_now;
    response.serve_seconds = watch.ElapsedSeconds();
    responses[i] = std::move(response);
  });
  return responses;
}

StatusOr<RouteResponse> Engine::Route(const RouteRequest& request) const {
  AdmissionController::Slot slot;
  uint64_t inflight_now = 0;
  PCDE_RETURN_NOT_OK(admission_->Acquire(&slot, &inflight_now));
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel =
      SetupCancel(request.timeout_seconds, request.cancel, &deadline_token);
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  if (epoch->router == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Route needs EngineOptions::graph");
  }
  auto result = epoch->router->Route(
      request.from, request.to, request.departure_time,
      request.budget_seconds, cancel,
      request.use_pruning_override ? &request.pruning : nullptr);
  if (!result.ok()) {
    CountUnwind(result.status());
    return result.status();
  }
  RouteResponse response;
  response.best_path = std::move(result.value().best_path);
  response.on_time_probability = result.value().best_probability;
  response.expansions = result.value().expansions;
  response.candidate_paths = result.value().candidate_paths;
  response.truncated = result.value().truncated;
  response.prefix_cache_hits = result.value().prefix_cache_hits;
  response.prefix_cache_misses = result.value().prefix_cache_misses;
  response.bound_pruned = result.value().bound_pruned;
  response.incumbent_pruned = result.value().incumbent_pruned;
  response.dominance_pruned = result.value().dominance_pruned;
  response.estimator_clones = result.value().estimator_clones;
  route_bound_pruned_.fetch_add(response.bound_pruned,
                                std::memory_order_relaxed);
  route_incumbent_pruned_.fetch_add(response.incumbent_pruned,
                                    std::memory_order_relaxed);
  route_dominance_pruned_.fetch_add(response.dominance_pruned,
                                    std::memory_order_relaxed);
  route_estimator_clones_.fetch_add(response.estimator_clones,
                                    std::memory_order_relaxed);
  response.model_fingerprint = epoch->model->fingerprint();
  response.epoch = epoch->sequence;
  response.inflight_at_admit = inflight_now;
  return response;
}

void Engine::CountUnwind(const Status& status) const {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() == StatusCode::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
}

EngineStats Engine::stats() const {
  const AdmissionController::Stats admission = admission_->stats();
  EngineStats stats;
  stats.admitted = admission.admitted;
  stats.shed = admission.shed;
  stats.inflight = admission.inflight;
  stats.inflight_highwater = admission.inflight_highwater;
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.route_bound_pruned =
      route_bound_pruned_.load(std::memory_order_relaxed);
  stats.route_incumbent_pruned =
      route_incumbent_pruned_.load(std::memory_order_relaxed);
  stats.route_dominance_pruned =
      route_dominance_pruned_.load(std::memory_order_relaxed);
  stats.route_estimator_clones =
      route_estimator_clones_.load(std::memory_order_relaxed);
  stats.swap_attempts = swap_attempts_.load(std::memory_order_relaxed);
  stats.swap_retries = swap_retries_.load(std::memory_order_relaxed);
  stats.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  stats.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serving
}  // namespace pcde
