#include "serving/engine.h"

#include <utility>

#include "common/stopwatch.h"
#include "core/serialization.h"
#include "roadnet/shortest_path.h"

namespace pcde {
namespace serving {

using core::PathWeightFunction;
using hist::Histogram1D;
using roadnet::Path;

CostSummary SummarizeDistribution(const Histogram1D& dist, StatsMask stats,
                                  double budget_seconds,
                                  const std::vector<double>& quantiles) {
  CostSummary summary;
  summary.num_buckets = dist.NumBuckets();
  if (dist.empty()) return summary;
  if (stats & kStatMean) summary.mean = dist.Mean();
  if (stats & kStatVariance) summary.variance = dist.Variance();
  if (stats & kStatSupport) {
    summary.support_lo = dist.Min();
    summary.support_hi = dist.Max();
  }
  if ((stats & kStatCdfAtBudget) && !std::isnan(budget_seconds)) {
    summary.prob_within_budget = dist.ProbWithin(budget_seconds);
  }
  if (stats & kStatQuantiles) {
    summary.quantiles.reserve(quantiles.size());
    for (double q : quantiles) summary.quantiles.push_back(dist.Quantile(q));
  }
  return summary;
}

Engine::Engine(EngineOptions options, std::unique_ptr<PathWeightFunction> model)
    : options_(std::move(options)), model_(std::move(model)) {}

StatusOr<std::unique_ptr<Engine>> Engine::Make(
    EngineOptions options, std::unique_ptr<PathWeightFunction> model) {
  if (options.query_cache_bytes > 0 && options.cache_time_bucket_seconds <= 0.0) {
    return Status::InvalidArgument(
        "Engine: cache_time_bucket_seconds must be positive");
  }
  std::unique_ptr<Engine> engine(
      new Engine(std::move(options), std::move(model)));
  const EngineOptions& opts = engine->options_;
  if (opts.query_cache_bytes > 0) {
    core::QueryCacheOptions cache_options;
    cache_options.max_bytes = opts.query_cache_bytes;
    cache_options.num_shards = opts.query_cache_shards;
    cache_options.time_bucket_seconds = opts.cache_time_bucket_seconds;
    engine->cache_ = std::make_unique<core::QueryCache>(cache_options);
  }
  engine->pool_ = std::make_unique<ThreadPool>(opts.num_threads);
  engine->estimator_ = std::make_unique<core::HybridEstimator>(
      *engine->model_, opts.estimate);
  engine->estimator_->set_query_cache(engine->cache_.get());
  if (opts.graph != nullptr) {
    routing::RouterConfig config;
    config.lower_bound_factor = opts.route_lower_bound_factor;
    config.max_expansions = opts.route_max_expansions;
    config.max_path_edges = opts.route_max_path_edges;
    config.num_threads = engine->pool_->num_threads();
    config.pool = engine->pool_.get();
    config.query_cache = engine->cache_.get();
    config.prefix_cache_bytes = opts.prefix_cache_bytes;
    engine->router_ = std::make_unique<routing::DfsStochasticRouter>(
        *opts.graph, *engine->model_, opts.estimate, config);
  }
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(EngineOptions options) {
  if (options.model_path.empty()) {
    return Status::InvalidArgument(
        "Engine::Open: options.model_path is empty (or adopt a built model "
        "via Open(PathWeightFunction, options))");
  }
  auto loaded = options.use_mmap
                    ? core::LoadWeightFunctionBinary(options.model_path,
                                                     /*use_mmap=*/true)
                    : core::LoadWeightFunction(options.model_path);
  if (!loaded.ok()) return loaded.status();
  return Make(std::move(options), std::make_unique<PathWeightFunction>(
                                      std::move(loaded).value()));
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(PathWeightFunction model,
                                               EngineOptions options) {
  return Make(std::move(options),
              std::make_unique<PathWeightFunction>(std::move(model)));
}

StatusOr<Path> Engine::ResolvePath(const PathSpec& spec) const {
  if (spec.is_od) {
    const roadnet::Graph* graph = options_.graph;
    if (graph == nullptr) {
      return Status::FailedPrecondition(
          "ResolvePath: OD PathSpec needs EngineOptions::graph");
    }
    if (spec.from >= graph->NumVertices() || spec.to >= graph->NumVertices()) {
      return Status::InvalidArgument("ResolvePath: unknown vertex");
    }
    if (spec.from == spec.to) {
      return Status::InvalidArgument("ResolvePath: from == to");
    }
    // Free-flow resolution is deterministic and departure-independent, so
    // repeated OD queries select the same path — and therefore the same
    // decomposition and cache entries.
    return roadnet::ShortestPath(*graph, spec.from, spec.to,
                                 roadnet::FreeFlowWeight(*graph));
  }
  if (spec.edges.empty()) {
    return Status::InvalidArgument("ResolvePath: empty edge path");
  }
  if (options_.graph != nullptr) {
    PCDE_RETURN_NOT_OK(roadnet::ValidatePath(*options_.graph,
                                             spec.edges.edges()));
  }
  return spec.edges;
}

namespace {

/// Builds the response around an estimated distribution; moves the
/// histogram in when the request asked for it.
EstimateResponse MakeResponse(const EstimateRequest& request, Path path,
                              Histogram1D dist,
                              const core::EstimateBreakdown* breakdown) {
  EstimateResponse response;
  response.summary = SummarizeDistribution(
      dist, request.stats, request.budget_seconds, request.quantiles);
  response.resolved_path = std::move(path);
  if (breakdown != nullptr) {
    response.served_from_cache = breakdown->cache_hit;
    if (request.want_breakdown) response.breakdown = *breakdown;
  }
  if (request.want_distribution) response.distribution = std::move(dist);
  return response;
}

}  // namespace

StatusOr<EstimateResponse> Engine::Estimate(
    const EstimateRequest& request) const {
  Stopwatch watch;
  PCDE_ASSIGN_OR_RETURN(path, ResolvePath(request.path));
  core::EstimateBreakdown breakdown;
  auto dist = estimator_->EstimateCostDistribution(
      path, request.departure_time, &breakdown);
  if (!dist.ok()) return dist.status();
  EstimateResponse response = MakeResponse(request, std::move(path),
                                           std::move(dist).value(), &breakdown);
  response.serve_seconds = watch.ElapsedSeconds();
  return response;
}

std::vector<StatusOr<EstimateResponse>> Engine::EstimateBatch(
    const EstimateRequest* requests, size_t num_requests) const {
  std::vector<StatusOr<EstimateResponse>> responses(
      num_requests, Status::Internal("EstimateBatch: request not run"));
  // Resolve every request on the pool first (OD resolution is a Dijkstra
  // run — the dominant per-request cost of the OD scenario, so it must
  // not serialize on the caller thread); a request that fails resolution
  // gets its own Status and the rest proceed — per-request error
  // isolation. Resolution is deterministic, so the fan-out cannot change
  // results.
  std::vector<StatusOr<roadnet::Path>> resolved(
      num_requests, Status::Internal("EstimateBatch: not resolved"));
  pool_->ParallelFor(num_requests, [this, requests, &resolved](size_t i) {
    resolved[i] = ResolvePath(requests[i].path);
  });
  std::vector<core::PathQuery> queries;
  std::vector<size_t> query_request;  // queries[i] serves requests[...]
  queries.reserve(num_requests);
  query_request.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    if (!resolved[i].ok()) {
      responses[i] = resolved[i].status();
      continue;
    }
    queries.push_back(core::PathQuery{std::move(resolved[i]).value(),
                                      requests[i].departure_time});
    query_request.push_back(i);
  }
  if (queries.empty()) return responses;
  // The measured batch layer: concurrent fan-out on the engine's shared
  // pool, per-query latency + cache provenance via BatchMetrics.
  core::BatchMetrics metrics;
  std::vector<StatusOr<Histogram1D>> results = estimator_->EstimateBatch(
      queries.data(), queries.size(), pool_.get(), &metrics);
  for (size_t q = 0; q < queries.size(); ++q) {
    const size_t i = query_request[q];
    if (!results[q].ok()) {
      responses[i] = results[q].status();
      continue;
    }
    EstimateResponse response =
        MakeResponse(requests[i], std::move(queries[q].path),
                     std::move(results[q]).value(), nullptr);
    response.served_from_cache = metrics.query_cache_hit[q] != 0;
    response.serve_seconds = metrics.query_seconds[q];
    responses[i] = std::move(response);
  }
  return responses;
}

StatusOr<RouteResponse> Engine::Route(const RouteRequest& request) const {
  if (router_ == nullptr) {
    return Status::FailedPrecondition(
        "Engine::Route needs EngineOptions::graph");
  }
  auto result = router_->Route(request.from, request.to,
                               request.departure_time,
                               request.budget_seconds);
  if (!result.ok()) return result.status();
  RouteResponse response;
  response.best_path = std::move(result.value().best_path);
  response.on_time_probability = result.value().best_probability;
  response.expansions = result.value().expansions;
  response.candidate_paths = result.value().candidate_paths;
  response.truncated = result.value().truncated;
  response.prefix_cache_hits = result.value().prefix_cache_hits;
  response.prefix_cache_misses = result.value().prefix_cache_misses;
  return response;
}

}  // namespace serving
}  // namespace pcde
