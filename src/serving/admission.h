// Admission control for serving::Engine (ISSUE 7): a counting semaphore
// with a bounded wait queue in front of the request path, so overload
// sheds load with kResourceExhausted instead of queueing without limit.
//
// Every request acquires a slot before doing any work and releases it when
// it finishes (RAII). At capacity, a request either sheds immediately
// (queue_timeout_seconds <= 0 or the wait queue is full) or parks up to
// the queue timeout for a slot — bounded queueing, bounded tail latency.
// With max_inflight == 0 the controller only counts (stats stay live) and
// never sheds, which is the default — admission pressure off means the
// serving path is behaviorally identical to an engine without admission
// control at all.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace pcde {
namespace serving {

class AdmissionController {
 public:
  struct Options {
    /// Concurrently admitted requests; 0 = unlimited (count, never shed).
    size_t max_inflight = 0;
    /// Requests allowed to wait for a slot when at capacity; beyond this
    /// the request sheds immediately. Only meaningful with a positive
    /// queue timeout.
    size_t max_queue_depth = 0;
    /// How long a queued request may wait for a slot before shedding;
    /// <= 0 disables queueing (at capacity -> shed immediately).
    double queue_timeout_seconds = 0.0;
  };

  /// RAII admission slot: releases on destruction. Default-constructed is
  /// empty (no slot held); moved-from slots are empty.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    ~Slot() { Release(); }

    bool held() const { return controller_ != nullptr; }
    void Release() {
      if (controller_ != nullptr) {
        controller_->ReleaseSlot();
        controller_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    explicit Slot(AdmissionController* controller) : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(Options options) : options_(options) {}

  /// Acquires an admission slot or sheds with kResourceExhausted. On
  /// success `*slot` holds the slot and `*inflight_now` (optional) is the
  /// inflight count including this request — the load observation stamped
  /// on responses.
  Status Acquire(Slot* slot, uint64_t* inflight_now = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (options_.max_inflight != 0 && inflight_ >= options_.max_inflight) {
      if (options_.queue_timeout_seconds <= 0.0 ||
          waiters_ >= options_.max_queue_depth) {
        ++shed_;
        return Status::ResourceExhausted(
            "admission: engine at max_inflight_requests");
      }
      ++waiters_;
      const bool got_slot = slot_freed_.wait_for(
          lock, std::chrono::duration<double>(options_.queue_timeout_seconds),
          [this] { return inflight_ < options_.max_inflight; });
      --waiters_;
      if (!got_slot) {
        ++shed_;
        return Status::ResourceExhausted(
            "admission: timed out queued for a slot");
      }
    }
    ++inflight_;
    ++admitted_;
    if (inflight_ > inflight_highwater_) inflight_highwater_ = inflight_;
    if (inflight_now != nullptr) *inflight_now = inflight_;
    *slot = Slot(this);
    return Status::OK();
  }

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t inflight = 0;
    uint64_t inflight_highwater = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.admitted = admitted_;
    s.shed = shed_;
    s.inflight = inflight_;
    s.inflight_highwater = inflight_highwater_;
    return s;
  }

 private:
  void ReleaseSlot() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
    }
    // Outside the lock: the woken waiter re-acquires the mutex anyway.
    slot_freed_.notify_one();
  }

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  uint64_t inflight_ = 0;   // guarded by mutex_
  uint64_t waiters_ = 0;    // guarded by mutex_
  uint64_t admitted_ = 0;   // guarded by mutex_
  uint64_t shed_ = 0;       // guarded by mutex_
  uint64_t inflight_highwater_ = 0;  // guarded by mutex_
};

}  // namespace serving
}  // namespace pcde
