// serving::Engine — the unified front door over the estimator, router, and
// caches. Every caller used to hand-wire HybridEstimator + cache attachment
// + RouterConfig + ThreadPool; the Engine owns that stack once:
//
//   EngineOptions options;
//   options.model_path = "model.pcdewf";   // frozen PCDEWF1 artifact
//   options.graph = &graph;                // enables OD specs and Route
//   auto engine = Engine::Open(options);   // StatusOr<unique_ptr<Engine>>
//
//   EstimateRequest req;
//   req.path = PathSpec::OdPair(home, airport);
//   req.departure_time = 8 * 3600.0;
//   req.budget_seconds = 45 * 60.0;
//   auto response = (*engine)->Estimate(req);  // CostSummary + provenance
//
// Open either loads a frozen model (binary artifact via buffered read or
// mmap, or the text format) or adopts an already-built PathWeightFunction;
// it constructs the shared work-stealing ThreadPool and sizes/attaches the
// QueryCache declaratively from the options. Estimation through the Engine
// is bit-identical to direct HybridEstimator wiring with the same options
// (tests/serving_engine_test.cc proves it, with and without caches) — the
// facade adds request resolution and summary derivation, not semantics.
//
// Thread safety: Estimate / EstimateBatch / Route are const and safe to
// call concurrently (the underlying estimator is read-only over the frozen
// model and the QueryCache is sharded).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/estimator.h"
#include "core/query_cache.h"
#include "routing/stochastic_router.h"
#include "serving/request.h"

namespace pcde {
namespace serving {

/// Declarative configuration of the full serving stack.
struct EngineOptions {
  /// Model artifact to load when Open(options) is used (core/serialization:
  /// PCDEWF1 binary or text v2, sniffed). Ignored by the adopting Open.
  std::string model_path;
  /// Map the binary artifact PROT_READ/MAP_SHARED and parse in place (one
  /// page-cache copy across co-resident engines serving the same file).
  /// Binary artifacts only; see LoadWeightFunctionBinary for the atomic-
  /// replace lifecycle requirement.
  bool use_mmap = false;

  /// Road network backing OD-pair PathSpecs (free-flow shortest-path
  /// resolution), explicit-path validation, and Route. May stay null when
  /// every request uses explicit edge paths and Route is never called.
  const roadnet::Graph* graph = nullptr;

  /// Decomposition policy, rank cap, and chain options of every estimate
  /// (the OD / OD-x / HP / LB method choice).
  core::EstimateOptions estimate;

  /// Workers of the engine's shared pool (batch fan-out and the router's
  /// root fan-out). 0 = hardware concurrency.
  size_t num_threads = 0;

  /// Byte budget of the shared result cache (core/query_cache.h); 0
  /// disables caching. Results are bit-identical either way.
  size_t query_cache_bytes = size_t{64} << 20;
  size_t query_cache_shards = 8;
  /// Departure-time bucket width folded into cache keys.
  double cache_time_bucket_seconds = 300.0;

  /// Per-root-branch prefix chain-state reuse inside Route
  /// (core/prefix_state_cache.h); 0 disables (opt-in, like the router's).
  size_t prefix_cache_bytes = 0;

  /// DFS router knobs (see routing::RouterConfig for semantics).
  double route_lower_bound_factor = 0.8;
  size_t route_max_expansions = 500000;
  size_t route_max_path_edges = 150;
};

/// \brief Derives the serving-visible CostSummary from a cost
/// distribution: only the statistics selected by `stats` are computed
/// (unselected fields stay NaN / empty). Exposed for tests, which pin
/// these numbers against brute-force integration of the histogram.
CostSummary SummarizeDistribution(const hist::Histogram1D& dist,
                                  StatsMask stats, double budget_seconds,
                                  const std::vector<double>& quantiles);

class Engine {
 public:
  /// Loads the frozen model named by options.model_path and builds the
  /// serving stack around it.
  static StatusOr<std::unique_ptr<Engine>> Open(EngineOptions options);

  /// Adopts an already-built (or already-loaded) frozen model instead of
  /// reading an artifact — the embedded/offline wiring, and the path tests
  /// use to compare Engine serving against direct estimator wiring over
  /// the very same model (engine->model()).
  static StatusOr<std::unique_ptr<Engine>> Open(
      core::PathWeightFunction model, EngineOptions options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }
  const core::PathWeightFunction& model() const { return *model_; }
  /// nullptr when query_cache_bytes == 0.
  core::QueryCache* query_cache() const { return cache_.get(); }
  ThreadPool& pool() const { return *pool_; }

  /// Resolves a PathSpec to the edge path that will be costed: OD pairs go
  /// through the free-flow shortest path (deterministic, so repeated OD
  /// queries hit the same cache entries); explicit paths are validated
  /// against the graph when one is configured. Errors: InvalidArgument
  /// (empty/invalid path, unknown vertex), FailedPrecondition (OD spec
  /// with no graph), NotFound (unreachable pair).
  StatusOr<roadnet::Path> ResolvePath(const PathSpec& spec) const;

  /// One cost-distribution query end to end: resolve, estimate (through
  /// the attached cache), summarize.
  StatusOr<EstimateResponse> Estimate(const EstimateRequest& request) const;

  /// Many queries concurrently on the engine's shared pool; response i
  /// corresponds to requests[i] and carries its own Status — a malformed
  /// request (bad path, unresolvable OD pair) fails alone, never the
  /// batch. Valid requests return exactly what Estimate would.
  std::vector<StatusOr<EstimateResponse>> EstimateBatch(
      const EstimateRequest* requests, size_t num_requests) const;
  std::vector<StatusOr<EstimateResponse>> EstimateBatch(
      const std::vector<EstimateRequest>& requests) const {
    return EstimateBatch(requests.data(), requests.size());
  }

  /// Probabilistic budget routing (Sec. 4.3) on the engine's stack: the
  /// DFS router runs with the engine's estimate options, query cache,
  /// prefix-reuse budget, and shared pool. Requires options.graph.
  StatusOr<RouteResponse> Route(const RouteRequest& request) const;

 private:
  Engine(EngineOptions options,
         std::unique_ptr<core::PathWeightFunction> model);

  static StatusOr<std::unique_ptr<Engine>> Make(
      EngineOptions options,
      std::unique_ptr<core::PathWeightFunction> model);

  EngineOptions options_;
  // unique_ptr members keep every referenced address stable: the estimator
  // and router hold references to the model, cache, and pool.
  std::unique_ptr<core::PathWeightFunction> model_;
  std::unique_ptr<core::QueryCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<core::HybridEstimator> estimator_;
  std::unique_ptr<routing::DfsStochasticRouter> router_;  // iff graph set
};

}  // namespace serving
}  // namespace pcde
