// serving::Engine — the unified front door over the estimator, router, and
// caches. Every caller used to hand-wire HybridEstimator + cache attachment
// + RouterConfig + ThreadPool; the Engine owns that stack once:
//
//   EngineOptions options;
//   options.model_path = "model.pcdewf";   // frozen PCDEWF1 artifact
//   options.graph = &graph;                // enables OD specs and Route
//   auto engine = Engine::Open(options);   // StatusOr<unique_ptr<Engine>>
//
//   EstimateRequest req;
//   req.path = PathSpec::OdPair(home, airport);
//   req.departure_time = 8 * 3600.0;
//   req.budget_seconds = 45 * 60.0;
//   auto response = (*engine)->Estimate(req);  // CostSummary + provenance
//
// Open either loads a frozen model (binary artifact via buffered read or
// mmap, or the text format) or adopts an already-built PathWeightFunction;
// it constructs the shared work-stealing ThreadPool and sizes/attaches the
// QueryCache declaratively from the options. Estimation through the Engine
// is bit-identical to direct HybridEstimator wiring with the same options
// (tests/serving_engine_test.cc proves it, with and without caches) — the
// facade adds request resolution and summary derivation, not semantics.
//
// Thread safety: Estimate / EstimateBatch / Route are const and safe to
// call concurrently (the underlying estimator is read-only over the frozen
// model and the QueryCache is sharded). Swap may run concurrently with all
// of them: the model, estimator, and router live in an immutable epoch
// snapshot published behind an atomically swapped shared_ptr; every request
// pins the epoch it entered on, so a swap mid-request changes nothing for
// that request and the old model is destroyed only when its last in-flight
// request finishes. Concurrent Swap calls serialize against each other.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel_token.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/estimator.h"
#include "core/query_cache.h"
#include "routing/stochastic_router.h"
#include "serving/admission.h"
#include "serving/request.h"

namespace pcde {
namespace serving {

/// \brief One pre-publish verification query: Swap runs the request
/// against the CANDIDATE epoch before publishing it. A probe whose
/// estimate errors rejects the candidate; when a reference summary is
/// stamped, so does any divergence from it (estimation is bit-identical
/// across save/load, so a stamped reference computed on the model that
/// produced the artifact must reproduce exactly — a mismatch means the
/// artifact or the serving wiring is bad). A rejected candidate never
/// serves a single request: the old epoch stays published throughout.
struct GoldenProbe {
  EstimateRequest request;
  /// The expected response summary, as served by the model generation the
  /// artifact was built from (stamp it from EstimateResponse::summary).
  /// Without a reference the probe only asserts the candidate serves the
  /// request cleanly.
  bool has_reference = false;
  CostSummary reference;
};

/// \brief Model-refresh robustness policy. The default is bit-identical to
/// a policy-free engine: one load attempt, no probes, no retained epochs.
struct SwapPolicy {
  /// Load attempts per Swap(path) call. Content errors (corrupt artifact,
  /// version skew: kInvalidArgument) fail immediately — the bytes will not
  /// fix themselves; IO errors and missing files (kInternal / kNotFound —
  /// e.g. a publisher mid-rename or flaky storage) are retried up to this
  /// many attempts with exponential backoff. 0 behaves as 1.
  size_t max_attempts = 1;
  /// Backoff before retry k (1-based) is
  /// min(initial * multiplier^(k-1), max) scaled by a jitter factor drawn
  /// uniformly from [1 - jitter_fraction, 1 + jitter_fraction] under
  /// jitter_seed (deterministic, so tests replay). The sleep polls the
  /// Swap call's cancel token and aborts the wait when it trips.
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.5;
  double jitter_fraction = 0.5;
  uint64_t jitter_seed = 42;
  /// Engine-wide pre-publish probes, run on every swap candidate (per-call
  /// probes in SwapOptions take precedence). Empty = no verification.
  std::vector<GoldenProbe> probes;
  /// Replaced epochs retained for RollbackToPrevious(), newest first out.
  /// 0 disables retention (a replaced epoch is torn down as soon as its
  /// last in-flight request finishes, exactly the policy-free lifecycle).
  size_t rollback_capacity = 0;
};

/// \brief Per-call Swap knobs. References ride on the call rather than the
/// engine because they are stamped per model generation.
struct SwapOptions {
  /// Checked before every load attempt and during backoff sleeps; a
  /// tripped token abandons the swap (the old epoch keeps serving).
  const CancelToken* cancel = nullptr;
  /// When non-empty, replaces SwapPolicy::probes for this call.
  std::vector<GoldenProbe> probes;
};

/// Declarative configuration of the full serving stack.
struct EngineOptions {
  /// Model artifact to load when Open(options) is used (core/serialization:
  /// PCDEWF1 binary or text v2, sniffed). Ignored by the adopting Open.
  std::string model_path;
  /// Map the binary artifact PROT_READ/MAP_SHARED and parse in place (one
  /// page-cache copy across co-resident engines serving the same file).
  /// Binary artifacts only; see LoadWeightFunctionBinary for the atomic-
  /// replace lifecycle requirement.
  bool use_mmap = false;

  /// Road network backing OD-pair PathSpecs (free-flow shortest-path
  /// resolution), explicit-path validation, and Route. May stay null when
  /// every request uses explicit edge paths and Route is never called.
  const roadnet::Graph* graph = nullptr;

  /// Decomposition policy, rank cap, and chain options of every estimate
  /// (the OD / OD-x / HP / LB method choice).
  core::EstimateOptions estimate;

  /// Workers of the engine's shared pool (batch fan-out and the router's
  /// root fan-out). 0 = hardware concurrency.
  size_t num_threads = 0;

  /// External worker pool (not owned; must outlive the engine). When set,
  /// the engine builds no pool of its own and `num_threads` is ignored —
  /// this is how ShardedEngine gives its N inner engines one shared pool
  /// instead of N independent thread herds. nullptr = own pool (default).
  ThreadPool* shared_pool = nullptr;

  /// Byte budget of the shared result cache (core/query_cache.h); 0
  /// disables caching. Results are bit-identical either way.
  size_t query_cache_bytes = size_t{64} << 20;
  size_t query_cache_shards = 8;
  /// Departure-time bucket width folded into cache keys.
  double cache_time_bucket_seconds = 300.0;

  /// Per-root-branch prefix chain-state reuse inside Route
  /// (core/prefix_state_cache.h); 0 disables (opt-in, like the router's).
  size_t prefix_cache_bytes = 0;

  /// DFS router knobs (see routing::RouterConfig for semantics).
  double route_lower_bound_factor = 0.8;
  size_t route_max_expansions = 500000;
  size_t route_max_path_edges = 150;
  /// Opt-in routing pruners (routing/pruning.h); all default off, which
  /// keeps Route bit-identical to the pre-pruning engine. Individual
  /// RouteRequests can override via use_pruning_override.
  routing::PruningOptions route_pruning;

  /// Admission control (overload protection). Requests — each single
  /// Estimate/Route call, and each request of a batch individually —
  /// acquire an admission slot before doing any work; at capacity they
  /// shed with kResourceExhausted instead of queueing without limit.
  /// 0 (default) = unlimited: admission never sheds and the serving path
  /// is behaviorally identical to an engine without admission control.
  size_t max_inflight_requests = 0;
  /// Requests allowed to wait for a slot at capacity (bounded queue);
  /// beyond it — or whenever queue_timeout_seconds <= 0 — shed
  /// immediately.
  size_t max_queue_depth = 0;
  /// Longest a queued request may wait for a slot before shedding.
  double queue_timeout_seconds = 0.0;

  /// Refresh robustness: retry/backoff for transient swap failures,
  /// pre-publish probe verification, and the last-known-good rollback
  /// ring. The default policy is bit-identical to pre-policy serving.
  SwapPolicy swap_policy;
};

/// \brief Overload-observability counters, monotonically increasing over
/// the engine's lifetime (inflight / highwater track live load). Snapshot
/// via Engine::stats(); responses carry their own inflight_at_admit.
struct EngineStats {
  uint64_t admitted = 0;           // requests that acquired a slot
  uint64_t shed = 0;               // kResourceExhausted at admission
  uint64_t deadline_exceeded = 0;  // unwound with kDeadlineExceeded
  uint64_t cancelled = 0;          // unwound with kCancelled
  uint64_t inflight = 0;           // currently admitted requests
  uint64_t inflight_highwater = 0;  // peak concurrent admissions
  /// Routing pruning attribution, summed over every successful Route
  /// (see routing::RouteResult for per-counter semantics).
  uint64_t route_bound_pruned = 0;
  uint64_t route_incumbent_pruned = 0;
  uint64_t route_dominance_pruned = 0;
  uint64_t route_estimator_clones = 0;
  /// Refresh robustness (ISSUE 9). swap_attempts counts artifact load
  /// attempts by Swap(path) — retries included; swap_retries counts just
  /// the re-attempts after a transient failure. probe_failures counts
  /// candidates rejected by pre-publish verification; rollbacks counts
  /// RollbackToPrevious() republishes.
  uint64_t swap_attempts = 0;
  uint64_t swap_retries = 0;
  uint64_t probe_failures = 0;
  uint64_t rollbacks = 0;
  /// Sharded serving (ShardedEngine::stats(); always 0 on a plain Engine).
  /// shards_resident is a point-in-time gauge of attached shards; the
  /// other three count attaches, LRU evictions, and requests whose path
  /// crossed a shard boundary (stitched serve) over the engine's lifetime.
  uint64_t shards_resident = 0;
  uint64_t shard_attaches = 0;
  uint64_t shard_evictions = 0;
  uint64_t cross_shard_requests = 0;
};

/// \brief Derives the serving-visible CostSummary from a cost
/// distribution: only the statistics selected by `stats` are computed
/// (unselected fields stay NaN / empty). Exposed for tests, which pin
/// these numbers against brute-force integration of the histogram.
CostSummary SummarizeDistribution(const hist::Histogram1D& dist,
                                  StatsMask stats, double budget_seconds,
                                  const std::vector<double>& quantiles);

class Engine {
 public:
  /// Loads the frozen model named by options.model_path and builds the
  /// serving stack around it.
  static StatusOr<std::unique_ptr<Engine>> Open(EngineOptions options);

  /// Adopts an already-built (or already-loaded) frozen model instead of
  /// reading an artifact — the embedded/offline wiring, and the path tests
  /// use to compare Engine serving against direct estimator wiring over
  /// the very same model (engine->model()).
  static StatusOr<std::unique_ptr<Engine>> Open(
      core::PathWeightFunction model, EngineOptions options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// \brief Zero-downtime model refresh: loads the artifact, validates it,
  /// and atomically publishes it as a new epoch. In-flight and subsequent
  /// requests are never failed by the transition — each pins one epoch for
  /// its whole lifetime, and responses carry the pinned epoch + model
  /// fingerprint so callers can audit which model answered. A corrupt,
  /// truncated, or version-skewed artifact is rejected with the loader's
  /// Status and the old epoch keeps serving untouched. An artifact whose
  /// header checksum matches the currently served model short-circuits to
  /// a no-op (no new epoch). The shared QueryCache survives swaps: its
  /// keys carry the model fingerprint, so entries of replaced models decay
  /// into misses and evict, never into false hits. Loads via
  /// options().use_mmap, like Open. Returns the now-serving epoch sequence.
  /// Thread-safe against requests and against other Swap calls.
  /// Under a non-default SwapPolicy the load is additionally retried on
  /// transient failures (with cancel-aware exponential backoff) and the
  /// candidate is probe-verified before publication; see SwapPolicy.
  StatusOr<uint64_t> Swap(const std::string& model_path);
  /// Same, with per-call cancellation and probe references.
  StatusOr<uint64_t> Swap(const std::string& model_path,
                          const SwapOptions& swap_options);

  /// Adopting form: publishes an already-built (or already-loaded) frozen
  /// model as the new epoch — the embedded wiring, e.g. a delta rebuild
  /// (WeightFunctionBuilder::FromFrozen + InstantiateIntoBuilder) frozen in
  /// process and swapped in without touching disk. Probe verification
  /// applies; the retry loop does not (there is no IO to retry).
  StatusOr<uint64_t> Swap(core::PathWeightFunction model);
  StatusOr<uint64_t> Swap(core::PathWeightFunction model,
                          const SwapOptions& swap_options);

  /// \brief Republishes the most recently replaced epoch's model as a NEW
  /// epoch (sequence moves forward — a response's epoch number never goes
  /// backward), popping it from the last-known-good ring. The ring only
  /// holds epochs replaced by successful swaps while
  /// SwapPolicy::rollback_capacity > 0; the epoch being rolled back OFF of
  /// is deliberately not retained (it is the suspect one). Fails with
  /// kFailedPrecondition when nothing is retained.
  StatusOr<uint64_t> RollbackToPrevious();

  /// Epochs currently retained for rollback.
  size_t rollback_depth() const;

  /// Sequence number of the currently published epoch (starts at 1;
  /// incremented by every successful non-short-circuited Swap).
  uint64_t epoch_sequence() const;

  const EngineOptions& options() const { return options_; }
  /// The currently published epoch's model. The reference stays valid
  /// until the next successful Swap; under concurrent swaps prefer
  /// model_snapshot(), which the caller pins.
  const core::PathWeightFunction& model() const;
  /// Swap-safe model access: the returned shared_ptr keeps the model (and
  /// its arena) alive past any number of subsequent swaps.
  std::shared_ptr<const core::PathWeightFunction> model_snapshot() const;
  /// nullptr when query_cache_bytes == 0.
  core::QueryCache* query_cache() const { return cache_.get(); }
  ThreadPool& pool() const { return *pool_; }

  /// Resolves a PathSpec to the edge path that will be costed: OD pairs go
  /// through the free-flow shortest path (deterministic, so repeated OD
  /// queries hit the same cache entries); explicit paths are validated
  /// against the graph when one is configured. Errors: InvalidArgument
  /// (empty/invalid path, unknown vertex), FailedPrecondition (OD spec
  /// with no graph), NotFound (unreachable pair).
  StatusOr<roadnet::Path> ResolvePath(const PathSpec& spec) const;

  /// One cost-distribution query end to end: resolve, estimate (through
  /// the attached cache), summarize.
  StatusOr<EstimateResponse> Estimate(const EstimateRequest& request) const;

  /// Many queries concurrently on the engine's shared pool; response i
  /// corresponds to requests[i] and carries its own Status — a malformed
  /// request (bad path, unresolvable OD pair) fails alone, never the
  /// batch. Valid requests return exactly what Estimate would.
  std::vector<StatusOr<EstimateResponse>> EstimateBatch(
      const EstimateRequest* requests, size_t num_requests) const;
  std::vector<StatusOr<EstimateResponse>> EstimateBatch(
      const std::vector<EstimateRequest>& requests) const {
    return EstimateBatch(requests.data(), requests.size());
  }

  /// Probabilistic budget routing (Sec. 4.3) on the engine's stack: the
  /// DFS router runs with the engine's estimate options, query cache,
  /// prefix-reuse budget, and shared pool. Requires options.graph.
  StatusOr<RouteResponse> Route(const RouteRequest& request) const;

  /// Point-in-time snapshot of the overload counters (admission traffic,
  /// deadline/cancel unwinds, inflight high-water mark).
  EngineStats stats() const;

 private:
  /// \brief One published model generation: the frozen model plus the
  /// stack wired to it. Immutable once published; requests pin it with one
  /// shared_ptr copy at entry, so a replaced epoch (and its model arena,
  /// mmap included) is torn down exactly when its last in-flight request
  /// drops the pin. The QueryCache and ThreadPool are engine-level and
  /// shared across epochs — cache keys carry the model fingerprint, so
  /// sharing is correctness-neutral.
  struct Epoch {
    uint64_t sequence = 0;
    std::shared_ptr<const core::PathWeightFunction> model;
    std::unique_ptr<core::HybridEstimator> estimator;
    std::unique_ptr<routing::DfsStochasticRouter> router;  // iff graph set
  };

  explicit Engine(EngineOptions options);

  static StatusOr<std::unique_ptr<Engine>> Make(
      EngineOptions options,
      std::unique_ptr<core::PathWeightFunction> model);

  /// Wires a full epoch (estimator + edge fallback + router) around a
  /// frozen model. Pure construction over validated input — no failure
  /// mode; all swap failures happen before this, in the artifact load.
  std::shared_ptr<const Epoch> BuildEpoch(
      std::shared_ptr<const core::PathWeightFunction> model,
      uint64_t sequence) const;

  /// The epoch pin every request takes exactly once at entry.
  std::shared_ptr<const Epoch> CurrentEpoch() const;

  /// Builds and publishes the next epoch; caller holds swap_mutex_.
  uint64_t PublishLocked(std::shared_ptr<const core::PathWeightFunction> model);

  /// Publishes an already-built epoch (epoch->sequence == next_sequence_),
  /// retaining the replaced epoch in the rollback ring when the policy
  /// keeps one; caller holds swap_mutex_.
  uint64_t PublishEpochLocked(std::shared_ptr<const Epoch> epoch);

  /// Runs `probes` against the unpublished candidate; on the first probe
  /// error or reference divergence counts a probe_failure and returns the
  /// rejection Status (the candidate is then dropped unpublished).
  Status VerifyCandidate(const Epoch& candidate,
                         const std::vector<GoldenProbe>& probes) const;

  /// Builds the candidate epoch over `model`, verifies it with the
  /// per-call (or policy) probes, and publishes the very object that was
  /// verified; caller holds swap_mutex_.
  StatusOr<uint64_t> VerifyAndPublishLocked(
      std::shared_ptr<const core::PathWeightFunction> model,
      const SwapOptions& swap_options);

  /// Bumps the deadline_exceeded / cancelled counter matching a request's
  /// terminal Status (no-op for other codes).
  void CountUnwind(const Status& status) const;

  EngineOptions options_;
  // Engine-level (epoch-independent) members; unique_ptr keeps their
  // addresses stable for the epochs' estimators and routers. The pool is
  // either owned here or borrowed from EngineOptions::shared_pool; pool_
  // points at whichever serves, and every use goes through it.
  std::unique_ptr<core::QueryCache> cache_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  // The published epoch, read with std::atomic_load (one acquire per
  // request) and replaced with std::atomic_store under swap_mutex_.
  std::shared_ptr<const Epoch> epoch_;
  // Serializes Swap/Rollback callers; mutable so const observers
  // (rollback_depth) can take it.
  mutable std::mutex swap_mutex_;
  uint64_t next_sequence_ = 1;  // guarded by swap_mutex_ after Make
  // Last-known-good ring (newest at the back), bounded by
  // SwapPolicy::rollback_capacity; guarded by swap_mutex_. Retaining an
  // epoch keeps its model arena (mmap included) alive — capacity is a
  // deliberate memory knob, not a cache.
  std::deque<std::shared_ptr<const Epoch>> previous_epochs_;
  // Admission gate + overload counters (request methods are const; the
  // counters are serving telemetry, not model state). Set once in Make.
  mutable std::unique_ptr<AdmissionController> admission_;
  mutable std::atomic<uint64_t> deadline_exceeded_{0};
  mutable std::atomic<uint64_t> cancelled_{0};
  // Routing pruning attribution (summed over successful Route calls).
  mutable std::atomic<uint64_t> route_bound_pruned_{0};
  mutable std::atomic<uint64_t> route_incumbent_pruned_{0};
  mutable std::atomic<uint64_t> route_dominance_pruned_{0};
  mutable std::atomic<uint64_t> route_estimator_clones_{0};
  // Refresh robustness counters (ISSUE 9); see EngineStats.
  mutable std::atomic<uint64_t> swap_attempts_{0};
  mutable std::atomic<uint64_t> swap_retries_{0};
  mutable std::atomic<uint64_t> probe_failures_{0};
  mutable std::atomic<uint64_t> rollbacks_{0};
};

}  // namespace serving
}  // namespace pcde
