#include "serving/sharded_engine.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "core/serialization.h"
#include "hist/histogram1d.h"
#include "roadnet/shortest_path.h"

namespace pcde {
namespace serving {

namespace {

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return std::string(".");
  if (slash == 0) return std::string("/");
  return path.substr(0, slash);
}

/// Mirror of Engine's per-request cancellation context: a deadline token
/// in the caller's frame, linked under the request's external token.
const CancelToken* SetupCancel(double timeout_seconds,
                               const CancelToken* external,
                               std::optional<CancelToken>* storage) {
  if (timeout_seconds <= 0.0) return external;
  storage->emplace(CancelToken::DeadlineAfter(timeout_seconds));
  (*storage)->set_parent(external);
  return &storage->value();
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(std::move(options)) {}

Status ShardedEngine::ValidateShardFiles(const ManifestState& state) {
  for (size_t s = 0; s < state.manifest.shards.size(); ++s) {
    const core::ShardInfo& info = state.manifest.shards[s];
    const std::string path = state.dir + "/" + info.file;
    std::error_code ec;
    const uintmax_t nbytes = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::NotFound("ShardedEngine: shard " + std::to_string(s) +
                              " artifact missing (" + path + ")");
    }
    if (static_cast<uint64_t>(nbytes) != info.bytes) {
      return Status::InvalidArgument(
          "ShardedEngine: shard " + std::to_string(s) + " artifact is " +
          std::to_string(nbytes) + " bytes, manifest declares " +
          std::to_string(info.bytes) + " (" + path + ")");
    }
    // The header peek re-validates magic/version/alpha, so a shard file
    // that is the right size but the wrong content fails here too.
    auto peek = core::PeekBinaryArtifactFingerprint(path);
    if (!peek.ok()) return peek.status();
    if (peek.value() != info.fingerprint) {
      return Status::InvalidArgument(
          "ShardedEngine: shard " + std::to_string(s) +
          " artifact fingerprint does not match the manifest (" + path + ")");
    }
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Open(
    const std::string& manifest_path, ShardedEngineOptions options) {
  PCDE_ASSIGN_OR_RETURN(manifest, core::LoadShardManifest(manifest_path));
  auto state = std::make_shared<ManifestState>();
  state->manifest = std::move(manifest);
  state->dir = DirOf(manifest_path);
  PCDE_RETURN_NOT_OK(ValidateShardFiles(*state));

  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(std::move(options)));
  engine->pool_ =
      std::make_unique<ThreadPool>(engine->options_.engine.num_threads);
  engine->shards_.reserve(state->manifest.shards.size());
  for (size_t s = 0; s < state->manifest.shards.size(); ++s) {
    engine->shards_.push_back(std::make_unique<Shard>());
  }
  engine->state_ = std::move(state);
  return engine;
}

std::shared_ptr<const ShardedEngine::ManifestState> ShardedEngine::State()
    const {
  return std::atomic_load(&state_);
}

std::shared_ptr<const core::ShardManifest> ShardedEngine::manifest_snapshot()
    const {
  auto state = State();
  // Aliasing constructor: the returned pointer keeps the whole state (and
  // its directory string) alive.
  return std::shared_ptr<const core::ShardManifest>(state, &state->manifest);
}

uint64_t ShardedEngine::manifest_fingerprint() const {
  return State()->manifest.fingerprint;
}

uint64_t ShardedEngine::epoch_sequence() const {
  return epoch_sequence_.load(std::memory_order_acquire);
}

size_t ShardedEngine::resident_shards() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    if (std::atomic_load(&shard->engine) != nullptr) ++n;
  }
  return n;
}

size_t ShardedEngine::ResidentBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    if (auto engine = std::atomic_load(&shard->engine)) {
      total += engine->model_snapshot()->ResidentBytes();
    }
  }
  return total;
}

size_t ShardedEngine::MaxShardResidentBytes() const {
  size_t max_bytes = 0;
  for (const auto& shard : shards_) {
    if (auto engine = std::atomic_load(&shard->engine)) {
      max_bytes = std::max(max_bytes,
                           engine->model_snapshot()->ResidentBytes());
    }
  }
  return max_bytes;
}

EngineStats ShardedEngine::stats() const {
  EngineStats total;
  size_t resident = 0;
  for (const auto& shard : shards_) {
    auto engine = std::atomic_load(&shard->engine);
    if (engine == nullptr) continue;
    ++resident;
    const EngineStats s = engine->stats();
    total.admitted += s.admitted;
    total.shed += s.shed;
    total.deadline_exceeded += s.deadline_exceeded;
    total.cancelled += s.cancelled;
    total.inflight += s.inflight;
    total.inflight_highwater += s.inflight_highwater;
    total.route_bound_pruned += s.route_bound_pruned;
    total.route_incumbent_pruned += s.route_incumbent_pruned;
    total.route_dominance_pruned += s.route_dominance_pruned;
    total.route_estimator_clones += s.route_estimator_clones;
    total.swap_attempts += s.swap_attempts;
    total.swap_retries += s.swap_retries;
    total.probe_failures += s.probe_failures;
    total.rollbacks += s.rollbacks;
  }
  total.shards_resident = resident;
  total.shard_attaches = shard_attaches_.load(std::memory_order_relaxed);
  total.shard_evictions = shard_evictions_.load(std::memory_order_relaxed);
  total.cross_shard_requests =
      cross_shard_requests_.load(std::memory_order_relaxed);
  return total;
}

void ShardedEngine::EnforceResidentCapLocked(size_t keep) const {
  const size_t cap = options_.max_resident_shards;
  if (cap == 0) return;
  while (true) {
    size_t resident = 0;
    size_t victim = shards_.size();
    uint64_t victim_touch = UINT64_MAX;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (std::atomic_load(&shards_[s]->engine) == nullptr) continue;
      ++resident;
      if (s == keep) continue;
      const uint64_t touch =
          shards_[s]->last_touch.load(std::memory_order_relaxed);
      if (touch < victim_touch) {
        victim_touch = touch;
        victim = s;
      }
    }
    if (resident <= cap || victim == shards_.size()) return;
    // Detach: requests that already pinned this engine finish on it (the
    // shared_ptr keeps it alive); new touches re-attach from the artifact.
    std::shared_ptr<Engine> none;
    std::atomic_store(&shards_[victim]->engine, none);
    shard_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

StatusOr<std::shared_ptr<Engine>> ShardedEngine::AttachShard(
    size_t idx) const {
  Shard& shard = *shards_[idx];
  const uint64_t now = touch_clock_.fetch_add(1, std::memory_order_relaxed);
  shard.last_touch.store(now + 1, std::memory_order_relaxed);
  if (auto engine = std::atomic_load(&shard.engine)) return engine;

  std::lock_guard<std::mutex> lock(attach_mutex_);
  if (auto engine = std::atomic_load(&shard.engine)) return engine;
  if (PCDE_FAULT_POINT("serving.shard.attach")) {
    return Status::Internal("ShardedEngine: injected attach fault for shard " +
                            std::to_string(idx));
  }
  const auto state = State();
  const core::ShardInfo& info = state->manifest.shards[idx];
  const std::string path = state->dir + "/" + info.file;
  // Re-verify identity at attach time (the file may have changed since
  // Open/Swap validated it): a stale or foreign artifact must not serve
  // under this manifest's stamp.
  auto peek = core::PeekBinaryArtifactFingerprint(path);
  if (!peek.ok()) return peek.status();
  if (peek.value() != info.fingerprint) {
    return Status::InvalidArgument(
        "ShardedEngine: shard " + std::to_string(idx) +
        " artifact fingerprint does not match the manifest (" + path + ")");
  }
  EngineOptions inner = options_.engine;
  inner.model_path = path;
  inner.shared_pool = pool_.get();
  auto opened = Engine::Open(std::move(inner));
  if (!opened.ok()) return opened.status();
  std::shared_ptr<Engine> engine(std::move(opened).value());
  std::atomic_store(&shard.engine, engine);
  shard_attaches_.fetch_add(1, std::memory_order_relaxed);
  EnforceResidentCapLocked(idx);
  return engine;
}

StatusOr<roadnet::Path> ShardedEngine::ResolvePath(const PathSpec& spec)
    const {
  const roadnet::Graph* graph = options_.engine.graph;
  if (spec.is_od) {
    if (graph == nullptr) {
      return Status::FailedPrecondition(
          "ResolvePath: OD PathSpec needs EngineOptions::graph");
    }
    if (spec.from >= graph->NumVertices() || spec.to >= graph->NumVertices()) {
      return Status::InvalidArgument("ResolvePath: unknown vertex");
    }
    if (spec.from == spec.to) {
      return Status::InvalidArgument("ResolvePath: from == to");
    }
    // Deterministic free-flow resolution, exactly like Engine: the same OD
    // pair selects the same path, the same shard routing, and the same
    // inner cache entries.
    return roadnet::ShortestPath(*graph, spec.from, spec.to,
                                 roadnet::FreeFlowWeight(*graph));
  }
  if (spec.edges.empty()) {
    return Status::InvalidArgument("ResolvePath: empty edge path");
  }
  if (graph != nullptr) {
    PCDE_RETURN_NOT_OK(roadnet::ValidatePath(*graph, spec.edges.edges()));
  }
  return spec.edges;
}

StatusOr<EstimateResponse> ShardedEngine::Estimate(
    const EstimateRequest& request) const {
  Stopwatch watch;
  PCDE_ASSIGN_OR_RETURN(path, ResolvePath(request.path));
  // Pin one manifest generation for the whole request, like Engine pins
  // one epoch: routing, attach checks, and the response stamp all read the
  // same published state even if Swap lands mid-request.
  const auto state = State();
  const uint64_t epoch = epoch_sequence();

  const size_t owner = state->manifest.ShardOf(path[0]);
  bool single_shard = true;
  for (size_t k = 1; k < path.size(); ++k) {
    if (state->manifest.ShardOf(path[k]) != owner) {
      single_shard = false;
      break;
    }
  }
  if (!single_shard) {
    return EstimateStitched(request, std::move(path), *state, epoch);
  }

  // Single-shard serve: the shard holds every candidate variable the
  // monolithic model would consult for this path (same front-edge CSR
  // rows, same order), so the inner Engine's answer is bit-identical to
  // the unsplit model's. Hand the resolved path down so OD resolution is
  // not paid twice.
  PCDE_ASSIGN_OR_RETURN(engine, AttachShard(owner));
  EstimateRequest inner = request;
  inner.path = PathSpec::ExplicitPath(std::move(path));
  auto response = engine->Estimate(inner);
  if (!response.ok()) return response.status();
  EstimateResponse result = std::move(response).value();
  result.model_fingerprint = state->manifest.fingerprint;
  result.epoch = epoch;
  result.serve_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<EstimateResponse> ShardedEngine::EstimateStitched(
    const EstimateRequest& request, roadnet::Path path,
    const ManifestState& state, uint64_t epoch) const {
  Stopwatch watch;
  cross_shard_requests_.fetch_add(1, std::memory_order_relaxed);
  // One deadline for the whole stitched request: every segment estimate
  // polls the same token, so the stitch honors timeouts end to end.
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel =
      SetupCancel(request.timeout_seconds, request.cancel, &deadline_token);

  const size_t max_buckets = options_.engine.estimate.chain.max_result_buckets;
  const std::vector<roadnet::EdgeId>& edges = path.edges();
  hist::Histogram1D total;
  bool have_total = false;
  core::DegradationLevel worst = core::DegradationLevel::kFull;
  double covered_weighted = 0.0;
  double t = request.departure_time;

  size_t begin = 0;
  while (begin < edges.size()) {
    const size_t shard = state.manifest.ShardOf(edges[begin]);
    size_t end = begin + 1;
    while (end < edges.size() && state.manifest.ShardOf(edges[end]) == shard) {
      ++end;
    }
    // Segment [begin, end) lives wholly in `shard`; estimate it there
    // through the full serving path (decomposition, cache, degradation
    // ladder) at the advanced departure time.
    EstimateRequest seg_request;
    seg_request.path = PathSpec::ExplicitPath(path.Slice(begin, end - begin));
    seg_request.departure_time = t;
    seg_request.stats = 0;  // the stitched total is summarized once below
    seg_request.quantiles.clear();
    seg_request.want_distribution = true;
    seg_request.cancel = cancel;
    PCDE_ASSIGN_OR_RETURN(engine, AttachShard(shard));
    auto response = engine->Estimate(seg_request);
    if (!response.ok()) return response.status();
    worst = std::max(worst, response->summary.degradation);
    covered_weighted +=
        response->summary.covered_fraction * static_cast<double>(end - begin);
    const hist::Histogram1D& seg = *response->distribution;
    // The ladder's stitch semantics, applied at shard boundaries: advance
    // the clock by the segment's mean, convolve under independence.
    t += seg.Mean();
    if (!have_total) {
      total = seg;
      have_total = true;
    } else {
      PCDE_ASSIGN_OR_RETURN(conv, hist::Convolve(total, seg, max_buckets));
      total = std::move(conv);
    }
    begin = end;
  }

  EstimateResponse result;
  result.summary = SummarizeDistribution(total, request.stats,
                                         request.budget_seconds,
                                         request.quantiles);
  // Cross-shard provenance contract: never better than kSubpath (the
  // boundary severed the decomposition even when every segment was served
  // at kFull), never better than the worst segment; coverage is the
  // length-weighted mean over segments.
  result.summary.degradation =
      std::max(core::DegradationLevel::kSubpath, worst);
  result.summary.covered_fraction =
      covered_weighted / static_cast<double>(edges.size());
  result.resolved_path = std::move(path);
  if (request.want_distribution) result.distribution = std::move(total);
  result.model_fingerprint = state.manifest.fingerprint;
  result.epoch = epoch;
  result.serve_seconds = watch.ElapsedSeconds();
  return result;
}

std::vector<StatusOr<EstimateResponse>> ShardedEngine::EstimateBatch(
    const EstimateRequest* requests, size_t num_requests) const {
  std::vector<StatusOr<EstimateResponse>> responses(
      num_requests, Status::Internal("EstimateBatch: request not run"));
  // One task per request on the shared pool; each request routes, attaches,
  // and stitches independently — the per-request error isolation of
  // Engine::EstimateBatch carries over. Inner Engine::Estimate never fans
  // out onto the pool itself, so tasks cannot deadlock on it.
  pool_->ParallelFor(num_requests, [this, requests, &responses](size_t i) {
    responses[i] = Estimate(requests[i]);
  });
  return responses;
}

StatusOr<uint64_t> ShardedEngine::Swap(const std::string& manifest_path) {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  PCDE_ASSIGN_OR_RETURN(manifest, core::LoadShardManifest(manifest_path));
  const auto current = State();
  if (manifest.fingerprint == current->manifest.fingerprint) {
    // Same generation already serving; nothing to reload.
    return epoch_sequence();
  }
  auto next = std::make_shared<ManifestState>();
  next->manifest = std::move(manifest);
  next->dir = DirOf(manifest_path);
  if (next->manifest.shards.size() != current->manifest.shards.size()) {
    return Status::InvalidArgument(
        "ShardedEngine::Swap: shard count changed (" +
        std::to_string(current->manifest.shards.size()) + " -> " +
        std::to_string(next->manifest.shards.size()) +
        "); re-sharding requires a fresh Open");
  }
  // Validate every shard file of the incoming generation before touching
  // any engine: a missing/short/mismatched artifact rejects the whole swap
  // with nothing republished.
  PCDE_RETURN_NOT_OK(ValidateShardFiles(*next));

  // Per-shard refresh: only attached shards whose fingerprint changed
  // reload; each goes through the inner Engine's verified epoch swap.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (next->manifest.shards[s].fingerprint ==
        current->manifest.shards[s].fingerprint) {
      continue;
    }
    auto engine = std::atomic_load(&shards_[s]->engine);
    if (engine == nullptr) continue;  // next touch loads the new artifact
    const std::string path = next->dir + "/" + next->manifest.shards[s].file;
    auto swapped = engine->Swap(path);
    if (!swapped.ok()) return swapped.status();
  }
  std::atomic_store(&state_,
                    std::shared_ptr<const ManifestState>(std::move(next)));
  return epoch_sequence_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

}  // namespace serving
}  // namespace pcde
