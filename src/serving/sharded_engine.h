// serving::ShardedEngine — the shard-routing front door over per-region
// model shards (core/shard_writer.h). One process serves a continent-scale
// model without holding it resident: the engine opens a PCDEMF1 manifest,
// owns one inner Engine per shard (buffered or mmap, all sharing one
// ThreadPool), and routes each request to the shard(s) owning its path's
// front-edge keys.
//
//   ShardedEngineOptions options;
//   options.engine.graph = &graph;            // inner-engine template
//   auto sharded = ShardedEngine::Open("model.pcdemf", options);
//   auto response = (*sharded)->Estimate(req);
//
// Exactness boundary: a path whose every edge id falls in ONE shard's key
// range is served bit-identically to the monolithic Engine on the unsplit
// model — that shard holds exactly the candidate variables (per-front-edge
// CSR rows) the monolithic model would consult, in the same order. A path
// crossing shard boundaries is segmented at the boundaries; each segment
// is estimated on its owning shard (through the full degradation ladder,
// provenance preserved) and the segment distributions are convolved left
// to right under independence with the departure time advanced by each
// segment's mean — the same stitch the sparse-coverage ladder uses across
// uncovered gaps, so the result is flagged with degradation >= kSubpath
// and a length-weighted covered_fraction rather than passed off as exact.
//
// Shards attach lazily (open-on-first-touch); an optional LRU cap bounds
// resident shards, so per-process resident bytes stay flat as the model
// grows. Refresh is per shard: Swap(manifest) reloads only shards whose
// manifest fingerprint changed, each through the inner Engine's verified
// epoch swap. Responses are stamped with the MANIFEST fingerprint (the
// generation identity of the whole shard set) and the sharded engine's own
// epoch; shard epochs advance independently underneath.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/shard_writer.h"
#include "serving/engine.h"
#include "serving/request.h"

namespace pcde {
namespace serving {

struct ShardedEngineOptions {
  /// Template for every inner per-shard Engine (estimate options, graph,
  /// mmap flag, cache sizing — note query_cache_bytes applies PER SHARD).
  /// model_path and shared_pool are overwritten per shard; num_threads
  /// sizes the one pool all shards share.
  EngineOptions engine;
  /// LRU cap on concurrently attached shards; attaching past the cap
  /// evicts the least-recently-touched other shard (its in-flight requests
  /// finish on their pinned engine; the next touch re-attaches). 0 =
  /// unbounded — every shard may stay resident once touched.
  size_t max_resident_shards = 0;
};

class ShardedEngine {
 public:
  /// Opens the manifest, validates every shard artifact against it
  /// (existence, size, header fingerprint — cheap 64-byte peeks; missing,
  /// short, or mismatched shard files fail here with a clean Status), and
  /// stands up the routing table. No shard payload is loaded yet.
  static StatusOr<std::unique_ptr<ShardedEngine>> Open(
      const std::string& manifest_path, ShardedEngineOptions options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// \brief Per-shard refresh: loads + validates the manifest (and every
  /// shard file named by it), then swaps only the attached shards whose
  /// fingerprint changed — each through the inner Engine's epoch swap
  /// (retry/backoff/probes per the template's SwapPolicy). Unattached
  /// shards just adopt the new metadata and load the new artifact on next
  /// touch. A manifest with the currently served fingerprint short-
  /// circuits to a no-op. The shard count must be unchanged (re-sharding
  /// requires a fresh Open). On success the new manifest publishes
  /// atomically and the sharded epoch advances; responses stamp the new
  /// manifest fingerprint. If one shard's swap fails mid-way, the error
  /// returns with the OLD manifest still published — already-refreshed
  /// shards keep their new content (shard epochs are per shard); rerunning
  /// Swap converges the rest.
  StatusOr<uint64_t> Swap(const std::string& manifest_path);

  /// PathSpec resolution, identical to Engine::ResolvePath (free-flow
  /// shortest path for OD pairs, graph validation for explicit paths).
  StatusOr<roadnet::Path> ResolvePath(const PathSpec& spec) const;

  /// One query end to end: resolve, route to shard(s), estimate (single
  /// shard: exactly the inner Engine's serve; cross-shard: the documented
  /// stitch), summarize. model_fingerprint carries the manifest
  /// fingerprint, epoch the sharded engine's epoch.
  StatusOr<EstimateResponse> Estimate(const EstimateRequest& request) const;

  /// Many queries concurrently on the shared pool; response i corresponds
  /// to requests[i] and fails alone on a bad request, like Engine.
  std::vector<StatusOr<EstimateResponse>> EstimateBatch(
      const EstimateRequest* requests, size_t num_requests) const;
  std::vector<StatusOr<EstimateResponse>> EstimateBatch(
      const std::vector<EstimateRequest>& requests) const {
    return EstimateBatch(requests.data(), requests.size());
  }

  /// The currently published manifest (swap-safe snapshot).
  std::shared_ptr<const core::ShardManifest> manifest_snapshot() const;
  /// Fingerprint stamped on responses served right now.
  uint64_t manifest_fingerprint() const;
  /// Sharded epoch (starts at 1; +1 per successful non-short-circuited
  /// Swap). Inner shard engines keep their own epoch sequences.
  uint64_t epoch_sequence() const;

  size_t num_shards() const { return shards_.size(); }
  /// Shards currently attached (the EngineStats::shards_resident gauge).
  size_t resident_shards() const;
  /// Sum / max of the attached shards' model resident bytes — the flat-
  /// memory claim sharding exists for; detached shards cost nothing.
  size_t ResidentBytes() const;
  size_t MaxShardResidentBytes() const;

  /// Aggregated counters: lifetime sums over the inner engines that are
  /// currently attached, plus the sharded counters (shards_resident,
  /// shard_attaches, shard_evictions, cross_shard_requests). Lock-free
  /// like Engine::stats(); an evicted shard's inner counters leave the
  /// aggregate.
  EngineStats stats() const;

  const ShardedEngineOptions& options() const { return options_; }

 private:
  /// Manifest + the directory shard file names resolve against, published
  /// together (a Swap may point at a manifest in a different directory).
  struct ManifestState {
    core::ShardManifest manifest;
    std::string dir;
  };

  /// One shard slot. `engine` is written under attach_mutex_ and read with
  /// atomic shared_ptr loads; requests pin the engine they entered on, so
  /// an eviction mid-request never tears a serve.
  struct Shard {
    std::shared_ptr<Engine> engine;         // atomic_load / atomic_store
    std::atomic<uint64_t> last_touch{0};    // LRU clock value at last use
  };

  explicit ShardedEngine(ShardedEngineOptions options);

  std::shared_ptr<const ManifestState> State() const;

  /// The engine for shard `idx`, attaching (and possibly evicting another
  /// shard past the LRU cap) on first touch.
  StatusOr<std::shared_ptr<Engine>> AttachShard(size_t idx) const;

  /// Least-recently-touched attached shard other than `keep` is detached
  /// until the resident count fits the cap; caller holds attach_mutex_.
  void EnforceResidentCapLocked(size_t keep) const;

  /// Existence / size / header-fingerprint check of every shard artifact
  /// named by `state` (cheap: no payload reads).
  static Status ValidateShardFiles(const ManifestState& state);

  /// The cross-shard stitch (see the header comment's contract).
  StatusOr<EstimateResponse> EstimateStitched(
      const EstimateRequest& request, roadnet::Path path,
      const ManifestState& state, uint64_t epoch) const;

  ShardedEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // shared by every inner engine
  std::shared_ptr<const ManifestState> state_;  // atomic_load / atomic_store
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex attach_mutex_;   // serializes attach/evict decisions
  mutable std::mutex swap_mutex_;     // serializes Swap callers
  std::atomic<uint64_t> epoch_sequence_{1};
  mutable std::atomic<uint64_t> touch_clock_{0};
  mutable std::atomic<uint64_t> shard_attaches_{0};
  mutable std::atomic<uint64_t> shard_evictions_{0};
  mutable std::atomic<uint64_t> cross_shard_requests_{0};
};

}  // namespace serving
}  // namespace pcde
