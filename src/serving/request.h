// Typed request/response value types of the serving Engine (engine.h) —
// the paper's deliverable phrased as a query service: given a path (or an
// OD pair) and a departure time, return the travel-cost distribution and
// the statistics users actually ask for — P(arrive within budget) as in
// Hua & Pei's probabilistic budget routing, quantiles, mean/variance —
// plus the stochastic-routing answer built on them.
//
// Histogram1D stays an internal representation: responses lead with a
// CostSummary of derived numbers, and the full distribution rides along
// only when a request opts in (`want_distribution`).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/cancel_token.h"
#include "core/estimator.h"
#include "hist/histogram1d.h"
#include "roadnet/graph.h"
#include "roadnet/path.h"
#include "routing/pruning.h"

namespace pcde {
namespace serving {

/// \brief The path of an estimate request: either an explicit edge path or
/// an origin/destination pair the Engine resolves via the free-flow
/// shortest path (roadnet/shortest_path.h) — the OD-query scenario, where
/// clients know endpoints, not edge ids.
struct PathSpec {
  roadnet::Path edges;  // explicit form (ignored when is_od)
  roadnet::VertexId from = 0;
  roadnet::VertexId to = 0;
  bool is_od = false;

  static PathSpec ExplicitPath(roadnet::Path path) {
    PathSpec spec;
    spec.edges = std::move(path);
    return spec;
  }
  static PathSpec OdPair(roadnet::VertexId from, roadnet::VertexId to) {
    PathSpec spec;
    spec.is_od = true;
    spec.from = from;
    spec.to = to;
    return spec;
  }
};

/// Bitmask selecting which CostSummary statistics a request wants; fields
/// not selected stay NaN / empty (their computation is skipped).
enum Stat : uint32_t {
  kStatMean = 1u << 0,
  kStatVariance = 1u << 1,
  kStatSupport = 1u << 2,       // support_lo / support_hi
  kStatQuantiles = 1u << 3,     // one value per requested level
  kStatCdfAtBudget = 1u << 4,   // P(cost <= budget_seconds)
  kStatAll = (1u << 5) - 1,
};
using StatsMask = uint32_t;

/// \brief One cost-distribution query.
struct EstimateRequest {
  PathSpec path;
  double departure_time = 0.0;  // seconds since midnight
  StatsMask stats = kStatAll;
  /// Budget for kStatCdfAtBudget — the "arrive within 60 min" question.
  /// NaN (the default) leaves prob_within_budget unset.
  double budget_seconds = std::numeric_limits<double>::quiet_NaN();
  /// Quantile levels for kStatQuantiles; response quantiles align with
  /// this vector index for index.
  std::vector<double> quantiles{0.5, 0.9, 0.95};
  /// Attach the full distribution to the response (off by default — the
  /// summary is the serving contract, the histogram the internal type).
  bool want_distribution = false;
  /// Fill the response's per-phase EstimateBreakdown (single-request
  /// Estimate only; batch responses carry serve_seconds + cache flag).
  bool want_breakdown = false;
  /// Wall-clock deadline budget, in seconds from request entry; <= 0 (the
  /// default) means no deadline. An expired request unwinds cooperatively
  /// with kDeadlineExceeded at the next estimator checkpoint (between
  /// chain-part transitions / ladder segments), never a partial response;
  /// the overshoot past the deadline is bounded by one checkpoint gap
  /// (see docs/serving.md "Deadlines & overload"). In a batch, each
  /// request's deadline runs from its own task start.
  double timeout_seconds = 0.0;
  /// Optional external cancellation (client disconnect, shutdown): the
  /// request trips when the token does, unwinding with kCancelled. Not
  /// owned; must outlive the call. Combines with timeout_seconds —
  /// whichever trips first wins.
  const CancelToken* cancel = nullptr;
};

/// \brief The serving-visible statistics of a cost distribution, derived
/// from the internal Histogram1D (hist/histogram1d.h). Unrequested fields
/// are NaN (scalars) or empty (quantiles).
struct CostSummary {
  double mean = std::numeric_limits<double>::quiet_NaN();
  double variance = std::numeric_limits<double>::quiet_NaN();
  double support_lo = std::numeric_limits<double>::quiet_NaN();
  double support_hi = std::numeric_limits<double>::quiet_NaN();
  /// P(cost <= EstimateRequest::budget_seconds); NaN without a budget.
  double prob_within_budget = std::numeric_limits<double>::quiet_NaN();
  /// Aligned with EstimateRequest::quantiles.
  std::vector<double> quantiles;
  /// Bucket count of the underlying distribution (its resolution).
  size_t num_buckets = 0;
  /// Degradation provenance (core/estimator.h): kFull means the normal
  /// full-path decomposition served this summary; kSubpath/kEdge mean the
  /// sparse-coverage fallback chain did — the answer is explicitly degraded
  /// rather than an error, and callers can audit how far the ladder fell.
  core::DegradationLevel degradation = core::DegradationLevel::kFull;
  /// Unit-covered positions / path length (1.0 at kFull).
  double covered_fraction = 1.0;

  /// Exact (bitwise) equality, treating NaN fields as equal when both are
  /// NaN — the divergence gate of the save -> reload -> serve round trip:
  /// a summary served from a reloaded artifact must ExactlyEqual the
  /// built model's (estimation is bit-identical across save/load).
  bool ExactlyEquals(const CostSummary& other) const {
    auto same = [](double a, double b) {
      return (std::isnan(a) && std::isnan(b)) || a == b;
    };
    if (!same(mean, other.mean) || !same(variance, other.variance) ||
        !same(support_lo, other.support_lo) ||
        !same(support_hi, other.support_hi) ||
        !same(prob_within_budget, other.prob_within_budget) ||
        num_buckets != other.num_buckets ||
        degradation != other.degradation ||
        !same(covered_fraction, other.covered_fraction) ||
        quantiles.size() != other.quantiles.size()) {
      return false;
    }
    for (size_t i = 0; i < quantiles.size(); ++i) {
      if (!same(quantiles[i], other.quantiles[i])) return false;
    }
    return true;
  }
};

struct EstimateResponse {
  CostSummary summary;
  /// The edge path actually costed: the resolved shortest path for OD
  /// requests, the request's own edges otherwise.
  roadnet::Path resolved_path;
  /// The full distribution, only when the request set want_distribution.
  std::optional<hist::Histogram1D> distribution;
  /// Per-phase breakdown (want_breakdown, single-request Estimate only).
  core::EstimateBreakdown breakdown;
  /// Served from the engine's QueryCache instead of sweeping the chain.
  bool served_from_cache = false;
  /// Wall-clock serving latency of this request (in a batch: the
  /// per-query latency recorded inside the fan-out).
  double serve_seconds = 0.0;
  /// Model provenance: the fingerprint of the frozen model and the engine
  /// epoch that served this response. Every response is computed entirely
  /// within one pinned epoch — under concurrent Engine::Swap these fields
  /// always name exactly one published model, never a mix.
  uint64_t model_fingerprint = 0;
  uint64_t epoch = 0;
  /// Engine load observation: requests in flight (this one included) when
  /// this request was admitted — the per-response slice of EngineStats.
  uint64_t inflight_at_admit = 0;
};

/// \brief One stochastic-routing query: the path from `from` to `to`
/// maximizing P(travel time <= budget) departing at `departure_time`.
struct RouteRequest {
  roadnet::VertexId from = 0;
  roadnet::VertexId to = 0;
  double departure_time = 0.0;
  double budget_seconds = 0.0;
  /// Deadline / cancellation, as on EstimateRequest. The router polls once
  /// per DFS expansion, so the overshoot is bounded by one expansion; a
  /// tripped search returns kDeadlineExceeded / kCancelled, never the
  /// partial best-so-far.
  double timeout_seconds = 0.0;
  const CancelToken* cancel = nullptr;  // not owned; may be null
  /// Per-request pruner override: when set, `pruning` replaces the
  /// engine-level EngineOptions::route_pruning for this request only
  /// (including turning pruning off with a default-constructed value).
  bool use_pruning_override = false;
  routing::PruningOptions pruning;
};

struct RouteResponse {
  roadnet::Path best_path;
  double on_time_probability = 0.0;  // P(travel time <= budget)
  size_t expansions = 0;
  size_t candidate_paths = 0;
  bool truncated = false;  // DFS expansion cap hit
  /// Prefix chain-state cache traffic (EngineOptions::prefix_cache_bytes;
  /// zero when disabled).
  uint64_t prefix_cache_hits = 0;
  uint64_t prefix_cache_misses = 0;
  /// Per-pruner attribution counters (routing::RouteResult): admissible
  /// free-flow bound cuts, incumbent-CDF cuts, stochastic-dominance cuts,
  /// and the estimator clones actually paid. The cut counters other than
  /// bound_pruned stay zero unless their pruner is enabled.
  uint64_t bound_pruned = 0;
  uint64_t incumbent_pruned = 0;
  uint64_t dominance_pruned = 0;
  uint64_t estimator_clones = 0;
  /// Model provenance, as on EstimateResponse: the routing search ran
  /// start to finish against this one pinned epoch's model.
  uint64_t model_fingerprint = 0;
  uint64_t epoch = 0;
  /// Requests in flight (this one included) at admission.
  uint64_t inflight_at_admit = 0;
};

}  // namespace serving
}  // namespace pcde
