// Fault injection: named fault sites threaded through the durability path
// (ISSUE 9).
//
// A fault SITE is a named point in production code where a failure can be
// simulated — an open(2) that reports ENOENT, a write(2) that reports
// ENOSPC, an mmap(2) that fails — without root, a full disk, or a flaky
// filesystem. Sites are declared inline:
//
//   if (PCDE_FAULT_POINT("serialization.binary.write")) {
//     return Status::Internal("write failed: injected fault");
//   }
//
// and cost ONE predictable branch when disarmed: the macro's function-local
// static resolves the site once, after which every traversal is a single
// relaxed atomic load of the global arm flag (false in production, so the
// branch predicts perfectly and the slow path never runs). No test
// machinery leaks into release binaries beyond that load.
//
// Tests arm a site with a FaultPlan — fail exactly the Nth hit, fail every
// k-th hit, or fail each hit with probability p under a fixed seed (the
// Bernoulli draw is a pure hash of seed and hit number, so a storm replays
// bit-identically) — and the registry exposes programmatic enumeration
// (RegisteredFaultSites) plus per-site hit/trigger counters, so a sweep
// test can arm EVERY site the durability path registers without naming any
// of them, and prove each one actually fired.
//
// Registration is lazy: a site enters the registry the first time its code
// path executes (or when a test arms it by name). Sweeps therefore run one
// disarmed warm-up pass over the paths under test before enumerating.
//
// Thread safety: Fire() is safe from any thread. The armed slow path
// serializes on a per-site mutex so "the Nth hit" is well defined under
// concurrency; the disarmed fast path takes no locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pcde {
namespace fault {

namespace internal {
// Count of currently armed plans across all sites. The global arm flag is
// "any plan armed"; kept as a counter so Disarm of one site does not blind
// the others.
extern std::atomic<int> g_armed_plans;
}  // namespace internal

/// True when at least one site is armed. One relaxed load — the whole cost
/// of a disarmed fault point.
inline bool Armed() {
  return internal::g_armed_plans.load(std::memory_order_relaxed) > 0;
}

/// When and how an armed site fails. The three triggers compose with OR;
/// the common cases are exactly one of them:
///   {.fail_on_hit = 3}        — the 3rd traversal fails, all others pass
///   {.fail_every = 1}         — every traversal fails (persistent fault)
///   {.fail_probability = 0.3,
///    .seed = 42}              — each traversal fails w.p. 0.3; the draw is
///                               a pure function of (seed, hit number), so
///                               a fixed seed replays bit-identically.
struct FaultPlan {
  uint64_t fail_on_hit = 0;       // 1-based hit index that fails; 0 = off
  uint64_t fail_every = 0;        // every k-th hit fails; 0 = off
  double fail_probability = 0.0;  // per-hit Bernoulli in [0, 1]
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// One named fault point. Instances live forever in the process-wide
/// registry (stable addresses — call sites cache the reference in a
/// function-local static).
class FaultSite {
 public:
  /// Get-or-create the site named `name` and register it for enumeration.
  /// Thread-safe; the returned reference is valid for the process lifetime.
  static FaultSite& Named(const std::string& name);

  const std::string& name() const { return name_; }

  /// The fault-point check: true when the armed plan says "fail here".
  /// Disarmed cost is the single relaxed load in Armed().
  bool Fire() {
    if (!Armed()) return false;
    return FireSlow();
  }

  /// Traversals observed while the injector was globally armed.
  uint64_t hits() const;
  /// Traversals on which this site's plan fired a failure.
  uint64_t triggers() const;

  /// Arms `plan` on this site (replacing any armed plan) / disarms it.
  /// Arming zeroes the site's hit/trigger counters so fail_on_hit counts
  /// from the moment of arming, not from process start. Prefer the
  /// name-based free functions in tests; these exist for the registry-wide
  /// operations.
  void Arm(const FaultPlan& plan);
  void Disarm();
  void ResetCounters();

  FaultSite(const FaultSite&) = delete;
  FaultSite& operator=(const FaultSite&) = delete;

  /// Use Named() — public only so the registry can construct instances.
  explicit FaultSite(std::string name) : name_(std::move(name)) {}

 private:
  bool FireSlow();

  const std::string name_;
  mutable std::mutex mu_;
  bool armed_ = false;      // guarded by mu_
  FaultPlan plan_;          // guarded by mu_
  uint64_t hits_ = 0;       // guarded by mu_
  uint64_t triggers_ = 0;   // guarded by mu_
};

/// Arms `plan` on the site named `site`, creating the site if no code path
/// has registered it yet (it may be reached later). Replaces any plan
/// already armed there. Fails with kInvalidArgument on a malformed plan
/// (probability outside [0, 1] or no trigger configured).
Status ArmFault(const std::string& site, const FaultPlan& plan);

/// Disarms one site (no-op when the site is unknown or not armed).
void DisarmFault(const std::string& site);

/// Disarms every site. The global arm flag drops back to false and every
/// fault point reverts to its one-branch fast path.
void DisarmAllFaults();

/// Names of every registered site, sorted. Sites register lazily — run the
/// paths under test once (disarmed) before enumerating for a sweep.
std::vector<std::string> RegisteredFaultSites();

/// Per-site counters (0 for unknown sites).
uint64_t FaultSiteHits(const std::string& site);
uint64_t FaultSiteTriggers(const std::string& site);

/// Zeroes hit/trigger counters on every site (plans stay armed).
void ResetFaultCounters();

/// RAII guard for tests: disarms everything on scope exit so a failing
/// assertion cannot leak an armed plan into the next test.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() = default;
  ~ScopedFaultInjection() { DisarmAllFaults(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  Status Arm(const std::string& site, const FaultPlan& plan) {
    return ArmFault(site, plan);
  }
};

}  // namespace fault
}  // namespace pcde

/// The inline fault-point check. `site_name` is evaluated once per call
/// site (function-local static), after which each traversal is one relaxed
/// atomic load and a predictable branch until a test arms the injector.
#define PCDE_FAULT_POINT(site_name)                          \
  ([]() -> bool {                                            \
    static ::pcde::fault::FaultSite& pcde_fault_site_ref =   \
        ::pcde::fault::FaultSite::Named(site_name);          \
    return pcde_fault_site_ref.Fire();                       \
  }())
