// Minimal read-only span (C++17; no std::span): a pointer + length view of
// contiguous memory. Used for the frozen model's arena-backed arrays, where
// accessors hand out views into storage owned elsewhere.
#pragma once

#include <cassert>
#include <cstddef>

namespace pcde {

template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  const T& front() const {
    assert(size_ > 0);
    return data_[0];
  }
  const T& back() const {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pcde
