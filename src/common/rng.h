// Deterministic random number generation. All stochastic components (traffic
// model, trajectory generator, random decompositions, GPS noise) draw from an
// explicitly seeded Rng so that every experiment is reproducible.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace pcde {

/// \brief Seeded pseudo-random generator with the distributions the library
/// needs. Not thread-safe; use one instance per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Gamma with shape k and scale theta (mean = k*theta).
  double Gamma(double shape, double scale) {
    return std::gamma_distribution<double>(shape, scale)(engine_);
  }

  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t Categorical(const std::vector<double>& weights) {
    assert(!weights.empty());
    return std::discrete_distribution<size_t>(weights.begin(), weights.end())(
        engine_);
  }

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// trajectory / worker its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pcde
