#include "common/mathutil.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pcde {

double SafeLog(double x) {
  constexpr double kTiny = 1e-300;
  return std::log(std::max(x, kTiny));
}

double Digamma(double x) {
  assert(x > 0.0);
  double result = 0.0;
  // Recurrence psi(x) = psi(x+1) - 1/x until x is large enough for the
  // asymptotic series.
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double Trigamma(double x) {
  assert(x > 0.0);
  double result = 0.0;
  while (x < 12.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)));
  return result;
}

double LogGamma(double x) {
  // Lanczos approximation (g = 7, n = 9).
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoef[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

void SampleStats::Add(double x) {
  if (count == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  const double delta = x - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (x - mean);
}

double SampleStats::Variance() const {
  return count > 0 ? m2 / static_cast<double>(count) : 0.0;
}

double SampleStats::Stddev() const { return std::sqrt(Variance()); }

SampleStats ComputeStats(const std::vector<double>& xs) {
  SampleStats s;
  for (double x : xs) s.Add(x);
  return s;
}

GaussianFit FitGaussianMle(const std::vector<double>& xs) {
  SampleStats s = ComputeStats(xs);
  return {s.mean, std::max(s.Stddev(), 1e-9)};
}

GammaFit FitGammaMle(const std::vector<double>& xs) {
  SampleStats stats = ComputeStats(xs);
  if (stats.count == 0 || stats.mean <= 0.0) return {1.0, 1.0};
  double mean_log = 0.0;
  size_t positive = 0;
  for (double x : xs) {
    if (x > 0.0) {
      mean_log += std::log(x);
      ++positive;
    }
  }
  if (positive == 0) return {1.0, 1.0};
  mean_log /= static_cast<double>(positive);
  const double log_mean = std::log(stats.mean);
  const double diff = log_mean - mean_log;  // >= 0 by Jensen
  if (diff < 1e-12) {
    // Nearly deterministic sample: huge shape, tiny scale.
    const double shape = 1e6;
    return {shape, stats.mean / shape};
  }
  // Minka's initialization followed by Newton steps on
  // f(k) = log(k) - psi(k) - diff.
  double k = (3.0 - diff + std::sqrt((diff - 3.0) * (diff - 3.0) + 24.0 * diff)) /
             (12.0 * diff);
  k = std::max(k, 1e-6);
  for (int iter = 0; iter < 50; ++iter) {
    const double f = std::log(k) - Digamma(k) - diff;
    const double fprime = 1.0 / k - Trigamma(k);
    const double step = f / fprime;
    double next = k - step;
    if (next <= 0.0) next = k / 2.0;
    if (std::fabs(next - k) < 1e-10 * k) {
      k = next;
      break;
    }
    k = next;
  }
  return {k, stats.mean / k};
}

ExponentialFit FitExponentialMle(const std::vector<double>& xs) {
  SampleStats s = ComputeStats(xs);
  if (s.count == 0 || s.mean <= 0.0) return {1.0};
  return {1.0 / s.mean};
}

}  // namespace pcde
