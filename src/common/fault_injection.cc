#include "common/fault_injection.h"

#include <algorithm>
#include <map>
#include <memory>

namespace pcde {
namespace fault {

namespace internal {
std::atomic<int> g_armed_plans{0};
}  // namespace internal

namespace {

// Process-wide site registry. Sites are never destroyed (tests cache
// references in function-local statics), so values are unique_ptrs whose
// pointees outlive every caller; the map itself is a leaky singleton to
// dodge static-destruction-order races with late-exiting threads.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* instance = new Registry();
    return *instance;
  }

  FaultSite& Named(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(name);
    if (it == sites_.end()) {
      it = sites_.emplace(name, std::unique_ptr<FaultSite>(new FaultSite(name)))
               .first;
    }
    return *it->second;
  }

  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(sites_.size());
    for (const auto& entry : sites_) names.push_back(entry.first);
    return names;  // std::map iterates sorted
  }

  FaultSite* Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(name);
    return it == sites_.end() ? nullptr : it->second.get();
  }

  void ForEach(void (*fn)(FaultSite&)) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& entry : sites_) fn(*entry.second);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FaultSite>> sites_;
};

// splitmix64: mixes (seed, hit number) into a uniform 64-bit word for the
// probabilistic trigger. Pure, so a fixed seed replays bit-identically no
// matter how hits interleave across threads.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double Uniform01(uint64_t seed, uint64_t hit) {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(Mix64(seed ^ Mix64(hit)) >> 11) *
         (1.0 / 9007199254740992.0);
}

}  // namespace

FaultSite& FaultSite::Named(const std::string& name) {
  return Registry::Instance().Named(name);
}

bool FaultSite::FireSlow() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t hit = ++hits_;
  if (!armed_) return false;
  bool fire = false;
  if (plan_.fail_on_hit != 0 && hit == plan_.fail_on_hit) fire = true;
  if (!fire && plan_.fail_every != 0 && hit % plan_.fail_every == 0) {
    fire = true;
  }
  if (!fire && plan_.fail_probability > 0.0) {
    fire = Uniform01(plan_.seed, hit) < plan_.fail_probability;
  }
  if (fire) ++triggers_;
  return fire;
}

uint64_t FaultSite::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t FaultSite::triggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return triggers_;
}

void FaultSite::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) {
    armed_ = true;
    internal::g_armed_plans.fetch_add(1, std::memory_order_relaxed);
  }
  plan_ = plan;
  // fail_on_hit counts from the moment of arming — stale hits from an
  // earlier armed window would otherwise silently disable the plan.
  hits_ = 0;
  triggers_ = 0;
}

void FaultSite::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_) {
    armed_ = false;
    internal::g_armed_plans.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultSite::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  triggers_ = 0;
}

Status ArmFault(const std::string& site, const FaultPlan& plan) {
  if (plan.fail_probability < 0.0 || plan.fail_probability > 1.0) {
    return Status::InvalidArgument(
        "FaultPlan.fail_probability must lie in [0, 1]");
  }
  if (plan.fail_on_hit == 0 && plan.fail_every == 0 &&
      plan.fail_probability == 0.0) {
    return Status::InvalidArgument(
        "FaultPlan has no trigger: set fail_on_hit, fail_every, or "
        "fail_probability");
  }
  FaultSite::Named(site).Arm(plan);
  return Status::OK();
}

void DisarmFault(const std::string& site) {
  FaultSite* s = Registry::Instance().Find(site);
  if (s != nullptr) s->Disarm();
}

void DisarmAllFaults() {
  Registry::Instance().ForEach([](FaultSite& s) { s.Disarm(); });
}

std::vector<std::string> RegisteredFaultSites() {
  return Registry::Instance().Names();
}

uint64_t FaultSiteHits(const std::string& site) {
  FaultSite* s = Registry::Instance().Find(site);
  return s == nullptr ? 0 : s->hits();
}

uint64_t FaultSiteTriggers(const std::string& site) {
  FaultSite* s = Registry::Instance().Find(site);
  return s == nullptr ? 0 : s->triggers();
}

void ResetFaultCounters() {
  Registry::Instance().ForEach([](FaultSite& s) { s.ResetCounters(); });
}

}  // namespace fault
}  // namespace pcde
