// ScopedFileRemover: deletes a file on scope exit. Examples and benches
// write temp model artifacts and must clean them up on every exit path —
// including early error returns and gate failures — so the removal rides
// on a destructor instead of a trailing std::remove.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace pcde {

/// "<tmpdir>/<prefix>.<pid><extension>" — the PID suffix keeps concurrent
/// runs on one host (CI + a developer bench) from clobbering each other's
/// artifacts mid save/load.
inline std::string MakeTempArtifactPath(const std::string& prefix,
                                        const std::string& extension =
                                            ".pcdewf") {
  return (std::filesystem::temp_directory_path() /
          (prefix + "." + std::to_string(::getpid()) + extension))
      .string();
}

class ScopedFileRemover {
 public:
  explicit ScopedFileRemover(std::string path) : path_(std::move(path)) {}

  ScopedFileRemover(const ScopedFileRemover&) = delete;
  ScopedFileRemover& operator=(const ScopedFileRemover&) = delete;

  ~ScopedFileRemover() { std::remove(path_.c_str()); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace pcde
