// Plain-text table writer used by the benchmark harnesses to print the
// paper-style rows/series (one table or figure per binary).
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pcde {

/// \brief Collects rows of cells and prints them column-aligned.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 4) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string();
        os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << c;
      }
      os << "\n";
    };
    print_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& r : rows_) print_row(r);
    os.flush();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcde
