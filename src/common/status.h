// Status and StatusOr: exception-free error handling in the style of
// Arrow / RocksDB / Abseil. Library code returns Status (or StatusOr<T>)
// instead of throwing; callers must check ok() before using a value.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pcde {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// \brief Result of an operation that can fail without a payload.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Statuses are cheap to copy (OK carries nothing).
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Status with a payload of type T on success.
///
/// Usage:
///   StatusOr<Histogram1D> h = BuildHistogram(...);
///   if (!h.ok()) return h.status();
///   Use(h.value());
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}      // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status with no value");
  }

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define PCDE_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::pcde::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

#define PCDE_ASSIGN_OR_RETURN(lhs, expr)    \
  auto lhs##_result = (expr);               \
  if (!lhs##_result.ok()) return lhs##_result.status(); \
  auto lhs = std::move(lhs##_result).value()

}  // namespace pcde
