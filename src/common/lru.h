// Single-shard, byte-budgeted LRU map — the shared eviction/recency/
// accounting core of the serving caches. core::QueryCache instantiates one
// per shard (under the shard mutex) and core::PrefixStateCache instantiates
// one directly; both used to hand-roll the same list+map machinery.
//
// Semantics (pinned by tests/query_cache_test and prefix_state_cache_test):
//   * Find refreshes recency and returns a pointer into the cache, valid
//     until the next mutating call.
//   * Insert on a present key only refreshes recency — entries are
//     write-once (cache values are deterministic functions of their keys,
//     so the stored value is already identical).
//   * An entry larger than the whole budget is not admitted.
//   * After an admission, least-recently-used entries are evicted until the
//     byte total fits the budget again (the newest entry itself survives).
//
// Not thread-safe; callers own locking (QueryCache) or are single-threaded
// by design (PrefixStateCache).
#pragma once

#include <cstddef>
#include <functional>
#include <iterator>
#include <list>
#include <unordered_map>
#include <utility>

namespace pcde {

template <typename K, typename V, typename Hash = std::hash<K>>
class Lru {
 public:
  /// Observes each eviction (key, value, accounted bytes) before the entry
  /// is destroyed — both caches count their eviction stats through this.
  /// The entry is already detached from the cache (not findable, bytes
  /// released) when the callback runs, so a callback may reenter Insert or
  /// Clear on the same Lru without invalidating the entry it was handed.
  using EvictionCallback = std::function<void(const K&, V&, size_t)>;

  explicit Lru(size_t max_bytes) : max_bytes_(max_bytes) {}

  Lru(const Lru&) = delete;
  Lru& operator=(const Lru&) = delete;

  size_t max_bytes() const { return max_bytes_; }
  size_t entries() const { return lru_.size(); }
  size_t bytes() const { return bytes_; }

  void set_eviction_callback(EvictionCallback cb) { on_evict_ = std::move(cb); }

  /// Refreshes the entry's recency and returns its value; nullptr on miss.
  /// The pointer is invalidated by the next Insert or Clear.
  V* Find(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->value;
  }

  /// Refreshes the entry's recency without touching the value; true when
  /// the key is present. The write path's cheap probe: callers check
  /// Touch (and the byte budget) before constructing a value at all, so a
  /// refresh or a rejection never pays the value copy.
  bool Touch(const K& key) { return Find(key) != nullptr; }

  /// Admits `value` under `bytes` of accounting, then evicts down to the
  /// budget; true when the entry was inserted. A present key is only
  /// refreshed (the value is not replaced — cached values are
  /// deterministic functions of their keys), and an entry larger than the
  /// whole budget is rejected. One hash probe per call: the index slot is
  /// claimed up front and released again on rejection.
  bool Insert(const K& key, V value, size_t bytes) {
    auto [it, inserted] = index_.try_emplace(key, lru_.end());
    if (!inserted) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return false;
    }
    if (bytes > max_bytes_) {  // cannot fit even alone
      index_.erase(it);
      return false;
    }
    lru_.push_front(Entry{key, std::move(value), bytes});
    it->second = lru_.begin();
    bytes_ += bytes;
    while (bytes_ > max_bytes_ && lru_.size() > 1) {
      // Detach the victim completely — spliced out of the list, index slot
      // erased, bytes released — before the callback sees it. A callback
      // that reenters Insert/Clear then operates on a consistent cache and
      // cannot invalidate the entry being reported out from under us.
      std::list<Entry> detached;
      detached.splice(detached.begin(), lru_, std::prev(lru_.end()));
      Entry& victim = detached.front();
      bytes_ -= victim.bytes;
      index_.erase(victim.key);
      if (on_evict_) on_evict_(victim.key, victim.value, victim.bytes);
    }
    return true;
  }

  void Clear() {
    lru_.clear();
    index_.clear();
    bytes_ = 0;
  }

 private:
  struct Entry {
    K key;
    V value;
    size_t bytes;
  };

  size_t max_bytes_;
  std::list<Entry> lru_;  // most recently used at the front
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
  size_t bytes_ = 0;
  EvictionCallback on_evict_;
};

}  // namespace pcde
