// Small numerical helpers shared across modules: statistics over samples,
// special functions for Gamma MLE (Fig. 11a), and safe logarithms for
// KL-divergence computations.
#pragma once

#include <cstddef>
#include <vector>

namespace pcde {

/// Natural log with floor: log(max(x, tiny)). Keeps KL computations finite
/// under epsilon-smoothing.
double SafeLog(double x);

/// Digamma function psi(x) for x > 0 (asymptotic expansion with recurrence).
/// Accuracy ~1e-12 for x >= 6 and still <1e-8 near 0.1 — ample for MLE.
double Digamma(double x);

/// Trigamma function psi'(x) for x > 0.
double Trigamma(double x);

/// ln Gamma(x) for x > 0 (Lanczos approximation).
double LogGamma(double x);

/// \brief Running mean/variance over a sample (Welford).
struct SampleStats {
  size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Add(double x);
  double Variance() const;   // population variance
  double Stddev() const;
};

SampleStats ComputeStats(const std::vector<double>& xs);

/// Maximum-likelihood Gaussian fit: returns (mean, stddev).
struct GaussianFit { double mean; double stddev; };
GaussianFit FitGaussianMle(const std::vector<double>& xs);

/// Maximum-likelihood Gamma fit via Newton iteration on the shape parameter
/// (Minka's method). Requires strictly positive samples; clamps degenerate
/// inputs to a near-deterministic fit.
struct GammaFit { double shape; double scale; };
GammaFit FitGammaMle(const std::vector<double>& xs);

/// Maximum-likelihood Exponential fit: rate = 1/mean.
struct ExponentialFit { double rate; };
ExponentialFit FitExponentialMle(const std::vector<double>& xs);

}  // namespace pcde
