// Small numerical helpers shared across modules: statistics over samples,
// special functions for Gamma MLE (Fig. 11a), safe logarithms for
// KL-divergence computations, and the integer/double hashing primitives the
// chain kernel and query cache key on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace pcde {

/// splitmix64 finalizer: a proper avalanche mix for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bit pattern of a double with -0.0 normalized to 0.0, so signed zeros
/// hash and compare as one value.
inline uint64_t CanonicalDoubleBits(double v) {
  if (v == 0.0) v = 0.0;  // collapses -0.0
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Natural log with floor: log(max(x, tiny)). Keeps KL computations finite
/// under epsilon-smoothing.
double SafeLog(double x);

/// Digamma function psi(x) for x > 0 (asymptotic expansion with recurrence).
/// Accuracy ~1e-12 for x >= 6 and still <1e-8 near 0.1 — ample for MLE.
double Digamma(double x);

/// Trigamma function psi'(x) for x > 0.
double Trigamma(double x);

/// ln Gamma(x) for x > 0 (Lanczos approximation).
double LogGamma(double x);

/// \brief Running mean/variance over a sample (Welford).
struct SampleStats {
  size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Add(double x);
  double Variance() const;   // population variance
  double Stddev() const;
};

SampleStats ComputeStats(const std::vector<double>& xs);

/// Maximum-likelihood Gaussian fit: returns (mean, stddev).
struct GaussianFit { double mean; double stddev; };
GaussianFit FitGaussianMle(const std::vector<double>& xs);

/// Maximum-likelihood Gamma fit via Newton iteration on the shape parameter
/// (Minka's method). Requires strictly positive samples; clamps degenerate
/// inputs to a near-deterministic fit.
struct GammaFit { double shape; double scale; };
GammaFit FitGammaMle(const std::vector<double>& xs);

/// Maximum-likelihood Exponential fit: rate = 1/mean.
struct ExponentialFit { double rate; };
ExponentialFit FitExponentialMle(const std::vector<double>& xs);

}  // namespace pcde
