// Half-open real interval [lo, hi) with the arithmetic used throughout the
// paper: shift-and-enlarge (Eq. 3), bucket sums (Sec. 4.2), overlap ratios
// (temporal relevance selection in Sec. 4.1.3).
#pragma once

#include <algorithm>
#include <cassert>
#include <ostream>

namespace pcde {

/// \brief Half-open interval [lo, hi). Empty iff hi <= lo.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double l, double h) : lo(l), hi(h) {}

  double width() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  double mid() const { return 0.5 * (lo + hi); }

  bool Contains(double x) const { return x >= lo && x < hi; }

  /// Intersection; empty interval if disjoint.
  Interval Intersect(const Interval& o) const {
    return Interval(std::max(lo, o.lo), std::min(hi, o.hi));
  }

  bool Overlaps(const Interval& o) const { return !Intersect(o).empty(); }

  /// Minkowski sum: [lo+o.lo, hi+o.hi). Used when summing bucket bounds of a
  /// hyper-bucket into a 1-D cost bucket (Sec. 4.2).
  Interval operator+(const Interval& o) const {
    return Interval(lo + o.lo, hi + o.hi);
  }

  Interval Shift(double delta) const { return Interval(lo + delta, hi + delta); }

  /// Default width given to degenerate intervals by Inflated(). Referenced
  /// by the chain kernel's SIMD inflation, which must match bit for bit.
  static constexpr double kDefaultInflateEps = 1e-9;

  /// Degenerate (zero-width) intervals inflated to a hair of width so the
  /// bucket machinery (FlattenToDisjoint) accepts them; non-degenerate
  /// intervals pass through unchanged. Accumulated sums start as [x, x)
  /// before any dimension closes, which is where this is needed.
  Interval Inflated(double epsilon = kDefaultInflateEps) const {
    return width() > 0.0 ? *this : Interval(lo, lo + epsilon);
  }

  /// |this ∩ o| / |this| — the overlap ratio used to pick the temporally most
  /// relevant instantiated variable. Returns 0 for empty intervals.
  double OverlapRatioOf(const Interval& o) const {
    if (empty()) return 0.0;
    Interval x = Intersect(o);
    return x.empty() ? 0.0 : x.width() / width();
  }

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Interval& o) const { return !(*this == o); }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.lo << "," << iv.hi << ")";
}

}  // namespace pcde
