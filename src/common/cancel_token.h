// CancelToken: cooperative deadline + cancellation for long-running
// estimation and routing work (ISSUE 7).
//
// A token is an atomic cancel flag plus an optional steady_clock deadline.
// Work that may run long (the chain sweep, the fallback ladder, the DFS
// router) takes a `const CancelToken*` — nullptr means "never cancelled" —
// and polls `Triggered()` at coarse checkpoints (per decomposition part,
// per DFS expansion). A poll is one relaxed atomic load plus, when a
// deadline is set, one steady_clock read — nanoseconds against the
// microseconds of sweep work each checkpoint guards.
//
// Cancellation is COOPERATIVE: a tripped token makes the computation
// unwind with Status::Cancelled / Status::DeadlineExceeded at its next
// checkpoint — it never interrupts a running kernel, so the overshoot past
// a deadline is bounded by the largest inter-checkpoint gap (one
// decomposition-part sweep, one DFS expansion). The
// `estimate_deadline_overshoot` bench series measures that gap.
#pragma once

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace pcde {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  explicit CancelToken(Clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  /// The deadline `timeout_seconds` of wall clock from now.
  static Clock::time_point DeadlineAfter(double timeout_seconds) {
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(timeout_seconds));
  }

  /// A token that trips once `timeout_seconds` elapse from now. A
  /// non-positive timeout yields an already-expired token (the request is
  /// dead on arrival, which still exercises the full clean-unwind path).
  static CancelToken WithTimeout(double timeout_seconds) {
    return CancelToken(DeadlineAfter(timeout_seconds));
  }

  /// Links an outer token (e.g. a client-connection token) under this one:
  /// the child trips when either it or the parent does, and ToStatus()
  /// reports the parent's reason when the parent tripped first. Not owned;
  /// the parent must outlive the child. nullptr unlinks.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  /// Trips the token explicitly (client disconnect, shutdown). Safe to call
  /// from any thread, any number of times.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// One checkpoint poll: true once the token is cancelled or its deadline
  /// has passed. A poll is a relaxed load plus (with a deadline) one
  /// steady_clock read — every checkpoint guards at least a part sweep or
  /// a DFS expansion, so the poll is noise next to the work it bounds.
  /// Once the deadline is observed as passed, the cancel flag latches.
  bool Triggered() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->Triggered()) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (!has_deadline_) return false;
    if (Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      deadline_hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// The Status a tripped token unwinds with: kDeadlineExceeded when the
  /// deadline fired, kCancelled for an explicit Cancel(). OK if the token
  /// never tripped (callers normally reach this only after Triggered()).
  Status ToStatus() const {
    if (parent_ != nullptr) {
      Status parent_status = parent_->ToStatus();
      if (!parent_status.ok()) return parent_status;
    }
    if (deadline_hit_.load(std::memory_order_relaxed) ||
        (has_deadline_ && Clock::now() >= deadline_)) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    return Status::OK();
  }

  /// Poll through a possibly-null token: the universal checkpoint idiom.
  static bool Check(const CancelToken* token) {
    return token != nullptr && token->Triggered();
  }

  /// Status for a possibly-null token (OK when null or untripped).
  static Status StatusOf(const CancelToken* token) {
    return token == nullptr ? Status::OK() : token->ToStatus();
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  const CancelToken* parent_ = nullptr;  // not owned; outlives this token
};

}  // namespace pcde
