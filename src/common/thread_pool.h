// A small work-stealing thread pool for the batch estimation layer and the
// routing root fan-out. Each worker owns a deque: it pushes and pops its
// own work LIFO (cache-warm) and steals FIFO from victims when dry, so a
// few large tasks spread across workers without a central contended queue.
// Tasks must not throw (the codebase is Status-based); a task may submit
// further tasks (they count toward the same Wait() quiescence).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel_token.h"

namespace pcde {

class ThreadPool {
 public:
  /// `num_threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0) {
    size_t n = num_threads != 0 ? num_threads
                                : static_cast<size_t>(
                                      std::thread::hardware_concurrency());
    if (n == 0) n = 1;
    queues_ = std::vector<WorkerQueue>(n);
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    Wait();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Called from inside a task, it lands on the calling
  /// worker's own deque (depth-first, cache-warm); from outside, tasks are
  /// scattered round-robin.
  void Submit(std::function<void()> fn) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    const size_t home =
        worker_pool_ == this
            ? worker_index_
            : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    {
      std::lock_guard<std::mutex> lock(queues_[home].mutex);
      queues_[home].tasks.push_back(std::move(fn));
    }
    {
      // The epoch under the sleep mutex is what makes the wakeup
      // race-free: a worker that failed to steal after reading the epoch
      // sees it changed and re-scans instead of sleeping through the
      // notification.
      std::lock_guard<std::mutex> lock(mutex_);
      ++epoch_;
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished. The calling thread helps drain the queues.
  void Wait() {
    while (pending_.load(std::memory_order_acquire) != 0) {
      uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        seen = epoch_;
      }
      std::function<void()> task;
      if (Steal(queues_.size(), &task)) {
        RunTask(std::move(task));
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      idle_.wait(lock, [this, seen] {
        return pending_.load(std::memory_order_acquire) == 0 ||
               epoch_ != seen;
      });
    }
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion
  /// of THIS call's items only — not global pool quiescence — so
  /// concurrent ParallelFor callers sharing one pool (serving::Engine
  /// batches and Route fan-outs from multiple client threads) return as
  /// soon as their own group finishes, instead of blocking on each
  /// other's work. The calling thread helps drain the queues while it
  /// waits, so it may finish at most one unrelated stolen task after its
  /// group completes. (fn must not Submit follow-up tasks it needs
  /// awaited — use Wait() for that.)
  ///
  /// One pull-task per worker shares an atomic cursor instead of one
  /// Submit per item: per-item submission pays a queue lock, an epoch
  /// bump under the global mutex, and a wakeup for every element, which
  /// serializes batches of sub-millisecond items (the measured
  /// batch-scaling collapse); one relaxed fetch_add per item does not.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn) {
    ParallelFor(n, std::forward<Fn>(fn), nullptr);
  }

  /// Cancellable variant: once `cancel` trips, remaining items are DRAINED,
  /// not run — the pull-tasks keep claiming cursor indices and counting
  /// them done without invoking fn, so the group's done-accounting reaches
  /// n and the call returns promptly with no counter left pinned. Items
  /// already started still finish (cancellation is cooperative); the caller
  /// decides per item whether it ran (e.g. by writing a result slot in fn).
  /// `cancel == nullptr` is exactly the plain overload. n == 0 returns
  /// immediately and touches nothing — the shed-before-submit path.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn, const CancelToken* cancel) {
    if (n == 0) return;
    if (n == 1) {
      if (!CancelToken::Check(cancel)) fn(0);
      return;
    }
    // Shared, not captured by value: the state must outlive this frame
    // only until the group wait returns, but each task needs the same
    // counters.
    struct Group {
      std::atomic<size_t> cursor{0};
      std::atomic<size_t> done{0};
    };
    auto group = std::make_shared<Group>();
    const size_t tasks = std::min(n, num_threads());
    for (size_t t = 0; t < tasks; ++t) {
      Submit([this, fn, group, n, cancel] {
        size_t completed = 0;
        for (size_t i = group->cursor.fetch_add(1, std::memory_order_relaxed);
             i < n;
             i = group->cursor.fetch_add(1, std::memory_order_relaxed)) {
          // A tripped token drains the index instead of running it; the
          // claim/done accounting is identical either way.
          if (!CancelToken::Check(cancel)) fn(i);
          ++completed;
        }
        if (completed == 0) return;
        // Exactly one adder crosses the total to n (the adds sum to n):
        // it wakes callers parked in the group wait below, which sleep on
        // idle_ like Wait()-ers.
        if (group->done.fetch_add(completed, std::memory_order_acq_rel) +
                completed ==
            n) {
          std::lock_guard<std::mutex> lock(mutex_);
          idle_.notify_all();
        }
      });
    }
    // Group wait: the Wait() loop, with "my items are done" as the exit
    // condition instead of "the whole pool is idle".
    while (group->done.load(std::memory_order_acquire) < n) {
      uint64_t seen;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        seen = epoch_;
      }
      std::function<void()> task;
      if (Steal(queues_.size(), &task)) {
        RunTask(std::move(task));
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      idle_.wait(lock, [this, &group, n, seen] {
        return group->done.load(std::memory_order_acquire) >= n ||
               epoch_ != seen ||
               pending_.load(std::memory_order_acquire) == 0;
      });
    }
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;

    WorkerQueue() = default;
    WorkerQueue(const WorkerQueue&) {}  // vector-resize support; empty copy
  };

  void RunTask(std::function<void()>&& task) {
    task();
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      idle_.notify_all();
    }
  }

  /// The epoch under mutex_ at this instant; workers read it before
  /// scanning queues so a concurrent Submit cannot slip between a failed
  /// scan and the wait.
  uint64_t CurrentEpoch() {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  /// Pops own back first (me < queues_.size()), then steals victims' fronts.
  bool Steal(size_t me, std::function<void()>* out) {
    const size_t n = queues_.size();
    if (me < n) {
      std::lock_guard<std::mutex> lock(queues_[me].mutex);
      if (!queues_[me].tasks.empty()) {
        *out = std::move(queues_[me].tasks.back());
        queues_[me].tasks.pop_back();
        return true;
      }
    }
    for (size_t k = 0; k < n; ++k) {
      const size_t victim = (me + 1 + k) % n;
      std::lock_guard<std::mutex> lock(queues_[victim].mutex);
      if (!queues_[victim].tasks.empty()) {
        *out = std::move(queues_[victim].tasks.front());
        queues_[victim].tasks.pop_front();
        return true;
      }
    }
    return false;
  }

  void WorkerLoop(size_t index) {
    worker_pool_ = this;
    worker_index_ = index;
    for (;;) {
      const uint64_t seen = CurrentEpoch();
      std::function<void()> task;
      if (Steal(index, &task)) {
        RunTask(std::move(task));
        continue;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this, seen] { return stopping_ || epoch_ != seen; });
      if (stopping_) return;
    }
  }

  /// Which pool (and worker slot) the current thread belongs to; external
  /// threads, and workers of *other* pools, scatter round-robin instead.
  static thread_local ThreadPool* worker_pool_;
  static thread_local size_t worker_index_;

  std::vector<WorkerQueue> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  uint64_t epoch_ = 0;  // guarded by mutex_; bumped per Submit
  bool stopping_ = false;
};

inline thread_local ThreadPool* ThreadPool::worker_pool_ = nullptr;
inline thread_local size_t ThreadPool::worker_index_ = 0;

}  // namespace pcde
