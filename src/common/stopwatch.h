// Wall-clock stopwatch used by the benchmark harnesses (Fig. 16-18) and the
// OD phase breakdown (Fig. 17: OI / JC / MC).
#pragma once

#include <chrono>

namespace pcde {

/// \brief Simple monotonic stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across multiple start/stop phases; used for the
/// Fig. 17 run-time breakdown of the OD estimator.
class PhaseTimer {
 public:
  void Start() { watch_.Restart(); running_ = true; }
  void Stop() {
    if (running_) {
      total_seconds_ += watch_.ElapsedSeconds();
      running_ = false;
    }
  }
  void Reset() { total_seconds_ = 0.0; running_ = false; }
  double total_seconds() const { return total_seconds_; }
  double total_millis() const { return total_seconds_ * 1e3; }

 private:
  Stopwatch watch_;
  double total_seconds_ = 0.0;
  bool running_ = false;
};

/// RAII guard that stops a PhaseTimer when leaving scope.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer* timer) : timer_(timer) {
    if (timer_ != nullptr) timer_->Start();
  }
  ~ScopedPhase() {
    if (timer_ != nullptr) timer_->Stop();
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
};

}  // namespace pcde
