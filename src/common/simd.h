// Portable explicit-SIMD primitives for the chain kernel's hot loops: the
// transition convolution (interval add + probability multiply) and the
// flatten's density preparation, over structure-of-arrays double lanes.
//
// The backend is selected at compile time: AVX2 on x86-64, NEON on ARM, a
// plain scalar loop otherwise. Define PCDE_SIMD_FORCE_SCALAR (CMake:
// -DPCDE_SIMD=OFF) to force the scalar fallback — CI runs the golden
// equivalence tests both ways. Every kernel here is elementwise (or an
// order-insensitive min/max reduction), so all backends produce
// bit-identical IEEE-754 results: switching SIMD on or off cannot change
// any estimate. Reductions whose result depends on summation order (masses,
// merge costs) deliberately stay scalar in the callers.
#pragma once

#include <cstddef>

#if !defined(PCDE_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#define PCDE_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif !defined(PCDE_SIMD_FORCE_SCALAR) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__))
#define PCDE_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define PCDE_SIMD_BACKEND_SCALAR 1
#endif

namespace pcde {
namespace simd {

inline const char* BackendName() {
#if defined(PCDE_SIMD_BACKEND_AVX2)
  return "avx2";
#elif defined(PCDE_SIMD_BACKEND_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// The transition convolution over a group's SoA sums: shift every interval
/// by (dlo, dhi) and scale every probability by w, writing to the output
/// lanes. Output may not alias input.
inline void ShiftScaleTo(const double* lo, const double* hi, const double* prob,
                         size_t n, double dlo, double dhi, double w,
                         double* out_lo, double* out_hi, double* out_prob) {
  size_t i = 0;
#if defined(PCDE_SIMD_BACKEND_AVX2)
  const __m256d vdlo = _mm256_set1_pd(dlo);
  const __m256d vdhi = _mm256_set1_pd(dhi);
  const __m256d vw = _mm256_set1_pd(w);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out_lo + i,
                     _mm256_add_pd(_mm256_loadu_pd(lo + i), vdlo));
    _mm256_storeu_pd(out_hi + i,
                     _mm256_add_pd(_mm256_loadu_pd(hi + i), vdhi));
    _mm256_storeu_pd(out_prob + i,
                     _mm256_mul_pd(_mm256_loadu_pd(prob + i), vw));
  }
#elif defined(PCDE_SIMD_BACKEND_NEON)
  const float64x2_t vdlo = vdupq_n_f64(dlo);
  const float64x2_t vdhi = vdupq_n_f64(dhi);
  const float64x2_t vw = vdupq_n_f64(w);
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out_lo + i, vaddq_f64(vld1q_f64(lo + i), vdlo));
    vst1q_f64(out_hi + i, vaddq_f64(vld1q_f64(hi + i), vdhi));
    vst1q_f64(out_prob + i, vmulq_f64(vld1q_f64(prob + i), vw));
  }
#endif
  for (; i < n; ++i) {
    out_lo[i] = lo[i] + dlo;
    out_hi[i] = hi[i] + dhi;
    out_prob[i] = prob[i] * w;
  }
}

/// In-place interval shift (closing a group's open boxes into its sums).
inline void ShiftInPlace(double* lo, double* hi, size_t n, double dlo,
                         double dhi) {
  size_t i = 0;
#if defined(PCDE_SIMD_BACKEND_AVX2)
  const __m256d vdlo = _mm256_set1_pd(dlo);
  const __m256d vdhi = _mm256_set1_pd(dhi);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(lo + i, _mm256_add_pd(_mm256_loadu_pd(lo + i), vdlo));
    _mm256_storeu_pd(hi + i, _mm256_add_pd(_mm256_loadu_pd(hi + i), vdhi));
  }
#elif defined(PCDE_SIMD_BACKEND_NEON)
  const float64x2_t vdlo = vdupq_n_f64(dlo);
  const float64x2_t vdhi = vdupq_n_f64(dhi);
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(lo + i, vaddq_f64(vld1q_f64(lo + i), vdlo));
    vst1q_f64(hi + i, vaddq_f64(vld1q_f64(hi + i), vdhi));
  }
#endif
  for (; i < n; ++i) {
    lo[i] += dlo;
    hi[i] += dhi;
  }
}

/// Degenerate-interval inflation (Interval::Inflated over SoA lanes):
/// out_lo = lo; out_hi = (hi - lo > 0) ? hi : lo + eps. The flatten accepts
/// zero-width accumulated sums only after this widening.
inline void InflateTo(const double* lo, const double* hi, size_t n, double eps,
                      double* out_lo, double* out_hi) {
  size_t i = 0;
#if defined(PCDE_SIMD_BACKEND_AVX2)
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d vzero = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m256d vlo = _mm256_loadu_pd(lo + i);
    const __m256d vhi = _mm256_loadu_pd(hi + i);
    const __m256d width = _mm256_sub_pd(vhi, vlo);
    const __m256d keep = _mm256_cmp_pd(width, vzero, _CMP_GT_OQ);
    const __m256d inflated = _mm256_add_pd(vlo, veps);
    _mm256_storeu_pd(out_lo + i, vlo);
    _mm256_storeu_pd(out_hi + i, _mm256_blendv_pd(inflated, vhi, keep));
  }
#elif defined(PCDE_SIMD_BACKEND_NEON)
  const float64x2_t veps = vdupq_n_f64(eps);
  const float64x2_t vzero = vdupq_n_f64(0.0);
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vlo = vld1q_f64(lo + i);
    const float64x2_t vhi = vld1q_f64(hi + i);
    const uint64x2_t keep = vcgtq_f64(vsubq_f64(vhi, vlo), vzero);
    const float64x2_t inflated = vaddq_f64(vlo, veps);
    vst1q_f64(out_lo + i, vlo);
    vst1q_f64(out_hi + i, vbslq_f64(keep, vhi, inflated));
  }
#endif
  for (; i < n; ++i) {
    out_lo[i] = lo[i];
    out_hi[i] = hi[i] - lo[i] > 0.0 ? hi[i] : lo[i] + eps;
  }
}

/// Elementwise densities for the flatten: out = num / den. IEEE division is
/// exact per lane, so this matches the scalar divide bit for bit.
inline void DivTo(const double* num, const double* den, size_t n,
                  double* out) {
  size_t i = 0;
#if defined(PCDE_SIMD_BACKEND_AVX2)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_div_pd(_mm256_loadu_pd(num + i),
                               _mm256_loadu_pd(den + i)));
  }
#elif defined(PCDE_SIMD_BACKEND_NEON)
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vdivq_f64(vld1q_f64(num + i), vld1q_f64(den + i)));
  }
#endif
  for (; i < n; ++i) out[i] = num[i] / den[i];
}

/// Elementwise subtraction: out = a - b (interval widths over SoA lanes).
inline void SubTo(const double* a, const double* b, size_t n, double* out) {
  size_t i = 0;
#if defined(PCDE_SIMD_BACKEND_AVX2)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                               _mm256_loadu_pd(b + i)));
  }
#elif defined(PCDE_SIMD_BACKEND_NEON)
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
#endif
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

/// Min/max reduction over a lane (the bucket-grid range of the sort-free
/// flatten). Min and max are exactly associative and commutative on the
/// finite doubles that reach this, so lane order cannot change the result.
/// Requires n >= 1.
inline void MinMax(const double* x, size_t n, double* out_min,
                   double* out_max) {
  size_t i = 0;
  double mn = x[0];
  double mx = x[0];
#if defined(PCDE_SIMD_BACKEND_AVX2)
  if (n >= 4) {
    __m256d vmn = _mm256_loadu_pd(x);
    __m256d vmx = vmn;
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(x + i);
      vmn = _mm256_min_pd(vmn, v);
      vmx = _mm256_max_pd(vmx, v);
    }
    double lanes[4];
    _mm256_storeu_pd(lanes, vmn);
    mn = lanes[0];
    for (int k = 1; k < 4; ++k) mn = lanes[k] < mn ? lanes[k] : mn;
    _mm256_storeu_pd(lanes, vmx);
    mx = lanes[0];
    for (int k = 1; k < 4; ++k) mx = lanes[k] > mx ? lanes[k] : mx;
  }
#elif defined(PCDE_SIMD_BACKEND_NEON)
  if (n >= 2) {
    float64x2_t vmn = vld1q_f64(x);
    float64x2_t vmx = vmn;
    for (i = 2; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(x + i);
      vmn = vminq_f64(vmn, v);
      vmx = vmaxq_f64(vmx, v);
    }
    mn = vminvq_f64(vmn);
    mx = vmaxvq_f64(vmx);
  }
#endif
  for (; i < n; ++i) {
    mn = x[i] < mn ? x[i] : mn;
    mx = x[i] > mx ? x[i] : mx;
  }
  *out_min = mn;
  *out_max = mx;
}

}  // namespace simd
}  // namespace pcde
