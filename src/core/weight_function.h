// The hybrid graph's path weight function W_P (Sec. 3.3): a store of
// instantiated random variables V_P^{I_j}, each the joint travel-cost
// distribution of a path's edges during one time-of-day interval,
// represented as a multi-dimensional histogram.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/params.h"
#include "hist/histogram_nd.h"
#include "roadnet/path.h"

namespace pcde {
namespace core {

/// \brief One instantiated random variable V_P^{I_j}.
struct InstantiatedVariable {
  roadnet::Path path;
  int32_t interval = kAllDayInterval;  // index into the alpha grid
  hist::HistogramND joint;             // rank = path.size() dimensions
  size_t support = 0;                  // #qualified trajectories
  bool from_speed_limit = false;       // Sec. 3.1 fallback for unit paths

  size_t rank() const { return path.size(); }
};

/// \brief W_P: lookup of instantiated variables by (path, interval), plus
/// the per-start-edge listing the candidate array (Sec. 4.1.3) needs.
class PathWeightFunction {
 public:
  explicit PathWeightFunction(const TimeBinning& binning) : binning_(binning) {}

  const TimeBinning& binning() const { return binning_; }

  /// Adds a variable; last write wins for duplicate (path, interval).
  void Add(InstantiatedVariable variable);

  /// Exact lookup of V_P^{I_j}; nullptr when not instantiated.
  const InstantiatedVariable* Lookup(const roadnet::Path& path,
                                     int32_t interval) const;

  /// All instantiated variables (over all intervals) whose path begins with
  /// edge `e`; the rows of the candidate array are drawn from this set.
  const std::vector<const InstantiatedVariable*>& StartingAt(
      roadnet::EdgeId e) const;

  /// \brief The unit variable for edge `e` most temporally relevant to the
  /// departure window `window` (largest |I_j ∩ window| / |window|), falling
  /// back to the edge's speed-limit variable. Never nullptr once the weight
  /// function was built over a graph (fallbacks cover every edge).
  const InstantiatedVariable* UnitVariable(roadnet::EdgeId e,
                                           const Interval& window) const;

  size_t NumVariables() const { return variables_.size(); }

  /// Variables instantiated from trajectories (excludes speed-limit
  /// fallbacks) grouped by rank; Figs. 8(b), 9, 10.
  std::map<size_t, size_t> CountByRank(bool include_speed_limit = false) const;

  /// Distinct edges covered by trajectory-instantiated variables — |E'| of
  /// the Fig. 8(a) coverage ratio.
  size_t NumCoveredEdges() const;

  /// Total bytes of all joint histograms (Fig. 12).
  size_t MemoryUsageBytes(bool include_speed_limit = true) const;

  /// Average differential entropy of trajectory-instantiated variables per
  /// rank group (Fig. 8b); key 4 aggregates ranks >= 4.
  std::map<size_t, double> MeanEntropyByRank() const;

  const std::deque<InstantiatedVariable>& variables() const {
    return variables_;
  }

  /// Process-unique id of this weight-function instance. The query cache
  /// folds it into every key, so a cache that (incorrectly) outlives its
  /// weight function turns into guaranteed misses instead of false hits
  /// when a reloaded model recycles variable addresses.
  uint64_t generation() const { return generation_; }

 private:
  static uint64_t NextGeneration();
  struct Key {
    std::vector<roadnet::EdgeId> edges;
    int32_t interval;
    bool operator==(const Key& o) const {
      return interval == o.interval && edges == o.edges;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = static_cast<size_t>(k.interval) * 0x9e3779b97f4a7c15ull + 1;
      for (roadnet::EdgeId e : k.edges) {
        h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  TimeBinning binning_;
  uint64_t generation_ = NextGeneration();
  // deque: stable references under Add(), which the pointer indexes rely on.
  std::deque<InstantiatedVariable> variables_;
  std::unordered_map<Key, size_t, KeyHash> by_key_;
  std::unordered_map<roadnet::EdgeId, std::vector<const InstantiatedVariable*>>
      by_start_edge_;
  std::vector<const InstantiatedVariable*> empty_;
};

}  // namespace core
}  // namespace pcde
