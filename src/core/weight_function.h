// The hybrid graph's path weight function W_P (Sec. 3.3): a store of
// instantiated random variables V_P^{I_j}, each the joint travel-cost
// distribution of a path's edges during one time-of-day interval,
// represented as a multi-dimensional histogram.
//
// The model layer is split into two phases mirroring the paper's offline /
// online split:
//
//   * WeightFunctionBuilder — the mutable build-side store. Owns Add()
//     (last write wins per (path, interval)) and is what
//     core/instantiation populates during the expensive offline stage.
//
//   * PathWeightFunction — the immutable frozen serving representation
//     produced by Freeze(). Variables, per-start-edge candidate lists, and
//     every HistogramND boundary/bucket payload live in contiguous
//     arena-backed arrays; lookups are index-based (interned edge
//     sequences -> dense variable ids through a flat open-addressing
//     table) instead of per-variable heap maps. The flat arrays are
//     exactly the payload sections of the binary model artifact
//     (core/serialization), so saving is a handful of writes and loading
//     is one read plus pointer fixup.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "core/params.h"
#include "hist/histogram_nd.h"
#include "roadnet/path.h"

namespace pcde {
namespace core {

/// \brief One instantiated random variable V_P^{I_j}.
///
/// In a frozen PathWeightFunction the `joint` is a zero-copy view into the
/// model arena and `id` is the variable's dense index — stable across
/// save/load, which makes decomposition identities (and therefore
/// QueryCache keys) portable across processes serving the same artifact.
struct InstantiatedVariable {
  roadnet::Path path;
  int32_t interval = kAllDayInterval;  // index into the alpha grid
  hist::HistogramND joint;             // rank = path.size() dimensions
  size_t support = 0;                  // #qualified trajectories
  bool from_speed_limit = false;       // Sec. 3.1 fallback for unit paths
  uint32_t id = 0;                     // dense frozen id (assigned by Freeze)

  size_t rank() const { return path.size(); }
};

/// Contiguous candidate list (the StartingAt rows): pointers into the
/// frozen store's variable array, in insertion order.
using VariableList = Span<const InstantiatedVariable*>;

/// Ceiling on front-edge ids admitted from *artifacts* (16M edges ~ 128 MB
/// of dense candidate-list offsets): defense in depth against a corrupt
/// file driving the CSR allocation to gigabytes. Live builds are not
/// capped — a model built over a genuinely huge graph sizes its index to
/// the graph, exactly like the graph's own adjacency arrays.
constexpr uint64_t kMaxArtifactEdgeId = uint64_t{1} << 24;

/// \brief The flat arena layout of a frozen weight function. These arrays
/// are the payload sections of the binary artifact verbatim: a built model
/// points them into vectors assembled by Freeze(), a loaded model points
/// them into the single file buffer. All offsets are element counts.
struct WeightFunctionSections {
  uint64_t num_vars = 0;
  uint64_t num_seqs = 0;

  // Interned edge sequences: distinct paths stored once, shared by
  // variables over different intervals.
  const uint64_t* seq_off = nullptr;        // [num_seqs + 1]
  const roadnet::EdgeId* seq_edges = nullptr;  // [seq_off[num_seqs]]

  // Per-variable metadata, indexed by variable id.
  const uint32_t* var_seq = nullptr;   // [num_vars] sequence id of the path
  const int32_t* intervals = nullptr;  // [num_vars]
  const uint64_t* supports = nullptr;  // [num_vars]
  const uint8_t* flags = nullptr;      // [num_vars] bit 0: from_speed_limit

  // Histogram payload: one global boundary pool, one probability lane, one
  // bucket-major index lane, with per-variable offset arrays.
  const uint64_t* var_dim_off = nullptr;  // [num_vars + 1] global dim index
  const uint64_t* bound_off = nullptr;    // [var_dim_off[num_vars] + 1]
  const double* bounds = nullptr;         // [bound_off[total_dims]]
  const uint64_t* bucket_off = nullptr;   // [num_vars + 1]
  const uint64_t* idx_off = nullptr;      // [num_vars + 1]
  const double* probs = nullptr;          // [bucket_off[num_vars]]
  const uint32_t* idx = nullptr;          // [idx_off[num_vars]]

  uint64_t TotalDims() const { return num_vars == 0 ? 0 : var_dim_off[num_vars]; }
  uint64_t TotalEdges() const { return num_seqs == 0 ? 0 : seq_off[num_seqs]; }
  uint64_t TotalBounds() const {
    return TotalDims() == 0 ? 0 : bound_off[TotalDims()];
  }
  uint64_t TotalBuckets() const {
    return num_vars == 0 ? 0 : bucket_off[num_vars];
  }
  uint64_t TotalIdx() const { return num_vars == 0 ? 0 : idx_off[num_vars]; }

  /// One entry of the canonical section layout below.
  struct SectionView {
    uint64_t kind;  // the binary artifact's section kind id (1-based)
    const void* data;
    uint64_t nbytes;
  };
  static constexpr size_t kNumSections = 13;

  /// The canonical section layout — the single statement of per-section
  /// element counts and widths, shared by the binary serializer, the
  /// checksum/fingerprint, and the byte accounting. Order is the artifact
  /// section order; kind == position + 1. Requires the offset arrays to be
  /// wired (or the counts to be zero).
  std::array<SectionView, kNumSections> SectionTable() const {
    return {{
        {1, seq_off, (num_seqs + 1) * sizeof(uint64_t)},
        {2, seq_edges, TotalEdges() * sizeof(roadnet::EdgeId)},
        {3, var_seq, num_vars * sizeof(uint32_t)},
        {4, intervals, num_vars * sizeof(int32_t)},
        {5, supports, num_vars * sizeof(uint64_t)},
        {6, flags, num_vars * sizeof(uint8_t)},
        {7, var_dim_off, (num_vars + 1) * sizeof(uint64_t)},
        {8, bound_off, (TotalDims() + 1) * sizeof(uint64_t)},
        {9, bounds, TotalBounds() * sizeof(double)},
        {10, bucket_off, (num_vars + 1) * sizeof(uint64_t)},
        {11, idx_off, (num_vars + 1) * sizeof(uint64_t)},
        {12, probs, TotalBuckets() * sizeof(double)},
        {13, idx, TotalIdx() * sizeof(uint32_t)},
    }};
  }
};

/// \brief W_P, frozen: immutable index of instantiated variables over the
/// flat arena, serving exact (path, interval) lookup, the per-start-edge
/// candidate listing the candidate array (Sec. 4.1.3) needs, and the
/// temporally-relevant unit-variable query.
class PathWeightFunction {
 public:
  PathWeightFunction(const PathWeightFunction&) = delete;
  PathWeightFunction& operator=(const PathWeightFunction&) = delete;
  PathWeightFunction(PathWeightFunction&&) = default;
  PathWeightFunction& operator=(PathWeightFunction&&) = default;

  const TimeBinning& binning() const { return binning_; }

  /// Exact lookup of V_P^{I_j}; nullptr when not instantiated.
  const InstantiatedVariable* Lookup(const roadnet::Path& path,
                                     int32_t interval) const;

  /// All instantiated variables (over all intervals) whose path begins with
  /// edge `e`; the rows of the candidate array are drawn from this set.
  /// Insertion order of the builder is preserved, and identical across
  /// save/load.
  VariableList StartingAt(roadnet::EdgeId e) const;

  /// \brief The unit variable for edge `e` most temporally relevant to the
  /// departure window `window` (largest |I_j ∩ window| / |window|), falling
  /// back to the edge's speed-limit variable. Never nullptr once the weight
  /// function was built over a graph (fallbacks cover every edge).
  const InstantiatedVariable* UnitVariable(roadnet::EdgeId e,
                                           const Interval& window) const;

  size_t NumVariables() const { return variables_.size(); }

  /// Variables instantiated from trajectories (excludes speed-limit
  /// fallbacks) grouped by rank; Figs. 8(b), 9, 10.
  std::map<size_t, size_t> CountByRank(bool include_speed_limit = false) const;

  /// Distinct edges covered by trajectory-instantiated variables — |E'| of
  /// the Fig. 8(a) coverage ratio.
  size_t NumCoveredEdges() const;

  /// Total bytes of all joint histograms (Fig. 12).
  size_t MemoryUsageBytes(bool include_speed_limit = true) const;

  /// Bytes actually resident for serving: the flat arena payload plus the
  /// materialized variable index, candidate lists, and probe table.
  size_t ResidentBytes() const;

  /// Average differential entropy of trajectory-instantiated variables per
  /// rank group (Fig. 8b); key 4 aggregates ranks >= 4.
  std::map<size_t, double> MeanEntropyByRank() const;

  /// All variables in id order (`variables()[i].id == i`); a builder's
  /// insertion order, preserved across save/load.
  const std::vector<InstantiatedVariable>& variables() const {
    return variables_;
  }

  /// Content fingerprint of the frozen model: a 64-bit hash over the time
  /// binning and every payload section, identical for a just-built model
  /// and any save/load round trip of it (it doubles as the binary
  /// artifact's checksum). The query cache folds it into every key
  /// together with frozen variable ids, so cached decomposition results
  /// are addressable across processes serving the same artifact, and a
  /// cache shared across different models turns into misses instead of
  /// false hits.
  uint64_t fingerprint() const { return fingerprint_; }

  /// The flat arena layout (serialization detail; reads only).
  const WeightFunctionSections& sections() const { return sections_; }

  /// \brief Assembles a frozen model over an externally owned arena: the
  /// section pointers must stay valid for `arena`'s lifetime. Validates
  /// every structural invariant (offset monotonicity, index ranges,
  /// rank == histogram dims) so corrupt artifacts fail here with a clean
  /// Status instead of faulting at query time. Does no per-bucket work
  /// beyond one linear validation scan and no per-bucket allocation.
  /// `max_front_edge_id` bounds the dense candidate-list index; artifact
  /// loaders pass kMaxArtifactEdgeId, trusted build paths leave it
  /// unlimited. `precomputed_fingerprint`, when non-null, is adopted as
  /// fingerprint() instead of rehashing the payload — for callers that
  /// just computed SectionChecksum over these exact sections (the binary
  /// loader's checksum verification); everyone else passes nullptr.
  static StatusOr<PathWeightFunction> FromSections(
      const TimeBinning& binning, std::shared_ptr<const void> arena,
      const WeightFunctionSections& sections,
      uint64_t max_front_edge_id = UINT64_MAX,
      const uint64_t* precomputed_fingerprint = nullptr);

  /// Hash used by the fingerprint/checksum (exposed for the serializer).
  static uint64_t SectionChecksum(double alpha_seconds,
                                  const WeightFunctionSections& sections);

 private:
  friend class WeightFunctionBuilder;
  explicit PathWeightFunction(const TimeBinning& binning)
      : binning_(binning) {}

  TimeBinning binning_{30.0};
  std::shared_ptr<const void> arena_;  // owns everything sections_ points at
  WeightFunctionSections sections_;
  uint64_t fingerprint_ = 0;

  // Materialized per-variable views (joint = zero-copy view into the
  // arena), in id order.
  std::vector<InstantiatedVariable> variables_;

  // Candidate lists: CSR over front edge ids. start_ptrs_ holds all
  // variables grouped by front edge in insertion order; start_off_[e] is
  // edge e's slice.
  std::vector<uint64_t> start_off_;
  std::vector<const InstantiatedVariable*> start_ptrs_;

  // Open-addressing (edge sequence, interval) -> variable id probe table;
  // power-of-two size, UINT32_MAX = empty.
  std::vector<uint32_t> probe_;

  const InstantiatedVariable* ProbeLookup(const roadnet::EdgeId* edges,
                                          size_t n, int32_t interval) const;
};

/// \brief The mutable build-side store: Add() accumulates instantiated
/// variables (last write wins per (path, interval)), Freeze() compiles them
/// into the frozen serving representation. Build-side queries are not
/// offered — the offline stage only writes.
class WeightFunctionBuilder {
 public:
  explicit WeightFunctionBuilder(const TimeBinning& binning)
      : binning_(binning) {}

  /// \brief Re-hydrates a builder from a frozen model — the delta-rebuild
  /// entry point of online model refresh: fold a new trajectory batch into
  /// a FromFrozen builder (core/instantiation's InstantiateIntoBuilder) and
  /// re-freeze instead of replaying the full history.
  ///
  /// Variables are replayed in id order, which is the original builder's
  /// insertion order, so FromFrozen(M) followed by the same Adds a fresh
  /// builder would receive freezes to a fingerprint-identical model: the
  /// round trip Freeze(FromFrozen(M)) reproduces M's fingerprint exactly.
  /// The copied joints are O(1) views whose shared arena keeps `frozen`'s
  /// payload alive past `frozen` itself.
  static WeightFunctionBuilder FromFrozen(const PathWeightFunction& frozen);

  const TimeBinning& binning() const { return binning_; }
  size_t NumVariables() const { return variables_.size(); }

  /// Adds a variable; last write wins for duplicate (path, interval).
  /// The path must be non-empty and the joint must have rank() dimensions
  /// (violations are reported by Freeze).
  void Add(InstantiatedVariable variable);

  /// Compiles the accumulated variables into the frozen representation,
  /// preserving insertion order (which fixes variable ids and candidate
  /// list order). Consumes the builder.
  StatusOr<PathWeightFunction> TryFreeze() &&;

  /// TryFreeze for infallible call sites (instantiation over a graph, test
  /// fixtures): aborts on structurally invalid input.
  PathWeightFunction Freeze() &&;

 private:
  struct Key {
    std::vector<roadnet::EdgeId> edges;
    int32_t interval;
    bool operator==(const Key& o) const {
      return interval == o.interval && edges == o.edges;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = static_cast<size_t>(k.interval) * 0x9e3779b97f4a7c15ull + 1;
      for (roadnet::EdgeId e : k.edges) {
        h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  TimeBinning binning_;
  // deque: stable slots under Add(), which by_key_ replacement relies on.
  std::deque<InstantiatedVariable> variables_;
  std::unordered_map<Key, size_t, KeyHash> by_key_;
};

}  // namespace core
}  // namespace pcde
