#include "core/decomposition.h"

#include <algorithm>

namespace pcde {
namespace core {

using roadnet::Path;

StatusOr<CandidateArray> DecompositionBuilder::BuildCandidateArray(
    const Path& query, double departure_time, size_t rank_cap) const {
  if (query.empty()) {
    return Status::InvalidArgument("BuildCandidateArray: empty query path");
  }
  CandidateArray array;
  array.query = query;
  array.departure_time = departure_time;
  array.rows.resize(query.size());

  const TimeBinning& binning = wp_.binning();
  // Eq. 3: UI_1 = [t, t]; UI_k = SAE(UI_{k-1}, V_{e_{k-1}}).
  Interval window(departure_time, departure_time);
  for (size_t k = 0; k < query.size(); ++k) {
    CandidateRow& row = array.rows[k];
    row.departure_window = window;
    const size_t max_rank =
        rank_cap > 0 ? std::min(rank_cap, query.size() - k) : query.size() - k;
    row.by_rank.assign(max_rank, nullptr);

    // Spatially relevant variables starting at this row's edge; keep, per
    // rank, the temporally most relevant one (largest overlap ratio).
    std::vector<double> best_overlap(max_rank, 0.0);
    for (const InstantiatedVariable* v : wp_.StartingAt(query[k])) {
      const size_t r = v->rank();
      if (r == 0 || r > max_rank) continue;
      // Spatial relevance: the variable's path must be the query slice.
      bool spatial = true;
      for (size_t d = 0; d < r; ++d) {
        if (v->path[d] != query[k + d]) {
          spatial = false;
          break;
        }
      }
      if (!spatial) continue;
      double overlap;
      if (v->interval == kAllDayInterval) {
        overlap = 1e-12;  // fallback: relevant, but any data variable wins
      } else {
        const Interval ij = binning.IntervalOf(v->interval);
        overlap = window.width() > 0.0 ? window.OverlapRatioOf(ij)
                                       : (ij.Contains(window.lo) ? 1.0 : 0.0);
      }
      if (overlap > best_overlap[r - 1]) {
        best_overlap[r - 1] = overlap;
        row.by_rank[r - 1] = v;
      }
    }
    if (row.by_rank[0] == nullptr) {
      return Status::FailedPrecondition(
          "BuildCandidateArray: no unit variable for edge " +
          std::to_string(query[k]) +
          " (was the weight function instantiated over this graph?)");
    }

    // Shift-and-enlarge for the next row using this row's unit variable.
    const InstantiatedVariable* unit = row.by_rank[0];
    const double vmin = unit->joint.DimRange(0).lo;
    const double vmax = unit->joint.DimRange(0).hi;
    window = Interval(window.lo + vmin, window.hi + vmax);
  }
  return array;
}

std::vector<uint8_t> DecompositionBuilder::UnitCoverage(
    const Path& query) const {
  std::vector<uint8_t> covered(query.size(), 0);
  for (size_t k = 0; k < query.size(); ++k) {
    for (const InstantiatedVariable* v : wp_.StartingAt(query[k])) {
      if (v->rank() == 1) {
        covered[k] = 1;
        break;
      }
    }
  }
  return covered;
}

namespace {

/// Appends `part` unless its span is contained in an already-selected part
/// (Algorithm 1's sub-path elimination; spans of the same query path, so
/// positional containment == the sub-path relation).
void AppendIfNotContained(Decomposition* de, DecompositionPart part) {
  for (const DecompositionPart& p : *de) {
    if (p.start <= part.start && part.end() <= p.end()) return;
  }
  de->push_back(part);
}

}  // namespace

Decomposition DecompositionBuilder::Coarsest(const CandidateArray& array) {
  Decomposition de;
  for (size_t k = 0; k < array.rows.size(); ++k) {
    const InstantiatedVariable* v = array.rows[k].Highest();
    if (v == nullptr) continue;  // cannot happen after successful build
    AppendIfNotContained(&de, DecompositionPart{v, k});
  }
  return de;
}

Decomposition DecompositionBuilder::Random(const CandidateArray& array,
                                           Rng* rng) {
  Decomposition de;
  for (size_t k = 0; k < array.rows.size(); ++k) {
    const CandidateRow& row = array.rows[k];
    std::vector<const InstantiatedVariable*> available;
    for (const InstantiatedVariable* v : row.by_rank) {
      if (v != nullptr) available.push_back(v);
    }
    if (available.empty()) continue;
    const InstantiatedVariable* v = available[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(available.size()) - 1))];
    AppendIfNotContained(&de, DecompositionPart{v, k});
  }
  return de;
}

Decomposition DecompositionBuilder::PairwiseChain(const CandidateArray& array) {
  Decomposition de;
  for (size_t k = 0; k < array.rows.size(); ++k) {
    const CandidateRow& row = array.rows[k];
    const InstantiatedVariable* pair =
        row.by_rank.size() >= 2 ? row.by_rank[1] : nullptr;
    const InstantiatedVariable* v = pair != nullptr ? pair : row.by_rank[0];
    if (v == nullptr) continue;
    AppendIfNotContained(&de, DecompositionPart{v, k});
  }
  return de;
}

Decomposition DecompositionBuilder::UnitChain(const CandidateArray& array) {
  Decomposition de;
  for (size_t k = 0; k < array.rows.size(); ++k) {
    const InstantiatedVariable* v = array.rows[k].by_rank[0];
    if (v != nullptr) de.push_back(DecompositionPart{v, k});
  }
  return de;
}

Status DecompositionBuilder::Validate(const Decomposition& de,
                                      const Path& query) {
  if (de.empty()) return Status::InvalidArgument("empty decomposition");
  std::vector<bool> covered(query.size(), false);
  for (size_t i = 0; i < de.size(); ++i) {
    const DecompositionPart& p = de[i];
    // Condition (1): each part is a sub-path of the query at its position.
    if (p.end() > query.size()) {
      return Status::InvalidArgument("part exceeds query length");
    }
    for (size_t d = 0; d < p.rank(); ++d) {
      if (p.variable->path[d] != query[p.start + d]) {
        return Status::InvalidArgument("part path mismatch with query");
      }
      covered[p.start + d] = true;
    }
    // Condition (4): ordered by first edge.
    if (i > 0 && de[i - 1].start >= p.start) {
      return Status::InvalidArgument("parts not ordered by first edge");
    }
    // Condition (3): no part is a sub-path of another.
    for (size_t j = 0; j < de.size(); ++j) {
      if (i == j) continue;
      if (de[j].start <= p.start && p.end() <= de[j].end()) {
        return Status::InvalidArgument("a part is a sub-path of another");
      }
    }
  }
  // Condition (2): the parts cover the query.
  for (bool c : covered) {
    if (!c) return Status::InvalidArgument("parts do not cover the query");
  }
  return Status::OK();
}

bool DecompositionBuilder::IsCoarser(const Decomposition& a,
                                     const Decomposition& b) {
  bool strict = false;
  for (const DecompositionPart& pb : b) {
    bool contained = false;
    for (const DecompositionPart& pa : a) {
      if (pa.start <= pb.start && pb.end() <= pa.end()) {
        contained = true;
        if (pa.rank() != pb.rank() || pa.start != pb.start) strict = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return strict;
}

}  // namespace core
}  // namespace pcde
