// Evaluation of Eq. 2 — the decomposable-model estimate
//   p̂(C_P) = Π p(C_Pi) / Π p(C_{Pi ∩ Pi-1})
// over multi-dimensional histograms, fused with the Sec. 4.2 reduction to
// the univariate cost distribution.
//
// The decomposition is a chain junction tree (parts ordered left to right,
// consecutive parts overlapping on separators). ChainSweeper sweeps the
// chain keeping a sparse distribution over states
//   (accumulated-sum interval, open separator box),
// where "open" dimensions are the edges shared with the next part. Each
// part contributes a proper conditional p(new dims | separator) formed from
// its own histogram (hyper-bucket mass divided by its separator marginal);
// separator boundary mismatches between adjacent histograms are resolved by
// box intersection under the uniform-within-bucket assumption. Closed
// dimensions Minkowski-sum their bucket ranges into the running total; the
// final states are flattened into a disjoint 1-D histogram (Fig. 7) and
// compacted.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/decomposition.h"
#include "hist/histogram1d.h"

namespace pcde {
namespace core {

struct ChainOptions {
  size_t max_result_buckets = 64;
  /// Cap on accumulated-sum entries per open-box group; beyond it the sums
  /// are flattened and compacted (bounded-memory progressive convolution).
  size_t sums_per_box_cap = 48;
  /// Cap on the number of open-box groups; the lowest-mass groups beyond
  /// it are demoted to an unconditioned overflow group (their boxes close
  /// into the running sums), trading a little tail dependence for bounded
  /// per-step work.
  size_t max_groups = 48;
  /// If the surviving probability mass falls below this (adjacent
  /// histograms with disjoint separator supports), the caller should retry
  /// under part independence.
  double min_total_mass = 1e-9;
  /// Ignore separators: every part treated as independent (the fallback
  /// mode, and the natural semantics of the LB unit chain).
  bool force_independence = false;
};

struct ChainDiagnostics {
  size_t variables_used = 0;
  size_t max_states = 0;  // peak total sum-entries across groups
  bool independence_fallback = false;
};

/// \brief Stateful left-to-right sweep over a decomposition chain.
///
/// Copyable: stochastic routing branches the sweep state per explored
/// prefix ("path + another edge", Sec. 4.3).
class ChainSweeper {
 public:
  explicit ChainSweeper(const ChainOptions& options);

  /// Applies one part. `next_overlap_start` is the query position where the
  /// overlap with the *next* part will begin (== the next part's start);
  /// pass part.end() (or anything >= it) for the final part. Positions of
  /// this part at or beyond it stay open for conditioning.
  void ApplyPart(const DecompositionPart& part, size_t next_overlap_start);

  /// Probability mass still alive (1 minus what box mismatches destroyed).
  double MassRemaining() const;

  /// Peak state count observed so far.
  size_t max_states() const { return max_states_; }

  /// Closes all open dimensions and produces the cost distribution.
  /// Returns FailedPrecondition when the remaining mass is below
  /// options.min_total_mass (caller retries with force_independence).
  StatusOr<hist::Histogram1D> Finalize() const;

  /// Smallest possible accumulated cost over surviving states (a support
  /// lower bound used by routing pruning).
  double MinSum() const;

 private:
  struct SumEntry {
    Interval sum;
    double prob;
  };
  struct Group {
    std::vector<size_t> positions;  // global edge positions of open dims
    std::vector<Interval> boxes;    // open box per position
    std::vector<SumEntry> sums;
  };

  static std::string GroupKey(const std::vector<Interval>& boxes);
  static double GroupMass(const Group& g);
  static void CompactSums(Group* g, size_t cap);

  ChainOptions options_;
  std::unordered_map<std::string, Group> groups_;
  size_t max_states_ = 0;
};

/// \brief One-shot estimation of the cost distribution of the query path
/// from a decomposition (Sec. 4.1.2 + Sec. 4.2). Retries under independence
/// when separator-support mismatch destroys (nearly) all mass.
///
/// `jc_timer` / `mc_timer` (optional) accumulate the joint-computation and
/// marginalization phases for the Fig. 17 run-time breakdown.
StatusOr<hist::Histogram1D> EstimateFromDecomposition(
    const Decomposition& de, const ChainOptions& options = ChainOptions(),
    ChainDiagnostics* diagnostics = nullptr, PhaseTimer* jc_timer = nullptr,
    PhaseTimer* mc_timer = nullptr);

/// \brief H_DE(C_P) of Theorem 2: sum of part entropies minus sum of
/// separator entropies (differential, in nats). By Theorem 2,
/// KL(p, p̂_DE) = H_DE − H, so smaller is better; Fig. 15 compares methods
/// by this quantity.
double DecompositionEntropy(const Decomposition& de);

}  // namespace core
}  // namespace pcde
