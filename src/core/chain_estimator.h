// Evaluation of Eq. 2 — the decomposable-model estimate
//   p̂(C_P) = Π p(C_Pi) / Π p(C_{Pi ∩ Pi-1})
// over multi-dimensional histograms, fused with the Sec. 4.2 reduction to
// the univariate cost distribution.
//
// The decomposition is a chain junction tree (parts ordered left to right,
// consecutive parts overlapping on separators). ChainSweeper sweeps the
// chain keeping a sparse distribution over states
//   (accumulated-sum interval, open separator box),
// where "open" dimensions are the edges shared with the next part. Each
// part contributes a proper conditional p(new dims | separator) formed from
// its own histogram (hyper-bucket mass divided by its separator marginal);
// separator boundary mismatches between adjacent histograms are resolved by
// box intersection under the uniform-within-bucket assumption. Closed
// dimensions Minkowski-sum their bucket ranges into the running total; the
// final states are flattened into a disjoint 1-D histogram (Fig. 7) and
// compacted.
//
// State representation (the hot path of every efficiency figure): open
// boxes are interned into a per-sweeper interval pool, so a state's open
// separator box is a short tuple of integer ids. Grouping states then
// probes a flat open-addressing table keyed on that inline integer tuple
// (no heap key, no per-group node, no double-byte aliasing — interning
// normalizes -0.0 to 0.0, so signed zeros cannot split a group), the
// per-part separator marginal is a dense array indexed by flattened
// hyper-bucket separator id, and all per-transition temporaries live in
// warm thread-local scratch buffers (including the progressive compaction,
// which runs the hist:: flatten+compact pipeline allocation-free, ending
// in the shared size-dispatched greedy merge of hist/greedy_merge.h —
// blocked argmin small, lazy pair heap large, identical sequences).
// Because a part's open suffix is a contiguous position range,
// position→slot lookup is arithmetic.
//
// A group's accumulated sums are stored structure-of-arrays (lo/hi/prob
// lanes, SumsSoA): the transition convolution and the flatten's density
// preparation run as contiguous SIMD kernels (common/simd.h — AVX2/NEON
// with a bit-identical scalar fallback), and the progressive compaction's
// cut ordering uses the sort-free monotone bucket grid shared with
// hist::FlattenToDisjoint (hist/cut_binning.h) instead of a comparison
// sort. SoA buffers are recycled through the per-thread scratch arena.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/cancel_token.h"
#include "common/interval.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/decomposition.h"
#include "hist/cut_binning.h"
#include "hist/greedy_merge.h"
#include "hist/histogram1d.h"

namespace pcde {
namespace core {

struct ChainOptions {
  size_t max_result_buckets = 64;
  /// Cap on accumulated-sum entries per open-box group; beyond it the sums
  /// are flattened and compacted (bounded-memory progressive convolution).
  size_t sums_per_box_cap = 48;
  /// Cap on the number of open-box groups; the lowest-mass groups beyond
  /// it are demoted to an unconditioned overflow group (their boxes close
  /// into the running sums), trading a little tail dependence for bounded
  /// per-step work.
  size_t max_groups = 48;
  /// If the surviving probability mass falls below this (adjacent
  /// histograms with disjoint separator supports), the caller should retry
  /// under part independence.
  double min_total_mass = 1e-9;
  /// Ignore separators: every part treated as independent (the fallback
  /// mode, and the natural semantics of the LB unit chain).
  bool force_independence = false;
};

struct ChainDiagnostics {
  size_t variables_used = 0;
  size_t max_states = 0;  // peak total sum-entries across groups
  bool independence_fallback = false;
};

/// \brief Stateful left-to-right sweep over a decomposition chain.
///
/// Copyable: stochastic routing branches the sweep state per explored
/// prefix ("path + another edge", Sec. 4.3).
class ChainSweeper {
 public:
  /// Separator dimensions a state can keep open. Parts whose open suffix
  /// exceeds this (rank far beyond HybridParams::max_instantiated_rank = 8)
  /// have the excess leading dimensions closed into the running sums — a
  /// graceful fallback toward part independence for those dimensions only.
  /// Later parts covering an early-closed position marginalize their own
  /// histogram over it (the cost is already in the sums; re-adding the box
  /// would double-count it).
  static constexpr size_t kMaxOpenDims = 16;

  explicit ChainSweeper(const ChainOptions& options);

  /// Applies one part. `next_overlap_start` is the query position where the
  /// overlap with the *next* part will begin (== the next part's start);
  /// pass part.end() (or anything >= it) for the final part. Positions of
  /// this part at or beyond it stay open for conditioning.
  void ApplyPart(const DecompositionPart& part, size_t next_overlap_start);

  /// Probability mass still alive (1 minus what box mismatches destroyed).
  double MassRemaining() const;

  /// Peak state count observed so far.
  size_t max_states() const { return max_states_; }

  /// Closes all open dimensions and produces the cost distribution.
  /// Returns FailedPrecondition when the remaining mass is below
  /// options.min_total_mass (caller retries with force_independence).
  StatusOr<hist::Histogram1D> Finalize() const;

  /// Smallest possible accumulated cost over surviving states (a support
  /// lower bound used by routing pruning).
  double MinSum() const;

  /// Mass fraction of surviving states whose smallest possible accumulated
  /// cost is <= x — an upper bound on the final CDF at x while the sweep
  /// has conserved its mass. Returns 1.0 (no information) once separator
  /// mismatch has destroyed mass: Finalize renormalizes the remainder, so
  /// a ratio over the surviving states would no longer bound the final
  /// distribution. Routing's incumbent pruning probes this per extension.
  double CdfUpperBoundAt(double x) const;

  /// Appends one (cost, mass) point per surviving state: its smallest
  /// possible accumulated cost into `optimistic` and its largest into
  /// `pessimistic` — the support envelope of the accumulated-cost
  /// distribution, from which routing's dominance frontier builds its
  /// step-function sketches. Returns the total surviving mass (callers
  /// must discard the envelope when it has dropped below 1: destroyed
  /// mass renormalizes at Finalize and voids both sides).
  double AppendSupportPoints(
      std::vector<std::pair<double, double>>* optimistic,
      std::vector<std::pair<double, double>>* pessimistic) const;

  /// Approximate heap footprint of the sweep state (groups' SoA lanes plus
  /// the interval pool) — the byte accounting PrefixStateCache budgets
  /// cached sweeper snapshots with.
  size_t MemoryBytes() const;

 private:
  using BoxId = uint32_t;

  /// Structure-of-arrays accumulated-sum storage: interval bounds and
  /// probabilities in three contiguous double lanes, so the transition
  /// convolution (shift every interval, scale every probability) and the
  /// flatten's inflation/density preparation vectorize over whole groups
  /// instead of striding through AoS entries. Buffers are recycled through
  /// the per-thread scratch arena between parts.
  struct SumsSoA {
    std::vector<double> lo, hi, prob;

    size_t size() const { return prob.size(); }
    bool empty() const { return prob.empty(); }
    size_t capacity() const { return prob.capacity(); }
    void clear() {
      lo.clear();
      hi.clear();
      prob.clear();
    }
    Interval interval(size_t i) const { return Interval(lo[i], hi[i]); }
    void PushBack(const Interval& iv, double p) {
      lo.push_back(iv.lo);
      hi.push_back(iv.hi);
      prob.push_back(p);
    }
    /// Plain concatenation (overflow demotion); copies bits untouched.
    void Append(const SumsSoA& src);
    /// The vectorized transition convolution: appends src with intervals
    /// shifted by (dlo, dhi) and probabilities scaled by w. src must not
    /// alias this.
    void AppendShiftScale(const SumsSoA& src, double dlo, double dhi,
                          double w);
  };

  /// Inline tuple of interned open-box ids; the group key. Hashes and
  /// compares as integers.
  struct BoxKey {
    uint32_t n = 0;
    std::array<BoxId, kMaxOpenDims> ids{};

    bool operator==(const BoxKey& o) const {
      if (n != o.n) return false;
      for (uint32_t i = 0; i < n; ++i) {
        if (ids[i] != o.ids[i]) return false;
      }
      return true;
    }
  };
  struct BoxKeyHash {
    size_t operator()(const BoxKey& k) const;
  };

  /// A state group: all accumulated-sum entries sharing one open box tuple.
  /// The open *positions* are shared by every group of a sweep (always the
  /// contiguous range [open_begin_, open_begin_ + key.n); the overflow /
  /// initial group has key.n == 0), so they live on the sweeper, not here.
  struct Group {
    BoxKey key;
    SumsSoA sums;
  };

  /// Interns intervals (exact value equality, signed zeros normalized) so
  /// box tuples compare and hash as integer ids. Compacted when it outgrows
  /// the surviving groups, keeping sweeper copies cheap.
  class IntervalPool {
   public:
    BoxId Intern(const Interval& iv);
    const Interval& Get(BoxId id) const { return intervals_[id]; }
    size_t size() const { return intervals_.size(); }
    void Clear();

   private:
    struct Bits {
      uint64_t lo, hi;
      bool operator==(const Bits& o) const {
        return lo == o.lo && hi == o.hi;
      }
    };
    struct BitsHash {
      size_t operator()(const Bits& b) const;
    };
    std::vector<Interval> intervals_;
    std::unordered_map<Bits, BoxId, BitsHash> index_;
  };

  /// Per-thread scratch for ApplyPart: rebuilt from scratch per part, so
  /// one warm instance per thread serves every sweeper on it (routing
  /// copies sweepers per explored prefix; per-sweeper scratch would start
  /// cold each time and pay the allocations again). Sweepers on different
  /// threads get independent instances, keeping EstimateBatch lock-free.
  struct Scratch {
    std::vector<uint32_t> live;         // indices of positive-mass buckets
    std::vector<double> cond_w;         // per live bucket: prob / sep marginal
    std::vector<Interval> o_box;        // per live bucket × O dim: bucket box
    std::vector<Interval> close_shift;  // per live bucket: closing, non-O dims
    std::vector<BoxId> open_ids;        // per live bucket × non-O open slot
    std::vector<BoxId> raw_o_ids;       // per live bucket × O dim (unkeyed)
    std::vector<double> sep_marginal;   // dense separator marginal
    std::vector<uint64_t> sep_stride;   // flattening strides per O dim
    std::vector<Group> next_groups;
    /// Flat open-addressing transition index (slot -> next_groups index,
    /// linear probing, power-of-two slots): the per-step group lookup of
    /// the transition sweep. Keys live in next_groups themselves (the
    /// pooled SoA group storage), so the table is a bare u32 lane — no
    /// per-group node allocation, no pointer chasing, rebuilt by a memset
    /// per part (same pattern as weight_function.cc's (seq, interval)
    /// probe table).
    std::vector<uint32_t> group_slots;
    std::vector<std::pair<double, uint32_t>> by_mass;  // demote ordering
    /// The per-thread SoA arena: recycled sums buffers. A part can
    /// materialize thousands of transient groups, and without reuse every
    /// one pays three heap allocations for its lanes (the dominant hidden
    /// cost of the old kernel's per-part rebuild). Total retained capacity
    /// is budgeted (the scratch lives for the thread's lifetime; one
    /// pathological query must not pin its peak footprint forever).
    std::vector<SumsSoA> sums_pool;
    size_t sums_pool_entries = 0;  // summed capacity of pooled buffers
    // Fused flatten+compact (CompactSums) buffers.
    std::vector<double> cs_ilo;    // inflated interval lanes
    std::vector<double> cs_ihi;
    std::vector<double> cs_width;  // inflated widths
    std::vector<double> cs_dens;   // per-entry densities prob / width
    std::vector<double> cs_cuts;
    hist::CutBinningScratch cs_cut_bins;  // sort-free cut ordering
    std::vector<uint32_t> cs_cut_order;   // sorted-cut origin positions
    std::vector<uint32_t> cs_slice_of;    // per-bound deduped cut index
    std::vector<double> cs_diff;
    std::vector<int32_t> cs_cover;
    std::vector<hist::Bucket> cs_flat;    // flattened slices (AoS staging)
    hist::GreedyMergeScratch cs_merge;    // lazy pair-heap merge storage
  };

  static Scratch& LocalScratch();
  static double GroupMass(const Group& g);
  void CompactSums(SumsSoA* sums, size_t cap);
  /// Folds a group's open boxes into its sums (the interval Minkowski
  /// shift), leaving it unconditioned.
  void CloseGroup(Group* g);
  /// Re-interns the surviving groups' boxes into a fresh pool once the pool
  /// outgrows them, bounding sweeper copy cost.
  void MaybeCompactPool();

  ChainOptions options_;
  std::vector<Group> groups_;
  IntervalPool pool_;
  size_t open_begin_ = 0;   // first open position; groups with key.n > 0
                            // cover [open_begin_, open_begin_ + key.n)
  size_t max_states_ = 0;
};

/// \brief One-shot estimation of the cost distribution of the query path
/// from a decomposition (Sec. 4.1.2 + Sec. 4.2). Retries under independence
/// when separator-support mismatch destroys (nearly) all mass.
///
/// `jc_timer` / `mc_timer` (optional) accumulate the joint-computation and
/// marginalization phases for the Fig. 17 run-time breakdown.
///
/// `cancel` (optional) is polled between part transitions — the sweep's
/// cooperative-cancellation checkpoint. A tripped token unwinds with the
/// token's Status (kDeadlineExceeded / kCancelled) before the next
/// ApplyPart, so the deadline overshoot is bounded by one part sweep.
StatusOr<hist::Histogram1D> EstimateFromDecomposition(
    const Decomposition& de, const ChainOptions& options = ChainOptions(),
    ChainDiagnostics* diagnostics = nullptr, PhaseTimer* jc_timer = nullptr,
    PhaseTimer* mc_timer = nullptr, const CancelToken* cancel = nullptr);

/// \brief H_DE(C_P) of Theorem 2: sum of part entropies minus sum of
/// separator entropies (differential, in nats). By Theorem 2,
/// KL(p, p̂_DE) = H_DE − H, so smaller is better; Fig. 15 compares methods
/// by this quantity.
double DecompositionEntropy(const Decomposition& de);

}  // namespace core
}  // namespace pcde
