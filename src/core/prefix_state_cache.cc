#include "core/prefix_state_cache.h"

#include "common/mathutil.h"

namespace pcde {
namespace core {

namespace {

/// Fixed per-entry bookkeeping estimate: list node, map node, amortized
/// bucket-array slot.
constexpr size_t kEntryOverheadBytes = 160;

}  // namespace

size_t PrefixStateCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix64(k.size());
  for (uint64_t v : k) h = Mix64(h ^ v);
  return static_cast<size_t>(h);
}

PrefixStateCache::PrefixStateCache(PrefixStateCacheOptions options)
    : options_(options), lru_(options.max_bytes) {
  lru_.set_eviction_callback(
      [this](const Key&, ChainSweeper&, size_t) { ++stats_.evictions; });
}

size_t PrefixStateCache::EntryBytes(const Key& key,
                                    const ChainSweeper& state) {
  // The key is stored twice (LRU node + index node).
  return 2 * key.size() * sizeof(uint64_t) + state.MemoryBytes() +
         kEntryOverheadBytes;
}

bool PrefixStateCache::Lookup(const Key& key, ChainSweeper* out) {
  const ChainSweeper* state = lru_.Find(key);
  if (state == nullptr) {
    ++stats_.misses;
    return false;
  }
  *out = *state;
  ++stats_.hits;
  return true;
}

void PrefixStateCache::Insert(const Key& key, const ChainSweeper& state) {
  // A present key only refreshes recency: the state for a key is
  // deterministic, so the existing snapshot is identical — and the Touch
  // probe (plus the budget check) runs before the sweeper snapshot is
  // copied at all, keeping the DFS's innermost loop copy-free on refresh
  // and rejection.
  if (lru_.Touch(key)) return;
  const size_t bytes = EntryBytes(key, state);
  if (bytes > options_.max_bytes) return;  // cannot fit even alone
  if (lru_.Insert(key, state, bytes)) ++stats_.insertions;
}

PrefixStateCacheStats PrefixStateCache::stats() const {
  PrefixStateCacheStats s = stats_;
  s.entries = lru_.entries();
  s.bytes = lru_.bytes();
  return s;
}

void PrefixStateCache::Clear() { lru_.Clear(); }

}  // namespace core
}  // namespace pcde
