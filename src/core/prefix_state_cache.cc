#include "core/prefix_state_cache.h"

#include "common/mathutil.h"

namespace pcde {
namespace core {

namespace {

/// Fixed per-entry bookkeeping estimate: list node, map node, amortized
/// bucket-array slot.
constexpr size_t kEntryOverheadBytes = 160;

}  // namespace

size_t PrefixStateCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix64(k.size());
  for (uint64_t v : k) h = Mix64(h ^ v);
  return static_cast<size_t>(h);
}

PrefixStateCache::PrefixStateCache(PrefixStateCacheOptions options)
    : options_(options) {}

size_t PrefixStateCache::EntryBytes(const Key& key,
                                    const ChainSweeper& state) {
  // The key is stored twice (LRU node + index node).
  return 2 * key.size() * sizeof(uint64_t) + state.MemoryBytes() +
         kEntryOverheadBytes;
}

bool PrefixStateCache::Lookup(const Key& key, ChainSweeper* out) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->state;
  ++stats_.hits;
  return true;
}

void PrefixStateCache::Insert(const Key& key, const ChainSweeper& state) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    // The state for a key is deterministic; the existing snapshot is
    // identical, so only the recency moves.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  const size_t bytes = EntryBytes(key, state);
  if (bytes > options_.max_bytes) return;  // cannot fit even alone
  lru_.push_front(Entry{key, state, bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  ++stats_.insertions;
  while (bytes_ > options_.max_bytes && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

PrefixStateCacheStats PrefixStateCache::stats() const {
  PrefixStateCacheStats s = stats_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

void PrefixStateCache::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace core
}  // namespace pcde
