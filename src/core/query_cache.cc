#include "core/query_cache.h"

#include <cmath>
#include <memory>

#include "common/mathutil.h"

namespace pcde {
namespace core {

namespace {

/// Fixed per-entry bookkeeping estimate: list node, map node, amortized
/// bucket-array slot.
constexpr size_t kEntryOverheadBytes = 160;

}  // namespace

size_t QueryCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix64(k.size());
  for (uint64_t v : k) h = Mix64(h ^ v);
  return static_cast<size_t>(h);
}

QueryCache::QueryCache(QueryCacheOptions options) : options_(options) {
  size_t shards = 1;
  while (shards < std::max<size_t>(options_.num_shards, 1)) shards <<= 1;
  options_.num_shards = shards;
  shard_mask_ = shards - 1;
  per_shard_budget_ = std::max<size_t>(options_.max_bytes / shards, 1);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard_budget_));
    // Fires under the owning shard's lock; the counter is atomic because
    // different shards evict concurrently.
    shards_.back()->lru.set_eviction_callback(
        [this](const Key&, std::shared_ptr<const hist::Histogram1D>&,
               size_t) {
          evictions_.fetch_add(1, std::memory_order_relaxed);
        });
  }
}

uint64_t QueryCache::Fingerprint(const ChainOptions& chain) {
  uint64_t h = Mix64(0x9c0de);
  h = Mix64(h ^ chain.max_result_buckets);
  h = Mix64(h ^ chain.sums_per_box_cap);
  h = Mix64(h ^ chain.max_groups);
  h = Mix64(h ^ CanonicalDoubleBits(chain.min_total_mass));
  h = Mix64(h ^ static_cast<uint64_t>(chain.force_independence));
  return h;
}

QueryCache::Key QueryCache::MakeKey(const Decomposition& de,
                                    double departure_time,
                                    double time_bucket_seconds,
                                    uint64_t options_fingerprint,
                                    uint64_t model_fingerprint) {
  Key key;
  key.reserve(3 + 2 * de.size());
  key.push_back(model_fingerprint);
  key.push_back(options_fingerprint);
  // The time bucket is strictly redundant today — the chain evaluation is a
  // pure function of (decomposition, options) — but it is kept in the key
  // deliberately: it bounds how long an entry stays addressable as traffic
  // moves through the day, and stays correct if estimation ever becomes
  // time-dependent beyond decomposition choice.
  const double width = time_bucket_seconds > 0.0 ? time_bucket_seconds : 1.0;
  key.push_back(static_cast<uint64_t>(
      static_cast<int64_t>(std::floor(departure_time / width))));
  for (const DecompositionPart& part : de) {
    // Frozen variable ids, not addresses: stable across save/load, so the
    // same decomposition keys the same entry in every process serving this
    // model artifact.
    key.push_back(part.variable->id);
    key.push_back(part.start);
  }
  return key;
}

size_t QueryCache::EntryBytes(const Key& key,
                              const hist::Histogram1D& result) {
  // The key is stored twice (LRU node + index node).
  return 2 * key.size() * sizeof(uint64_t) + result.MemoryUsageBytes() +
         kEntryOverheadBytes;
}

QueryCache::Shard& QueryCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) & shard_mask_];
}

bool QueryCache::Lookup(const Key& key, hist::Histogram1D* out) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const hist::Histogram1D> found;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto* entry = shard.lru.Find(key)) found = *entry;
  }
  if (found == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  *out = *found;  // deep copy outside the shard lock
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void QueryCache::Insert(const Key& key, const hist::Histogram1D& result) {
  const size_t bytes = EntryBytes(key, result);
  if (bytes > per_shard_budget_) return;  // cannot fit even alone
  Shard& shard = ShardFor(key);
  bool inserted;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // A present key means a concurrent worker inserted the same
    // (deterministic) result between our miss and this insert; Touch then
    // only refreshes recency, skipping the histogram copy entirely.
    if (shard.lru.Touch(key)) return;
    inserted = shard.lru.Insert(
        key, std::make_shared<const hist::Histogram1D>(result), bytes);
  }
  if (inserted) insertions_.fetch_add(1, std::memory_order_relaxed);
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.entries += shard->lru.entries();
    s.bytes += shard->lru.bytes();
  }
  return s;
}

void QueryCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.Clear();
  }
}

}  // namespace core
}  // namespace pcde
