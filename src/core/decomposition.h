// Path decompositions (Sec. 4.1): the candidate array of spatially and
// temporally relevant instantiated variables, the shift-and-enlarge
// procedure for temporal relevance (Eq. 3), and Algorithm 1, which selects
// the coarsest decomposition (provably the most accurate, Theorems 1-4).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/weight_function.h"
#include "roadnet/path.h"

namespace pcde {
namespace core {

/// \brief One row of the candidate array (Table 1): the variables whose
/// paths start at the row's edge, indexed by rank (by_rank[r-1] is the rank-r
/// variable or nullptr), plus the row's updated departure window UI_k.
struct CandidateRow {
  std::vector<const InstantiatedVariable*> by_rank;
  Interval departure_window;  // UI_k from Eq. 3

  /// Highest-rank variable of the row; never nullptr after a successful
  /// BuildCandidateArray (rank 1 always exists via the fallback).
  const InstantiatedVariable* Highest() const {
    for (size_t r = by_rank.size(); r-- > 0;) {
      if (by_rank[r] != nullptr) return by_rank[r];
    }
    return nullptr;
  }
};

/// \brief Candidate array for a (query path, departure time) pair.
struct CandidateArray {
  roadnet::Path query;
  double departure_time = 0.0;
  std::vector<CandidateRow> rows;  // one per edge of `query`
};

/// \brief One element of a decomposition: an instantiated variable whose
/// path equals query.Slice(start, variable->rank()).
struct DecompositionPart {
  const InstantiatedVariable* variable = nullptr;
  size_t start = 0;  // edge offset within the query path

  size_t rank() const { return variable->rank(); }
  size_t end() const { return start + rank(); }  // exclusive
};

/// A decomposition DE = (P1, ..., Pk) in left-to-right order.
using Decomposition = std::vector<DecompositionPart>;

/// \brief Builds candidate arrays and decompositions against a weight
/// function.
class DecompositionBuilder {
 public:
  explicit DecompositionBuilder(const PathWeightFunction& wp) : wp_(wp) {}

  /// \brief The candidate array: for every row (edge position) the
  /// spatially relevant variables (paths that are sub-paths of the query
  /// starting at the row) that are temporally relevant to the progressively
  /// shifted-and-enlarged departure window (Eq. 3). `rank_cap` > 0 limits
  /// variable rank (the OD-x methods of Fig. 16); 0 means unlimited.
  StatusOr<CandidateArray> BuildCandidateArray(const roadnet::Path& query,
                                               double departure_time,
                                               size_t rank_cap = 0) const;

  /// \brief Per-position unit coverage of `query`: result[k] != 0 iff some
  /// rank-1 variable (trajectory-instantiated or speed-limit fallback)
  /// starts at query[k]. A model instantiated over its serving graph covers
  /// every edge; a zero here is the sparse-coverage condition that makes
  /// BuildCandidateArray fail and that the estimator's degradation ladder
  /// (HybridEstimator::EstimateWithFallback) routes around.
  std::vector<uint8_t> UnitCoverage(const roadnet::Path& query) const;

  /// Algorithm 1: the coarsest decomposition (Theorem 4: unique and
  /// coarsest among decompositions drawn from the instantiated variables).
  static Decomposition Coarsest(const CandidateArray& array);

  /// The RD baseline: picks a uniformly random rank per row, then applies
  /// the same sub-path elimination as Algorithm 1.
  static Decomposition Random(const CandidateArray& array, Rng* rng);

  /// The HP baseline [10]: the full chain of rank-2 variables
  /// (<e1,e2>, <e2,e3>, ...), falling back to unit variables where a pair
  /// was not instantiated.
  static Decomposition PairwiseChain(const CandidateArray& array);

  /// The LB baseline (legacy graph, Sec. 2.3): unit variables only; the
  /// chain estimator then reduces to convolution with arrival-time
  /// progression.
  static Decomposition UnitChain(const CandidateArray& array);

  /// Validates the paper's four decomposition conditions against `query`.
  static Status Validate(const Decomposition& de, const roadnet::Path& query);

  /// True iff `a` is coarser than `b` (Sec. 4.1.1): every path of `b` is a
  /// sub-path of some path of `a`, and at least one inclusion is strict.
  static bool IsCoarser(const Decomposition& a, const Decomposition& b);

 private:
  const PathWeightFunction& wp_;
};

}  // namespace core
}  // namespace pcde
