#include "core/weight_function.h"

#include <algorithm>
#include <atomic>

namespace pcde {
namespace core {

uint64_t PathWeightFunction::NextGeneration() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void PathWeightFunction::Add(InstantiatedVariable variable) {
  Key key{variable.path.edges(), variable.interval};
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Replace in place; indexes keep pointing at the same slot.
    variables_[it->second] = std::move(variable);
    return;
  }
  variables_.push_back(std::move(variable));
  const size_t idx = variables_.size() - 1;
  by_key_.emplace(std::move(key), idx);
  const InstantiatedVariable& stored = variables_[idx];
  by_start_edge_[stored.path.front()].push_back(&stored);
}

const InstantiatedVariable* PathWeightFunction::Lookup(
    const roadnet::Path& path, int32_t interval) const {
  auto it = by_key_.find(Key{path.edges(), interval});
  if (it == by_key_.end()) return nullptr;
  return &variables_[it->second];
}

const std::vector<const InstantiatedVariable*>& PathWeightFunction::StartingAt(
    roadnet::EdgeId e) const {
  auto it = by_start_edge_.find(e);
  return it == by_start_edge_.end() ? empty_ : it->second;
}

const InstantiatedVariable* PathWeightFunction::UnitVariable(
    roadnet::EdgeId e, const Interval& window) const {
  const InstantiatedVariable* best = nullptr;
  const InstantiatedVariable* fallback = nullptr;
  double best_overlap = 0.0;
  for (const InstantiatedVariable* v : StartingAt(e)) {
    if (v->rank() != 1) continue;
    if (v->interval == kAllDayInterval) {
      fallback = v;
      continue;
    }
    const double overlap =
        window.width() > 0.0
            ? window.OverlapRatioOf(binning_.IntervalOf(v->interval))
            : (binning_.IntervalOf(v->interval).Contains(window.lo) ? 1.0 : 0.0);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = v;
    }
  }
  return best != nullptr ? best : fallback;
}

std::map<size_t, size_t> PathWeightFunction::CountByRank(
    bool include_speed_limit) const {
  std::map<size_t, size_t> counts;
  for (const InstantiatedVariable& v : variables_) {
    if (!include_speed_limit && v.from_speed_limit) continue;
    counts[v.rank()] += 1;
  }
  return counts;
}

size_t PathWeightFunction::NumCoveredEdges() const {
  std::vector<roadnet::EdgeId> edges;
  for (const InstantiatedVariable& v : variables_) {
    if (v.from_speed_limit) continue;
    for (roadnet::EdgeId e : v.path) edges.push_back(e);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges.size();
}

size_t PathWeightFunction::MemoryUsageBytes(bool include_speed_limit) const {
  size_t bytes = 0;
  for (const InstantiatedVariable& v : variables_) {
    if (!include_speed_limit && v.from_speed_limit) continue;
    bytes += v.joint.MemoryUsageBytes() +
             v.path.size() * sizeof(roadnet::EdgeId) + sizeof(int32_t);
  }
  return bytes;
}

std::map<size_t, double> PathWeightFunction::MeanEntropyByRank() const {
  std::map<size_t, double> sums;
  std::map<size_t, size_t> counts;
  for (const InstantiatedVariable& v : variables_) {
    if (v.from_speed_limit) continue;
    const size_t group = std::min<size_t>(v.rank(), 4);  // ranks >= 4 pooled
    sums[group] += v.joint.DifferentialEntropy();
    counts[group] += 1;
  }
  std::map<size_t, double> means;
  for (const auto& [rank, total] : sums) {
    means[rank] = total / static_cast<double>(counts[rank]);
  }
  return means;
}

}  // namespace core
}  // namespace pcde
