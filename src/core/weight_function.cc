#include "core/weight_function.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/mathutil.h"

namespace pcde {
namespace core {

namespace {

constexpr uint32_t kEmptySlot = UINT32_MAX;

/// The flat arrays a built (non-loaded) model owns; sections point here.
struct BuiltPayload {
  std::vector<uint64_t> seq_off;
  std::vector<roadnet::EdgeId> seq_edges;
  std::vector<uint32_t> var_seq;
  std::vector<int32_t> intervals;
  std::vector<uint64_t> supports;
  std::vector<uint8_t> flags;
  std::vector<uint64_t> var_dim_off;
  std::vector<uint64_t> bound_off;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_off;
  std::vector<uint64_t> idx_off;
  std::vector<double> probs;
  std::vector<uint32_t> idx;
};

uint64_t HashBytes(uint64_t h, const void* data, size_t nbytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  h = Mix64(h ^ nbytes);
  size_t i = 0;
  for (; i + 8 <= nbytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = Mix64(h ^ word);
  }
  if (i < nbytes) {
    uint64_t word = 0;
    std::memcpy(&word, p + i, nbytes - i);
    h = Mix64(h ^ word);
  }
  return h;
}

uint64_t HashSeqKey(const roadnet::EdgeId* edges, size_t n, int32_t interval) {
  uint64_t h = Mix64(0x77656967687466ull ^
                     (static_cast<uint64_t>(static_cast<uint32_t>(interval)) |
                      (static_cast<uint64_t>(n) << 32)));
  for (size_t i = 0; i < n; ++i) h = Mix64(h ^ edges[i]);
  return h;
}

}  // namespace

uint64_t PathWeightFunction::SectionChecksum(
    double alpha_seconds, const WeightFunctionSections& s) {
  uint64_t h = Mix64(0x70636465776631ull);  // "pcdewf1"
  h = Mix64(h ^ CanonicalDoubleBits(alpha_seconds));
  h = Mix64(h ^ s.num_vars);
  h = Mix64(h ^ s.num_seqs);
  for (const WeightFunctionSections::SectionView& sec : s.SectionTable()) {
    h = HashBytes(h, sec.data, sec.nbytes);
  }
  return h;
}

StatusOr<PathWeightFunction> PathWeightFunction::FromSections(
    const TimeBinning& binning, std::shared_ptr<const void> arena,
    const WeightFunctionSections& s, uint64_t max_front_edge_id,
    const uint64_t* precomputed_fingerprint) {
  auto corrupt = [](const char* what) {
    return Status::InvalidArgument(std::string("weight function sections: ") +
                                   what);
  };
  if (s.num_vars >= kEmptySlot || s.num_seqs > UINT32_MAX) {
    return corrupt("variable/sequence count overflows id space");
  }
  // The offset arrays have length >= 1 even for an empty model; the data
  // lanes may be absent only when their element count is zero. (Checked
  // before anything — SectionChecksum included — dereferences them.)
  if (s.seq_off == nullptr || s.var_dim_off == nullptr ||
      s.bound_off == nullptr || s.bucket_off == nullptr ||
      s.idx_off == nullptr) {
    return corrupt("null section");
  }
  if (s.num_vars > 0 &&
      (s.var_seq == nullptr || s.intervals == nullptr ||
       s.supports == nullptr || s.flags == nullptr)) {
    return corrupt("null section");
  }
  if ((s.TotalEdges() > 0 && s.seq_edges == nullptr) ||
      (s.TotalBounds() > 0 && s.bounds == nullptr) ||
      (s.TotalBuckets() > 0 && s.probs == nullptr) ||
      (s.TotalIdx() > 0 && s.idx == nullptr)) {
    return corrupt("null section");
  }

  // --- Structural validation: every offset array starts at 0, grows
  // monotonically, and cross-references stay in range, so the accessors
  // below can never read out of bounds.
  if (s.num_seqs > 0 || s.num_vars > 0) {
    if (s.seq_off[0] != 0) return corrupt("seq_off[0] != 0");
    for (uint64_t q = 0; q < s.num_seqs; ++q) {
      // Wraparound-safe (no `lhs < rhs + k` — a near-2^64 offset must not
      // wrap the comparison): each sequence needs >= 1 edge.
      if (s.seq_off[q + 1] <= s.seq_off[q]) {
        return corrupt("empty or non-monotone edge sequence");
      }
    }
  }
  if (s.num_vars > 0) {
    if (s.var_dim_off[0] != 0 || s.bucket_off[0] != 0 || s.idx_off[0] != 0 ||
        s.bound_off[0] != 0) {
      return corrupt("offset array does not start at 0");
    }
    // var_dim_off monotonicity first: it bounds every bound_off index the
    // per-variable scans below compute (non-monotone offsets would walk
    // past the bound_off section on a crafted artifact).
    for (uint64_t v = 0; v < s.num_vars; ++v) {
      if (s.var_dim_off[v + 1] < s.var_dim_off[v]) {
        return corrupt("non-monotone dimension offsets");
      }
    }
    const uint64_t total_dims = s.var_dim_off[s.num_vars];
    for (uint64_t d = 0; d < total_dims; ++d) {
      // Wraparound-safe form of bound_off[d+1] >= bound_off[d] + 2.
      if (s.bound_off[d + 1] < s.bound_off[d] ||
          s.bound_off[d + 1] - s.bound_off[d] < 2) {
        return corrupt("dimension with fewer than 2 boundaries");
      }
    }
    for (uint64_t v = 0; v < s.num_vars; ++v) {
      if (s.var_seq[v] >= s.num_seqs) return corrupt("var_seq out of range");
      const uint64_t rank =
          s.seq_off[s.var_seq[v] + 1] - s.seq_off[s.var_seq[v]];
      const uint64_t dims = s.var_dim_off[v + 1] - s.var_dim_off[v];
      if (dims != rank) {
        return corrupt("histogram dimensionality != path rank");
      }
      if (s.bucket_off[v + 1] < s.bucket_off[v] ||
          s.idx_off[v + 1] < s.idx_off[v]) {
        return corrupt("non-monotone bucket offsets");
      }
      const uint64_t nbuckets = s.bucket_off[v + 1] - s.bucket_off[v];
      if (nbuckets > UINT32_MAX || dims > UINT32_MAX) {
        return corrupt("bucket/dimension count overflow");
      }
      if (s.idx_off[v + 1] - s.idx_off[v] != nbuckets * dims) {
        return corrupt("index lane size != buckets * dims");
      }
      // Per-bucket index range check — one linear scan, no allocation.
      const uint32_t* idx = s.idx + s.idx_off[v];
      const uint64_t* bound_off = s.bound_off + s.var_dim_off[v];
      for (uint64_t b = 0; b < nbuckets; ++b) {
        for (uint64_t d = 0; d < dims; ++d) {
          const uint64_t dim_buckets = bound_off[d + 1] - bound_off[d] - 1;
          if (idx[b * dims + d] >= dim_buckets) {
            return corrupt("bucket index out of dimension range");
          }
        }
      }
      // Semantic payload validation, mirroring HistogramND::Make: the
      // binary path skips per-bucket parsing, so it must re-establish the
      // same guarantees (finite sorted boundaries; finite non-negative
      // probabilities summing to 1) the text path gets from Make.
      for (uint64_t d = 0; d < dims; ++d) {
        const double* bounds = s.bounds + bound_off[d];
        const uint64_t nb = bound_off[d + 1] - bound_off[d];
        for (uint64_t k = 0; k < nb; ++k) {
          if (!std::isfinite(bounds[k])) {
            return corrupt("non-finite boundary");
          }
          if (k > 0 && bounds[k - 1] > bounds[k]) {
            return corrupt("unsorted boundaries");
          }
        }
      }
      if (nbuckets == 0) return corrupt("variable without buckets");
      const double* probs = s.probs + s.bucket_off[v];
      double mass = 0.0;
      for (uint64_t b = 0; b < nbuckets; ++b) {
        if (!std::isfinite(probs[b]) || probs[b] < 0.0) {
          return corrupt("non-finite or negative bucket probability");
        }
        mass += probs[b];
      }
      if (std::fabs(mass - 1.0) > 1e-6) {  // HistogramND::Make's tolerance
        return corrupt("bucket mass not normalized");
      }
      const roadnet::EdgeId front = s.seq_edges[s.seq_off[s.var_seq[v]]];
      if (front >= max_front_edge_id) return corrupt("edge id out of range");
    }
  }

  PathWeightFunction wp(binning);
  wp.arena_ = std::move(arena);
  wp.sections_ = s;
  wp.fingerprint_ = precomputed_fingerprint != nullptr
                        ? *precomputed_fingerprint
                        : SectionChecksum(binning.alpha_seconds(), s);

  // --- Materialize the variable views (one Path copy per variable; the
  // histograms are zero-copy views into the arena).
  const size_t n = static_cast<size_t>(s.num_vars);
  wp.variables_.reserve(n);
  for (size_t v = 0; v < n; ++v) {
    const uint64_t e0 = s.seq_off[s.var_seq[v]];
    const uint64_t e1 = s.seq_off[s.var_seq[v] + 1];
    InstantiatedVariable var;
    var.path = roadnet::Path(
        std::vector<roadnet::EdgeId>(s.seq_edges + e0, s.seq_edges + e1));
    var.interval = s.intervals[v];
    var.support = static_cast<size_t>(s.supports[v]);
    var.from_speed_limit = (s.flags[v] & 1) != 0;
    var.id = static_cast<uint32_t>(v);
    var.joint = hist::HistogramND::FromFlatUnchecked(
        wp.arena_, s.bounds, s.bound_off + s.var_dim_off[v],
        static_cast<uint32_t>(e1 - e0), s.probs + s.bucket_off[v],
        s.idx + s.idx_off[v],
        static_cast<uint32_t>(s.bucket_off[v + 1] - s.bucket_off[v]));
    wp.variables_.push_back(std::move(var));
  }

  // --- CSR candidate lists by front edge, insertion (id) order preserved.
  roadnet::EdgeId max_edge = 0;
  for (const InstantiatedVariable& var : wp.variables_) {
    max_edge = std::max(max_edge, var.path.front());
  }
  wp.start_off_.assign(n == 0 ? 1 : static_cast<size_t>(max_edge) + 2, 0);
  for (const InstantiatedVariable& var : wp.variables_) {
    wp.start_off_[var.path.front() + 1] += 1;
  }
  for (size_t e = 1; e < wp.start_off_.size(); ++e) {
    wp.start_off_[e] += wp.start_off_[e - 1];
  }
  wp.start_ptrs_.assign(n, nullptr);
  {
    std::vector<uint64_t> cursor(wp.start_off_.begin(), wp.start_off_.end());
    for (const InstantiatedVariable& var : wp.variables_) {
      wp.start_ptrs_[cursor[var.path.front()]++] = &var;
    }
  }

  // --- Open-addressing (sequence, interval) -> id probe table.
  size_t slots = 16;
  while (slots < 2 * std::max<size_t>(n, 1)) slots <<= 1;
  wp.probe_.assign(slots, kEmptySlot);
  const size_t mask = slots - 1;
  for (size_t v = 0; v < n; ++v) {
    const InstantiatedVariable& var = wp.variables_[v];
    const std::vector<roadnet::EdgeId>& edges = var.path.edges();
    size_t slot = static_cast<size_t>(
                      HashSeqKey(edges.data(), edges.size(), var.interval)) &
                  mask;
    while (wp.probe_[slot] != kEmptySlot) {
      const InstantiatedVariable& other = wp.variables_[wp.probe_[slot]];
      if (other.interval == var.interval && other.path == var.path) {
        return corrupt("duplicate (path, interval) variable");
      }
      slot = (slot + 1) & mask;
    }
    wp.probe_[slot] = static_cast<uint32_t>(v);
  }
  return wp;
}

const InstantiatedVariable* PathWeightFunction::ProbeLookup(
    const roadnet::EdgeId* edges, size_t n, int32_t interval) const {
  if (variables_.empty() || n == 0) return nullptr;
  const size_t mask = probe_.size() - 1;
  size_t slot = static_cast<size_t>(HashSeqKey(edges, n, interval)) & mask;
  while (probe_[slot] != kEmptySlot) {
    const InstantiatedVariable& var = variables_[probe_[slot]];
    if (var.interval == interval && var.path.size() == n &&
        std::memcmp(var.path.edges().data(), edges,
                    n * sizeof(roadnet::EdgeId)) == 0) {
      return &var;
    }
    slot = (slot + 1) & mask;
  }
  return nullptr;
}

const InstantiatedVariable* PathWeightFunction::Lookup(
    const roadnet::Path& path, int32_t interval) const {
  return ProbeLookup(path.edges().data(), path.size(), interval);
}

VariableList PathWeightFunction::StartingAt(roadnet::EdgeId e) const {
  if (static_cast<size_t>(e) + 1 >= start_off_.size()) return VariableList();
  const uint64_t lo = start_off_[e];
  const uint64_t hi = start_off_[e + 1];
  return VariableList(start_ptrs_.data() + lo, static_cast<size_t>(hi - lo));
}

const InstantiatedVariable* PathWeightFunction::UnitVariable(
    roadnet::EdgeId e, const Interval& window) const {
  const InstantiatedVariable* best = nullptr;
  const InstantiatedVariable* fallback = nullptr;
  double best_overlap = 0.0;
  for (const InstantiatedVariable* v : StartingAt(e)) {
    if (v->rank() != 1) continue;
    if (v->interval == kAllDayInterval) {
      fallback = v;
      continue;
    }
    const double overlap =
        window.width() > 0.0
            ? window.OverlapRatioOf(binning_.IntervalOf(v->interval))
            : (binning_.IntervalOf(v->interval).Contains(window.lo) ? 1.0 : 0.0);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = v;
    }
  }
  return best != nullptr ? best : fallback;
}

std::map<size_t, size_t> PathWeightFunction::CountByRank(
    bool include_speed_limit) const {
  std::map<size_t, size_t> counts;
  for (const InstantiatedVariable& v : variables_) {
    if (!include_speed_limit && v.from_speed_limit) continue;
    counts[v.rank()] += 1;
  }
  return counts;
}

size_t PathWeightFunction::NumCoveredEdges() const {
  std::vector<roadnet::EdgeId> edges;
  for (const InstantiatedVariable& v : variables_) {
    if (v.from_speed_limit) continue;
    for (roadnet::EdgeId e : v.path) edges.push_back(e);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges.size();
}

size_t PathWeightFunction::MemoryUsageBytes(bool include_speed_limit) const {
  size_t bytes = 0;
  for (const InstantiatedVariable& v : variables_) {
    if (!include_speed_limit && v.from_speed_limit) continue;
    bytes += v.joint.MemoryUsageBytes() +
             v.path.size() * sizeof(roadnet::EdgeId) + sizeof(int32_t);
  }
  return bytes;
}

size_t PathWeightFunction::ResidentBytes() const {
  size_t bytes = 0;
  for (const WeightFunctionSections::SectionView& sec :
       sections_.SectionTable()) {
    bytes += static_cast<size_t>(sec.nbytes);
  }
  bytes += variables_.capacity() * sizeof(InstantiatedVariable);
  for (const InstantiatedVariable& v : variables_) {
    bytes += v.path.size() * sizeof(roadnet::EdgeId);
  }
  bytes += start_off_.capacity() * sizeof(uint64_t) +
           start_ptrs_.capacity() * sizeof(const InstantiatedVariable*) +
           probe_.capacity() * sizeof(uint32_t);
  return bytes;
}

std::map<size_t, double> PathWeightFunction::MeanEntropyByRank() const {
  std::map<size_t, double> sums;
  std::map<size_t, size_t> counts;
  for (const InstantiatedVariable& v : variables_) {
    if (v.from_speed_limit) continue;
    const size_t group = std::min<size_t>(v.rank(), 4);  // ranks >= 4 pooled
    sums[group] += v.joint.DifferentialEntropy();
    counts[group] += 1;
  }
  std::map<size_t, double> means;
  for (const auto& [rank, total] : sums) {
    means[rank] = total / static_cast<double>(counts[rank]);
  }
  return means;
}

// ---------------------------------------------------------------------------
// WeightFunctionBuilder
// ---------------------------------------------------------------------------

WeightFunctionBuilder WeightFunctionBuilder::FromFrozen(
    const PathWeightFunction& frozen) {
  WeightFunctionBuilder builder(frozen.binning());
  // Id order is the original builder's insertion order (Freeze preserves
  // it), so replaying it reproduces that builder's deque layout and key
  // map exactly — subsequent Adds behave identically to Adds on the
  // original, which is what makes delta rebuilds fingerprint-identical to
  // full rebuilds over the concatenated batches.
  for (const InstantiatedVariable& var : frozen.variables()) {
    builder.Add(var);  // the joint copy is a view; its arena outlives frozen
  }
  return builder;
}

void WeightFunctionBuilder::Add(InstantiatedVariable variable) {
  Key key{variable.path.edges(), variable.interval};
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    variables_[it->second] = std::move(variable);
    return;
  }
  variables_.push_back(std::move(variable));
  by_key_.emplace(std::move(key), variables_.size() - 1);
}

StatusOr<PathWeightFunction> WeightFunctionBuilder::TryFreeze() && {
  auto payload = std::make_shared<BuiltPayload>();
  BuiltPayload& p = *payload;
  const size_t n = variables_.size();

  // Intern the edge sequences: distinct paths stored once (rank-1 paths in
  // particular are shared by every interval of an edge plus its fallback).
  std::unordered_map<Key, uint32_t, KeyHash> seq_ids;
  p.seq_off.push_back(0);
  p.var_seq.reserve(n);
  p.intervals.reserve(n);
  p.supports.reserve(n);
  p.flags.reserve(n);
  p.var_dim_off.reserve(n + 1);
  p.bucket_off.reserve(n + 1);
  p.idx_off.reserve(n + 1);
  p.var_dim_off.push_back(0);
  p.bucket_off.push_back(0);
  p.idx_off.push_back(0);
  p.bound_off.push_back(0);
  for (const InstantiatedVariable& var : variables_) {
    Key key{var.path.edges(), 0};  // interval irrelevant for interning
    auto [it, inserted] =
        seq_ids.emplace(std::move(key), static_cast<uint32_t>(seq_ids.size()));
    if (inserted) {
      p.seq_edges.insert(p.seq_edges.end(), var.path.edges().begin(),
                         var.path.edges().end());
      p.seq_off.push_back(p.seq_edges.size());
    }
    p.var_seq.push_back(it->second);
    p.intervals.push_back(var.interval);
    p.supports.push_back(var.support);
    p.flags.push_back(var.from_speed_limit ? 1 : 0);

    const hist::HistogramND& joint = var.joint;
    for (size_t d = 0; d < joint.NumDims(); ++d) {
      const Span<double> bounds = joint.boundaries(d);
      p.bounds.insert(p.bounds.end(), bounds.begin(), bounds.end());
      p.bound_off.push_back(p.bounds.size());
    }
    p.var_dim_off.push_back(p.var_dim_off.back() + joint.NumDims());
    const auto buckets = joint.buckets();
    for (size_t b = 0; b < buckets.size(); ++b) {
      const hist::HistogramND::BucketRef hb = buckets[b];
      p.probs.push_back(hb.prob);
      p.idx.insert(p.idx.end(), hb.idx, hb.idx + joint.NumDims());
    }
    p.bucket_off.push_back(p.probs.size());
    p.idx_off.push_back(p.idx.size());
  }

  WeightFunctionSections s;
  s.num_vars = n;
  s.num_seqs = seq_ids.size();
  s.seq_off = p.seq_off.data();
  s.seq_edges = p.seq_edges.data();
  s.var_seq = p.var_seq.data();
  s.intervals = p.intervals.data();
  s.supports = p.supports.data();
  s.flags = p.flags.data();
  s.var_dim_off = p.var_dim_off.data();
  s.bound_off = p.bound_off.data();
  s.bounds = p.bounds.data();
  s.bucket_off = p.bucket_off.data();
  s.idx_off = p.idx_off.data();
  s.probs = p.probs.data();
  s.idx = p.idx.data();
  return PathWeightFunction::FromSections(binning_, std::move(payload), s);
}

PathWeightFunction WeightFunctionBuilder::Freeze() && {
  auto result = std::move(*this).TryFreeze();
  if (!result.ok()) {
    std::fprintf(stderr, "WeightFunctionBuilder::Freeze: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace core
}  // namespace pcde
