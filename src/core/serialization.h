// Persistence for the instantiated path weight function W_P. Instantiation
// is the expensive offline stage (the paper reports minutes at fleet
// scale); production deployments build once, save the frozen model, and
// load it into query servers — typically via serving::Engine::Open
// (src/serving/engine.h), which wraps the loaders below and stands up the
// whole serving stack around the loaded model.
//
// Two artifact formats, both embedding the TimeBinning so a loaded model
// can never be silently queried under the wrong alpha grid:
//
//   * Binary (PCDEWF1): a little-endian header (magic, format version,
//     alpha, payload checksum) plus a section table whose payload sections
//     are the frozen model's flat arrays verbatim. SaveWeightFunctionBinary
//     is a handful of writes; LoadWeightFunctionBinary is one file read
//     plus pointer fixup and validation — no per-bucket parsing and no
//     per-bucket allocation. The checksum doubles as the model fingerprint
//     (PathWeightFunction::fingerprint), so query-cache keys are stable
//     across save/load.
//
//   * Text v2: the v1 record stream (one variable per VAR/DIM/HB record
//     group) prefixed with a BINNING record. Slow but greppable.
//     Text v1 files (no BINNING record) predate the embedded binning; load
//     them through the LoadWeightFunctionTextV1 compatibility shim, which
//     takes the binning the file was built with.
//
// LoadWeightFunction sniffs the format from the leading magic.
#pragma once

#include <string>

#include "common/status.h"
#include "core/weight_function.h"

namespace pcde {
namespace core {

/// Saves the text (v2) artifact: BINNING record + one VAR/DIM/HB record
/// group per variable, in variable-id order.
Status SaveWeightFunction(const PathWeightFunction& wp,
                          const std::string& path);

/// Saves the binary artifact (header + section table + the frozen arrays).
Status SaveWeightFunctionBinary(const PathWeightFunction& wp,
                                const std::string& path);

/// Loads either artifact format (sniffed from the leading bytes). The
/// TimeBinning comes from the artifact; corrupt, truncated, or
/// version-skewed files fail with a Status (never crash). Text v1 files
/// are rejected here with a pointer to the shim below.
StatusOr<PathWeightFunction> LoadWeightFunction(const std::string& path);

/// Loads the binary artifact only (buffered read into a private arena).
StatusOr<PathWeightFunction> LoadWeightFunctionBinary(const std::string& path);

/// Flag-guarded variant: `use_mmap` maps the artifact read-only
/// (PROT_READ, MAP_SHARED) and parses in place instead of reading it into
/// a private buffer, so co-resident server processes serving the same
/// artifact share one page-cache copy of the model — the frozen layout is
/// position-independent, only the pointer fixup runs per process. If the
/// mapping itself fails (filesystem without mmap support, exotic
/// platforms), the call falls back to the buffered read; artifact-content
/// errors are final either way. The returned model keeps the mapping alive
/// and never writes through it.
///
/// Lifecycle requirement the buffered path does not have: a mapped
/// artifact must only ever be *replaced atomically* (write a sibling,
/// rename over — exactly what SaveWeightFunction[Binary] does).
/// Truncating or rewriting the file in place while a process serves from
/// the mapping makes later page faults past the new EOF raise SIGBUS.
StatusOr<PathWeightFunction> LoadWeightFunctionBinary(const std::string& path,
                                                      bool use_mmap);

/// \brief Reads only the binary artifact's 64-byte header and returns its
/// payload checksum — which equals the fingerprint() of the model the file
/// encodes. Validates magic, format version, and alpha range, so
/// truncated/version-skewed files fail here with the same Statuses the
/// full loader would give. serving::Engine::Swap uses this to short-circuit
/// a refresh to an artifact whose content the engine is already serving
/// without paying the load + validation of the full payload. Text
/// artifacts are rejected (their fingerprint requires a full parse).
StatusOr<uint64_t> PeekBinaryArtifactFingerprint(const std::string& path);

/// Compatibility shim for text v1 files, which did not embed the binning:
/// `alpha_minutes` must be the binning the variables were instantiated
/// with. Also accepts v2 text files, but then the embedded binning must
/// match `alpha_minutes` — a mismatch is a load-time InvalidArgument (it
/// used to be silent model corruption).
StatusOr<PathWeightFunction> LoadWeightFunctionTextV1(const std::string& path,
                                                      double alpha_minutes);

}  // namespace core
}  // namespace pcde
