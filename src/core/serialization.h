// Persistence for the instantiated path weight function W_P. Instantiation
// is the expensive offline stage (the paper reports minutes at fleet
// scale); production deployments save the instantiated variables and load
// them into query servers.
//
// Text format, one variable per record:
//   VAR,<interval>,<support>,<speed_limit 0|1>,<rank>,<edge...>
//   DIM,<boundary...>                   (one line per dimension)
//   HB,<prob>,<idx...>                  (one line per hyper-bucket)
#pragma once

#include <string>

#include "common/status.h"
#include "core/weight_function.h"

namespace pcde {
namespace core {

Status SaveWeightFunction(const PathWeightFunction& wp,
                          const std::string& path);

/// Loads a weight function written by SaveWeightFunction. `alpha_minutes`
/// must match the binning the variables were instantiated with.
StatusOr<PathWeightFunction> LoadWeightFunction(const std::string& path,
                                                double alpha_minutes);

}  // namespace core
}  // namespace pcde
