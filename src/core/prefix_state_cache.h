// Bounded LRU cache of chain-sweeper prefix states — sub-path cost reuse
// inside one stochastic-routing search (the "path + another edge" workload
// of Sec. 4.3). A DFS over candidate paths re-costs heavily overlapping
// prefixes: every complete candidate replays the unstable tail of its
// decomposition through the chain sweeper, and sibling candidates share
// all but the last part(s) of that tail. Caching the sweeper state per
// (frozen part-id prefix) lets a branch clone the deepest cached state and
// replay only what differs, instead of replaying the whole tail.
//
// Keys are (model fingerprint, chain-options fingerprint, departure-time
// bucket, then (frozen variable id, start) per applied part, then the
// next-overlap start the final ApplyPart used) — everything the sweep
// state is a deterministic function of. ApplyPart is deterministic and a
// snapshot is an exact copy, so routing with prefix reuse is bit-identical
// to routing without it (tests/prefix_state_cache_test.cc).
//
// The cache is deliberately NOT thread-safe: it is per-search state (one
// instance per DFS root branch in DfsStochasticRouter), so the parallel
// root fan-out stays contention-free. Cross-query reuse of *complete*
// results is QueryCache's job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/lru.h"
#include "core/chain_estimator.h"

namespace pcde {
namespace core {

struct PrefixStateCacheOptions {
  /// Total byte budget (keys + sweeper snapshots + bookkeeping); least
  /// recently used entries are evicted beyond it, and a snapshot larger
  /// than the whole budget is not admitted.
  size_t max_bytes = size_t{4} << 20;
  /// Width of the departure-time bucket folded into keys (same role as
  /// QueryCache's: within one search it is constant, but it keeps keys
  /// meaningful if a cache is ever reused across departures).
  double time_bucket_seconds = 300.0;
};

struct PrefixStateCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

class PrefixStateCache {
 public:
  using Key = std::vector<uint64_t>;

  explicit PrefixStateCache(PrefixStateCacheOptions options =
                                PrefixStateCacheOptions());

  PrefixStateCache(const PrefixStateCache&) = delete;
  PrefixStateCache& operator=(const PrefixStateCache&) = delete;

  const PrefixStateCacheOptions& options() const { return options_; }

  /// True and overwrites *out with a copy of the cached sweeper state on a
  /// hit (also refreshing the entry's recency).
  bool Lookup(const Key& key, ChainSweeper* out);

  /// Inserts a snapshot of `state` for `key` (refreshes recency if the key
  /// is already present — the state for a key is deterministic, so the
  /// existing snapshot is identical), then evicts down to the byte budget.
  void Insert(const Key& key, const ChainSweeper& state);

  PrefixStateCacheStats stats() const;
  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  static size_t EntryBytes(const Key& key, const ChainSweeper& state);

  PrefixStateCacheOptions options_;
  Lru<Key, ChainSweeper, KeyHash> lru_;  // the shared common/lru.h core
  PrefixStateCacheStats stats_;
};

}  // namespace core
}  // namespace pcde
