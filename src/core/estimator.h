// HybridEstimator: the query layer of the hybrid graph — the internal
// layer that serving::Engine (src/serving/engine.h) drives; serving
// callers should go through the Engine's typed request/response API
// rather than wiring estimator + caches + pool by hand.
//
// Given a path and a departure time it (i) identifies the optimal
// (coarsest) decomposition over the instantiated variables — phase OI,
// (ii) evaluates
// the decomposable-model joint (Eq. 2) — phase JC, and (iii) reduces it to
// the univariate cost distribution (Sec. 4.2) — phase MC.
//
// The decomposition policy selects between the paper's methods:
//   kCoarsest  — OD, the proposal (Algorithm 1); with rank_cap -> OD-x
//   kRandom    — RD, a random valid decomposition
//   kPairwise  — HP [10], the rank-2 chain
//   kUnit      — LB [22], the legacy edge-granularity convolution
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/chain_estimator.h"
#include "core/decomposition.h"
#include "core/prefix_state_cache.h"
#include "core/query_cache.h"
#include "core/weight_function.h"

namespace pcde {
namespace core {

enum class DecompositionPolicy { kCoarsest, kRandom, kPairwise, kUnit };

/// \brief How far EstimateWithFallback's degradation ladder descended for a
/// query (the sparse-trajectory fallback of "Learning to Route with Sparse
/// Trajectory Sets", arXiv 1802.07980): the full-path decomposition first,
/// then the longest unit-covered sub-paths, then bare per-edge convolution.
enum class DegradationLevel : uint8_t {
  kFull = 0,     // normal decomposition over the whole path
  kSubpath = 1,  // >= 1 covered multi-edge run estimated by decomposition,
                 // convolved across synthesized gaps
  kEdge = 2,     // edge-granularity convolution only
};

/// \brief Provenance of a degraded estimate — the serving layer surfaces
/// these fields verbatim (serving::CostSummary), so a caller can audit
/// whether an answer came from the learned joint distributions or a
/// coverage fallback, and how much of the path was actually covered.
struct FallbackProvenance {
  DegradationLevel level = DegradationLevel::kFull;
  /// Unit-covered positions / path length (1.0 at kFull).
  double covered_fraction = 1.0;
  /// Maximal covered runs estimated through the normal decomposition.
  size_t covered_runs = 0;
  /// Positions served from the injected edge synthesizer.
  size_t synthesized_edges = 0;
};

/// \brief Synthesizes a cost distribution for an edge with no instantiated
/// variable at all — the last rung of the ladder. The serving layer injects
/// the graph's free-flow prior (core/instantiation's FreeFlowEdgeHistogram)
/// so core stays free of a graph dependency; an error Status fails the
/// query (no further fallback exists below this one).
using EdgeFallbackFn =
    std::function<StatusOr<hist::Histogram1D>(roadnet::EdgeId)>;

struct EstimateOptions {
  DecompositionPolicy policy = DecompositionPolicy::kCoarsest;
  /// Rank cap for candidate variables (the OD-x methods); 0 = unlimited.
  size_t rank_cap = 0;
  ChainOptions chain;
  uint64_t random_seed = 7;  // decomposition choice for kRandom
};

/// \brief Per-query phase breakdown (Fig. 17) and chain diagnostics.
struct EstimateBreakdown {
  double oi_seconds = 0.0;  // optimal decomposition identification
  double jc_seconds = 0.0;  // joint computation (Eq. 2 sweep)
  double mc_seconds = 0.0;  // marginalization to the cost distribution
  size_t parts = 0;         // |DE|
  bool cache_hit = false;   // served from the attached QueryCache
  ChainDiagnostics chain;
};

/// \brief One element of a batch estimation request.
struct PathQuery {
  roadnet::Path path;
  double departure_time = 0.0;
};

/// \brief Per-batch serving metrics: index-aligned per-query latencies (the
/// batch layer's p50/p99 source) and the batch's cache traffic. Collection
/// is allocation- and contention-free in the worker path: both lanes are
/// preallocated before the fan-out and each worker writes only its own
/// query's slots (no lock, no shared counter — the aggregate hit/miss
/// totals are summed once after the join).
struct BatchMetrics {
  std::vector<double> query_seconds;
  /// 1 where the query was served from the attached QueryCache (all 0
  /// when no cache is attached).
  std::vector<uint8_t> query_cache_hit;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// \brief Facade combining decomposition construction and Eq. 2 evaluation.
class HybridEstimator {
 public:
  explicit HybridEstimator(const PathWeightFunction& wp,
                           EstimateOptions options = EstimateOptions())
      : wp_(wp), builder_(wp), options_(options) {}

  const EstimateOptions& options() const { return options_; }
  const PathWeightFunction& weight_function() const { return wp_; }

  /// Attaches a shared result cache (see query_cache.h): subsequent
  /// estimations look up (decomposition, departure-time bucket) before
  /// sweeping the chain and insert on miss. Results are bit-identical with
  /// and without a cache (estimation is deterministic per decomposition).
  /// Keys carry the model fingerprint and frozen variable ids, so one cache
  /// may safely be shared across estimators — even over different weight
  /// functions (entries simply never cross models), and entries stay valid
  /// across save/load of the same model artifact. Pass nullptr to detach.
  void set_query_cache(QueryCache* cache) { cache_ = cache; }
  QueryCache* query_cache() const { return cache_; }

  /// The travel cost distribution of `path` departing at `departure_time`
  /// (seconds since midnight) — the paper's core query.
  ///
  /// `cancel` (optional) enables cooperative cancellation: the token is
  /// polled before the decomposition and between chain-part transitions
  /// inside the sweep, and a tripped token unwinds with its Status
  /// (kDeadlineExceeded / kCancelled) — never a partial result. nullptr
  /// means "never cancelled" and changes nothing.
  StatusOr<hist::Histogram1D> EstimateCostDistribution(
      const roadnet::Path& path, double departure_time,
      EstimateBreakdown* breakdown = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// \brief Attaches the per-edge synthesizer of the degradation ladder's
  /// last rung; without one, EstimateWithFallback cannot bridge uncovered
  /// positions and sparse queries keep failing like EstimateCostDistribution.
  /// Pass a default-constructed function to detach.
  void set_edge_fallback(EdgeFallbackFn fn) { edge_fallback_ = std::move(fn); }
  const EdgeFallbackFn& edge_fallback() const { return edge_fallback_; }

  /// \brief EstimateCostDistribution with the sparse-coverage degradation
  /// ladder behind it. A fully covered path is served by the normal
  /// decomposition — bit-identical to EstimateCostDistribution, kFull
  /// provenance. When positions of the path have no unit variable at all,
  /// the path splits into maximal covered runs (each estimated through the
  /// normal decomposition machinery and the attached QueryCache) and
  /// uncovered positions (served by the edge synthesizer); the segments are
  /// convolved left to right under independence, with the departure time
  /// advanced by each segment's mean — deliberately simple degraded
  /// semantics, flagged as such in the provenance rather than hidden.
  /// Errors that are not sparse coverage (or sparse coverage with no
  /// synthesizer attached) pass through unchanged.
  /// `cancel` is additionally polled between ladder segments (per covered
  /// run / synthesized edge), so degraded serving honors deadlines too.
  StatusOr<hist::Histogram1D> EstimateWithFallback(
      const roadnet::Path& path, double departure_time,
      FallbackProvenance* provenance = nullptr,
      EstimateBreakdown* breakdown = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// \brief Estimates many path queries concurrently on a work-stealing
  /// thread pool (one task per query); result i corresponds to queries[i],
  /// and each result equals what the sequential EstimateCostDistribution
  /// would return for that query. Estimation is read-only over the weight
  /// function, so queries share it without locking — this is the serving
  /// layer for heavy multi-user traffic.
  ///
  /// `num_threads` = 0 picks the hardware concurrency. Pass an external
  /// pool to amortize thread start-up across batches (then `num_threads`
  /// is ignored).
  std::vector<StatusOr<hist::Histogram1D>> EstimateBatch(
      const PathQuery* queries, size_t num_queries,
      size_t num_threads = 0) const;
  std::vector<StatusOr<hist::Histogram1D>> EstimateBatch(
      const std::vector<PathQuery>& queries, size_t num_threads = 0) const {
    return EstimateBatch(queries.data(), queries.size(), num_threads);
  }
  /// `metrics` (optional) receives per-query latencies and cache traffic.
  /// `pool == nullptr` runs the batch inline on the calling thread (the
  /// degenerate single-threaded path; previously a crash). `cancel`
  /// (optional) is checked before each query and threaded through every
  /// estimate: once tripped, remaining queries fail with the token's
  /// Status instead of running.
  std::vector<StatusOr<hist::Histogram1D>> EstimateBatch(
      const PathQuery* queries, size_t num_queries, ThreadPool* pool,
      BatchMetrics* metrics = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// The decomposition the configured policy selects for this query.
  StatusOr<Decomposition> Decompose(const roadnet::Path& path,
                                    double departure_time) const;

  /// H_DE of the selected decomposition (Theorem 2; Fig. 15).
  StatusOr<double> EstimateEntropy(const roadnet::Path& path,
                                   double departure_time) const;

 private:
  const PathWeightFunction& wp_;
  DecompositionBuilder builder_;
  EstimateOptions options_;
  QueryCache* cache_ = nullptr;  // not owned; thread-safe (sharded)
  EdgeFallbackFn edge_fallback_;  // empty = ladder ends at sub-paths
};

/// \brief Incremental estimation for "path + another edge" exploration
/// (Sec. 4.3): stochastic routing algorithms extend candidate paths one
/// edge at a time, and the estimator reuses the chain state of the prefix
/// instead of recomputing from scratch.
///
/// Extension greedily appends the highest-rank variable that ends at the
/// new edge and overlaps only the retained tail of the prefix chain — the
/// incremental counterpart of Algorithm 1.
class IncrementalEstimator {
 public:
  IncrementalEstimator(const PathWeightFunction& wp, EstimateOptions options,
                       roadnet::EdgeId first_edge, double departure_time);

  /// Extends the current path by one adjacent edge.
  Status ExtendByEdge(roadnet::EdgeId e);

  const roadnet::Path& path() const { return path_; }

  /// Cost distribution of the current path (finalizes a copy of the chain
  /// state; the estimator itself remains extendable).
  StatusOr<hist::Histogram1D> CurrentDistribution() const;

  /// Cache-backed variant: looks the current decomposition up in `cache`
  /// before finalizing and inserts on miss, so routing re-evaluating a
  /// candidate path another query already costed (same parts, same
  /// departure bucket) skips the chain replay. `cache == nullptr` degrades
  /// to the plain overload.
  StatusOr<hist::Histogram1D> CurrentDistribution(QueryCache* cache) const;

  /// Attaches a prefix chain-state cache (core/prefix_state_cache.h):
  /// CurrentDistribution then clones the deepest cached prefix state
  /// instead of replaying the whole unstable tail, and snapshots the
  /// intermediate states it computes so sibling branches ("path + another
  /// edge" around a shared prefix) skip the replay. Results are
  /// bit-identical with and without the cache — ApplyPart is deterministic
  /// and snapshots are exact copies. Not owned; estimator copies share the
  /// pointer, and the cache is single-threaded by design (use one per DFS
  /// branch). Pass nullptr to detach.
  void set_prefix_cache(PrefixStateCache* cache) { prefix_cache_ = cache; }
  PrefixStateCache* prefix_cache() const { return prefix_cache_; }

  /// Smallest possible total cost of the current path (for routing pruning).
  double MinTotalCost() const { return min_total_; }

  /// MinTotalCost() of the hypothetical extension by `e`, computed on the
  /// parent without cloning the chain state: exactly the value a copy would
  /// report after ExtendByEdge(e). Routing's admissible bound check runs on
  /// this before paying the estimator copy, so pruned edges never clone.
  double MinTotalCostWithEdge(roadnet::EdgeId e) const;

  /// Optimistic upper bound on P(total path cost <= budget) over every
  /// extension of the current prefix whose own (remaining) cost is at least
  /// `remaining_lower_bound` — the incumbent-pruning probe: the streamed
  /// prefix CDF evaluated at budget - remaining_lower_bound, with the
  /// not-yet-streamed prefix positions charged at their unit-variable
  /// minima (the same per-position support bounds MinTotalCost sums).
  /// Exact while the chain sweep conserves its mass; once separator
  /// mismatch destroys mass (the independence-fallback regime) the probe
  /// degrades to 1.0 — "no information", never a wrong prune at probe
  /// time. Cost: one pass over the streamed sweeper states.
  double ArrivalProbabilityUpperBound(double budget,
                                      double remaining_lower_bound) const;

  /// Support envelope of the current prefix-cost distribution as raw
  /// (cost, mass) points: `optimistic` places every streamed state at its
  /// smallest possible cost (its CDF step sketch upper-bounds the true
  /// prefix CDF), `pessimistic` at its largest (lower bound). Unstreamed
  /// positions are charged at their unit minima / maxima. Returns false —
  /// envelope unusable — when a prefix position has no unit variable (no
  /// per-position maximum exists) or when the sweep has lost mass; the
  /// dominance pruner then simply neither prunes nor records this prefix.
  bool PrefixCostEnvelope(
      std::vector<std::pair<double, double>>* optimistic,
      std::vector<std::pair<double, double>>* pessimistic) const;

 private:
  /// Parts at positions this far behind the path end can still be absorbed
  /// by a future higher-rank part; everything earlier is stable and gets
  /// streamed into the chain sweeper exactly once.
  size_t MaxAbsorbRank() const;
  void AdvanceStablePrefix();
  /// First path position NOT yet accounted for by the streamed sweeper
  /// state (positions of the applied stable-prefix parts are; stable parts
  /// are never absorbed, so their contributions are final for every
  /// completion of this prefix).
  size_t CountedEnd() const {
    return applied_ == 0 ? 0 : parts_[applied_ - 1].end();
  }
  /// Appends one position's unit-variable support bounds to the prefix
  /// sums (nullptr unit = no per-position bounds: minimum 0, no maximum).
  void PushUnitBounds(const InstantiatedVariable* unit);

  const PathWeightFunction& wp_;
  EstimateOptions options_;
  roadnet::Path path_;
  double departure_time_;
  // Shift-and-enlarged departure window per edge position (Eq. 3);
  // windows_[k] is the arrival window at edge k, windows_.back() is the
  // window at the (not yet appended) next edge.
  std::vector<Interval> windows_;
  Decomposition parts_;
  // Chain state streamed through the stable prefix parts_[0..applied_):
  // extending by one edge costs one part transition (amortized), and
  // CurrentDistribution only replays the short unstable tail.
  ChainSweeper sweeper_;
  size_t applied_ = 0;
  double min_total_ = 0.0;
  // Cumulative per-position unit-variable support bounds
  // (unit_lo_prefix_[k] = sum of unit minima over positions < k, so
  // min_total_ == unit_lo_prefix_.back()): the pruning probes split these
  // sums at the counted/uncounted boundary (CountedEnd).
  std::vector<double> unit_lo_prefix_{0.0};
  std::vector<double> unit_hi_prefix_{0.0};
  // Positions with no unit variable at all: their maxima are unknown, so
  // the pessimistic envelope is unusable while this is nonzero.
  size_t units_missing_ = 0;
  PrefixStateCache* prefix_cache_ = nullptr;  // not owned; single-threaded
  // Chain-options fingerprint for prefix-cache keys, hashed once here
  // instead of per CurrentDistribution call.
  uint64_t options_fingerprint_ = 0;
};

}  // namespace core
}  // namespace pcde
