#include "core/shard_writer.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "common/fault_injection.h"
#include "core/atomic_file_writer.h"
#include "core/serialization.h"

namespace pcde {
namespace core {

namespace {

// ---------------------------------------------------------------------------
// PCDEMF1: fixed little-endian header + fixed-width shard records + a name
// blob. See shard_writer.h for the layout contract.
// ---------------------------------------------------------------------------

constexpr uint64_t kManifestMagic = 0x0031464d45444350ull;  // "PCDEMF1\0"
constexpr uint32_t kManifestVersion = 1;
// Well below any real deployment; bounds the record allocation against a
// corrupt count before the checksum can reject the file.
constexpr uint64_t kMaxShards = 65536;
constexpr uint64_t kMaxShardNameLen = 4096;

struct ManifestHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t shard_count;
  uint64_t checksum;
  double alpha_seconds;
  uint64_t source_fingerprint;
  uint64_t name_blob_bytes;
  uint64_t reserved0;
  uint64_t reserved1;
};
static_assert(sizeof(ManifestHeader) == 64, "manifest header layout");

struct ShardRecord {
  uint64_t key_lo;
  uint64_t key_hi;
  uint64_t fingerprint;
  uint64_t bytes;
  uint64_t name_off;  // into the name blob
  uint64_t name_len;
};
static_assert(sizeof(ShardRecord) == 48, "shard record layout");

uint64_t Fnv1a(uint64_t h, const void* data, size_t nbytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Checksum == manifest fingerprint: alpha + source fingerprint + every
/// record + the name blob, so any content change (a reshard, one shard's
/// new fingerprint, a renamed file) yields a new generation identity.
uint64_t ManifestChecksum(double alpha_seconds, uint64_t source_fingerprint,
                          const std::vector<ShardRecord>& records,
                          const std::string& blob) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  h = Fnv1a(h, &alpha_seconds, sizeof(alpha_seconds));
  h = Fnv1a(h, &source_fingerprint, sizeof(source_fingerprint));
  if (!records.empty()) {
    h = Fnv1a(h, records.data(), records.size() * sizeof(ShardRecord));
  }
  h = Fnv1a(h, blob.data(), blob.size());
  return h;
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return std::string(".");
  if (slash == 0) return std::string("/");
  return path.substr(0, slash);
}

}  // namespace

size_t ShardManifest::ShardOf(uint64_t e) const {
  // Ranges are contiguous and ascending; binary-search the first shard
  // whose key_hi covers e, clamping past-the-ceiling ids to the last shard.
  size_t lo = 0, hi = shards.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (e > shards[mid].key_hi) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<ShardManifest> WriteModelShards(const PathWeightFunction& wp,
                                         const std::string& manifest_path,
                                         const ShardWriteOptions& options) {
  if (options.num_shards < 1 || options.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "WriteModelShards: num_shards = " +
        std::to_string(options.num_shards) + " outside [1, " +
        std::to_string(kMaxShards) + "]");
  }
  if (options.file_prefix.empty() ||
      options.file_prefix.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        "WriteModelShards: file_prefix must be a non-empty flat file name "
        "fragment (no '/')");
  }

  // Per-front-edge variable counts in ascending key order; the balanced
  // prefix cut below needs them sorted, and std::map delivers that.
  std::map<uint64_t, uint64_t> per_key;
  for (const InstantiatedVariable& v : wp.variables()) {
    per_key[v.path.front()] += 1;
  }
  const size_t num_shards = options.num_shards;
  if (per_key.size() < num_shards) {
    return Status::InvalidArgument(
        "WriteModelShards: model has " + std::to_string(per_key.size()) +
        " distinct front edges, fewer than the requested " +
        std::to_string(num_shards) + " shards");
  }

  // Balanced prefix partition: cut after the smallest key prefix carrying
  // >= total * (s + 1) / num_shards variables, but always leave at least
  // one distinct key per remaining shard so no shard's key set is empty.
  const uint64_t total = wp.NumVariables();
  std::vector<std::pair<uint64_t, uint64_t>> ranges;  // [key_lo, key_hi]
  {
    auto it = per_key.begin();
    uint64_t cum = 0;
    uint64_t lo = 0;
    size_t keys_taken = 0;
    for (size_t s = 0; s + 1 < num_shards; ++s) {
      const uint64_t target = total * (s + 1) / num_shards;
      uint64_t hi = it->first;
      const size_t keys_left_min = num_shards - 1 - s;
      while (keys_taken < per_key.size() - keys_left_min) {
        hi = it->first;
        cum += it->second;
        ++it;
        ++keys_taken;
        if (cum >= target) break;
      }
      ranges.emplace_back(lo, hi);
      lo = hi + 1;
    }
    ranges.emplace_back(lo, kMaxArtifactEdgeId - 1);
  }

  const std::string dir = DirOf(manifest_path);
  ShardManifest manifest;
  manifest.alpha_seconds = wp.binning().alpha_seconds();
  manifest.source_fingerprint = wp.fingerprint();

  std::vector<ShardRecord> records;
  std::string blob;
  for (size_t s = 0; s < num_shards; ++s) {
    WeightFunctionBuilder builder(wp.binning());
    // Id order == the monolithic builder's insertion order, so each shard's
    // per-front-edge candidate lists come out in exactly the order the
    // unsplit model serves them — the bit-identity contract for paths whose
    // edges all fall in one shard.
    for (const InstantiatedVariable& v : wp.variables()) {
      const uint64_t key = v.path.front();
      if (key < ranges[s].first || key > ranges[s].second) continue;
      InstantiatedVariable copy = v;
      builder.Add(std::move(copy));
    }
    PCDE_ASSIGN_OR_RETURN(shard_model, std::move(builder).TryFreeze());

    ShardInfo info;
    info.key_lo = ranges[s].first;
    info.key_hi = ranges[s].second;
    info.fingerprint = shard_model.fingerprint();
    info.file = options.file_prefix + "." + std::to_string(s) + ".pcdewf";
    const std::string shard_path = dir + "/" + info.file;
    PCDE_RETURN_NOT_OK(SaveWeightFunctionBinary(shard_model, shard_path));
    std::error_code ec;
    const uintmax_t nbytes = std::filesystem::file_size(shard_path, ec);
    if (ec) {
      return Status::Internal("WriteModelShards: cannot stat " + shard_path +
                              " (" + ec.message() + ")");
    }
    info.bytes = static_cast<uint64_t>(nbytes);

    ShardRecord rec{};
    rec.key_lo = info.key_lo;
    rec.key_hi = info.key_hi;
    rec.fingerprint = info.fingerprint;
    rec.bytes = info.bytes;
    rec.name_off = blob.size();
    rec.name_len = info.file.size();
    blob += info.file;
    records.push_back(rec);
    manifest.shards.push_back(std::move(info));
  }

  ManifestHeader header{};
  header.magic = kManifestMagic;
  header.version = kManifestVersion;
  header.shard_count = static_cast<uint32_t>(num_shards);
  header.checksum = ManifestChecksum(manifest.alpha_seconds,
                                     manifest.source_fingerprint, records,
                                     blob);
  header.alpha_seconds = manifest.alpha_seconds;
  header.source_fingerprint = manifest.source_fingerprint;
  header.name_blob_bytes = blob.size();
  manifest.fingerprint = header.checksum;

  // The manifest commits the generation — written last, atomically, so a
  // crash anywhere above leaves at worst orphan shard files, never a
  // manifest naming artifacts that do not exist in full.
  AtomicFileWriter out("WriteModelShards", "serialization.manifest",
                       manifest_path);
  PCDE_RETURN_NOT_OK(out.Open());
  PCDE_RETURN_NOT_OK(out.Write(&header, sizeof(header)));
  if (!records.empty()) {
    PCDE_RETURN_NOT_OK(
        out.Write(records.data(), records.size() * sizeof(ShardRecord)));
  }
  if (!blob.empty()) PCDE_RETURN_NOT_OK(out.Write(blob.data(), blob.size()));
  PCDE_RETURN_NOT_OK(out.Commit());
  return manifest;
}

StatusOr<ShardManifest> LoadShardManifest(const std::string& manifest_path) {
  auto bad = [&manifest_path](const std::string& what) {
    return Status::InvalidArgument("LoadShardManifest: " + what + " in " +
                                   manifest_path);
  };
  std::ifstream in(manifest_path, std::ios::binary | std::ios::ate);
  if (PCDE_FAULT_POINT("serialization.manifest_load.open") || !in.is_open()) {
    return Status::NotFound("LoadShardManifest: cannot open " + manifest_path);
  }
  const std::streamoff signed_size = in.tellg();
  if (signed_size < static_cast<std::streamoff>(sizeof(ManifestHeader))) {
    return bad("file shorter than the manifest header");
  }
  const uint64_t file_size = static_cast<uint64_t>(signed_size);
  in.seekg(0);
  std::vector<uint8_t> buffer(file_size);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(file_size));
  if (PCDE_FAULT_POINT("serialization.manifest_load.read") || !in.good()) {
    return Status::Internal("LoadShardManifest: read failed for " +
                            manifest_path);
  }

  ManifestHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  if (header.magic != kManifestMagic) {
    return bad("bad magic (not a PCDEMF1 manifest)");
  }
  if (header.version != kManifestVersion) {
    return bad("unsupported format version " + std::to_string(header.version) +
               " (this build reads version " +
               std::to_string(kManifestVersion) + ")");
  }
  if (header.shard_count < 1 || header.shard_count > kMaxShards) {
    return bad("implausible shard count");
  }
  if (header.name_blob_bytes > file_size) return bad("implausible name blob");
  // Exact-size check: a manifest is fully structured, so any truncation or
  // trailing garbage is corruption, not slack.
  const uint64_t want =
      sizeof(ManifestHeader) + header.shard_count * sizeof(ShardRecord) +
      header.name_blob_bytes;
  if (file_size != want) {
    return bad("file size " + std::to_string(file_size) +
               " does not match the declared layout (" + std::to_string(want) +
               " bytes)");
  }
  if (!(header.alpha_seconds >= 1.0 &&
        header.alpha_seconds <= 86400.0 * 365.0)) {
    return bad("bad alpha_seconds");
  }

  std::vector<ShardRecord> records(header.shard_count);
  std::memcpy(records.data(), buffer.data() + sizeof(ManifestHeader),
              records.size() * sizeof(ShardRecord));
  const char* blob_base = reinterpret_cast<const char*>(
      buffer.data() + sizeof(ManifestHeader) +
      records.size() * sizeof(ShardRecord));
  const std::string blob(blob_base, header.name_blob_bytes);
  if (header.checksum != ManifestChecksum(header.alpha_seconds,
                                          header.source_fingerprint, records,
                                          blob)) {
    return bad("checksum mismatch (corrupt manifest)");
  }

  ShardManifest manifest;
  manifest.alpha_seconds = header.alpha_seconds;
  manifest.source_fingerprint = header.source_fingerprint;
  manifest.fingerprint = header.checksum;
  uint64_t expect_lo = 0;
  for (size_t s = 0; s < records.size(); ++s) {
    const ShardRecord& rec = records[s];
    // The ranges must partition [0, kMaxArtifactEdgeId) exactly —
    // contiguous, ascending, no gap and no overlap — so routing is a total
    // function of the edge id.
    if (rec.key_lo != expect_lo || rec.key_hi < rec.key_lo) {
      return bad("shard " + std::to_string(s) +
                 " breaks the key-range partition");
    }
    const bool last = s + 1 == records.size();
    if (last != (rec.key_hi == kMaxArtifactEdgeId - 1)) {
      return bad("shard " + std::to_string(s) +
                 " breaks the key-range partition");
    }
    if (!last) expect_lo = rec.key_hi + 1;
    if (rec.name_len < 1 || rec.name_len > kMaxShardNameLen ||
        rec.name_off > blob.size() ||
        rec.name_len > blob.size() - rec.name_off) {
      return bad("shard " + std::to_string(s) + " has a corrupt file name");
    }
    ShardInfo info;
    info.key_lo = rec.key_lo;
    info.key_hi = rec.key_hi;
    info.fingerprint = rec.fingerprint;
    info.bytes = rec.bytes;
    info.file = blob.substr(rec.name_off, rec.name_len);
    if (info.file.find('/') != std::string::npos) {
      // Names are flat siblings of the manifest by contract; a path
      // component smells like tampering, not a layout choice.
      return bad("shard " + std::to_string(s) + " has a corrupt file name");
    }
    // A shard artifact shorter than its own header can never load; reject
    // the manifest rather than fail later with a less precise message.
    if (info.bytes < 64) {
      return bad("shard " + std::to_string(s) + " declares an implausibly "
                 "short artifact");
    }
    manifest.shards.push_back(std::move(info));
  }
  return manifest;
}

}  // namespace core
}  // namespace pcde
