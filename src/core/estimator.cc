#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "roadnet/path.h"

namespace pcde {
namespace core {

using hist::Histogram1D;
using roadnet::Path;
using roadnet::PathHash;

StatusOr<Decomposition> HybridEstimator::Decompose(const Path& path,
                                                   double departure_time) const {
  PCDE_ASSIGN_OR_RETURN(
      array, builder_.BuildCandidateArray(path, departure_time,
                                          options_.rank_cap));
  switch (options_.policy) {
    case DecompositionPolicy::kCoarsest:
      return DecompositionBuilder::Coarsest(array);
    case DecompositionPolicy::kRandom: {
      // Deterministic per query: seed mixes the configured seed with the
      // path identity.
      Rng rng(options_.random_seed ^ PathHash()(path));
      return DecompositionBuilder::Random(array, &rng);
    }
    case DecompositionPolicy::kPairwise:
      return DecompositionBuilder::PairwiseChain(array);
    case DecompositionPolicy::kUnit:
      return DecompositionBuilder::UnitChain(array);
  }
  return Status::Internal("Decompose: unknown policy");
}

StatusOr<Histogram1D> HybridEstimator::EstimateCostDistribution(
    const Path& path, double departure_time, EstimateBreakdown* breakdown,
    const CancelToken* cancel) const {
  if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);
  PhaseTimer oi, jc, mc;
  oi.Start();
  PCDE_ASSIGN_OR_RETURN(de, Decompose(path, departure_time));
  oi.Stop();

  ChainOptions chain = options_.chain;
  // The LB unit chain has no separators; evaluating it under independence
  // is exact and skips pointless conditioning machinery.
  if (options_.policy == DecompositionPolicy::kUnit) {
    chain.force_independence = true;
  }

  // The chain evaluation is a pure function of (decomposition, options), so
  // a cached result is bit-identical to recomputing.
  QueryCache::Key key;
  if (cache_ != nullptr) {
    key = QueryCache::MakeKey(de, departure_time,
                              cache_->options().time_bucket_seconds,
                              QueryCache::Fingerprint(chain),
                              wp_.fingerprint());
    Histogram1D cached;
    if (cache_->Lookup(key, &cached)) {
      if (breakdown != nullptr) {
        breakdown->oi_seconds = oi.total_seconds();
        breakdown->parts = de.size();
        breakdown->cache_hit = true;
      }
      return cached;
    }
  }

  ChainDiagnostics diag;
  PCDE_ASSIGN_OR_RETURN(
      result, EstimateFromDecomposition(de, chain, &diag, &jc, &mc, cancel));
  if (cache_ != nullptr) cache_->Insert(key, result);
  if (breakdown != nullptr) {
    breakdown->oi_seconds = oi.total_seconds();
    breakdown->jc_seconds = jc.total_seconds();
    breakdown->mc_seconds = mc.total_seconds();
    breakdown->parts = de.size();
    breakdown->chain = diag;
  }
  return result;
}

StatusOr<Histogram1D> HybridEstimator::EstimateWithFallback(
    const Path& path, double departure_time, FallbackProvenance* provenance,
    EstimateBreakdown* breakdown, const CancelToken* cancel) const {
  if (provenance != nullptr) *provenance = FallbackProvenance();
  auto full = EstimateCostDistribution(path, departure_time, breakdown, cancel);
  if (full.ok()) return full;

  // A tripped token is not a coverage problem: unwind instead of descending
  // the ladder (a cancelled full estimate must not masquerade as sparse).
  if (full.status().code() == StatusCode::kDeadlineExceeded ||
      full.status().code() == StatusCode::kCancelled) {
    return full.status();
  }

  // Degrade only on sparse coverage; any other failure (and sparse
  // coverage with no synthesizer to bridge it) passes through unchanged.
  const std::vector<uint8_t> covered = builder_.UnitCoverage(path);
  size_t num_covered = 0;
  for (uint8_t c : covered) num_covered += c;
  if (num_covered == covered.size() || !edge_fallback_) return full.status();

  // Left-to-right over maximal covered runs and uncovered positions; the
  // departure time advances by each finished segment's mean (Eq. 3's
  // shift-and-enlarge needs per-edge variables the gaps don't have — the
  // scalar progression is the degraded stand-in).
  const size_t n = path.size();
  const size_t max_buckets = options_.chain.max_result_buckets;
  Histogram1D total;
  bool have_total = false;
  bool multi_edge_run = false;
  size_t covered_runs = 0;
  size_t synthesized = 0;
  double t = departure_time;
  auto accumulate = [&](const Histogram1D& seg) -> Status {
    t += seg.Mean();
    if (!have_total) {
      total = seg;
      have_total = true;
      return Status::OK();
    }
    PCDE_ASSIGN_OR_RETURN(conv, hist::Convolve(total, seg, max_buckets));
    total = std::move(conv);
    return Status::OK();
  };
  size_t k = 0;
  while (k < n) {
    // Per-segment checkpoint: each covered run or synthesized edge is one
    // unit of ladder work between polls.
    if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);
    if (covered[k] != 0) {
      size_t end = k;
      while (end < n && covered[end] != 0) ++end;
      auto run = EstimateCostDistribution(path.Slice(k, end - k), t, nullptr,
                                          cancel);
      if (run.ok()) {
        if (end - k >= 2) multi_edge_run = true;
        ++covered_runs;
        PCDE_RETURN_NOT_OK(accumulate(run.value()));
        k = end;
        continue;
      }
      // A run cancelled mid-sweep must unwind, not descend to its edges.
      if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);
      // A covered run can still fail (e.g. a unit variable none of whose
      // intervals is temporally relevant): descend to its edges one by one,
      // trying the single-edge decomposition before the synthesizer.
      for (; k < end; ++k) {
        if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);
        auto one = EstimateCostDistribution(path.Slice(k, 1), t, nullptr,
                                            cancel);
        if (one.ok()) {
          ++covered_runs;
          PCDE_RETURN_NOT_OK(accumulate(one.value()));
          continue;
        }
        // A cancelled edge estimate must not degrade into a synthesized one.
        if (CancelToken::Check(cancel)) return CancelToken::StatusOf(cancel);
        PCDE_ASSIGN_OR_RETURN(synth, edge_fallback_(path[k]));
        ++synthesized;
        PCDE_RETURN_NOT_OK(accumulate(synth));
      }
      continue;
    }
    PCDE_ASSIGN_OR_RETURN(synth, edge_fallback_(path[k]));
    ++synthesized;
    PCDE_RETURN_NOT_OK(accumulate(synth));
    ++k;
  }
  if (!have_total) return full.status();
  if (provenance != nullptr) {
    provenance->level = multi_edge_run ? DegradationLevel::kSubpath
                                       : DegradationLevel::kEdge;
    provenance->covered_fraction =
        static_cast<double>(num_covered) / static_cast<double>(n);
    provenance->covered_runs = covered_runs;
    provenance->synthesized_edges = synthesized;
  }
  return total;
}

std::vector<StatusOr<Histogram1D>> HybridEstimator::EstimateBatch(
    const PathQuery* queries, size_t num_queries, ThreadPool* pool,
    BatchMetrics* metrics, const CancelToken* cancel) const {
  std::vector<StatusOr<Histogram1D>> results(
      num_queries, Status::Internal("EstimateBatch: query not run"));
  // Preallocate both metric lanes before the fan-out; inside it, a worker
  // writes only to its own query's slots. The previous shared atomic
  // hit/miss counters bounced one cache line across every worker on every
  // query — the aggregate totals are summed once after the join instead.
  if (metrics != nullptr) {
    metrics->query_seconds.assign(num_queries, 0.0);
    metrics->query_cache_hit.assign(num_queries, 0);
  }
  auto run_one = [this, queries, &results, metrics, cancel](size_t i) {
    if (metrics == nullptr) {
      results[i] = EstimateCostDistribution(
          queries[i].path, queries[i].departure_time, nullptr, cancel);
      return;
    }
    Stopwatch watch;
    EstimateBreakdown breakdown;
    results[i] = EstimateCostDistribution(
        queries[i].path, queries[i].departure_time, &breakdown, cancel);
    metrics->query_seconds[i] = watch.ElapsedSeconds();
    metrics->query_cache_hit[i] = breakdown.cache_hit ? 1 : 0;
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_queries, run_one);
  } else {
    // No pool: run inline on the calling thread (previously a null deref —
    // the admission layer can legitimately reach here with pooling off).
    for (size_t i = 0; i < num_queries; ++i) run_one(i);
  }
  if (metrics != nullptr) {
    metrics->cache_hits = 0;
    metrics->cache_misses = 0;
    if (cache_ != nullptr) {
      for (uint8_t hit : metrics->query_cache_hit) {
        (hit != 0 ? metrics->cache_hits : metrics->cache_misses) += 1;
      }
    }
  }
  return results;
}

std::vector<StatusOr<Histogram1D>> HybridEstimator::EstimateBatch(
    const PathQuery* queries, size_t num_queries, size_t num_threads) const {
  ThreadPool pool(num_threads);
  return EstimateBatch(queries, num_queries, &pool);
}

StatusOr<double> HybridEstimator::EstimateEntropy(const Path& path,
                                                  double departure_time) const {
  PCDE_ASSIGN_OR_RETURN(de, Decompose(path, departure_time));
  return DecompositionEntropy(de);
}

// ---------------------------------------------------------------------------
// IncrementalEstimator
// ---------------------------------------------------------------------------

namespace {

ChainOptions ChainOptionsFor(const EstimateOptions& options) {
  ChainOptions chain = options.chain;
  if (options.policy == DecompositionPolicy::kUnit) {
    chain.force_independence = true;
  }
  return chain;
}

/// How many of the shallowest unstable-tail prefixes CurrentDistribution
/// probes and snapshots in an attached PrefixStateCache (see the comment
/// at the lookup loop).
constexpr size_t kPrefixReuseDepth = 4;

}  // namespace

IncrementalEstimator::IncrementalEstimator(const PathWeightFunction& wp,
                                           EstimateOptions options,
                                           roadnet::EdgeId first_edge,
                                           double departure_time)
    : wp_(wp),
      options_(options),
      path_(std::vector<roadnet::EdgeId>{first_edge}),
      departure_time_(departure_time),
      sweeper_(ChainOptionsFor(options)),
      options_fingerprint_(QueryCache::Fingerprint(ChainOptionsFor(options))) {
  windows_.emplace_back(departure_time, departure_time);
  const InstantiatedVariable* unit =
      wp_.UnitVariable(first_edge, windows_[0]);
  if (unit != nullptr) {
    parts_.push_back(DecompositionPart{unit, 0});
    min_total_ += unit->joint.DimRange(0).lo;
    windows_.emplace_back(windows_[0].lo + unit->joint.DimRange(0).lo,
                          windows_[0].hi + unit->joint.DimRange(0).hi);
  }
  PushUnitBounds(unit);
}

void IncrementalEstimator::PushUnitBounds(const InstantiatedVariable* unit) {
  const double lo = unit != nullptr ? unit->joint.DimRange(0).lo : 0.0;
  const double hi = unit != nullptr ? unit->joint.DimRange(0).hi : 0.0;
  if (unit == nullptr) ++units_missing_;
  unit_lo_prefix_.push_back(unit_lo_prefix_.back() + lo);
  unit_hi_prefix_.push_back(unit_hi_prefix_.back() + hi);
}

size_t IncrementalEstimator::MaxAbsorbRank() const {
  constexpr size_t kDefaultMaxRank = 8;  // HybridParams::max_instantiated_rank
  return options_.rank_cap > 0 ? options_.rank_cap : kDefaultMaxRank;
}

void IncrementalEstimator::AdvanceStablePrefix() {
  // A part starting before path_.size() + 1 - MaxAbsorbRank() can never be
  // absorbed by a future part (future parts start at >= m - max_rank with
  // m > |path|), so its chain transition is final and can be streamed.
  const size_t n = path_.size();
  const size_t max_rank = MaxAbsorbRank();
  const size_t stable_before = n + 1 > max_rank ? n + 1 - max_rank : 0;
  while (applied_ + 1 < parts_.size() &&
         parts_[applied_].start < stable_before &&
         parts_[applied_ + 1].start < stable_before) {
    // Both this part and its successor are final, so the separator between
    // them is final too.
    sweeper_.ApplyPart(parts_[applied_], parts_[applied_ + 1].start);
    ++applied_;
  }
}

Status IncrementalEstimator::ExtendByEdge(roadnet::EdgeId e) {
  if (parts_.empty()) {
    return Status::FailedPrecondition("IncrementalEstimator: no initial part");
  }
  std::vector<roadnet::EdgeId> edges = path_.edges();
  edges.push_back(e);
  const Path extended{std::vector<roadnet::EdgeId>(edges)};
  const size_t n = extended.size();  // new edge is at position n-1

  // Incremental counterpart of Algorithm 1: pick the highest-rank
  // temporally relevant variable ending at the new edge. Trailing parts
  // whose spans the new part contains are absorbed (they would violate
  // the no-sub-path condition); the part preceding the absorbed ones
  // bounds how far back the new part may start. Rank 1 always exists
  // (speed-limit fallback), absorbing nothing.
  const size_t max_rank =
      options_.rank_cap > 0 ? std::min(options_.rank_cap, n) : n;
  const InstantiatedVariable* chosen = nullptr;
  size_t chosen_start = n - 1;
  const TimeBinning& binning = wp_.binning();
  for (size_t r = max_rank; r >= 1 && chosen == nullptr; --r) {
    const size_t start = n - r;
    // The new part absorbs trailing parts whose spans it contains (all
    // parts starting at or after `start`); the surviving predecessor then
    // starts strictly before `start`, preserving ordering and the
    // no-sub-path condition.
    size_t surviving = parts_.size();
    while (surviving > 0 && parts_[surviving - 1].start >= start) {
      --surviving;
    }
    // Candidate variables with path == extended.Slice(start, r).
    const InstantiatedVariable* best = nullptr;
    double best_overlap = 0.0;
    // Departure window at the candidate's start position (Eq. 3), kept
    // per edge as the path grows.
    const Interval& win = windows_[std::min(start, windows_.size() - 1)];
    for (const InstantiatedVariable* v : wp_.StartingAt(extended[start])) {
      if (v->rank() != r) continue;
      bool spatial = true;
      for (size_t d = 0; d < r; ++d) {
        if (v->path[d] != extended[start + d]) {
          spatial = false;
          break;
        }
      }
      if (!spatial) continue;
      double overlap;
      if (v->interval == kAllDayInterval) {
        overlap = 1e-12;
      } else {
        const Interval ij = binning.IntervalOf(v->interval);
        overlap = win.width() > 0.0 ? win.OverlapRatioOf(ij)
                                    : (ij.Contains(win.lo) ? 1.0 : 0.0);
      }
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = v;
      }
    }
    if (best != nullptr) {
      chosen = best;
      chosen_start = start;
      parts_.resize(surviving);  // absorb contained trailing parts
    }
  }
  if (chosen == nullptr) {
    return Status::NotFound("ExtendByEdge: no variable for edge " +
                            std::to_string(e));
  }

  path_ = extended;
  parts_.push_back(DecompositionPart{chosen, chosen_start});

  // Maintain the pruning lower bound and the arrival window with the unit
  // variable of the new edge.
  const Interval& at_edge = windows_.back();
  const InstantiatedVariable* unit = wp_.UnitVariable(e, at_edge);
  if (unit != nullptr) {
    min_total_ += unit->joint.DimRange(0).lo;
    windows_.emplace_back(at_edge.lo + unit->joint.DimRange(0).lo,
                          at_edge.hi + unit->joint.DimRange(0).hi);
  } else {
    windows_.push_back(at_edge);
  }
  PushUnitBounds(unit);
  AdvanceStablePrefix();
  return Status::OK();
}

double IncrementalEstimator::MinTotalCostWithEdge(roadnet::EdgeId e) const {
  // Mirrors ExtendByEdge's min_total_ update exactly: the unit lookup uses
  // the same arrival window the extension would, so the value is what a
  // clone's MinTotalCost() would report after extending.
  const InstantiatedVariable* unit = wp_.UnitVariable(e, windows_.back());
  return min_total_ + (unit != nullptr ? unit->joint.DimRange(0).lo : 0.0);
}

namespace {

/// Safety slack on support-bound comparisons: Finalize inflates state
/// intervals by epsilons (Interval::Inflated) and the flatten/compact
/// pipeline adds a few rounding steps, so a probe evaluated on the raw
/// streamed states could sit an epsilon on the wrong side of the final
/// histogram's CDF. Widening every bound by this (absolute + relative)
/// slack keeps the probes conservative; the pruning it forgoes is mass
/// within ~1e-6 s of the threshold — noise at road-network cost scales.
double SupportSlack(double v) { return 1e-6 + 1e-9 * std::abs(v); }

}  // namespace

double IncrementalEstimator::ArrivalProbabilityUpperBound(
    double budget, double remaining_lower_bound) const {
  // Prefix positions not yet streamed into the sweeper cost at least their
  // unit minima (the same per-position support bounds min_total_ sums);
  // the streamed (stable) positions' contributions are final for every
  // completion, so the surviving state mass below the residual budget
  // bounds any completion's arrival probability from above.
  const double uncounted_min = min_total_ - unit_lo_prefix_[CountedEnd()];
  double x = budget - remaining_lower_bound - uncounted_min;
  x += SupportSlack(x);
  return sweeper_.CdfUpperBoundAt(x);
}

bool IncrementalEstimator::PrefixCostEnvelope(
    std::vector<std::pair<double, double>>* optimistic,
    std::vector<std::pair<double, double>>* pessimistic) const {
  if (units_missing_ > 0) return false;  // no per-position maxima exist
  optimistic->clear();
  pessimistic->clear();
  const double mass = sweeper_.AppendSupportPoints(optimistic, pessimistic);
  if (mass < 1.0 - 1e-9) {
    // Destroyed mass renormalizes at Finalize; neither side still bounds
    // the final distribution.
    optimistic->clear();
    pessimistic->clear();
    return false;
  }
  const size_t ce = CountedEnd();
  const double uncounted_lo = min_total_ - unit_lo_prefix_[ce];
  const double uncounted_hi = unit_hi_prefix_.back() - unit_hi_prefix_[ce];
  for (auto& point : *optimistic) {
    point.first += uncounted_lo;
    point.first -= SupportSlack(point.first);
  }
  for (auto& point : *pessimistic) {
    point.first += uncounted_hi;
    point.first += SupportSlack(point.first);
  }
  return true;
}

StatusOr<Histogram1D> IncrementalEstimator::CurrentDistribution() const {
  // Replay only the unstable tail on a copy of the streamed chain state —
  // or, with a prefix cache attached, on a clone of the deepest cached
  // prefix state, which sibling branches sharing this costed prefix
  // populated (the sub-path reuse of routing exploration). The streamed
  // state is copied only when no cached prefix hits: a hit overwrites the
  // sweeper wholesale, so copying up front would waste a deep copy in
  // exactly the case the cache exists to make fast.
  ChainSweeper sweeper{ChainOptionsFor(options_)};
  size_t first = applied_;
  // Key prefix shared by every lookup/insert of this call: the cached
  // state after parts [0, k) is a deterministic function of the model,
  // the chain options, the (variable id, start) sequence, and the
  // next-overlap start its final ApplyPart used (== parts_[k].start).
  PrefixStateCache::Key key;
  const bool use_prefix_cache = prefix_cache_ != nullptr && !parts_.empty();
  // Probed/snapshotted depths: the kPrefixReuseDepth shallowest tail
  // prefixes (see the lookup-loop comment).
  const size_t window_hi =
      use_prefix_cache
          ? std::min(parts_.size() - 1, applied_ + kPrefixReuseDepth)
          : 0;
  // The probe key for prefix k is key[0, 3 + 2k) plus parts_[k].start, so
  // one reserved buffer refilled per depth serves every probe and insert
  // (assign within capacity; no per-depth allocation in the DFS's
  // innermost loop).
  PrefixStateCache::Key probe;
  auto probe_key_for =
      [this, &key, &probe](size_t k) -> const PrefixStateCache::Key& {
    probe.assign(key.begin(), key.begin() + static_cast<ptrdiff_t>(3 + 2 * k));
    probe.push_back(parts_[k].start);
    return probe;
  };
  if (use_prefix_cache) {
    // Only the first window_hi parts can appear in a probed key
    // (probe_key_for(k) reads key[0, 3 + 2k) and takes parts_[k].start
    // directly), so the build stops there.
    key.reserve(4 + 2 * window_hi);
    probe.reserve(4 + 2 * window_hi);
    key.push_back(wp_.fingerprint());
    key.push_back(options_fingerprint_);
    const double width = prefix_cache_->options().time_bucket_seconds > 0.0
                             ? prefix_cache_->options().time_bucket_seconds
                             : 1.0;
    key.push_back(static_cast<uint64_t>(
        static_cast<int64_t>(std::floor(departure_time_ / width))));
    for (size_t k = 0; k < window_hi; ++k) {
      key.push_back(parts_[k].variable->id);
      key.push_back(parts_[k].start);
    }
    // Probe only the kPrefixReuseDepth shallowest tail prefixes, deepest
    // of those first. Absorption makes the deep tail volatile across DFS
    // siblings — a candidate's last parts routinely rewrite on extension —
    // so cached states near applied_ are the ones siblings actually share;
    // probing (and snapshotting) the whole tail costs a miss per depth and
    // a sweeper copy per insert and measured slower than no cache at all.
    for (size_t k = window_hi; k > applied_; --k) {
      if (prefix_cache_->Lookup(probe_key_for(k), &sweeper)) {
        first = k;
        break;
      }
    }
  }
  if (first == applied_) sweeper = sweeper_;  // no cached prefix: replay all
  for (size_t k = first; k < parts_.size(); ++k) {
    const size_t next_start =
        k + 1 < parts_.size() ? parts_[k + 1].start : parts_[k].end();
    sweeper.ApplyPart(parts_[k], next_start);
    const size_t depth = k + 1;
    if (use_prefix_cache && depth <= window_hi) {
      prefix_cache_->Insert(probe_key_for(depth), sweeper);
    }
  }
  auto result = sweeper.Finalize();
  if (result.ok()) return result;
  if (result.status().code() != StatusCode::kFailedPrecondition) {
    return result.status();
  }
  // Separator-support mismatch destroyed the mass: recompute the whole
  // chain under part independence (same fallback as the batch path).
  ChainOptions chain = ChainOptionsFor(options_);
  chain.force_independence = true;
  return EstimateFromDecomposition(parts_, chain);
}

StatusOr<Histogram1D> IncrementalEstimator::CurrentDistribution(
    QueryCache* cache) const {
  if (cache == nullptr) return CurrentDistribution();
  const QueryCache::Key key = QueryCache::MakeKey(
      parts_, departure_time_, cache->options().time_bucket_seconds,
      QueryCache::Fingerprint(ChainOptionsFor(options_)), wp_.fingerprint());
  Histogram1D cached;
  if (cache->Lookup(key, &cached)) return cached;
  auto result = CurrentDistribution();
  if (result.ok()) cache->Insert(key, result.value());
  return result;
}

}  // namespace core
}  // namespace pcde
