#include "core/instantiation.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace core {

namespace {

using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using traj::MatchedTrajectory;
using traj::TrajectoryStore;

/// Key for a (sub-path window, interval) candidate during the level scan.
struct WindowKey {
  std::vector<EdgeId> edges;
  int32_t interval;
  bool operator==(const WindowKey& o) const {
    return interval == o.interval && edges == o.edges;
  }
};

struct WindowKeyHash {
  size_t operator()(const WindowKey& k) const {
    size_t h = static_cast<size_t>(k.interval) * 0x9e3779b97f4a7c15ull + 1;
    for (EdgeId e : k.edges) {
      h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Accumulated per-edge cost rows for one candidate.
struct WindowData {
  std::vector<std::vector<double>> rows;
};

}  // namespace

hist::Histogram1D FreeFlowEdgeHistogram(const roadnet::Edge& edge,
                                        const HybridParams& params) {
  const double t = edge.FreeFlowSeconds();
  const double lo = std::max(t * (1.0 - params.speed_limit_spread), 0.1);
  const double hi = t * (1.0 + params.speed_limit_spread) + 0.2;
  return hist::Histogram1D::Single(lo, hi);
}

Status InstantiateIntoBuilder(const Graph& graph, const TrajectoryStore& store,
                              const HybridParams& params,
                              WeightFunctionBuilder* builder,
                              InstantiationStats* stats) {
  Stopwatch watch;
  const TimeBinning binning(params.alpha_minutes);
  if (binning.alpha_seconds() != builder->binning().alpha_seconds()) {
    return Status::InvalidArgument(
        "InstantiateIntoBuilder: params.alpha_minutes (" +
        std::to_string(params.alpha_minutes) +
        ") does not match the builder's binning — variables would land on "
        "the wrong interval grid");
  }
  InstantiationStats local_stats;

  // ---- Level 1: unit paths.
  // Gather per (edge, interval) cost samples in one pass.
  std::unordered_map<WindowKey, WindowData, WindowKeyHash> level;
  for (const MatchedTrajectory& t : store.trajectories()) {
    const std::vector<double>& costs = t.costs(params.cost_type);
    for (size_t pos = 0; pos < t.path.size(); ++pos) {
      WindowKey key{{t.path[pos]}, binning.IndexOf(t.edge_enter_times[pos])};
      level[key].rows.push_back({costs[pos]});
    }
  }

  // Frequent (path, interval) pairs feed the next level's prefix pruning.
  std::unordered_set<WindowKey, WindowKeyHash> frequent;
  for (auto& [key, data] : level) {
    if (data.rows.size() < params.beta) continue;
    std::vector<double> samples;
    samples.reserve(data.rows.size());
    for (const auto& row : data.rows) samples.push_back(row[0]);
    auto hist1d = hist::BuildAutoHistogram(samples, params.bucket_options);
    if (!hist1d.ok()) continue;
    InstantiatedVariable var;
    var.path = Path(key.edges);
    var.interval = key.interval;
    var.joint = hist::HistogramND::FromHistogram1D(hist1d.value());
    var.support = data.rows.size();
    builder->Add(std::move(var));
    frequent.insert(key);
    ++local_stats.unit_from_trajectories;
  }

  // Speed-limit fallbacks: one all-day unit variable per edge (Sec. 3.1 —
  // "derived from the speed limit ... to avoid overfitting"). These also
  // cover edges with no data at all. On a delta rebuild the re-Add replaces
  // the seeded fallback in place with identical content, keeping variable
  // order (and therefore the re-frozen fingerprint) stable.
  for (const roadnet::Edge& edge : graph.edges()) {
    InstantiatedVariable var;
    var.path = Path({edge.id});
    var.interval = kAllDayInterval;
    var.joint = hist::HistogramND::FromHistogram1D(
        FreeFlowEdgeHistogram(edge, params));
    var.support = 0;
    var.from_speed_limit = true;
    builder->Add(std::move(var));
    ++local_stats.unit_from_speed_limit;
  }

  // ---- Levels k = 2 .. max rank: joint variables.
  for (size_t k = 2; k <= params.max_instantiated_rank; ++k) {
    if (frequent.empty()) break;
    std::unordered_map<WindowKey, WindowData, WindowKeyHash> next;
    for (const MatchedTrajectory& t : store.trajectories()) {
      if (t.path.size() < k) continue;
      const std::vector<double>& costs = t.costs(params.cost_type);
      for (size_t pos = 0; pos + k <= t.path.size(); ++pos) {
        const int32_t interval = binning.IndexOf(t.edge_enter_times[pos]);
        // Prefix pruning: the k-1 window at the same start shares the entry
        // time, so its (path, interval) must be frequent.
        WindowKey prefix{{t.path.edges().begin() + static_cast<ptrdiff_t>(pos),
                          t.path.edges().begin() +
                              static_cast<ptrdiff_t>(pos + k - 1)},
                         interval};
        if (frequent.count(prefix) == 0) continue;
        WindowKey key{{t.path.edges().begin() + static_cast<ptrdiff_t>(pos),
                       t.path.edges().begin() + static_cast<ptrdiff_t>(pos + k)},
                      interval};
        next[key].rows.emplace_back(
            costs.begin() + static_cast<ptrdiff_t>(pos),
            costs.begin() + static_cast<ptrdiff_t>(pos + k));
      }
    }

    frequent.clear();
    for (auto& [key, data] : next) {
      if (data.rows.size() < params.beta) continue;
      auto joint =
          hist::HistogramND::BuildFromSamples(data.rows, params.bucket_options);
      if (!joint.ok()) continue;
      InstantiatedVariable var;
      var.path = Path(key.edges);
      var.interval = key.interval;
      var.joint = std::move(joint).value();
      var.support = data.rows.size();
      builder->Add(std::move(var));
      frequent.insert(key);
      ++local_stats.joint_variables;
    }
  }

  local_stats.build_seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

StatusOr<PathWeightFunction> TryInstantiateWeightFunction(
    const Graph& graph, const TrajectoryStore& store,
    const HybridParams& params, InstantiationStats* stats) {
  Stopwatch watch;
  WeightFunctionBuilder builder(TimeBinning(params.alpha_minutes));
  InstantiationStats local_stats;
  PCDE_RETURN_NOT_OK(
      InstantiateIntoBuilder(graph, store, params, &builder, &local_stats));
  // Compile the mutable builder state into the frozen serving
  // representation; the freeze (flatten + index build) is part of the
  // offline build cost.
  PCDE_ASSIGN_OR_RETURN(wp, std::move(builder).TryFreeze());
  local_stats.build_seconds = watch.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return wp;
}

PathWeightFunction InstantiateWeightFunction(const Graph& graph,
                                             const TrajectoryStore& store,
                                             const HybridParams& params,
                                             InstantiationStats* stats) {
  auto wp = TryInstantiateWeightFunction(graph, store, params, stats);
  // Reaching here with an error means fixture input violated the builder's
  // own preconditions — a programming error, not a data condition; live
  // data goes through the Try form, which degrades instead.
  if (!wp.ok()) {
    std::fprintf(stderr, "InstantiateWeightFunction: %s\n",
                 wp.status().ToString().c_str());
    std::abort();
  }
  return std::move(wp).value();
}

}  // namespace core
}  // namespace pcde
