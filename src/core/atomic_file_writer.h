// Atomic, crash-durable artifact writes, shared by every on-disk format
// (PCDEWF1 binary, the text format, and the PCDEMF1 shard manifest): write
// a temp sibling on a raw fd, fsync it, rename into place, then fsync the
// parent directory. The fsyncs are what make the temp+rename dance actually
// atomic across a crash — without them the kernel may expose the new name
// before the data blocks (or the directory entry itself) reach stable
// storage, and a reboot can leave a zero-length or torn "committed"
// artifact. Every step carries a fault site so tests can sweep the whole
// lifecycle; the temp sibling is unlinked on every error path.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "common/status.h"

namespace pcde {
namespace core {

class AtomicFileWriter {
 public:
  /// `who` prefixes error messages; `site_prefix` names the fault sites
  /// ("<prefix>.open/.write/.fsync/.rename"; the parent-directory sync is
  /// the shared "serialization.dirsync").
  AtomicFileWriter(const char* who, const char* site_prefix, std::string path)
      : who_(who),
        path_(std::move(path)),
        tmp_(path_ + ".tmp." + std::to_string(::getpid())),
        open_site_(fault::FaultSite::Named(std::string(site_prefix) + ".open")),
        write_site_(
            fault::FaultSite::Named(std::string(site_prefix) + ".write")),
        fsync_site_(
            fault::FaultSite::Named(std::string(site_prefix) + ".fsync")),
        rename_site_(
            fault::FaultSite::Named(std::string(site_prefix) + ".rename")),
        dirsync_site_(fault::FaultSite::Named("serialization.dirsync")) {}

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  ~AtomicFileWriter() {
    if (fd_ >= 0) ::close(fd_);
    // Until the rename lands, the temp sibling is ours to clean up — on
    // every error path, including a failed rename itself.
    if (!committed_) ::unlink(tmp_.c_str());
  }

  Status Open() {
    if (open_site_.Fire()) {
      errno = EACCES;
    } else {
      // O_CLOEXEC: a concurrently fork+exec'd child (trainer shelling out,
      // test harness) must not inherit a half-written artifact fd and keep
      // the temp file alive past our unlink.
      fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
    }
    if (fd_ < 0) return Fail("cannot open " + tmp_);
    return Status::OK();
  }

  Status Write(const void* data, size_t nbytes) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (nbytes > 0) {
      ssize_t n;
      if (write_site_.Fire()) {
        // Injected ENOSPC mid-stream: land half the remaining bytes for
        // real first, so the temp file is genuinely torn — the shape the
        // cleanup path must survive, not just a clean zero-byte file.
        const size_t half = nbytes / 2;
        if (half > 0) (void)!::write(fd_, p, half);
        errno = ENOSPC;
        n = -1;
      } else {
        n = ::write(fd_, p, nbytes);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Fail("write failed for " + tmp_);
      }
      p += n;
      nbytes -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  /// fsync(temp) -> close -> rename -> fsync(parent dir), in that order:
  /// the payload must be durable before the rename exposes the new name,
  /// and the directory entry must be durable before the save reports
  /// success. A dirsync failure is reported even though the rename already
  /// landed — the new artifact is visible but its durability is not
  /// guaranteed, and callers treat the save as failed.
  Status Commit() {
    int rc = fsync_site_.Fire() ? (errno = EIO, -1) : ::fsync(fd_);
    if (rc != 0) return Fail("fsync failed for " + tmp_);
    rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Fail("close failed for " + tmp_);
    rc = rename_site_.Fire() ? (errno = EXDEV, -1)
                             : std::rename(tmp_.c_str(), path_.c_str());
    if (rc != 0) return Fail("cannot rename into " + path_);
    committed_ = true;  // tmp no longer exists under its own name
    return SyncParentDir();
  }

 private:
  Status Fail(const std::string& what) {
    const int err = errno;
    return Status::Internal(std::string(who_) + ": " + what + " (" +
                            std::strerror(err) + ")");
  }

  Status SyncParentDir() {
    const size_t slash = path_.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : slash == 0 ? std::string("/")
                                             : path_.substr(0, slash);
    int dfd = -1;
    if (dirsync_site_.Fire()) {
      errno = EIO;
    } else {
      dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    }
    if (dfd < 0) return Fail("cannot open directory " + dir + " for fsync");
    if (::fsync(dfd) != 0) {
      const int err = errno;
      ::close(dfd);
      errno = err;
      return Fail("directory fsync failed for " + dir);
    }
    ::close(dfd);
    return Status::OK();
  }

  const char* who_;
  const std::string path_;
  const std::string tmp_;
  fault::FaultSite& open_site_;
  fault::FaultSite& write_site_;
  fault::FaultSite& fsync_site_;
  fault::FaultSite& rename_site_;
  fault::FaultSite& dirsync_site_;
  int fd_ = -1;
  bool committed_ = false;
};

}  // namespace core
}  // namespace pcde
