// Shard compiler for per-region serving: splits one frozen
// PathWeightFunction into per-shard PCDEWF1 artifacts keyed by the front
// edge of each variable's interned edge sequence (the same key the frozen
// CSR candidate index uses), plus a versioned, checksummed PCDEMF1
// manifest naming every shard. serving::ShardedEngine opens the manifest
// and routes paths to shards; a shard whose key range contains every edge
// of a path holds the exact candidate set the monolithic model would use
// for that path, so single-shard serving is bit-identical to the unsplit
// model.
//
// Manifest layout (PCDEMF1, little-endian, fixed 64-byte header):
//
//   Header  { magic "PCDEMF1\0", version, shard_count, checksum,
//             alpha_seconds, source_fingerprint, name_blob_bytes }
//   Records shard_count x { key_lo, key_hi, fingerprint, bytes,
//                           name_off, name_len }      (48 bytes each)
//   Blob    concatenated shard file names (no terminators)
//
// The checksum covers alpha, the source fingerprint, every record, and the
// name blob; it doubles as the manifest fingerprint that stamps sharded
// responses. Shard key ranges partition [0, kMaxArtifactEdgeId) exactly:
// contiguous, ascending, first key_lo == 0, last key_hi == ceiling - 1 —
// every edge id has exactly one owning shard. Shard files are ordinary
// PCDEWF1 artifacts living next to the manifest (names are flat siblings,
// no directory components).
//
// Durability mirrors the model artifacts: shard files first (each through
// the atomic temp/fsync/rename dance), the manifest last — the manifest
// commits the generation, so a crash mid-split never publishes a torn set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/weight_function.h"

namespace pcde {
namespace core {

/// One shard of a split model, as recorded in the manifest.
struct ShardInfo {
  /// Inclusive front-edge key range [key_lo, key_hi] this shard owns.
  uint64_t key_lo = 0;
  uint64_t key_hi = 0;
  /// fingerprint() of the shard's model == its PCDEWF1 checksum; per-shard
  /// refresh reloads only shards whose manifest fingerprint changed.
  uint64_t fingerprint = 0;
  /// Shard artifact size in bytes (a short file fails validation before
  /// the artifact parser even runs).
  uint64_t bytes = 0;
  /// File name relative to the manifest's directory (flat sibling).
  std::string file;
};

/// A parsed, validated PCDEMF1 manifest.
struct ShardManifest {
  double alpha_seconds = 0.0;
  /// fingerprint() of the unsplit source model the shards were compiled
  /// from (diagnostic: ties a shard set back to its monolithic artifact).
  uint64_t source_fingerprint = 0;
  /// Checksum over the manifest payload — the generation identity that
  /// stamps every ShardedEngine response's model_fingerprint.
  uint64_t fingerprint = 0;
  /// Shards in ascending key order, ranges partitioning
  /// [0, kMaxArtifactEdgeId) exactly.
  std::vector<ShardInfo> shards;

  /// Index of the shard owning front-edge key `e` (ranges partition the
  /// whole key space; ids at or above the artifact ceiling clamp to the
  /// last shard). Requires a validated (non-empty) manifest.
  size_t ShardOf(uint64_t e) const;
};

struct ShardWriteOptions {
  /// Number of shards to split into (>= 1; needs at least this many
  /// distinct front edges in the model).
  size_t num_shards = 2;
  /// Shard files are named "<file_prefix>.<i>.pcdewf" next to the manifest.
  std::string file_prefix = "shard";
};

/// \brief Splits `wp` into per-shard PCDEWF1 artifacts plus a PCDEMF1
/// manifest at `manifest_path` (shard files are written into the manifest's
/// directory). Key ranges are cut so shards carry roughly equal variable
/// counts. Every write is atomic + crash-durable and carries fault sites
/// ("serialization.binary.*" for the shard artifacts,
/// "serialization.manifest.*" for the manifest itself). Returns the
/// manifest that was written.
StatusOr<ShardManifest> WriteModelShards(const PathWeightFunction& wp,
                                         const std::string& manifest_path,
                                         const ShardWriteOptions& options);

/// \brief Reads and validates a PCDEMF1 manifest: magic, version, checksum,
/// record bounds, name sanity, and the exact key-range partition are all
/// enforced here, so corrupt/truncated/version-skewed manifests fail with a
/// clean Status (never crash). Shard *files* are not opened — existence and
/// content checks belong to the engine attach path, which compares each
/// artifact's size and fingerprint against the manifest record.
/// Fault sites: "serialization.manifest_load.open" / ".read".
StatusOr<ShardManifest> LoadShardManifest(const std::string& manifest_path);

}  // namespace core
}  // namespace pcde
