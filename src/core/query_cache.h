// Sharded, memory-budgeted LRU cache of estimated cost distributions — the
// batch-serving layer's memoization of repeated sub-path work. Identical
// queries from different users (and identical candidate sub-paths explored
// by stochastic routing) hit the same decomposition, and
// EstimateFromDecomposition is deterministic in the decomposition and chain
// options alone, so a cached histogram is bit-identical to a recomputation:
// batch-with-cache equals sequential-without-cache result for result.
//
// Keys are the decomposition identity — the (frozen variable id, start)
// sequence — plus the departure-time bucket, a fingerprint of the chain
// options, and the weight function's content fingerprint. Frozen variable
// ids are stable across save/load of the model artifact, so decomposition
// fingerprints (and therefore cache entries) are addressable across
// processes serving the same artifact; the model fingerprint turns a cache
// shared across *different* models into misses instead of false hits.
//
// Shards are independent mutex-protected LRU lists, selected by key hash,
// so concurrent EstimateBatch workers rarely contend; the byte budget is
// split evenly across shards and enforced by evicting each shard's least
// recently used entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/lru.h"
#include "core/chain_estimator.h"
#include "core/decomposition.h"
#include "hist/histogram1d.h"

namespace pcde {
namespace core {

struct QueryCacheOptions {
  /// Number of independent LRU shards; rounded up to a power of two.
  size_t num_shards = 8;
  /// Total byte budget across all shards (keys + histograms + overhead).
  size_t max_bytes = size_t{64} << 20;
  /// Width of the departure-time bucket folded into the key. Queries in the
  /// same bucket that select the same decomposition share an entry.
  double time_bucket_seconds = 300.0;
};

struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class QueryCache {
 public:
  /// The exact cache identity of a query: the weight function's content
  /// fingerprint (PathWeightFunction::fingerprint — identical across
  /// save/load of one model), fingerprint of the chain options,
  /// departure-time bucket, then (frozen variable id, start) per part.
  /// Keys are stored verbatim and compared exactly, so lookups within one
  /// model never false-hit; isolation *across* models rests on the 64-bit
  /// non-cryptographic content fingerprint (an accidental collision is
  /// astronomically unlikely, but do not share a cache with models loaded
  /// from untrusted artifacts).
  using Key = std::vector<uint64_t>;

  explicit QueryCache(QueryCacheOptions options = QueryCacheOptions());

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  const QueryCacheOptions& options() const { return options_; }

  /// Mixes every chain option that influences EstimateFromDecomposition.
  static uint64_t Fingerprint(const ChainOptions& chain);

  static Key MakeKey(const Decomposition& de, double departure_time,
                     double time_bucket_seconds, uint64_t options_fingerprint,
                     uint64_t model_fingerprint);

  /// True and fills *out (a copy of the cached histogram) on a hit.
  bool Lookup(const Key& key, hist::Histogram1D* out);

  /// Inserts (or refreshes) the result for `key`, then evicts the owning
  /// shard down to its byte budget. Entries larger than a whole shard's
  /// budget are not admitted.
  void Insert(const Key& key, const hist::Histogram1D& result);

  QueryCacheStats stats() const;
  void Clear();

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  /// One LRU shard: the shared common/lru.h core under the shard mutex.
  /// The histogram is held by shared_ptr so a hit only bumps a refcount
  /// inside the shard lock; the caller's deep copy happens outside it
  /// (popular entries would otherwise serialize their shard on the copy).
  struct Shard {
    explicit Shard(size_t budget_bytes) : lru(budget_bytes) {}
    std::mutex mutex;
    Lru<Key, std::shared_ptr<const hist::Histogram1D>, KeyHash> lru;
  };

  static size_t EntryBytes(const Key& key, const hist::Histogram1D& result);
  Shard& ShardFor(const Key& key);

  QueryCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t per_shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace core
}  // namespace pcde
