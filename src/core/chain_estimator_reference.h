// Reference (pre-rewrite) implementation of the Eq. 2 chain sweep, kept
// verbatim from before the flat-keyed-state rewrite of ChainSweeper. It is
// the behavioral oracle: the golden-equivalence test asserts the optimized
// sweeper reproduces its output, and bench_chain_micro measures the
// rewrite's speedup against it. Not for production use — it allocates a
// heap string key per state transition and rescans caches linearly.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "core/chain_estimator.h"
#include "core/decomposition.h"
#include "hist/histogram1d.h"

namespace pcde {
namespace core {
namespace reference {

/// \brief The pre-rewrite sweeper: string-of-doubles group keys,
/// std::map separator caches, per-bucket temporaries, linear slot scans.
class ReferenceChainSweeper {
 public:
  explicit ReferenceChainSweeper(const ChainOptions& options);

  void ApplyPart(const DecompositionPart& part, size_t next_overlap_start);
  double MassRemaining() const;
  size_t max_states() const { return max_states_; }
  StatusOr<hist::Histogram1D> Finalize() const;
  double MinSum() const;

 private:
  struct SumEntry {
    Interval sum;
    double prob;
  };
  struct Group {
    std::vector<size_t> positions;
    std::vector<Interval> boxes;
    std::vector<SumEntry> sums;
  };

  static std::string GroupKey(const std::vector<Interval>& boxes);
  static double GroupMass(const Group& g);
  static void CompactSums(Group* g, size_t cap);

  ChainOptions options_;
  std::unordered_map<std::string, Group> groups_;
  size_t max_states_ = 0;
};

/// One-shot estimation through the reference sweeper (same retry-under-
/// independence protocol as EstimateFromDecomposition, including the
/// optional JC/MC phase timers).
StatusOr<hist::Histogram1D> ReferenceEstimateFromDecomposition(
    const Decomposition& de, const ChainOptions& options = ChainOptions(),
    ChainDiagnostics* diagnostics = nullptr, PhaseTimer* jc_timer = nullptr,
    PhaseTimer* mc_timer = nullptr);

}  // namespace reference
}  // namespace core
}  // namespace pcde
