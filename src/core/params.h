// Parameters of the hybrid graph (Table 2 of the paper) and the
// time-of-day binning defined by the finest interval alpha.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/interval.h"
#include "hist/voptimal.h"
#include "traj/types.h"

namespace pcde {
namespace core {

/// \brief Paper parameters with the paper's default values in bold in
/// Table 2: alpha = 30 min, beta = 30.
struct HybridParams {
  double alpha_minutes = 30.0;  // finest time interval of interest
  size_t beta = 30;             // qualified-trajectory threshold

  /// Cap on the cardinality of instantiated paths (rank). The paper keeps
  /// instantiating "until longer paths cannot be obtained"; the cap bounds
  /// the apriori scan and matches the paper's observation that ranks above
  /// ~4 are rare (Fig. 10).
  size_t max_instantiated_rank = 8;

  /// Histogram construction (Sec. 3.1): Auto bucket-count options.
  hist::AutoBucketOptions bucket_options;

  /// Buckets kept in a final 1-D cost distribution.
  size_t max_result_buckets = 64;

  /// Spread of the speed-limit fallback distribution for unit paths with
  /// fewer than beta trajectories: one bucket spanning
  /// [(1-s)*t_limit, (1+s)*t_limit).
  double speed_limit_spread = 0.15;

  traj::CostType cost_type = traj::CostType::kTravelTimeSeconds;

  double AlphaSeconds() const { return alpha_minutes * 60.0; }
};

/// Sentinel interval id for speed-limit fallback variables, which are valid
/// at any time of day.
constexpr int32_t kAllDayInterval = -1;

/// \brief Maps times of day to the alpha-sized interval grid.
class TimeBinning {
 public:
  explicit TimeBinning(double alpha_minutes)
      : alpha_seconds_(alpha_minutes * 60.0) {}

  int32_t IndexOf(double time_s) const {
    return static_cast<int32_t>(std::floor(time_s / alpha_seconds_));
  }

  Interval IntervalOf(int32_t index) const {
    return Interval(index * alpha_seconds_, (index + 1) * alpha_seconds_);
  }

  int32_t NumIntervals() const {
    return static_cast<int32_t>(
        std::ceil(traj::kSecondsPerDay / alpha_seconds_));
  }

  double alpha_seconds() const { return alpha_seconds_; }

 private:
  double alpha_seconds_;
};

}  // namespace core
}  // namespace pcde
