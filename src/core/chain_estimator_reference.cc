#include "core/chain_estimator_reference.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>

#include "hist/histogram_nd.h"

namespace pcde {
namespace core {
namespace reference {

using hist::Histogram1D;
using hist::HistogramND;
using hist::WeightedInterval;

namespace {

// Verbatim copies of the seed's hist::FlattenToDisjoint and hist::Compact,
// frozen here so the reference kernel measures the *entire* pre-rewrite
// chain-estimation hot path: the bucket machinery is where the sweep spends
// most of its time, and later optimization of the shared hist:: routines
// must not silently shift this baseline.

constexpr double kMinWidth = 1e-12;

StatusOr<Histogram1D> ReferenceFlattenToDisjoint(
    std::vector<WeightedInterval> parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("FlattenToDisjoint: no input intervals");
  }
  std::vector<double> cuts;
  cuts.reserve(parts.size() * 2);
  double total_mass = 0.0;
  for (const WeightedInterval& w : parts) {
    if (w.prob < 0.0) {
      return Status::InvalidArgument("FlattenToDisjoint: negative weight");
    }
    if (w.range.width() < kMinWidth && w.prob > 0.0) {
      return Status::InvalidArgument(
          "FlattenToDisjoint: zero-width interval with positive mass");
    }
    total_mass += w.prob;
    cuts.push_back(w.range.lo);
    cuts.push_back(w.range.hi);
  }
  if (total_mass <= 0.0) {
    return Status::InvalidArgument("FlattenToDisjoint: zero total mass");
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) {
                           return std::fabs(a - b) < kMinWidth;
                         }),
             cuts.end());

  const size_t n_slices = cuts.size() - 1;
  std::vector<double> density(n_slices, 0.0);
  for (const WeightedInterval& w : parts) {
    if (w.prob <= 0.0) continue;
    const double d = w.prob / w.range.width();
    const auto lo_it = std::lower_bound(cuts.begin(), cuts.end(),
                                        w.range.lo - kMinWidth);
    size_t s = static_cast<size_t>(lo_it - cuts.begin());
    for (; s < n_slices && cuts[s] < w.range.hi - kMinWidth; ++s) {
      density[s] += d;
    }
  }

  std::vector<hist::Bucket> out;
  for (size_t s = 0; s < n_slices; ++s) {
    const double w = cuts[s + 1] - cuts[s];
    const double mass = density[s] * w;
    if (mass <= 0.0) continue;
    const bool contiguous =
        !out.empty() && std::fabs(out.back().range.hi - cuts[s]) < kMinWidth;
    if (contiguous) {
      const double prev_density = out.back().prob / out.back().range.width();
      if (std::fabs(prev_density - density[s]) <=
          1e-9 * std::max(prev_density, density[s])) {
        out.back().range.hi = cuts[s + 1];
        out.back().prob += mass;
        continue;
      }
    }
    out.emplace_back(cuts[s], cuts[s + 1], mass);
  }
  for (hist::Bucket& b : out) b.prob /= total_mass;
  return Histogram1D::Make(std::move(out));
}

Histogram1D ReferenceCompact(const Histogram1D& h, size_t max_buckets) {
  if (h.NumBuckets() <= max_buckets || max_buckets == 0) return h;
  std::vector<hist::Bucket> bs = h.buckets();

  auto merge_cost = [&bs](size_t i) {
    const hist::Bucket& a = bs[i];
    const hist::Bucket& b = bs[i + 1];
    const double w_merged = b.range.hi - a.range.lo;
    const double d = (a.prob + b.prob) / w_merged;
    const double da = a.prob / a.range.width();
    const double db = b.prob / b.range.width();
    const double gap = b.range.lo - a.range.hi;
    return (da - d) * (da - d) * a.range.width() +
           (db - d) * (db - d) * b.range.width() + d * d * std::max(gap, 0.0);
  };

  while (bs.size() > max_buckets) {
    size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < bs.size(); ++i) {
      const double c = merge_cost(i);
      if (c < best_cost) {
        best_cost = c;
        best = i;
      }
    }
    bs[best] = hist::Bucket(bs[best].range.lo, bs[best + 1].range.hi,
                            bs[best].prob + bs[best + 1].prob);
    bs.erase(bs.begin() + static_cast<ptrdiff_t>(best) + 1);
  }
  auto result = Histogram1D::Make(std::move(bs));
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace

std::string ReferenceChainSweeper::GroupKey(
    const std::vector<Interval>& boxes) {
  std::string key;
  key.resize(boxes.size() * 2 * sizeof(double));
  char* out = key.data();
  for (const Interval& b : boxes) {
    std::memcpy(out, &b.lo, sizeof(double));
    out += sizeof(double);
    std::memcpy(out, &b.hi, sizeof(double));
    out += sizeof(double);
  }
  return key;
}

double ReferenceChainSweeper::GroupMass(const Group& g) {
  double m = 0.0;
  for (const SumEntry& s : g.sums) m += s.prob;
  return m;
}

void ReferenceChainSweeper::CompactSums(Group* g, size_t cap) {
  if (g->sums.size() <= cap) return;
  const double mass = GroupMass(*g);
  if (mass <= 0.0) {
    g->sums.clear();
    return;
  }
  std::vector<WeightedInterval> parts;
  parts.reserve(g->sums.size());
  for (const SumEntry& s : g->sums) {
    parts.emplace_back(s.sum.Inflated(), s.prob);
  }
  auto flat = ReferenceFlattenToDisjoint(std::move(parts));
  if (!flat.ok()) return;  // keep uncompacted on pathological input
  const Histogram1D compacted = ReferenceCompact(flat.value(), cap);
  g->sums.clear();
  for (const hist::Bucket& b : compacted.buckets()) {
    g->sums.push_back(SumEntry{b.range, b.prob * mass});
  }
}

ReferenceChainSweeper::ReferenceChainSweeper(const ChainOptions& options)
    : options_(options) {
  Group init;
  init.sums.push_back(SumEntry{Interval(0.0, 0.0), 1.0});
  groups_.emplace(GroupKey(init.boxes), std::move(init));
}

void ReferenceChainSweeper::ApplyPart(const DecompositionPart& part,
                                      size_t next_overlap_start) {
  const HistogramND& joint = part.variable->joint;
  const size_t s = part.start;
  const size_t m = part.rank();

  // Positions of this part that stay open for the next part.
  std::vector<size_t> next_open;
  for (size_t p = std::max(next_overlap_start, s); p < part.end(); ++p) {
    next_open.push_back(p);
  }

  using SepKey = std::vector<uint32_t>;
  std::unordered_map<std::string, Group> next_groups;
  // Separator marginals depend only on the O-dim layout, which is shared
  // by (nearly) all groups; cache them across the group loop.
  std::map<std::vector<size_t>, std::map<SepKey, double>> sep_cache;

  for (auto& [key, group] : groups_) {
    (void)key;
    if (GroupMass(group) <= 0.0) continue;
    // Split the group's open positions into those conditioned by this part
    // (O) and stale ones (closed now, unconditioned).
    std::vector<size_t> o_local;       // local dim index of each O position
    std::vector<size_t> o_group_slot;  // matching index into group.boxes
    Interval stale_shift(0.0, 0.0);
    for (size_t j = 0; j < group.positions.size(); ++j) {
      const size_t p = group.positions[j];
      if (!options_.force_independence && p >= s && p < part.end()) {
        o_local.push_back(p - s);
        o_group_slot.push_back(j);
      } else {
        stale_shift = stale_shift + group.boxes[j];
      }
    }

    // Separator marginal over the O dims, from this part's own histogram —
    // this makes each factor a proper conditional distribution.
    std::map<SepKey, double>& sep_mass = sep_cache[o_local];
    if (!o_local.empty() && sep_mass.empty()) {
      for (const HistogramND::BucketRef hb : joint.buckets()) {
        SepKey sk(o_local.size());
        for (size_t d = 0; d < o_local.size(); ++d) sk[d] = hb.idx[o_local[d]];
        sep_mass[sk] += hb.prob;
      }
    }

    for (const HistogramND::BucketRef hb : joint.buckets()) {
      if (hb.prob <= 0.0) continue;
      // Geometric overlap of the state's open boxes with this bucket.
      double frac = 1.0;
      std::vector<Interval> inter(o_local.size());
      for (size_t d = 0; d < o_local.size() && frac > 0.0; ++d) {
        const Interval box = joint.Box(hb, o_local[d]);
        const Interval& state_box = group.boxes[o_group_slot[d]];
        inter[d] = state_box.Intersect(box);
        frac *= state_box.width() > 0.0
                    ? std::max(inter[d].width(), 0.0) / state_box.width()
                    : 0.0;
      }
      if (frac <= 0.0) continue;
      double weight = frac * hb.prob;
      if (!o_local.empty()) {
        SepKey sk(o_local.size());
        for (size_t d = 0; d < o_local.size(); ++d) sk[d] = hb.idx[o_local[d]];
        const double marginal = sep_mass[sk];
        if (marginal <= 0.0) continue;
        weight = frac * hb.prob / marginal;
      }

      // Shift from dimensions closing at this step + the new open boxes.
      Interval shift = stale_shift;
      std::vector<Interval> new_boxes(next_open.size());
      std::vector<bool> filled(next_open.size(), false);
      auto slot_of = [&](size_t p) -> int {
        for (size_t q = 0; q < next_open.size(); ++q) {
          if (next_open[q] == p) return static_cast<int>(q);
        }
        return -1;
      };
      for (size_t d = 0; d < o_local.size(); ++d) {
        const size_t p = s + o_local[d];
        const int slot = slot_of(p);
        if (slot >= 0) {
          new_boxes[static_cast<size_t>(slot)] = inter[d];
          filled[static_cast<size_t>(slot)] = true;
        } else {
          shift = shift + inter[d];
        }
      }
      for (size_t local = 0; local < m; ++local) {
        const size_t p = s + local;
        if (std::find(o_local.begin(), o_local.end(), local) != o_local.end()) {
          continue;  // handled above
        }
        const Interval box = joint.Box(hb, local);
        const int slot = slot_of(p);
        if (slot >= 0) {
          new_boxes[static_cast<size_t>(slot)] = box;
          filled[static_cast<size_t>(slot)] = true;
        } else {
          shift = shift + box;
        }
      }
      (void)filled;  // all next_open positions lie in this part's range

      const std::string new_key = GroupKey(new_boxes);
      Group& out = next_groups[new_key];
      if (out.positions.empty() && !next_open.empty()) {
        out.positions = next_open;
        out.boxes = new_boxes;
      }
      for (const SumEntry& se : group.sums) {
        out.sums.push_back(SumEntry{se.sum + shift, se.prob * weight});
      }
    }
  }

  size_t states = 0;
  for (auto& [key, group] : next_groups) {
    (void)key;
    CompactSums(&group, options_.sums_per_box_cap);
    states += group.sums.size();
  }
  max_states_ = std::max(max_states_, states);

  // Bound the group count: demote the lowest-mass groups into one
  // unconditioned overflow group (their open boxes fold into the sums),
  // compacting the overflow incrementally so each batch stays small.
  if (next_groups.size() > options_.max_groups && options_.max_groups > 0) {
    std::vector<std::pair<double, const std::string*>> by_mass;
    by_mass.reserve(next_groups.size());
    for (const auto& [key, group] : next_groups) {
      by_mass.emplace_back(GroupMass(group), &key);
    }
    const size_t keep = options_.max_groups - 1;
    std::nth_element(
        by_mass.begin(), by_mass.begin() + static_cast<ptrdiff_t>(keep),
        by_mass.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    Group overflow;
    for (size_t i = keep; i < by_mass.size(); ++i) {
      const std::string key_copy = *by_mass[i].second;  // outlives the erase
      Group& g = next_groups[key_copy];
      Interval shift(0.0, 0.0);
      for (const Interval& b : g.boxes) shift = shift + b;
      for (const SumEntry& se : g.sums) {
        overflow.sums.push_back(SumEntry{se.sum + shift, se.prob});
      }
      next_groups.erase(key_copy);
      if (overflow.sums.size() > 4 * options_.sums_per_box_cap) {
        CompactSums(&overflow, options_.sums_per_box_cap);
      }
    }
    if (!overflow.sums.empty()) {
      CompactSums(&overflow, options_.sums_per_box_cap);
      Group& target = next_groups[GroupKey(overflow.boxes)];
      if (target.sums.empty()) {
        target = std::move(overflow);
      } else {
        target.sums.insert(target.sums.end(), overflow.sums.begin(),
                           overflow.sums.end());
        CompactSums(&target, options_.sums_per_box_cap);
      }
    }
  }

  groups_ = std::move(next_groups);
}

double ReferenceChainSweeper::MassRemaining() const {
  double m = 0.0;
  for (const auto& [key, group] : groups_) {
    (void)key;
    m += GroupMass(group);
  }
  return m;
}

double ReferenceChainSweeper::MinSum() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [key, group] : groups_) {
    (void)key;
    double open_min = 0.0;
    for (const Interval& b : group.boxes) open_min += b.lo;
    for (const SumEntry& se : group.sums) {
      if (se.prob > 0.0) best = std::min(best, se.sum.lo + open_min);
    }
  }
  return best;
}

StatusOr<Histogram1D> ReferenceChainSweeper::Finalize() const {
  std::vector<WeightedInterval> parts_out;
  double total = 0.0;
  for (const auto& [key, group] : groups_) {
    (void)key;
    Interval open_shift(0.0, 0.0);
    for (const Interval& b : group.boxes) open_shift = open_shift + b;
    for (const SumEntry& se : group.sums) {
      if (se.prob <= 0.0) continue;
      parts_out.emplace_back((se.sum + open_shift).Inflated(), se.prob);
      total += se.prob;
    }
  }
  if (total < options_.min_total_mass) {
    return Status::FailedPrecondition(
        "ReferenceChainSweeper: probability mass destroyed by separator "
        "mismatch");
  }
  PCDE_ASSIGN_OR_RETURN(flat,
                        ReferenceFlattenToDisjoint(std::move(parts_out)));
  return ReferenceCompact(flat, options_.max_result_buckets);
}

StatusOr<Histogram1D> ReferenceEstimateFromDecomposition(
    const Decomposition& de, const ChainOptions& options,
    ChainDiagnostics* diagnostics, PhaseTimer* jc_timer,
    PhaseTimer* mc_timer) {
  if (de.empty()) {
    return Status::InvalidArgument(
        "ReferenceEstimateFromDecomposition: empty DE");
  }
  ChainDiagnostics diag;
  diag.variables_used = de.size();

  for (int attempt = 0; attempt < 2; ++attempt) {
    ChainOptions opts = options;
    opts.force_independence = options.force_independence || attempt == 1;
    diag.independence_fallback = attempt == 1;

    if (jc_timer != nullptr) jc_timer->Start();
    ReferenceChainSweeper sweeper(opts);
    for (size_t i = 0; i < de.size(); ++i) {
      const size_t next_start =
          i + 1 < de.size() ? de[i + 1].start : de[i].end();
      sweeper.ApplyPart(de[i], next_start);
    }
    if (jc_timer != nullptr) jc_timer->Stop();

    ScopedPhase mc_phase(mc_timer);
    auto result = sweeper.Finalize();
    diag.max_states = std::max(diag.max_states, sweeper.max_states());
    if (result.ok()) {
      if (diagnostics != nullptr) *diagnostics = diag;
      return result;
    }
    if (result.status().code() != StatusCode::kFailedPrecondition) {
      return result.status();
    }
    // else: mass destroyed; retry with independence.
  }
  return Status::Internal(
      "ReferenceEstimateFromDecomposition: zero mass even under independence");
}

}  // namespace reference
}  // namespace core
}  // namespace pcde
