#include "core/chain_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <map>

#include "common/mathutil.h"
#include "common/simd.h"
#include "hist/cut_binning.h"
#include "hist/histogram_nd.h"


namespace pcde {
namespace core {

using hist::Histogram1D;
using hist::HistogramND;
using hist::WeightedInterval;

namespace {

/// Dense separator marginals beyond this many cells fall back to an exact
/// ordered map (unreachable through the production pipeline, where rank is
/// capped at HybridParams::max_instantiated_rank).
constexpr uint64_t kMaxDenseSeparatorCells = uint64_t{1} << 22;

/// Budget on sum-entry capacity retained by a thread's recycled sums
/// buffers (~6 MB); beyond it, harvested buffers are freed instead.
constexpr size_t kMaxPooledSumEntries = size_t{1} << 18;

}  // namespace

size_t ChainSweeper::BoxKeyHash::operator()(const BoxKey& k) const {
  uint64_t h = Mix64(k.n);
  for (uint32_t i = 0; i < k.n; ++i) h = Mix64(h ^ k.ids[i]);
  return static_cast<size_t>(h);
}

size_t ChainSweeper::IntervalPool::BitsHash::operator()(const Bits& b) const {
  return static_cast<size_t>(Mix64(b.lo ^ Mix64(b.hi)));
}

ChainSweeper::BoxId ChainSweeper::IntervalPool::Intern(const Interval& iv) {
  const Bits bits{CanonicalDoubleBits(iv.lo), CanonicalDoubleBits(iv.hi)};
  const auto [it, inserted] =
      index_.emplace(bits, static_cast<BoxId>(intervals_.size()));
  if (inserted) intervals_.push_back(iv);
  return it->second;
}

void ChainSweeper::IntervalPool::Clear() {
  intervals_.clear();
  index_.clear();
}

ChainSweeper::Scratch& ChainSweeper::LocalScratch() {
  static thread_local Scratch scratch;
  return scratch;
}

void ChainSweeper::SumsSoA::Append(const SumsSoA& src) {
  lo.insert(lo.end(), src.lo.begin(), src.lo.end());
  hi.insert(hi.end(), src.hi.begin(), src.hi.end());
  prob.insert(prob.end(), src.prob.begin(), src.prob.end());
}

void ChainSweeper::SumsSoA::AppendShiftScale(const SumsSoA& src, double dlo,
                                             double dhi, double w) {
  const size_t m = size();
  const size_t n = src.size();
  if (n == 0) return;
  const size_t needed = m + n;
  if (needed > capacity()) {
    // Geometric growth: a group receives one append per matching
    // transition, and exact-fit reallocation per append is quadratic.
    const size_t grown = std::max(needed, 2 * capacity());
    lo.reserve(grown);
    hi.reserve(grown);
    prob.reserve(grown);
  }
  lo.resize(needed);
  hi.resize(needed);
  prob.resize(needed);
  simd::ShiftScaleTo(src.lo.data(), src.hi.data(), src.prob.data(), n, dlo,
                     dhi, w, lo.data() + m, hi.data() + m, prob.data() + m);
}

double ChainSweeper::GroupMass(const Group& g) {
  // Left-to-right scalar sum: this value feeds compaction and demotion
  // decisions, so its summation order must stay fixed across backends.
  double m = 0.0;
  for (double p : g.sums.prob) m += p;
  return m;
}

// The hist:: bucket-machinery tolerances, mirrored here because CompactSums
// reproduces the FlattenToDisjoint -> Make -> Compact -> Make pipeline
// arithmetic step for step (same passes, same order) on thread-local
// scratch, so the progressive compaction allocates nothing in steady state.
constexpr double kFlattenMinWidth = 1e-12;  // hist kMinWidth
constexpr double kMassTolerance = 1e-6;     // hist kMassTolerance

void ChainSweeper::CompactSums(SumsSoA* sums, size_t cap) {
  const size_t n = sums->size();
  if (n <= cap) return;
  const double* const probs = sums->prob.data();
  double mass = 0.0;
  for (size_t i = 0; i < n; ++i) mass += probs[i];
  if (mass <= 0.0) {
    sums->clear();
    return;
  }
  Scratch& sc = LocalScratch();

  // Flatten, lane-wise over the SoA state: inflate degenerate intervals
  // (Interval::Inflated's epsilon), take widths and densities as straight
  // SIMD kernels, and reject any input the hist pipeline would reject
  // (stays uncompacted, as before). The rejected-entry scan reproduces the
  // original early returns: no state is modified before the first check
  // fails, so checking all entries up front is equivalent.
  sc.cs_ilo.resize(n);
  sc.cs_ihi.resize(n);
  sc.cs_width.resize(n);
  sc.cs_dens.resize(n);
  simd::InflateTo(sums->lo.data(), sums->hi.data(), n,
                  Interval::kDefaultInflateEps, sc.cs_ilo.data(),
                  sc.cs_ihi.data());
  simd::SubTo(sc.cs_ihi.data(), sc.cs_ilo.data(), n, sc.cs_width.data());
  for (size_t i = 0; i < n; ++i) {
    if (probs[i] < 0.0) return;
    if (sc.cs_width[i] < kFlattenMinWidth && probs[i] > 0.0) return;
  }
  // The pipeline's input mass (summed in the same entry order as `mass`,
  // so the two are bitwise equal — kept under one name).
  const double total_mass = mass;
  simd::DivTo(probs, sc.cs_width.data(), n, sc.cs_dens.data());

  // Breakpoints: both lanes back to back (pre-sort order is irrelevant,
  // and origin o < n is entry o's lower bound, origin n + o its upper),
  // ordered by the sort-free monotone bucket grid shared with
  // hist::FlattenToDisjoint. The tracked origins let the dedup pass below
  // also record every entry's flatten slice directly.
  std::vector<double>& cuts = sc.cs_cuts;
  cuts.resize(2 * n);
  std::copy(sc.cs_ilo.begin(), sc.cs_ilo.end(), cuts.begin());
  std::copy(sc.cs_ihi.begin(), sc.cs_ihi.end(),
            cuts.begin() + static_cast<ptrdiff_t>(n));
  hist::SortCutsMonotoneTracked(&cuts, &sc.cs_cut_order, &sc.cs_cut_bins);

  // Fused std::unique-with-tolerance + origin -> cut-index map: walking the
  // sorted cuts, each value either starts a new kept cut or joins the run
  // of the previously kept one — exactly std::unique's predicate order.
  sc.cs_slice_of.resize(2 * n);
  size_t n_cuts = 0;
  for (size_t j = 0; j < 2 * n; ++j) {
    const double v = cuts[j];
    if (n_cuts == 0 || !(std::fabs(v - cuts[n_cuts - 1]) < kFlattenMinWidth)) {
      cuts[n_cuts++] = v;
    }
    sc.cs_slice_of[sc.cs_cut_order[j]] = static_cast<uint32_t>(n_cuts - 1);
  }
  cuts.resize(n_cuts);

  // Per-slice density by difference array; the cover counter keeps
  // uncovered slices at exactly zero (no cancellation residue). The slice
  // of each bound comes from the dedup map above; the representative cut
  // of a tolerance run can differ from lower_bound(bound - tolerance) only
  // when another cut lands exactly on that offset, so the map is verified
  // with two comparisons and falls back to the binary search on the
  // (measure-zero) mismatch — byte-identical slices, no search in the
  // common path.
  const size_t n_slices = cuts.size() - 1;
  sc.cs_diff.assign(n_slices + 1, 0.0);
  sc.cs_cover.assign(n_slices + 1, 0);
  auto slice_for = [&cuts](size_t hint, double key) {
    if (cuts[hint] >= key && (hint == 0 || cuts[hint - 1] < key)) return hint;
    return static_cast<size_t>(
        std::lower_bound(cuts.begin(), cuts.end(), key) - cuts.begin());
  };
  for (size_t i = 0; i < n; ++i) {
    if (probs[i] <= 0.0) continue;
    const double d = sc.cs_dens[i];
    const size_t s =
        slice_for(sc.cs_slice_of[i], sc.cs_ilo[i] - kFlattenMinWidth);
    const size_t s_end = std::min(
        n_slices,
        slice_for(sc.cs_slice_of[n + i], sc.cs_ihi[i] - kFlattenMinWidth));
    if (s >= s_end) continue;
    sc.cs_diff[s] += d;
    sc.cs_diff[s_end] -= d;
    ++sc.cs_cover[s];
    --sc.cs_cover[s_end];
  }

  // Emit positive-mass slices, merging equal-density neighbours.
  sc.cs_flat.clear();
  double running = 0.0;
  int32_t covering = 0;
  for (size_t s = 0; s < n_slices; ++s) {
    covering += sc.cs_cover[s];
    running += sc.cs_diff[s];
    if (covering == 0) running = 0.0;
    const double width = cuts[s + 1] - cuts[s];
    const double slice_mass = running * width;
    if (slice_mass <= 0.0) continue;
    const bool contiguous =
        !sc.cs_flat.empty() &&
        std::fabs(sc.cs_flat.back().range.hi - cuts[s]) < kFlattenMinWidth;
    if (contiguous) {
      hist::Bucket& prev = sc.cs_flat.back();
      const double prev_density = prev.prob / prev.range.width();
      if (std::fabs(prev_density - running) <=
          1e-9 * std::max(prev_density, running)) {
        prev.range.hi = cuts[s + 1];
        prev.prob += slice_mass;
        continue;
      }
    }
    sc.cs_flat.emplace_back(cuts[s], cuts[s + 1], slice_mass);
  }

  // The pipeline's two normalization passes: flatten divides by the input
  // mass, then histogram construction renormalizes the float drift away.
  for (hist::Bucket& f : sc.cs_flat) f.prob /= total_mass;
  double flat_total = 0.0;
  for (const hist::Bucket& f : sc.cs_flat) flat_total += f.prob;
  if (std::fabs(flat_total - 1.0) > kMassTolerance) return;
  for (hist::Bucket& f : sc.cs_flat) f.prob /= flat_total;

  // Compact to the cap: the shared greedy merge (hist/greedy_merge.h) —
  // hist::Compact's exact merge sequence, blocked argmin at this path's
  // typical sizes and a lazy pair heap beyond the dispatch threshold, on
  // thread-local scratch so nothing allocates in steady state.
  if (sc.cs_flat.size() > cap && cap > 0) {
    hist::GreedyMergeToCap(&sc.cs_flat, cap, &sc.cs_merge);
    // Post-merge renormalization (hist::Compact's final construction).
    double merged_total = 0.0;
    for (const hist::Bucket& f : sc.cs_flat) merged_total += f.prob;
    if (merged_total > 0.0) {
      for (hist::Bucket& f : sc.cs_flat) f.prob /= merged_total;
    }
  }

  sums->clear();
  for (const hist::Bucket& f : sc.cs_flat) {
    sums->PushBack(f.range, f.prob * mass);
  }
}

void ChainSweeper::CloseGroup(Group* g) {
  Interval shift(0.0, 0.0);
  for (uint32_t j = 0; j < g->key.n; ++j) {
    shift = shift + pool_.Get(g->key.ids[j]);
  }
  if (shift.lo != 0.0 || shift.hi != 0.0) {
    simd::ShiftInPlace(g->sums.lo.data(), g->sums.hi.data(), g->sums.size(),
                       shift.lo, shift.hi);
  }
  g->key = BoxKey{};
}

void ChainSweeper::MaybeCompactPool() {
  size_t in_use = 0;
  for (const Group& g : groups_) in_use += g.key.n;
  if (pool_.size() <= std::max<size_t>(1024, 4 * in_use)) return;
  IntervalPool fresh;
  for (Group& g : groups_) {
    for (uint32_t j = 0; j < g.key.n; ++j) {
      g.key.ids[j] = fresh.Intern(pool_.Get(g.key.ids[j]));
    }
  }
  pool_ = std::move(fresh);
}

ChainSweeper::ChainSweeper(const ChainOptions& options) : options_(options) {
  Group init;
  init.sums.PushBack(Interval(0.0, 0.0), 1.0);
  groups_.push_back(std::move(init));
}

void ChainSweeper::ApplyPart(const DecompositionPart& part,
                             size_t next_overlap_start) {
  const HistogramND& joint = part.variable->joint;
  const auto& buckets = joint.buckets();
  const size_t s = part.start;
  const size_t m = part.rank();
  const size_t e = part.end();

  // Open suffix after this part: the contiguous positions [next_begin, e).
  // Position -> slot is therefore arithmetic, not a search.
  size_t next_begin = std::min(std::max(next_overlap_start, s), e);
  // Positions before open_begin_ were already closed into the running sums
  // by an earlier part (the open-dim cap folds excess separator positions
  // early). Re-adding this part's boxes for them would double-count those
  // costs, so the local dims [0, n_marg) are marginalized out instead —
  // transitions differing only there share key and shift, so their
  // probabilities merge into exactly the marginal — and such a position
  // cannot re-open. Under force_independence every part is an independent
  // factor by definition (the LB semantics), so nothing is marginalized.
  const size_t consumed = options_.force_independence
                              ? s
                              : std::min(std::max(open_begin_, s), e);
  next_begin = std::max(next_begin, consumed);
  if (e - next_begin > kMaxOpenDims) next_begin = e - kMaxOpenDims;
  const size_t n_next = e - next_begin;
  const size_t n_marg = consumed - s;

  // Current open positions [open_begin_, open_begin_ + cur_n), shared by
  // every keyed group (key.n is either cur_n or 0 for the overflow /
  // initial group).
  size_t cur_n = 0;
  bool any_unkeyed = false;
  for (const Group& g : groups_) {
    cur_n = std::max<size_t>(cur_n, g.key.n);
    any_unkeyed |= g.key.n == 0;
  }

  // O dims: local dims of this part conditioned by the open boxes — the
  // overlap of [open_begin_, open_begin_ + cur_n) with [s, e), a contiguous
  // subrange on both sides.
  size_t o_pos_lo = std::max(s, open_begin_);
  size_t o_pos_hi = std::min(e, open_begin_ + cur_n);
  if (options_.force_independence || o_pos_hi < o_pos_lo) o_pos_hi = o_pos_lo;
  const size_t n_o = o_pos_hi - o_pos_lo;
  const size_t o_slot0 = o_pos_lo - open_begin_;  // first conditioned slot
  const size_t o_local0 = o_pos_lo - s;           // first conditioned dim

  // Per-bucket, per-part tables over the positive-mass buckets.
  Scratch& sc = LocalScratch();
  sc.live.clear();
  for (uint32_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].prob > 0.0) sc.live.push_back(b);
  }
  const size_t n_live = sc.live.size();

  // Next-open slots fed by non-O dims (O slots are filled per transition
  // from the intersection): slot q holds local dim next_begin - s + q.
  // An O dim is next-open iff its position falls in [next_begin, e).
  auto local_of_slot = [&](size_t q) { return next_begin - s + q; };
  auto is_o_local = [&](size_t local) {
    return local >= o_local0 && local < o_local0 + n_o;
  };
  size_t n_non_o_open = 0;
  for (size_t q = 0; q < n_next; ++q) {
    if (!is_o_local(local_of_slot(q))) ++n_non_o_open;
  }

  // Dense separator marginal over the O dims, from this part's own
  // histogram — this makes each factor a proper conditional distribution.
  sc.cond_w.assign(n_live, 0.0);
  if (n_o > 0) {
    sc.sep_stride.assign(n_o, 1);
    uint64_t sep_cells = 1;
    bool dense = true;
    for (size_t d = 0; d < n_o; ++d) {
      sc.sep_stride[d] = sep_cells;
      const uint64_t dim_buckets = joint.NumDimBuckets(o_local0 + d);
      if (sep_cells > kMaxDenseSeparatorCells / std::max<uint64_t>(dim_buckets, 1)) {
        dense = false;
        break;
      }
      sep_cells *= dim_buckets;
    }
    if (dense) {
      sc.sep_marginal.assign(sep_cells, 0.0);
      for (const HistogramND::BucketRef hb : buckets) {
        uint64_t flat = 0;
        for (size_t d = 0; d < n_o; ++d) {
          flat += hb.idx[o_local0 + d] * sc.sep_stride[d];
        }
        sc.sep_marginal[flat] += hb.prob;
      }
      for (size_t i = 0; i < n_live; ++i) {
        const HistogramND::BucketRef hb = buckets[sc.live[i]];
        uint64_t flat = 0;
        for (size_t d = 0; d < n_o; ++d) {
          flat += hb.idx[o_local0 + d] * sc.sep_stride[d];
        }
        const double marginal = sc.sep_marginal[flat];
        sc.cond_w[i] = marginal > 0.0 ? hb.prob / marginal : 0.0;
      }
    } else {
      // Exact fallback for separators too wide to materialize densely.
      std::map<std::vector<uint32_t>, double> sep_mass;
      std::vector<uint32_t> sk(n_o);
      for (const HistogramND::BucketRef hb : buckets) {
        for (size_t d = 0; d < n_o; ++d) sk[d] = hb.idx[o_local0 + d];
        sep_mass[sk] += hb.prob;
      }
      for (size_t i = 0; i < n_live; ++i) {
        const HistogramND::BucketRef hb = buckets[sc.live[i]];
        for (size_t d = 0; d < n_o; ++d) sk[d] = hb.idx[o_local0 + d];
        const double marginal = sep_mass[sk];
        sc.cond_w[i] = marginal > 0.0 ? hb.prob / marginal : 0.0;
      }
    }
  } else {
    for (size_t i = 0; i < n_live; ++i) sc.cond_w[i] = buckets[sc.live[i]].prob;
  }

  // O-dim boxes per live bucket (intersected per transition), the interval
  // sum of the non-O dims that close here, and the interned boxes of the
  // non-O dims that open.
  sc.o_box.assign(n_live * n_o, Interval());
  sc.close_shift.assign(n_live, Interval(0.0, 0.0));
  sc.open_ids.assign(n_live * n_non_o_open, 0);
  // Raw interned O-dim boxes, used by unkeyed (unconditioned) groups whose
  // transitions open O dims without intersecting them.
  const bool need_raw_o = any_unkeyed && n_o > 0;
  sc.raw_o_ids.assign(need_raw_o ? n_live * n_o : 0, 0);
  std::vector<BoxId>& raw_o_ids = sc.raw_o_ids;
  for (size_t i = 0; i < n_live; ++i) {
    const HistogramND::BucketRef hb = buckets[sc.live[i]];
    size_t open_out = i * n_non_o_open;
    for (size_t local = 0; local < m; ++local) {
      if (local < n_marg) continue;  // already-counted position: marginalize
      const Interval box = joint.Box(hb, local);
      if (is_o_local(local)) {
        sc.o_box[i * n_o + (local - o_local0)] = box;
        if (need_raw_o) {
          raw_o_ids[i * n_o + (local - o_local0)] = pool_.Intern(box);
        }
      } else if (local >= next_begin - s) {
        sc.open_ids[open_out++] = pool_.Intern(box);
      } else {
        sc.close_shift[i] = sc.close_shift[i] + box;
      }
    }
  }

  // The sweep: every (group, bucket) pair produces one transition; states
  // landing on the same open-box tuple merge. Transient groups recycle
  // their sums buffers through sums_pool — a part can materialize
  // thousands of groups, and a fresh allocation per group dominates the
  // rebuild otherwise.
  for (Group& g : sc.next_groups) {
    if (g.sums.capacity() > 0 &&
        sc.sums_pool_entries + g.sums.capacity() <= kMaxPooledSumEntries) {
      sc.sums_pool_entries += g.sums.capacity();
      g.sums.clear();
      sc.sums_pool.push_back(std::move(g.sums));
    }
  }
  sc.next_groups.clear();
  // Flat open-addressing transition index: linear probing over a bare u32
  // lane, keys living in next_groups itself. Sized so the load factor
  // stays under 1/2 (doubling reinserts every surviving key); the seed
  // size tracks the incoming group count, the sweep's best predictor of
  // the outgoing one.
  constexpr uint32_t kEmptyGroup = UINT32_MAX;
  size_t n_slots = 64;
  while (n_slots < 4 * (groups_.size() + 1)) n_slots <<= 1;
  sc.group_slots.assign(n_slots, kEmptyGroup);
  size_t slot_mask = n_slots - 1;
  auto group_for = [&](const BoxKey& key) -> Group& {
    size_t slot = BoxKeyHash()(key) & slot_mask;
    while (sc.group_slots[slot] != kEmptyGroup) {
      Group& g = sc.next_groups[sc.group_slots[slot]];
      if (g.key == key) return g;
      slot = (slot + 1) & slot_mask;
    }
    if (2 * (sc.next_groups.size() + 1) > n_slots) {
      n_slots <<= 1;
      slot_mask = n_slots - 1;
      sc.group_slots.assign(n_slots, kEmptyGroup);
      for (uint32_t gi = 0; gi < sc.next_groups.size(); ++gi) {
        size_t re = BoxKeyHash()(sc.next_groups[gi].key) & slot_mask;
        while (sc.group_slots[re] != kEmptyGroup) re = (re + 1) & slot_mask;
        sc.group_slots[re] = gi;
      }
      slot = BoxKeyHash()(key) & slot_mask;
      while (sc.group_slots[slot] != kEmptyGroup) slot = (slot + 1) & slot_mask;
    }
    sc.group_slots[slot] = static_cast<uint32_t>(sc.next_groups.size());
    sc.next_groups.emplace_back();
    Group& fresh = sc.next_groups.back();
    fresh.key = key;
    if (!sc.sums_pool.empty()) {
      fresh.sums = std::move(sc.sums_pool.back());
      sc.sums_pool.pop_back();
      sc.sums_pool_entries -= fresh.sums.capacity();
    }
    return fresh;
  };

  Interval inter[kMaxOpenDims];
  for (const Group& g : groups_) {
    if (GroupMass(g) <= 0.0) continue;
    const bool conditioned = g.key.n > 0 && n_o > 0;

    // Boxes of slots this part does not condition close now, unconditioned.
    Interval stale_shift(0.0, 0.0);
    for (uint32_t j = 0; j < g.key.n; ++j) {
      if (conditioned && j >= o_slot0 && j < o_slot0 + n_o) continue;
      stale_shift = stale_shift + pool_.Get(g.key.ids[j]);
    }

    for (size_t i = 0; i < n_live; ++i) {
      const HistogramND::BucketRef hb = buckets[sc.live[i]];
      double weight;
      Interval shift = stale_shift + sc.close_shift[i];
      BoxKey key;
      key.n = static_cast<uint32_t>(n_next);
      size_t open_in = i * n_non_o_open;
      for (size_t q = 0; q < n_next; ++q) {
        if (!is_o_local(local_of_slot(q))) key.ids[q] = sc.open_ids[open_in++];
      }

      if (conditioned) {
        // Geometric overlap of the state's open boxes with this bucket.
        double frac = 1.0;
        for (size_t d = 0; d < n_o; ++d) {
          const Interval& state_box = pool_.Get(g.key.ids[o_slot0 + d]);
          inter[d] = state_box.Intersect(sc.o_box[i * n_o + d]);
          frac *= state_box.width() > 0.0
                      ? std::max(inter[d].width(), 0.0) / state_box.width()
                      : 0.0;
          if (frac <= 0.0) break;
        }
        if (frac <= 0.0) continue;
        weight = frac * sc.cond_w[i];
        if (weight <= 0.0) continue;
        for (size_t d = 0; d < n_o; ++d) {
          const size_t local = o_local0 + d;
          if (local >= next_begin - s) {
            key.ids[local - (next_begin - s)] = pool_.Intern(inter[d]);
          } else {
            shift = shift + inter[d];
          }
        }
      } else {
        // Unconditioned group: every O dim is new to it — raw bucket boxes
        // open, the rest close into the running sum.
        weight = hb.prob;
        for (size_t d = 0; d < n_o; ++d) {
          const size_t local = o_local0 + d;
          if (local >= next_begin - s) {
            key.ids[local - (next_begin - s)] = raw_o_ids[i * n_o + d];
          } else {
            shift = shift + sc.o_box[i * n_o + d];
          }
        }
      }

      Group& out = group_for(key);
      out.sums.AppendShiftScale(g.sums, shift.lo, shift.hi, weight);
    }
  }

  size_t states = 0;
  for (Group& g : sc.next_groups) {
    CompactSums(&g.sums, options_.sums_per_box_cap);
    states += g.sums.size();
  }
  max_states_ = std::max(max_states_, states);

  // Bound the group count: demote the lowest-mass groups into one
  // unconditioned overflow group (their open boxes fold into the sums),
  // compacting the overflow incrementally so each batch stays small.
  for (Group& g : groups_) {
    if (g.sums.capacity() > 0 &&
        sc.sums_pool_entries + g.sums.capacity() <= kMaxPooledSumEntries) {
      sc.sums_pool_entries += g.sums.capacity();
      g.sums.clear();
      sc.sums_pool.push_back(std::move(g.sums));
    }
  }
  groups_.clear();
  open_begin_ = next_begin;
  if (sc.next_groups.size() > options_.max_groups && options_.max_groups > 0) {
    sc.by_mass.clear();
    sc.by_mass.reserve(sc.next_groups.size());
    for (uint32_t gi = 0; gi < sc.next_groups.size(); ++gi) {
      sc.by_mass.emplace_back(GroupMass(sc.next_groups[gi]), gi);
    }
    const size_t keep = options_.max_groups - 1;
    std::nth_element(
        sc.by_mass.begin(), sc.by_mass.begin() + static_cast<ptrdiff_t>(keep),
        sc.by_mass.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    Group overflow;
    for (size_t i = keep; i < sc.by_mass.size(); ++i) {
      Group& g = sc.next_groups[sc.by_mass[i].second];
      CloseGroup(&g);
      overflow.sums.Append(g.sums);
      g.sums.clear();
      if (overflow.sums.size() > 4 * options_.sums_per_box_cap) {
        CompactSums(&overflow.sums, options_.sums_per_box_cap);
      }
    }
    groups_.reserve(keep + 1);
    for (size_t i = 0; i < keep; ++i) {
      groups_.push_back(std::move(sc.next_groups[sc.by_mass[i].second]));
    }
    if (!overflow.sums.empty()) {
      CompactSums(&overflow.sums, options_.sums_per_box_cap);
      // Merge with a kept unconditioned group if one survived.
      Group* target = nullptr;
      for (Group& g : groups_) {
        if (g.key.n == 0) {
          target = &g;
          break;
        }
      }
      if (target == nullptr) {
        groups_.push_back(std::move(overflow));
      } else {
        target->sums.Append(overflow.sums);
        CompactSums(&target->sums, options_.sums_per_box_cap);
      }
    }
  } else {
    groups_.swap(sc.next_groups);
  }
  MaybeCompactPool();
}

double ChainSweeper::MassRemaining() const {
  double m = 0.0;
  for (const Group& g : groups_) m += GroupMass(g);
  return m;
}

size_t ChainSweeper::MemoryBytes() const {
  size_t bytes = sizeof(*this) + groups_.capacity() * sizeof(Group);
  for (const Group& g : groups_) {
    bytes += (g.sums.lo.capacity() + g.sums.hi.capacity() +
              g.sums.prob.capacity()) *
             sizeof(double);
  }
  // Interned intervals plus an estimate of their exact-bits index nodes.
  bytes += pool_.size() * (sizeof(Interval) + 64);
  return bytes;
}

double ChainSweeper::MinSum() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Group& g : groups_) {
    double open_min = 0.0;
    for (uint32_t j = 0; j < g.key.n; ++j) open_min += pool_.Get(g.key.ids[j]).lo;
    for (size_t i = 0; i < g.sums.size(); ++i) {
      if (g.sums.prob[i] > 0.0) {
        best = std::min(best, g.sums.lo[i] + open_min);
      }
    }
  }
  return best;
}

double ChainSweeper::CdfUpperBoundAt(double x) const {
  double below = 0.0;
  double total = 0.0;
  for (const Group& g : groups_) {
    double open_min = 0.0;
    for (uint32_t j = 0; j < g.key.n; ++j) {
      open_min += pool_.Get(g.key.ids[j]).lo;
    }
    for (size_t i = 0; i < g.sums.size(); ++i) {
      const double p = g.sums.prob[i];
      if (p <= 0.0) continue;
      total += p;
      if (g.sums.lo[i] + open_min <= x) below += p;
    }
  }
  // Destroyed mass renormalizes at Finalize and can concentrate anywhere,
  // so the surviving states stop bounding the final CDF.
  if (total < 1.0 - 1e-9) return 1.0;
  return below >= total ? 1.0 : below / total;
}

double ChainSweeper::AppendSupportPoints(
    std::vector<std::pair<double, double>>* optimistic,
    std::vector<std::pair<double, double>>* pessimistic) const {
  double total = 0.0;
  for (const Group& g : groups_) {
    double open_lo = 0.0;
    double open_hi = 0.0;
    for (uint32_t j = 0; j < g.key.n; ++j) {
      const Interval& iv = pool_.Get(g.key.ids[j]);
      open_lo += iv.lo;
      open_hi += iv.hi;
    }
    for (size_t i = 0; i < g.sums.size(); ++i) {
      const double p = g.sums.prob[i];
      if (p <= 0.0) continue;
      total += p;
      optimistic->emplace_back(g.sums.lo[i] + open_lo, p);
      pessimistic->emplace_back(g.sums.hi[i] + open_hi, p);
    }
  }
  return total;
}

StatusOr<Histogram1D> ChainSweeper::Finalize() const {
  std::vector<WeightedInterval> parts_out;
  double total = 0.0;
  for (const Group& g : groups_) {
    Interval open_shift(0.0, 0.0);
    for (uint32_t j = 0; j < g.key.n; ++j) {
      open_shift = open_shift + pool_.Get(g.key.ids[j]);
    }
    for (size_t i = 0; i < g.sums.size(); ++i) {
      const double p = g.sums.prob[i];
      if (p <= 0.0) continue;
      parts_out.emplace_back((g.sums.interval(i) + open_shift).Inflated(), p);
      total += p;
    }
  }
  if (total < options_.min_total_mass) {
    return Status::FailedPrecondition(
        "ChainSweeper: probability mass destroyed by separator mismatch");
  }
  PCDE_ASSIGN_OR_RETURN(flat, hist::FlattenToDisjoint(std::move(parts_out)));
  return hist::Compact(flat, options_.max_result_buckets);
}

StatusOr<Histogram1D> EstimateFromDecomposition(const Decomposition& de,
                                                const ChainOptions& options,
                                                ChainDiagnostics* diagnostics,
                                                PhaseTimer* jc_timer,
                                                PhaseTimer* mc_timer,
                                                const CancelToken* cancel) {
  if (de.empty()) {
    return Status::InvalidArgument("EstimateFromDecomposition: empty DE");
  }
  ChainDiagnostics diag;
  diag.variables_used = de.size();

  for (int attempt = 0; attempt < 2; ++attempt) {
    ChainOptions opts = options;
    opts.force_independence = options.force_independence || attempt == 1;
    diag.independence_fallback = attempt == 1;

    if (jc_timer != nullptr) jc_timer->Start();
    ChainSweeper sweeper(opts);
    for (size_t i = 0; i < de.size(); ++i) {
      if (CancelToken::Check(cancel)) {
        if (jc_timer != nullptr) jc_timer->Stop();
        return CancelToken::StatusOf(cancel);
      }
      const size_t next_start =
          i + 1 < de.size() ? de[i + 1].start : de[i].end();
      sweeper.ApplyPart(de[i], next_start);
    }
    if (jc_timer != nullptr) jc_timer->Stop();

    ScopedPhase mc_phase(mc_timer);
    auto result = sweeper.Finalize();
    diag.max_states = std::max(diag.max_states, sweeper.max_states());
    if (result.ok()) {
      if (diagnostics != nullptr) *diagnostics = diag;
      return result;
    }
    if (result.status().code() != StatusCode::kFailedPrecondition) {
      return result.status();
    }
    // else: mass destroyed; retry with independence.
  }
  return Status::Internal(
      "EstimateFromDecomposition: zero mass even under independence");
}

double DecompositionEntropy(const Decomposition& de) {
  double h = 0.0;
  for (size_t i = 0; i < de.size(); ++i) {
    h += de[i].variable->joint.DifferentialEntropy();
    if (i == 0) continue;
    // Separator with the previous part: positions [s_i, e_{i-1}).
    const size_t sep_begin = de[i].start;
    const size_t sep_end = std::min(de[i - 1].end(), de[i].end());
    if (sep_end <= sep_begin) continue;
    std::vector<size_t> dims;
    for (size_t p = sep_begin; p < sep_end; ++p) dims.push_back(p - de[i].start);
    auto marginal = de[i].variable->joint.MarginalOverDims(dims);
    if (marginal.ok()) h -= marginal.value().DifferentialEntropy();
  }
  return h;
}

}  // namespace core
}  // namespace pcde
