#include "core/serialization.h"

#include <fstream>
#include <sstream>

namespace pcde {
namespace core {

Status SaveWeightFunction(const PathWeightFunction& wp,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("SaveWeightFunction: cannot open " + path);
  }
  out.precision(17);
  out << "# pcde weight function v1\n";
  for (const InstantiatedVariable& v : wp.variables()) {
    out << "VAR," << v.interval << "," << v.support << ","
        << (v.from_speed_limit ? 1 : 0) << "," << v.rank();
    for (roadnet::EdgeId e : v.path) out << "," << e;
    out << "\n";
    for (size_t d = 0; d < v.joint.NumDims(); ++d) {
      out << "DIM";
      for (double b : v.joint.boundaries(d)) out << "," << b;
      out << "\n";
    }
    for (const auto& hb : v.joint.buckets()) {
      out << "HB," << hb.prob;
      for (uint32_t i : hb.idx) out << "," << i;
      out << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::Internal("SaveWeightFunction: write failed");
  return Status::OK();
}

StatusOr<PathWeightFunction> LoadWeightFunction(const std::string& path,
                                                double alpha_minutes) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("LoadWeightFunction: cannot open " + path);
  }
  PathWeightFunction wp{TimeBinning(alpha_minutes)};

  // Parser state for the variable being assembled.
  bool has_var = false;
  InstantiatedVariable var;
  size_t rank = 0;
  std::vector<std::vector<double>> boundaries;
  std::vector<hist::HistogramND::HyperBucket> buckets;

  auto flush = [&]() -> Status {
    if (!has_var) return Status::OK();
    if (boundaries.size() != rank) {
      return Status::InvalidArgument(
          "LoadWeightFunction: dimension count mismatch for variable " +
          var.path.ToString());
    }
    PCDE_ASSIGN_OR_RETURN(
        joint, hist::HistogramND::Make(std::move(boundaries),
                                       std::move(buckets)));
    var.joint = std::move(joint);
    wp.Add(std::move(var));
    var = InstantiatedVariable();
    boundaries.clear();
    buckets.clear();
    has_var = false;
    return Status::OK();
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    const std::string where = path + ":" + std::to_string(line_no);
    if (fields[0] == "VAR") {
      PCDE_RETURN_NOT_OK(flush());
      if (fields.size() < 6) {
        return Status::InvalidArgument("LoadWeightFunction: bad VAR at " +
                                       where);
      }
      var.interval = std::stoi(fields[1]);
      var.support = std::stoul(fields[2]);
      var.from_speed_limit = fields[3] == "1";
      rank = std::stoul(fields[4]);
      if (fields.size() != 5 + rank) {
        return Status::InvalidArgument("LoadWeightFunction: VAR arity at " +
                                       where);
      }
      std::vector<roadnet::EdgeId> edges;
      for (size_t i = 0; i < rank; ++i) {
        edges.push_back(
            static_cast<roadnet::EdgeId>(std::stoul(fields[5 + i])));
      }
      var.path = roadnet::Path(std::move(edges));
      has_var = true;
    } else if (fields[0] == "DIM") {
      if (!has_var) {
        return Status::InvalidArgument("LoadWeightFunction: DIM before VAR "
                                       "at " + where);
      }
      std::vector<double> bounds;
      for (size_t i = 1; i < fields.size(); ++i) {
        bounds.push_back(std::stod(fields[i]));
      }
      boundaries.push_back(std::move(bounds));
    } else if (fields[0] == "HB") {
      if (!has_var || fields.size() != 2 + rank) {
        return Status::InvalidArgument("LoadWeightFunction: bad HB at " +
                                       where);
      }
      hist::HistogramND::HyperBucket hb;
      hb.prob = std::stod(fields[1]);
      for (size_t i = 0; i < rank; ++i) {
        hb.idx.push_back(static_cast<uint32_t>(std::stoul(fields[2 + i])));
      }
      buckets.push_back(std::move(hb));
    } else {
      return Status::InvalidArgument("LoadWeightFunction: unknown record at " +
                                     where);
    }
  }
  PCDE_RETURN_NOT_OK(flush());
  return wp;
}

}  // namespace core
}  // namespace pcde
