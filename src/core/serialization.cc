#include "core/serialization.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <vector>

#include "common/fault_injection.h"
#include "core/atomic_file_writer.h"

namespace pcde {
namespace core {

namespace {

// ---------------------------------------------------------------------------
// Binary artifact (PCDEWF1): fixed little-endian header + section table;
// the payload sections are the frozen model's flat arrays verbatim.
// ---------------------------------------------------------------------------

constexpr uint64_t kMagic = 0x0031465745444350ull;  // "PCDEWF1\0"
constexpr uint32_t kFormatVersion = 1;

enum SectionKind : uint64_t {
  kSeqOff = 1,
  kSeqEdges = 2,
  kVarSeq = 3,
  kIntervals = 4,
  kSupports = 5,
  kFlags = 6,
  kVarDimOff = 7,
  kBoundOff = 8,
  kBounds = 9,
  kBucketOff = 10,
  kIdxOff = 11,
  kProbs = 12,
  kIdx = 13,
};
constexpr uint32_t kNumSections = 13;
static_assert(kNumSections == WeightFunctionSections::kNumSections,
              "artifact section count tracks the canonical section table");

struct Header {
  uint64_t magic;
  uint32_t version;
  uint32_t section_count;
  uint64_t checksum;
  double alpha_seconds;
  uint64_t num_vars;
  uint64_t num_seqs;
  uint64_t reserved0;
  uint64_t reserved1;
};
static_assert(sizeof(Header) == 64, "header layout");

struct TableEntry {
  uint64_t kind;
  uint64_t offset;  // bytes from file start; 8-aligned
  uint64_t nbytes;
};
static_assert(sizeof(TableEntry) == 24, "table entry layout");

constexpr uint64_t kTableOffset = sizeof(Header);
constexpr uint64_t kPayloadOffset =
    kTableOffset + kNumSections * sizeof(TableEntry);

uint64_t Align8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

// The artifact's on-disk section layout (kinds, element counts, widths) is
// WeightFunctionSections::SectionTable — stated once, shared with the
// checksum and the byte accounting; the kind ids above name its rows.
using SectionPlan = WeightFunctionSections::SectionView;

/// Alpha bounds every loader enforces; saving is gated on the same range
/// so an unloadable artifact fails at build time, not at server start.
bool AlphaInArtifactRange(double alpha_seconds) {
  return alpha_seconds >= 1.0 && alpha_seconds <= 86400.0 * 365.0;
}

/// Save-side mirror of the loaders' limits: a model that would be rejected
/// on load (alpha out of range, edge ids above the artifact ceiling) must
/// not save successfully.
Status ValidateSaveable(const PathWeightFunction& wp, const char* who) {
  if (!AlphaInArtifactRange(wp.binning().alpha_seconds())) {
    return Status::InvalidArgument(
        std::string(who) + ": alpha = " +
        std::to_string(wp.binning().alpha_seconds()) +
        " s is outside the artifact range [1 s, 1 year]; the saved model "
        "could never be loaded");
  }
  // Front edges only, matching the loaders: the ceiling exists to bound
  // the dense per-front-edge candidate index, which interior edges never
  // drive.
  const WeightFunctionSections& s = wp.sections();
  for (uint64_t q = 0; q < s.num_seqs; ++q) {
    const roadnet::EdgeId front = s.seq_edges[s.seq_off[q]];
    if (front >= kMaxArtifactEdgeId) {
      return Status::InvalidArgument(
          std::string(who) + ": front edge id " + std::to_string(front) +
          " exceeds the artifact ceiling (" +
          std::to_string(kMaxArtifactEdgeId) +
          "); the saved model could never be loaded");
    }
  }
  return Status::OK();
}

// Atomic, crash-durable artifact writes ride on the shared
// core::AtomicFileWriter (core/atomic_file_writer.h), which both formats
// here and the shard-manifest writer (core/shard_writer.cc) drive.

}  // namespace

Status SaveWeightFunctionBinary(const PathWeightFunction& wp,
                                const std::string& path) {
  PCDE_RETURN_NOT_OK(ValidateSaveable(wp, "SaveWeightFunctionBinary"));
  const WeightFunctionSections& s = wp.sections();
  const auto plan = s.SectionTable();

  Header header{};
  header.magic = kMagic;
  header.version = kFormatVersion;
  header.section_count = kNumSections;
  header.checksum = wp.fingerprint();
  header.alpha_seconds = wp.binning().alpha_seconds();
  header.num_vars = s.num_vars;
  header.num_seqs = s.num_seqs;

  std::vector<TableEntry> table(kNumSections);
  uint64_t offset = kPayloadOffset;
  for (size_t i = 0; i < plan.size(); ++i) {
    table[i] = TableEntry{plan[i].kind, offset, plan[i].nbytes};
    offset = Align8(offset + plan[i].nbytes);
  }

  // Atomic + crash-durable: temp sibling, fsync, rename, dirsync — a crash
  // or a full disk mid-save never destroys the previous good artifact.
  AtomicFileWriter out("SaveWeightFunctionBinary", "serialization.binary",
                       path);
  PCDE_RETURN_NOT_OK(out.Open());
  PCDE_RETURN_NOT_OK(out.Write(&header, sizeof(header)));
  PCDE_RETURN_NOT_OK(out.Write(table.data(), table.size() * sizeof(TableEntry)));
  const char pad[8] = {0};
  for (const SectionPlan& sec : plan) {
    if (sec.nbytes > 0) PCDE_RETURN_NOT_OK(out.Write(sec.data, sec.nbytes));
    const uint64_t padding = Align8(sec.nbytes) - sec.nbytes;
    if (padding > 0) PCDE_RETURN_NOT_OK(out.Write(pad, padding));
  }
  return out.Commit();
}

namespace {

/// Shared tail of both binary load paths: validates and wires the section
/// table over `base[0, file_size)` (a private read buffer or a read-only
/// mapping — `arena` keeps it alive) into a frozen PathWeightFunction.
StatusOr<PathWeightFunction> ParseBinaryArtifact(
    const uint8_t* base, uint64_t file_size,
    std::shared_ptr<const void> arena, const std::string& path) {
  auto bad = [&path](const std::string& what) {
    return Status::InvalidArgument("LoadWeightFunctionBinary: " + what +
                                   " in " + path);
  };
  Header header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kMagic) return bad("bad magic (not a PCDEWF1 artifact)");
  if (header.version != kFormatVersion) {
    return bad("unsupported format version " +
               std::to_string(header.version) + " (this build reads version " +
               std::to_string(kFormatVersion) + ")");
  }
  if (header.section_count != kNumSections) return bad("bad section count");
  // Bounded both ways: a near-zero alpha would push TimeBinning's
  // time/alpha quotients outside int32 range (undefined float-to-int
  // casts) at query time.
  if (!AlphaInArtifactRange(header.alpha_seconds)) {
    return bad("bad alpha_seconds");
  }
  // Every element is at least one byte, so any legitimate count is bounded
  // by the file size; this also keeps the size arithmetic overflow-free.
  if (header.num_vars > file_size || header.num_seqs > file_size) {
    return bad("implausible variable/sequence count");
  }
  if (kPayloadOffset > file_size) return bad("file shorter than section table");

  TableEntry table[kNumSections];
  std::memcpy(table, base + kTableOffset, sizeof(table));
  const uint8_t* sec_ptr[kNumSections + 1] = {nullptr};
  uint64_t sec_bytes[kNumSections + 1] = {0};
  for (const TableEntry& e : table) {
    if (e.kind < 1 || e.kind > kNumSections) return bad("unknown section kind");
    if (sec_ptr[e.kind] != nullptr) return bad("duplicate section");
    if (e.offset % 8 != 0 || e.offset < kPayloadOffset ||
        e.offset > file_size || e.nbytes > file_size - e.offset) {
      return bad("section out of file bounds");
    }
    sec_ptr[e.kind] = base + e.offset;
    sec_bytes[e.kind] = e.nbytes;
  }
  for (uint64_t kind = 1; kind <= kNumSections; ++kind) {
    if (sec_ptr[kind] == nullptr) return bad("missing section");
  }

  // Wire the sections, validating each size against the counts implied by
  // the previously validated sections (progressively: counts for the
  // data-dependent sections come out of the offset arrays themselves).
  WeightFunctionSections s;
  s.num_vars = header.num_vars;
  s.num_seqs = header.num_seqs;
  auto take = [&](uint64_t kind, uint64_t want_bytes,
                  const uint8_t** out) -> bool {
    if (sec_bytes[kind] != want_bytes) return false;
    *out = sec_ptr[kind];
    return true;
  };
  const uint8_t* p = nullptr;
  if (!take(kSeqOff, (s.num_seqs + 1) * 8, &p)) return bad("seq_off size");
  s.seq_off = reinterpret_cast<const uint64_t*>(p);
  if (s.TotalEdges() > file_size) return bad("implausible edge count");
  if (!take(kSeqEdges, s.TotalEdges() * sizeof(roadnet::EdgeId), &p)) {
    return bad("seq_edges size");
  }
  s.seq_edges = reinterpret_cast<const roadnet::EdgeId*>(p);
  if (!take(kVarSeq, s.num_vars * 4, &p)) return bad("var_seq size");
  s.var_seq = reinterpret_cast<const uint32_t*>(p);
  if (!take(kIntervals, s.num_vars * 4, &p)) return bad("intervals size");
  s.intervals = reinterpret_cast<const int32_t*>(p);
  if (!take(kSupports, s.num_vars * 8, &p)) return bad("supports size");
  s.supports = reinterpret_cast<const uint64_t*>(p);
  if (!take(kFlags, s.num_vars, &p)) return bad("flags size");
  s.flags = p;
  if (!take(kVarDimOff, (s.num_vars + 1) * 8, &p)) return bad("var_dim_off size");
  s.var_dim_off = reinterpret_cast<const uint64_t*>(p);
  if (s.TotalDims() > file_size) return bad("implausible dimension count");
  if (!take(kBoundOff, (s.TotalDims() + 1) * 8, &p)) return bad("bound_off size");
  s.bound_off = reinterpret_cast<const uint64_t*>(p);
  if (s.TotalBounds() > file_size) return bad("implausible boundary count");
  if (!take(kBounds, s.TotalBounds() * 8, &p)) return bad("bounds size");
  s.bounds = reinterpret_cast<const double*>(p);
  if (!take(kBucketOff, (s.num_vars + 1) * 8, &p)) return bad("bucket_off size");
  s.bucket_off = reinterpret_cast<const uint64_t*>(p);
  if (!take(kIdxOff, (s.num_vars + 1) * 8, &p)) return bad("idx_off size");
  s.idx_off = reinterpret_cast<const uint64_t*>(p);
  if (s.TotalBuckets() > file_size) return bad("implausible bucket count");
  if (!take(kProbs, s.TotalBuckets() * 8, &p)) return bad("probs size");
  s.probs = reinterpret_cast<const double*>(p);
  if (s.TotalIdx() > file_size) return bad("implausible index count");
  if (!take(kIdx, s.TotalIdx() * 4, &p)) return bad("idx size");
  s.idx = reinterpret_cast<const uint32_t*>(p);

  const uint64_t checksum =
      PathWeightFunction::SectionChecksum(header.alpha_seconds, s);
  if (checksum != header.checksum) {
    return bad("payload checksum mismatch (corrupt artifact)");
  }

  const TimeBinning binning(header.alpha_seconds / 60.0);
  return PathWeightFunction::FromSections(binning, std::move(arena), s,
                                          kMaxArtifactEdgeId, &checksum);
}

/// The mmap load path: maps the artifact read-only and parses in place, so
/// every server process on the host shares one resident copy of the model
/// (the arena is position-independent; only the pointer fixup runs per
/// process). Returns NotFound/InvalidArgument like the buffered path; any
/// mapping failure surfaces as a Status the caller falls back on.
StatusOr<PathWeightFunction> LoadWeightFunctionBinaryMmap(
    const std::string& path) {
  const int fd = PCDE_FAULT_POINT("serialization.mmap.open")
                     ? -1
                     : ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("LoadWeightFunctionBinary: cannot open " + path);
  }
  struct stat st;
  if (PCDE_FAULT_POINT("serialization.mmap.stat") || ::fstat(fd, &st) != 0 ||
      st.st_size < 0) {
    ::close(fd);
    return Status::Internal("LoadWeightFunctionBinary: cannot stat " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  // Reject the degenerate file before ::mmap sees it: mapping zero bytes
  // fails with a bare EINVAL that reads like a kernel problem, when the
  // actual story is "your artifact is empty".
  if (file_size == 0) {
    ::close(fd);
    return Status::InvalidArgument(
        "LoadWeightFunctionBinary: empty (zero-length) artifact " + path);
  }
  if (file_size < sizeof(Header)) {
    ::close(fd);
    return Status::InvalidArgument(
        "LoadWeightFunctionBinary: file shorter than the header in " + path);
  }
  // PROT_READ + MAP_SHARED: the mapping is backed directly by the page
  // cache, so co-resident processes mapping the same artifact share the
  // physical pages. mmap is page-aligned, which satisfies the sections'
  // 8-byte alignment; bytes past EOF in the final page read as zero, the
  // same determinism the buffered path gets by zeroing its padding word.
  void* mapped = PCDE_FAULT_POINT("serialization.mmap.map")
                     ? MAP_FAILED
                     : ::mmap(nullptr, static_cast<size_t>(file_size),
                              PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (mapped == MAP_FAILED) {
    return Status::Internal("LoadWeightFunctionBinary: mmap failed for " +
                            path);
  }
  std::shared_ptr<const void> arena(
      mapped, [len = static_cast<size_t>(file_size)](const void* p) {
        ::munmap(const_cast<void*>(p), len);
      });
  return ParseBinaryArtifact(static_cast<const uint8_t*>(mapped), file_size,
                             std::move(arena), path);
}

}  // namespace

StatusOr<PathWeightFunction> LoadWeightFunctionBinary(const std::string& path,
                                                      bool use_mmap) {
  if (use_mmap) {
    auto mapped = LoadWeightFunctionBinaryMmap(path);
    // Fall back to the buffered read only when the *mapping* failed;
    // artifact-content errors are final either way.
    if (mapped.ok() || mapped.status().code() != StatusCode::kInternal) {
      return mapped;
    }
  }
  auto bad = [&path](const std::string& what) {
    return Status::InvalidArgument("LoadWeightFunctionBinary: " + what +
                                   " in " + path);
  };
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (PCDE_FAULT_POINT("serialization.load.open") || !in.is_open()) {
    return Status::NotFound("LoadWeightFunctionBinary: cannot open " + path);
  }
  const std::streamoff signed_size = in.tellg();
  if (signed_size < static_cast<std::streamoff>(sizeof(Header))) {
    return bad("file shorter than the header");
  }
  const uint64_t file_size = static_cast<uint64_t>(signed_size);
  in.seekg(0);
  // One read into one 8-byte-aligned buffer; this buffer IS the model
  // arena — the frozen arrays below are pointers into it. Allocated
  // uninitialized (a vector would memset the whole file size first) with
  // only the final padding word zeroed for determinism.
  const size_t words = static_cast<size_t>((file_size + 7) / 8);
  std::shared_ptr<uint64_t[]> buffer(new (std::nothrow) uint64_t[words]);
  if (buffer == nullptr) {
    // A (possibly sparse) multi-GB non-artifact must surface as a Status,
    // not an uncaught bad_alloc at server start.
    return bad("artifact too large to load (" + std::to_string(file_size) +
               " bytes)");
  }
  buffer[words - 1] = 0;
  in.read(reinterpret_cast<char*>(buffer.get()),
          static_cast<std::streamsize>(file_size));
  if (PCDE_FAULT_POINT("serialization.load.read") || !in.good()) {
    return Status::Internal("LoadWeightFunctionBinary: read failed for " +
                            path);
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(buffer.get());
  return ParseBinaryArtifact(base, file_size,
                             std::shared_ptr<const void>(buffer, buffer.get()),
                             path);
}

StatusOr<PathWeightFunction> LoadWeightFunctionBinary(const std::string& path) {
  return LoadWeightFunctionBinary(path, /*use_mmap=*/false);
}

StatusOr<uint64_t> PeekBinaryArtifactFingerprint(const std::string& path) {
  auto bad = [&path](const std::string& what) {
    return Status::InvalidArgument("PeekBinaryArtifactFingerprint: " + what +
                                   " in " + path);
  };
  std::ifstream in(path, std::ios::binary);
  if (PCDE_FAULT_POINT("serialization.peek.open") || !in.is_open()) {
    return Status::NotFound("PeekBinaryArtifactFingerprint: cannot open " +
                            path);
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (PCDE_FAULT_POINT("serialization.peek.read") || !in.good()) {
    return bad("file shorter than the header");
  }
  // The same header gates the full loader applies; the checksum itself is
  // only a claim about the payload — a swap that trusts it still runs the
  // full load + validation before publishing anything.
  if (header.magic != kMagic) return bad("bad magic (not a PCDEWF1 artifact)");
  if (header.version != kFormatVersion) {
    return bad("unsupported format version " + std::to_string(header.version) +
               " (this build reads version " + std::to_string(kFormatVersion) +
               ")");
  }
  if (header.section_count != kNumSections) return bad("bad section count");
  if (!AlphaInArtifactRange(header.alpha_seconds)) {
    return bad("bad alpha_seconds");
  }
  return header.checksum;
}

// ---------------------------------------------------------------------------
// Text artifact (v2): BINNING record + VAR/DIM/HB record groups.
// ---------------------------------------------------------------------------

Status SaveWeightFunction(const PathWeightFunction& wp,
                          const std::string& path) {
  PCDE_RETURN_NOT_OK(ValidateSaveable(wp, "SaveWeightFunction"));
  // Format the whole record stream in memory (text artifacts are small
  // relative to the model they describe), then run the same atomic +
  // crash-durable temp/fsync/rename/dirsync dance as the binary save.
  std::ostringstream out;
  out.precision(17);
  out << "# pcde weight function v2\n";
  out << "BINNING," << wp.binning().alpha_seconds() / 60.0 << "\n";
  for (const InstantiatedVariable& v : wp.variables()) {
    out << "VAR," << v.interval << "," << v.support << ","
        << (v.from_speed_limit ? 1 : 0) << "," << v.rank();
    for (roadnet::EdgeId e : v.path) out << "," << e;
    out << "\n";
    for (size_t d = 0; d < v.joint.NumDims(); ++d) {
      out << "DIM";
      for (double b : v.joint.boundaries(d)) out << "," << b;
      out << "\n";
    }
    const size_t dims = v.joint.NumDims();
    for (const hist::HistogramND::BucketRef hb : v.joint.buckets()) {
      out << "HB," << hb.prob;
      for (size_t d = 0; d < dims; ++d) out << "," << hb.idx[d];
      out << "\n";
    }
  }
  const std::string text = out.str();
  AtomicFileWriter writer("SaveWeightFunction", "serialization.text", path);
  PCDE_RETURN_NOT_OK(writer.Open());
  PCDE_RETURN_NOT_OK(writer.Write(text.data(), text.size()));
  return writer.Commit();
}

namespace {

// Exception-free numeric field parsers: corrupt artifacts must produce a
// Status, never a throw/crash (std::stoul and friends throw).
bool ParseDoubleField(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  // No non-finite fields: 'nan' would slip through every downstream
  // comparison-based validation (NaN makes both < and > false) and load
  // as NaN bucket mass.
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseU64Field(const std::string& s, uint64_t* out) {
  // First char must be a digit: strtoull itself skips whitespace and wraps
  // negative inputs (" -5" -> 2^64-5) instead of rejecting them.
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseI32Field(const std::string& s, int32_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || v < INT32_MIN ||
      v > INT32_MAX) {
    return false;
  }
  *out = static_cast<int32_t>(v);
  return true;
}

/// Shared text parser. `require_binning` rejects v1 files (no BINNING
/// record); otherwise `fallback_alpha_minutes` supplies the binning, and a
/// BINNING record that disagrees with it is an error.
StatusOr<PathWeightFunction> LoadText(const std::string& path,
                                      bool require_binning,
                                      double fallback_alpha_minutes) {
  std::ifstream in(path);
  if (PCDE_FAULT_POINT("serialization.text.load.open") || !in.is_open()) {
    return Status::NotFound("LoadWeightFunction: cannot open " + path);
  }

  bool has_binning = false;
  double alpha_minutes = fallback_alpha_minutes;
  std::unique_ptr<WeightFunctionBuilder> builder;

  // Parser state for the variable being assembled.
  bool has_var = false;
  InstantiatedVariable var;
  size_t rank = 0;
  std::vector<std::vector<double>> boundaries;
  std::vector<hist::HistogramND::HyperBucket> buckets;

  auto flush = [&]() -> Status {
    if (!has_var) return Status::OK();
    if (boundaries.size() != rank) {
      return Status::InvalidArgument(
          "LoadWeightFunction: dimension count mismatch for variable " +
          var.path.ToString());
    }
    // The stored probabilities are already normalized; keep them verbatim
    // (renormalizing would perturb the low bits and break the byte-identical
    // save -> load -> estimate guarantee).
    PCDE_ASSIGN_OR_RETURN(
        joint, hist::HistogramND::Make(std::move(boundaries),
                                       std::move(buckets),
                                       /*renormalize=*/false));
    var.joint = std::move(joint);
    builder->Add(std::move(var));
    var = InstantiatedVariable();
    boundaries.clear();
    buckets.clear();
    has_var = false;
    return Status::OK();
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    if (fields[0] == "BINNING") {
      double parsed = 0.0;
      // Same alpha bounds as the binary loader: a near-zero alpha is
      // undefined behavior in TimeBinning at query time, not a loadable
      // model.
      if (fields.size() != 2 || !ParseDoubleField(fields[1], &parsed) ||
          !AlphaInArtifactRange(parsed * 60.0)) {
        return Status::InvalidArgument("LoadWeightFunction: bad BINNING at " +
                                       where);
      }
      if (has_binning || builder != nullptr) {
        // A second BINNING (anywhere) would silently re-bind the alpha
        // grid — exactly the binning-corruption class this format exists
        // to make a load-time error.
        return Status::InvalidArgument(
            "LoadWeightFunction: duplicate or misplaced BINNING at " + where);
      }
      // Compare in seconds: the artifact stores alpha_seconds / 60, and
      // (m * 60) / 60 is not bit-exact for every double, while
      // (s / 60) * 60 round-trips the stored value.
      if (!require_binning &&
          parsed * 60.0 != fallback_alpha_minutes * 60.0) {
        return Status::InvalidArgument(
            "LoadWeightFunction: artifact binning alpha = " +
            std::to_string(parsed) + " min does not match the caller's " +
            std::to_string(fallback_alpha_minutes) + " min (" + where + ")");
      }
      alpha_minutes = parsed;
      has_binning = true;
    } else if (fields[0] == "VAR") {
      if (!has_binning && require_binning) {
        return Status::InvalidArgument(
            "LoadWeightFunction: no BINNING record before " + where +
            " — text v1 artifact? Load it with LoadWeightFunctionTextV1 and "
            "the alpha it was built with");
      }
      if (builder == nullptr) {
        builder =
            std::make_unique<WeightFunctionBuilder>(TimeBinning(alpha_minutes));
      }
      PCDE_RETURN_NOT_OK(flush());
      uint64_t support = 0, parsed_rank = 0;
      if (fields.size() < 6 || !ParseI32Field(fields[1], &var.interval) ||
          !ParseU64Field(fields[2], &support) ||
          (fields[3] != "0" && fields[3] != "1") ||
          !ParseU64Field(fields[4], &parsed_rank)) {
        return Status::InvalidArgument("LoadWeightFunction: bad VAR at " +
                                       where);
      }
      var.support = support;
      var.from_speed_limit = fields[3] == "1";
      rank = parsed_rank;
      if (rank == 0 || fields.size() != 5 + rank) {
        return Status::InvalidArgument("LoadWeightFunction: VAR arity at " +
                                       where);
      }
      std::vector<roadnet::EdgeId> edges;
      for (size_t i = 0; i < rank; ++i) {
        uint64_t e = 0;
        // Front edges carry the same artifact ceiling as the binary
        // loader: a corrupt id must not drive the dense candidate index
        // to gigabytes. Interior edges only need to fit EdgeId.
        const uint64_t limit = i == 0 ? kMaxArtifactEdgeId
                                      : uint64_t{UINT32_MAX} + 1;
        if (!ParseU64Field(fields[5 + i], &e) || e >= limit) {
          return Status::InvalidArgument(
              "LoadWeightFunction: bad edge id at " + where);
        }
        edges.push_back(static_cast<roadnet::EdgeId>(e));
      }
      var.path = roadnet::Path(std::move(edges));
      has_var = true;
    } else if (fields[0] == "DIM") {
      if (!has_var) {
        return Status::InvalidArgument("LoadWeightFunction: DIM before VAR "
                                       "at " + where);
      }
      std::vector<double> bounds;
      for (size_t i = 1; i < fields.size(); ++i) {
        double b = 0.0;
        if (!ParseDoubleField(fields[i], &b)) {
          return Status::InvalidArgument(
              "LoadWeightFunction: bad DIM value at " + where);
        }
        bounds.push_back(b);
      }
      boundaries.push_back(std::move(bounds));
    } else if (fields[0] == "HB") {
      if (!has_var || fields.size() != 2 + rank) {
        return Status::InvalidArgument("LoadWeightFunction: bad HB at " +
                                       where);
      }
      hist::HistogramND::HyperBucket hb;
      if (!ParseDoubleField(fields[1], &hb.prob)) {
        return Status::InvalidArgument(
            "LoadWeightFunction: bad HB probability at " + where);
      }
      for (size_t i = 0; i < rank; ++i) {
        uint64_t idx = 0;
        if (!ParseU64Field(fields[2 + i], &idx) || idx > UINT32_MAX) {
          return Status::InvalidArgument(
              "LoadWeightFunction: bad HB index at " + where);
        }
        hb.idx.push_back(static_cast<uint32_t>(idx));
      }
      buckets.push_back(std::move(hb));
    } else {
      return Status::InvalidArgument("LoadWeightFunction: unknown record at " +
                                     where);
    }
  }
  if (PCDE_FAULT_POINT("serialization.text.load.read") || in.bad()) {
    return Status::Internal("LoadWeightFunction: read failed for " + path);
  }
  if (require_binning && !has_binning) {
    return Status::InvalidArgument(
        "LoadWeightFunction: no BINNING record in " + path +
        " — text v1 artifact? Load it with LoadWeightFunctionTextV1 and the "
        "alpha it was built with");
  }
  if (builder == nullptr) {
    builder =
        std::make_unique<WeightFunctionBuilder>(TimeBinning(alpha_minutes));
  }
  PCDE_RETURN_NOT_OK(flush());
  return std::move(*builder).TryFreeze();
}

enum class ArtifactKind { kBinary, kText, kCorruptBinary };

/// Routes by the leading bytes: the full magic selects the binary loader;
/// a magic prefix (truncated file) or embedded NULs (binary garbage, e.g.
/// a corrupted header) is reported as a corrupt binary artifact instead of
/// being fed to the text parser, whose "unknown record" errors would send
/// an operator down the wrong diagnostic path.
ArtifactKind SniffArtifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return ArtifactKind::kText;  // loader reports NotFound
  char head[sizeof(uint64_t)] = {0};
  in.read(head, sizeof(head));
  const size_t n = static_cast<size_t>(in.gcount());
  uint64_t magic = 0;
  std::memcpy(&magic, head, sizeof(magic));
  if (n == sizeof(head) && magic == kMagic) return ArtifactKind::kBinary;
  const char* magic_bytes = reinterpret_cast<const char*>(&kMagic);
  if (n > 0 && std::memcmp(head, magic_bytes, n) == 0) {
    return ArtifactKind::kCorruptBinary;  // magic prefix, file cut short
  }
  for (size_t i = 0; i < n; ++i) {
    if (head[i] == '\0') return ArtifactKind::kCorruptBinary;
  }
  return ArtifactKind::kText;
}

}  // namespace

StatusOr<PathWeightFunction> LoadWeightFunction(const std::string& path) {
  switch (SniffArtifact(path)) {
    case ArtifactKind::kBinary:
      return LoadWeightFunctionBinary(path);
    case ArtifactKind::kCorruptBinary:
      return Status::InvalidArgument(
          "LoadWeightFunction: " + path +
          " looks like a corrupt or truncated PCDEWF1 binary artifact");
    case ArtifactKind::kText:
      break;
  }
  return LoadText(path, /*require_binning=*/true, /*fallback=*/0.0);
}

StatusOr<PathWeightFunction> LoadWeightFunctionTextV1(const std::string& path,
                                                      double alpha_minutes) {
  if (!(alpha_minutes > 0.0)) {
    return Status::InvalidArgument(
        "LoadWeightFunctionTextV1: alpha_minutes must be positive");
  }
  return LoadText(path, /*require_binning=*/false, alpha_minutes);
}

}  // namespace core
}  // namespace pcde
