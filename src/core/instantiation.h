// Bottom-up instantiation of the path weight function W_P from trajectories
// (Secs. 3.1-3.2): unit-path variables first (trajectory histograms where
// >= beta qualified trajectories exist, speed-limit fallbacks otherwise),
// then joint variables for progressively longer paths whose (path,
// interval) pairs have >= beta qualified trajectories — an apriori-style
// level-wise scan, pruned by the fact that a frequent path's prefix is
// frequent in the same interval.
#pragma once

#include "core/params.h"
#include "core/weight_function.h"
#include "roadnet/graph.h"
#include "traj/store.h"

namespace pcde {
namespace core {

/// \brief Build statistics for the experiment harnesses.
struct InstantiationStats {
  size_t unit_from_trajectories = 0;
  size_t unit_from_speed_limit = 0;
  size_t joint_variables = 0;
  double build_seconds = 0.0;
};

/// \brief Instantiates W_P over the given trajectories.
///
/// Every edge of the graph receives an all-day speed-limit fallback unit
/// variable, so the estimator can always produce a distribution for any
/// valid path (the paper's Sec. 3.1 fallback).
PathWeightFunction InstantiateWeightFunction(const roadnet::Graph& graph,
                                             const traj::TrajectoryStore& store,
                                             const HybridParams& params,
                                             InstantiationStats* stats = nullptr);

}  // namespace core
}  // namespace pcde
