// Bottom-up instantiation of the path weight function W_P from trajectories
// (Secs. 3.1-3.2): unit-path variables first (trajectory histograms where
// >= beta qualified trajectories exist, speed-limit fallbacks otherwise),
// then joint variables for progressively longer paths whose (path,
// interval) pairs have >= beta qualified trajectories — an apriori-style
// level-wise scan, pruned by the fact that a frequent path's prefix is
// frequent in the same interval.
#pragma once

#include "core/params.h"
#include "core/weight_function.h"
#include "roadnet/graph.h"
#include "traj/store.h"

namespace pcde {
namespace core {

/// \brief Build statistics for the experiment harnesses.
struct InstantiationStats {
  size_t unit_from_trajectories = 0;
  size_t unit_from_speed_limit = 0;
  size_t joint_variables = 0;
  double build_seconds = 0.0;
};

/// \brief Instantiates W_P over the given trajectories, Status-returning.
///
/// Every edge of the graph receives an all-day speed-limit fallback unit
/// variable, so the estimator can always produce a distribution for any
/// valid path (the paper's Sec. 3.1 fallback). This is the form refresh /
/// serving pipelines must use: input that originates from live data (new
/// trajectory batches, delta rebuilds) fails with a clean Status the
/// caller can reject — it must never take the process down.
StatusOr<PathWeightFunction> TryInstantiateWeightFunction(
    const roadnet::Graph& graph, const traj::TrajectoryStore& store,
    const HybridParams& params, InstantiationStats* stats = nullptr);

/// \brief TryInstantiateWeightFunction for infallible call sites (offline
/// builds over fixture data, tests): prints the Status and aborts on
/// failure. Serving/refresh paths use the Try form instead.
PathWeightFunction InstantiateWeightFunction(const roadnet::Graph& graph,
                                             const traj::TrajectoryStore& store,
                                             const HybridParams& params,
                                             InstantiationStats* stats = nullptr);

/// \brief The incremental form of InstantiateWeightFunction: folds one
/// trajectory batch into an existing builder instead of freezing — the
/// delta-rebuild path of online model refresh. Seed the builder either
/// fresh (full build) or via WeightFunctionBuilder::FromFrozen (fold a new
/// batch into a previously frozen model without replaying its history).
///
/// Last-write-wins in the builder gives the delta/full equivalence: seeding
/// from FromFrozen(Freeze(B1)) and folding batch B2 freezes to a model
/// fingerprint-identical to folding B1 then B2 into one fresh builder.
/// `params.alpha_minutes` must match the builder's binning (a mismatch
/// would silently file variables under the wrong interval grid — it is an
/// InvalidArgument here). `stats`, when non-null, receives this batch's
/// counts only.
Status InstantiateIntoBuilder(const roadnet::Graph& graph,
                              const traj::TrajectoryStore& store,
                              const HybridParams& params,
                              WeightFunctionBuilder* builder,
                              InstantiationStats* stats = nullptr);

/// \brief The Sec. 3.1 speed-limit prior for one edge: the single-bucket
/// free-flow histogram every uncovered edge receives at instantiation time.
/// Exposed so the serving layer's per-edge degradation fallback
/// (core/estimator.h) synthesizes exactly the distribution instantiation
/// would have — an edge absent from a frozen model estimates identically
/// to one whose speed-limit fallback was baked in.
hist::Histogram1D FreeFlowEdgeHistogram(const roadnet::Edge& edge,
                                        const HybridParams& params);

}  // namespace core
}  // namespace pcde
