// The accuracy-optimal baseline (Sec. 2.2): estimate a path's cost
// distribution directly from the >= beta qualified trajectories that
// traversed the whole path during the interval of interest. It is the most
// accurate use of the available data — the paper (and this repo) treats its
// output D_GT as ground truth — but data sparseness makes it inapplicable
// for most (path, interval) pairs (Fig. 3).
#pragma once

#include "common/status.h"
#include "core/params.h"
#include "hist/histogram1d.h"
#include "roadnet/path.h"
#include "traj/store.h"

namespace pcde {
namespace baselines {

class AccuracyOptimal {
 public:
  AccuracyOptimal(const traj::TrajectoryStore& store,
                  const core::HybridParams& params)
      : store_(store), params_(params) {}

  /// Number of qualified trajectories for (path, interval).
  size_t CountQualified(const roadnet::Path& path,
                        const Interval& interval) const;

  /// \brief D_GT: the exact empirical distribution (one bucket per grid
  /// cell) of the total path cost over qualified trajectories. Returns
  /// FailedPrecondition when fewer than beta qualify — the sparseness case
  /// the hybrid graph exists to handle.
  StatusOr<hist::Histogram1D> GroundTruth(const roadnet::Path& path,
                                          const Interval& interval) const;

  /// Same data compressed with the Auto histogram (what a deployed system
  /// would store).
  StatusOr<hist::Histogram1D> GroundTruthCompact(const roadnet::Path& path,
                                                 const Interval& interval) const;

  /// Raw total-cost samples of the qualified trajectories.
  std::vector<double> QualifiedTotals(const roadnet::Path& path,
                                      const Interval& interval) const;

 private:
  const traj::TrajectoryStore& store_;
  core::HybridParams params_;
};

}  // namespace baselines
}  // namespace pcde
