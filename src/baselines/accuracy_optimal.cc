#include "baselines/accuracy_optimal.h"

#include "hist/raw_distribution.h"
#include "hist/voptimal.h"

namespace pcde {
namespace baselines {

size_t AccuracyOptimal::CountQualified(const roadnet::Path& path,
                                       const Interval& interval) const {
  return store_.FindQualified(path, interval).size();
}

std::vector<double> AccuracyOptimal::QualifiedTotals(
    const roadnet::Path& path, const Interval& interval) const {
  const auto occurrences = store_.FindQualified(path, interval);
  return store_.TotalCosts(path, occurrences, params_.cost_type);
}

StatusOr<hist::Histogram1D> AccuracyOptimal::GroundTruth(
    const roadnet::Path& path, const Interval& interval) const {
  const std::vector<double> totals = QualifiedTotals(path, interval);
  if (totals.size() < params_.beta) {
    return Status::FailedPrecondition(
        "AccuracyOptimal: only " + std::to_string(totals.size()) +
        " qualified trajectories (beta=" + std::to_string(params_.beta) + ")");
  }
  return hist::RawDistribution::FromSamples(totals,
                                            params_.bucket_options.resolution)
      .ToExactHistogram();
}

StatusOr<hist::Histogram1D> AccuracyOptimal::GroundTruthCompact(
    const roadnet::Path& path, const Interval& interval) const {
  const std::vector<double> totals = QualifiedTotals(path, interval);
  if (totals.size() < params_.beta) {
    return Status::FailedPrecondition(
        "AccuracyOptimal: only " + std::to_string(totals.size()) +
        " qualified trajectories (beta=" + std::to_string(params_.beta) + ")");
  }
  return hist::BuildAutoHistogram(totals, params_.bucket_options);
}

}  // namespace baselines
}  // namespace pcde
