// Factory helpers wiring the HybridEstimator into the paper's compared
// methods (Sec. 5.2.2):
//   OD    — the proposal: coarsest decomposition (Algorithm 1)
//   OD-x  — coarsest decomposition with variable rank capped at x
//   LB    — legacy baseline [22]: rank-1 convolution, arrival-time shifted
//   HP    — Hua & Pei [10]: rank-2 pairwise chain
//   RD    — random valid decomposition
#pragma once

#include "core/estimator.h"

namespace pcde {
namespace baselines {

inline core::HybridEstimator MakeOd(const core::PathWeightFunction& wp) {
  return core::HybridEstimator(wp);
}

inline core::HybridEstimator MakeOdCapped(const core::PathWeightFunction& wp,
                                          size_t rank_cap) {
  core::EstimateOptions o;
  o.rank_cap = rank_cap;
  return core::HybridEstimator(wp, o);
}

inline core::HybridEstimator MakeLb(const core::PathWeightFunction& wp) {
  core::EstimateOptions o;
  o.policy = core::DecompositionPolicy::kUnit;
  o.rank_cap = 1;
  return core::HybridEstimator(wp, o);
}

inline core::HybridEstimator MakeHp(const core::PathWeightFunction& wp) {
  core::EstimateOptions o;
  o.policy = core::DecompositionPolicy::kPairwise;
  o.rank_cap = 2;
  return core::HybridEstimator(wp, o);
}

inline core::HybridEstimator MakeRd(const core::PathWeightFunction& wp,
                                    uint64_t seed = 7) {
  core::EstimateOptions o;
  o.policy = core::DecompositionPolicy::kRandom;
  o.random_seed = seed;
  return core::HybridEstimator(wp, o);
}

}  // namespace baselines
}  // namespace pcde
