// Figure 8 — the effect of the finest time interval alpha: (a) edge
// coverage |E'|/|E''| rises with alpha (more trajectories qualify per
// interval); (b) variables instantiated over longer intervals mix more
// traffic states, so their entropy rises — alpha = 30 is the compromise.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds) {
  std::printf("Figure 8 (dataset %s)\n", name);
  TableWriter ta({"alpha (min)", "coverage |E'|/|E''|", "#variables",
                  "H |V|=1", "H |V|=2", "H |V|=3", "H |V|>=4"});
  for (double alpha : {15.0, 30.0, 60.0, 120.0}) {
    core::HybridParams params;
    params.alpha_minutes = alpha;
    params.beta = 30;
    const auto wp =
        core::InstantiateWeightFunction(*ds.data.graph, ds.store, params);
    const double coverage =
        static_cast<double>(wp.NumCoveredEdges()) /
        static_cast<double>(std::max<size_t>(ds.store.NumObservedEdges(), 1));
    size_t variables = 0;
    for (const auto& [rank, count] : wp.CountByRank(false)) variables += count;
    const auto entropy = wp.MeanEntropyByRank();
    auto h = [&](size_t rank) {
      auto it = entropy.find(rank);
      return it == entropy.end() ? std::string("-")
                                 : TableWriter::Num(it->second, 2);
    };
    ta.AddRow({TableWriter::Num(alpha, 0), TableWriter::Num(coverage, 3),
               std::to_string(variables), h(1), h(2), h(3), h(4)});
  }
  ta.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: coverage increases with alpha but stays below\n"
              "full coverage (skewed data); entropy increases with alpha\n"
              "(longer intervals mix more traffic states). alpha = 30 is\n"
              "the accuracy/coverage trade-off the paper selects.\n");
  return 0;
}
