// Shared setup for the per-figure benchmark harnesses: dataset
// construction, window (sub-path occurrence) counting, and selection of
// data-rich query paths. Each bench binary regenerates one table/figure of
// the paper's evaluation (Sec. 5); EXPERIMENTS.md records the shapes.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/accuracy_optimal.h"
#include "baselines/methods.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace bench {

/// Bench-scale datasets (laptop budget; see DESIGN.md substitutions).
inline constexpr size_t kTripsA = 12000;
inline constexpr size_t kTripsB = 16000;

struct BenchDataset {
  traj::Dataset data;
  traj::TrajectoryStore store;

  explicit BenchDataset(traj::Dataset ds)
      : data(std::move(ds)), store(data.MatchedSlice(1.0)) {}
};

inline BenchDataset MakeA(size_t trips = kTripsA) {
  return BenchDataset(traj::MakeDatasetA(trips));
}
inline BenchDataset MakeB(size_t trips = kTripsB) {
  return BenchDataset(traj::MakeDatasetB(trips));
}

/// A (window, interval) occurrence group: the qualified trajectories of a
/// candidate sub-path during one alpha-interval.
struct WindowGroup {
  roadnet::Path path;
  int32_t interval = 0;
  std::vector<traj::Occurrence> occurrences;
};

/// Enumerates (window, interval) groups of a given cardinality with at
/// least `min_support` qualified trajectories, ordered by support
/// (descending), capped at `limit`.
inline std::vector<WindowGroup> FrequentWindows(
    const traj::TrajectoryStore& store, const core::TimeBinning& binning,
    size_t cardinality, size_t min_support, size_t limit) {
  struct Key {
    std::vector<roadnet::EdgeId> edges;
    int32_t interval;
    bool operator==(const Key& o) const {
      return interval == o.interval && edges == o.edges;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = static_cast<size_t>(k.interval) * 0x9e3779b97f4a7c15ull + 1;
      for (roadnet::EdgeId e : k.edges) {
        h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<Key, std::vector<traj::Occurrence>, KeyHash> groups;
  for (size_t ti = 0; ti < store.NumTrajectories(); ++ti) {
    const traj::MatchedTrajectory& t = store.trajectory(ti);
    if (t.path.size() < cardinality) continue;
    for (size_t pos = 0; pos + cardinality <= t.path.size(); ++pos) {
      Key key{{t.path.edges().begin() + static_cast<ptrdiff_t>(pos),
               t.path.edges().begin() + static_cast<ptrdiff_t>(pos + cardinality)},
              binning.IndexOf(t.edge_enter_times[pos])};
      groups[key].push_back(
          traj::Occurrence{ti, pos, t.edge_enter_times[pos]});
    }
  }
  std::vector<WindowGroup> out;
  for (auto& [key, occs] : groups) {
    if (occs.size() < min_support) continue;
    out.push_back(WindowGroup{roadnet::Path(key.edges), key.interval,
                              std::move(occs)});
  }
  std::sort(out.begin(), out.end(), [](const WindowGroup& a, const WindowGroup& b) {
    return a.occurrences.size() > b.occurrences.size();
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

/// Random simple path biased toward popular (heavily traversed) edges, so
/// long synthetic queries (Figs. 15/16) run over instantiated variables
/// rather than pure speed-limit fallbacks: the successor edge is drawn
/// with probability proportional to its traversal count (plus one).
inline StatusOr<roadnet::Path> DataBiasedRandomPath(
    const roadnet::Graph& g, const traj::TrajectoryStore& store,
    size_t cardinality, Rng* rng, int max_attempts = 400) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Seed on an observed edge.
    const size_t ti = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(store.NumTrajectories()) - 1));
    const traj::MatchedTrajectory& t = store.trajectory(ti);
    if (t.path.empty()) continue;
    std::vector<roadnet::EdgeId> edges{t.path[0]};
    std::set<roadnet::VertexId> visited{g.edge(t.path[0]).from,
                                        g.edge(t.path[0]).to};
    while (edges.size() < cardinality) {
      const roadnet::VertexId head = g.edge(edges.back()).to;
      std::vector<roadnet::EdgeId> pool;
      std::vector<double> weights;
      for (roadnet::EdgeId e : g.OutEdges(head)) {
        if (visited.count(g.edge(e).to) != 0) continue;
        pool.push_back(e);
        weights.push_back(
            1.0 + static_cast<double>(store.EdgeOccurrenceCount(e)));
      }
      if (pool.empty()) break;
      const roadnet::EdgeId next = pool[rng->Categorical(weights)];
      edges.push_back(next);
      visited.insert(g.edge(next).to);
    }
    if (edges.size() == cardinality) return roadnet::Path(std::move(edges));
  }
  return Status::NotFound("DataBiasedRandomPath: none found");
}

/// Windows suitable for the paper's held-out ground-truth protocol
/// (Figs. 13/14): >= `beta` qualified trajectories AND every edge keeps at
/// least `beta + slack` qualified trajectories from *other* traffic in the
/// same interval, so sub-path coverage survives the exclusion.
inline std::vector<WindowGroup> HeldOutCandidates(
    const traj::TrajectoryStore& store, const core::TimeBinning& binning,
    size_t cardinality, size_t beta, size_t slack, size_t limit) {
  const auto windows = FrequentWindows(store, binning, cardinality, beta,
                                       std::max<size_t>(limit * 50, 4000));
  std::vector<WindowGroup> out;
  for (const auto& w : windows) {
    const Interval ij = binning.IntervalOf(w.interval);
    bool covered = true;
    for (size_t d = 0; d < w.path.size() && covered; ++d) {
      const size_t unit_quals =
          store.FindQualified(roadnet::Path({w.path[d]}), ij).size();
      covered = unit_quals >= w.occurrences.size() + beta + slack;
    }
    if (!covered) continue;
    out.push_back(w);
    if (out.size() >= limit) break;
  }
  return out;
}

/// A copy of the store without any trajectory qualified for one of the
/// given (window, interval) groups — the sparseness-restoring exclusion of
/// the Fig. 13/14 protocol.
inline traj::TrajectoryStore ExcludeWindows(
    const traj::TrajectoryStore& store,
    const std::vector<WindowGroup>& groups) {
  std::set<size_t> excluded;
  for (const auto& g : groups) {
    for (const auto& occ : g.occurrences) excluded.insert(occ.traj_index);
  }
  std::vector<traj::MatchedTrajectory> remaining;
  remaining.reserve(store.NumTrajectories());
  for (size_t i = 0; i < store.NumTrajectories(); ++i) {
    if (excluded.count(i) == 0) remaining.push_back(store.trajectory(i));
  }
  return traj::TrajectoryStore(std::move(remaining));
}

inline std::string Mb(size_t bytes) {
  return TableWriter::Num(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
         " MB";
}

}  // namespace bench
}  // namespace pcde
