// Shared setup for the per-figure benchmark harnesses: dataset
// construction, window (sub-path occurrence) counting, and selection of
// data-rich query paths. Each bench binary regenerates one table/figure of
// the paper's evaluation (Sec. 5); EXPERIMENTS.md records the shapes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/accuracy_optimal.h"
#include "baselines/methods.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_writer.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace bench {

/// Bench-scale datasets (laptop budget; see DESIGN.md substitutions).
inline constexpr size_t kTripsA = 12000;
inline constexpr size_t kTripsB = 16000;

struct BenchDataset {
  traj::Dataset data;
  traj::TrajectoryStore store;

  explicit BenchDataset(traj::Dataset ds)
      : data(std::move(ds)), store(data.MatchedSlice(1.0)) {}
};

inline BenchDataset MakeA(size_t trips = kTripsA) {
  return BenchDataset(traj::MakeDatasetA(trips));
}
inline BenchDataset MakeB(size_t trips = kTripsB) {
  return BenchDataset(traj::MakeDatasetB(trips));
}

/// A (window, interval) occurrence group: the qualified trajectories of a
/// candidate sub-path during one alpha-interval.
struct WindowGroup {
  roadnet::Path path;
  int32_t interval = 0;
  std::vector<traj::Occurrence> occurrences;
};

/// Enumerates (window, interval) groups of a given cardinality with at
/// least `min_support` qualified trajectories, ordered by support
/// (descending), capped at `limit`.
inline std::vector<WindowGroup> FrequentWindows(
    const traj::TrajectoryStore& store, const core::TimeBinning& binning,
    size_t cardinality, size_t min_support, size_t limit) {
  struct Key {
    std::vector<roadnet::EdgeId> edges;
    int32_t interval;
    bool operator==(const Key& o) const {
      return interval == o.interval && edges == o.edges;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = static_cast<size_t>(k.interval) * 0x9e3779b97f4a7c15ull + 1;
      for (roadnet::EdgeId e : k.edges) {
        h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<Key, std::vector<traj::Occurrence>, KeyHash> groups;
  for (size_t ti = 0; ti < store.NumTrajectories(); ++ti) {
    const traj::MatchedTrajectory& t = store.trajectory(ti);
    if (t.path.size() < cardinality) continue;
    for (size_t pos = 0; pos + cardinality <= t.path.size(); ++pos) {
      Key key{{t.path.edges().begin() + static_cast<ptrdiff_t>(pos),
               t.path.edges().begin() + static_cast<ptrdiff_t>(pos + cardinality)},
              binning.IndexOf(t.edge_enter_times[pos])};
      groups[key].push_back(
          traj::Occurrence{ti, pos, t.edge_enter_times[pos]});
    }
  }
  std::vector<WindowGroup> out;
  for (auto& [key, occs] : groups) {
    if (occs.size() < min_support) continue;
    out.push_back(WindowGroup{roadnet::Path(key.edges), key.interval,
                              std::move(occs)});
  }
  std::sort(out.begin(), out.end(), [](const WindowGroup& a, const WindowGroup& b) {
    return a.occurrences.size() > b.occurrences.size();
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

/// Random simple path biased toward popular (heavily traversed) edges, so
/// long synthetic queries (Figs. 15/16) run over instantiated variables
/// rather than pure speed-limit fallbacks: the successor edge is drawn
/// with probability proportional to its traversal count (plus one).
inline StatusOr<roadnet::Path> DataBiasedRandomPath(
    const roadnet::Graph& g, const traj::TrajectoryStore& store,
    size_t cardinality, Rng* rng, int max_attempts = 400) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Seed on an observed edge.
    const size_t ti = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(store.NumTrajectories()) - 1));
    const traj::MatchedTrajectory& t = store.trajectory(ti);
    if (t.path.empty()) continue;
    std::vector<roadnet::EdgeId> edges{t.path[0]};
    std::set<roadnet::VertexId> visited{g.edge(t.path[0]).from,
                                        g.edge(t.path[0]).to};
    while (edges.size() < cardinality) {
      const roadnet::VertexId head = g.edge(edges.back()).to;
      std::vector<roadnet::EdgeId> pool;
      std::vector<double> weights;
      for (roadnet::EdgeId e : g.OutEdges(head)) {
        if (visited.count(g.edge(e).to) != 0) continue;
        pool.push_back(e);
        weights.push_back(
            1.0 + static_cast<double>(store.EdgeOccurrenceCount(e)));
      }
      if (pool.empty()) break;
      const roadnet::EdgeId next = pool[rng->Categorical(weights)];
      edges.push_back(next);
      visited.insert(g.edge(next).to);
    }
    if (edges.size() == cardinality) return roadnet::Path(std::move(edges));
  }
  return Status::NotFound("DataBiasedRandomPath: none found");
}

/// Windows suitable for the paper's held-out ground-truth protocol
/// (Figs. 13/14): >= `beta` qualified trajectories AND every edge keeps at
/// least `beta + slack` qualified trajectories from *other* traffic in the
/// same interval, so sub-path coverage survives the exclusion.
inline std::vector<WindowGroup> HeldOutCandidates(
    const traj::TrajectoryStore& store, const core::TimeBinning& binning,
    size_t cardinality, size_t beta, size_t slack, size_t limit) {
  const auto windows = FrequentWindows(store, binning, cardinality, beta,
                                       std::max<size_t>(limit * 50, 4000));
  std::vector<WindowGroup> out;
  for (const auto& w : windows) {
    const Interval ij = binning.IntervalOf(w.interval);
    bool covered = true;
    for (size_t d = 0; d < w.path.size() && covered; ++d) {
      const size_t unit_quals =
          store.FindQualified(roadnet::Path({w.path[d]}), ij).size();
      covered = unit_quals >= w.occurrences.size() + beta + slack;
    }
    if (!covered) continue;
    out.push_back(w);
    if (out.size() >= limit) break;
  }
  return out;
}

/// A copy of the store without any trajectory qualified for one of the
/// given (window, interval) groups — the sparseness-restoring exclusion of
/// the Fig. 13/14 protocol.
inline traj::TrajectoryStore ExcludeWindows(
    const traj::TrajectoryStore& store,
    const std::vector<WindowGroup>& groups) {
  std::set<size_t> excluded;
  for (const auto& g : groups) {
    for (const auto& occ : g.occurrences) excluded.insert(occ.traj_index);
  }
  std::vector<traj::MatchedTrajectory> remaining;
  remaining.reserve(store.NumTrajectories());
  for (size_t i = 0; i < store.NumTrajectories(); ++i) {
    if (excluded.count(i) == 0) remaining.push_back(store.trajectory(i));
  }
  return traj::TrajectoryStore(std::move(remaining));
}

inline std::string Mb(size_t bytes) {
  return TableWriter::Num(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
         " MB";
}

// ---------------------------------------------------------------------------
// BENCH_chain.json — the machine-readable perf trajectory of the chain
// estimation kernel, written by bench_chain_micro (see bench/README.md for
// the schema). One KernelSeries per measured configuration.
// ---------------------------------------------------------------------------

/// Latency/throughput summary of one measured kernel configuration.
/// For batch series, ops_per_sec is wall-clock batch throughput while
/// p50_ms/p99_ms are per-query latencies inside the batch (recorded via
/// core::BatchMetrics), and the cache_* fields carry the series' query-
/// cache traffic (all zero when no cache is attached).
struct KernelSeries {
  std::string name;        // e.g. "chain_sweep", "chain_sweep_reference"
  size_t iterations = 0;   // estimations measured
  double ops_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t max_states = 0;   // peak sweeper states over the workload
  double jc_seconds = 0.0;  // total joint-computation (sweep) phase
  double mc_seconds = 0.0;  // total marginalization (finalize) phase
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Routing pruning attribution (route_dfs* series only; zero elsewhere):
  /// per-pruner cut counts and estimator clones of the recorded routes.
  uint64_t bound_pruned = 0;
  uint64_t incumbent_pruned = 0;
  uint64_t dominance_pruned = 0;
  uint64_t estimator_clones = 0;

  /// Summarizes raw per-op latencies (seconds); sorts its input.
  static KernelSeries FromLatencies(std::string series_name,
                                    std::vector<double> latencies_s,
                                    size_t max_states_seen) {
    KernelSeries out;
    out.name = std::move(series_name);
    out.iterations = latencies_s.size();
    out.max_states = max_states_seen;
    if (latencies_s.empty()) return out;
    std::sort(latencies_s.begin(), latencies_s.end());
    double total = 0.0;
    for (double v : latencies_s) total += v;
    out.ops_per_sec = total > 0.0 ? static_cast<double>(latencies_s.size()) / total : 0.0;
    auto quantile = [&latencies_s](double q) {
      const size_t idx = std::min(
          latencies_s.size() - 1,
          static_cast<size_t>(q * static_cast<double>(latencies_s.size())));
      return latencies_s[idx] * 1e3;
    };
    out.p50_ms = quantile(0.50);
    out.p99_ms = quantile(0.99);
    return out;
  }
};

/// One persistence format's save/load measurement for the model series.
struct ModelFormatSeries {
  std::string name;  // "text_v2" / "binary_v1"
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  size_t artifact_bytes = 0;
};

/// The offline-build / online-serve cost record: instantiation time, the
/// model's serving footprint, and per-format artifact size + save/load
/// latency (see bench/README.md for the JSON schema).
struct ModelSeries {
  size_t num_variables = 0;
  size_t resident_bytes = 0;    // PathWeightFunction::ResidentBytes
  double build_seconds = 0.0;   // InstantiationStats::build_seconds
  /// Binary artifact loaded through the flag-guarded mmap path (shared
  /// page-cache copy across co-resident server processes).
  double mmap_load_seconds = 0.0;
  std::vector<ModelFormatSeries> formats;

  /// text_load_seconds / binary_load_seconds when both formats are present
  /// (the artifact acceptance metric: binary must load >= 10x faster).
  double BinaryLoadSpeedupVsText() const {
    const ModelFormatSeries* text = nullptr;
    const ModelFormatSeries* binary = nullptr;
    for (const ModelFormatSeries& f : formats) {
      if (f.name == "text_v2") text = &f;
      if (f.name == "binary_v1") binary = &f;
    }
    return text != nullptr && binary != nullptr && binary->load_seconds > 0.0
               ? text->load_seconds / binary->load_seconds
               : 0.0;
  }
};

/// The sharded-serving footprint record (ISSUE 10): the resident-memory
/// claim sharding exists for, measured after the bench served the whole
/// sharded workload (every shard attached). The acceptance criterion is
/// resident_bytes_max_shard strictly below mono_resident_bytes at >= 2
/// shards — no single shard costs as much as the unsplit model.
struct ShardedFootprint {
  size_t num_shards = 0;
  size_t resident_bytes_max_shard = 0;
  size_t mono_resident_bytes = 0;
};

/// Writes the BENCH_chain.json schema: a flat object with the bench id,
/// the kernel series, the optional model series, and the headline speedup
/// of the rewritten kernel over the reference kernel (when both series are
/// present).
inline bool WriteChainBenchJson(const std::string& path,
                                const std::string& bench_name,
                                const std::vector<KernelSeries>& series,
                                const ModelSeries* model = nullptr,
                                const ShardedFootprint* sharded = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"kernels\": [\n",
               bench_name.c_str());
  for (size_t i = 0; i < series.size(); ++i) {
    const KernelSeries& s = series[i];
    const uint64_t cache_total = s.cache_hits + s.cache_misses;
    const double hit_rate =
        cache_total > 0
            ? static_cast<double>(s.cache_hits) / static_cast<double>(cache_total)
            : 0.0;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iterations\": %zu, "
                 "\"ops_per_sec\": %s, \"p50_ms\": %s, \"p99_ms\": %s, "
                 "\"max_states\": %zu, \"jc_seconds\": %s, "
                 "\"mc_seconds\": %s, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu, \"cache_hit_rate\": %s, "
                 "\"bound_pruned\": %llu, \"incumbent_pruned\": %llu, "
                 "\"dominance_pruned\": %llu, \"estimator_clones\": %llu}%s\n",
                 s.name.c_str(), s.iterations, num(s.ops_per_sec).c_str(),
                 num(s.p50_ms).c_str(), num(s.p99_ms).c_str(), s.max_states,
                 num(s.jc_seconds).c_str(), num(s.mc_seconds).c_str(),
                 static_cast<unsigned long long>(s.cache_hits),
                 static_cast<unsigned long long>(s.cache_misses),
                 num(hit_rate).c_str(),
                 static_cast<unsigned long long>(s.bound_pruned),
                 static_cast<unsigned long long>(s.incumbent_pruned),
                 static_cast<unsigned long long>(s.dominance_pruned),
                 static_cast<unsigned long long>(s.estimator_clones),
                 i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (model != nullptr) {
    std::fprintf(f,
                 ",\n  \"model\": {\n"
                 "    \"num_variables\": %zu,\n"
                 "    \"resident_bytes\": %zu,\n"
                 "    \"build_seconds\": %s,\n"
                 "    \"formats\": [\n",
                 model->num_variables, model->resident_bytes,
                 num(model->build_seconds).c_str());
    for (size_t i = 0; i < model->formats.size(); ++i) {
      const ModelFormatSeries& fmt = model->formats[i];
      std::fprintf(f,
                   "      {\"name\": \"%s\", \"save_seconds\": %s, "
                   "\"load_seconds\": %s, \"artifact_bytes\": %zu}%s\n",
                   fmt.name.c_str(), num(fmt.save_seconds).c_str(),
                   num(fmt.load_seconds).c_str(), fmt.artifact_bytes,
                   i + 1 < model->formats.size() ? "," : "");
    }
    std::fprintf(f,
                 "    ],\n    \"mmap_load_seconds\": %s,\n"
                 "    \"binary_load_speedup_vs_text\": %s\n  }",
                 num(model->mmap_load_seconds).c_str(),
                 num(model->BinaryLoadSpeedupVsText()).c_str());
  }
  const KernelSeries* rewrite = nullptr;
  const KernelSeries* reference = nullptr;
  const KernelSeries* batch1 = nullptr;
  const KernelSeries* batch8 = nullptr;
  const KernelSeries* batch_direct1 = nullptr;
  const KernelSeries* swap_publish = nullptr;
  const KernelSeries* swap_verified = nullptr;
  const KernelSeries* steady = nullptr;
  const KernelSeries* during_swap = nullptr;
  const KernelSeries* deadline_base = nullptr;
  const KernelSeries* deadline_overshoot = nullptr;
  const KernelSeries* overload_shed = nullptr;
  const KernelSeries* route_plain = nullptr;
  const KernelSeries* route_pruned = nullptr;
  const KernelSeries* sharded_est = nullptr;
  const KernelSeries* sharded_mono = nullptr;
  for (const KernelSeries& s : series) {
    if (s.name == "chain_sweep") rewrite = &s;
    if (s.name == "chain_sweep_reference") reference = &s;
    if (s.name == "estimate_batch_threads_1") batch1 = &s;
    if (s.name == "estimate_batch_threads_8") batch8 = &s;
    if (s.name == "estimate_batch_direct_threads_1") batch_direct1 = &s;
    if (s.name == "swap_publish") swap_publish = &s;
    if (s.name == "swap_verified_publish") swap_verified = &s;
    if (s.name == "estimate_steady") steady = &s;
    if (s.name == "estimate_during_swap") during_swap = &s;
    if (s.name == "estimate_deadline_baseline") deadline_base = &s;
    if (s.name == "estimate_deadline_overshoot") deadline_overshoot = &s;
    if (s.name == "overload_shed") overload_shed = &s;
    if (s.name == "route_dfs") route_plain = &s;
    if (s.name == "route_dfs_pruned") route_pruned = &s;
    if (s.name == "sharded_estimate") sharded_est = &s;
    if (s.name == "sharded_estimate_mono") sharded_mono = &s;
  }
  if (rewrite != nullptr && reference != nullptr &&
      reference->ops_per_sec > 0.0) {
    std::fprintf(f, ",\n  \"speedup_vs_reference\": %s",
                 num(rewrite->ops_per_sec / reference->ops_per_sec).c_str());
  }
  // The batch layer's parallel-scaling acceptance metric: 8-worker batch
  // throughput over the 1-worker batch on the same pool code path. Bounded
  // above by the host's core count — scripts/ci.sh enforces the floor only
  // on hosts that can physically express it.
  if (batch1 != nullptr && batch8 != nullptr && batch1->ops_per_sec > 0.0) {
    std::fprintf(f, ",\n  \"batch_scaling_8v1\": %s",
                 num(batch8->ops_per_sec / batch1->ops_per_sec).c_str());
  }
  // The facade acceptance metric: Engine-served batch throughput over the
  // direct HybridEstimator batch at the same worker count (the two series
  // are measured interleaved back to back). scripts/ci.sh gates this
  // >= 0.95 — the Engine may cost at most 5% over direct wiring.
  if (batch1 != nullptr && batch_direct1 != nullptr &&
      batch_direct1->ops_per_sec > 0.0) {
    std::fprintf(f, ",\n  \"engine_batch_vs_direct\": %s",
                 num(batch1->ops_per_sec / batch_direct1->ops_per_sec).c_str());
  }
  // Refresh headline numbers: the median cost of publishing one model
  // epoch (Engine::Swap end to end), and the tail-latency ratio of serving
  // under continuous swap churn over the steady-state control — the
  // zero-downtime acceptance pair.
  if (swap_publish != nullptr && swap_publish->iterations > 0) {
    std::fprintf(f, ",\n  \"swap_publish_seconds\": %s",
                 num(swap_publish->p50_ms / 1e3).c_str());
  }
  // Median cost of a PROBE-VERIFIED publish (Engine::Swap running K=8
  // golden probe queries against the candidate before the epoch flips).
  // Paired with swap_publish_seconds above; scripts/ci.sh gates the
  // verification overhead at <= 2x the plain swap.
  if (swap_verified != nullptr && swap_verified->iterations > 0) {
    std::fprintf(f, ",\n  \"swap_verified_publish_seconds\": %s",
                 num(swap_verified->p50_ms / 1e3).c_str());
  }
  if (steady != nullptr && during_swap != nullptr && steady->p99_ms > 0.0) {
    std::fprintf(f, ",\n  \"estimate_during_swap_p99_vs_steady\": %s",
                 num(during_swap->p99_ms / steady->p99_ms).c_str());
  }
  // Overload headline numbers: how far past its deadline a cancelled
  // estimate runs relative to the same query unconstrained (cooperative
  // cancellation checkpoints per chain part, so this must stay well under
  // 1.0; CI gates the median ratio < 0.5), and the median cost of shedding
  // one request at admission.
  if (deadline_base != nullptr && deadline_overshoot != nullptr &&
      deadline_base->p50_ms > 0.0) {
    std::fprintf(f, ",\n  \"deadline_overshoot_p50_ms\": %s",
                 num(deadline_overshoot->p50_ms).c_str());
    std::fprintf(
        f, ",\n  \"deadline_overshoot_p50_vs_estimate_p50\": %s",
        num(deadline_overshoot->p50_ms / deadline_base->p50_ms).c_str());
  }
  if (overload_shed != nullptr && overload_shed->iterations > 0) {
    std::fprintf(f, ",\n  \"overload_shed_p50_ms\": %s",
                 num(overload_shed->p50_ms).c_str());
  }
  // Routing headline: pruned DFS throughput over the plain DFS on the
  // interleaved bench OD set. The bench itself aborts on any quality
  // divergence (pruned on-time probability must equal plain bit for bit),
  // so a present pruned series certifies parity; scripts/ci.sh gates the
  // floor (>= 3x on the reference host, 10x aspirational).
  if (route_plain != nullptr && route_pruned != nullptr &&
      route_plain->ops_per_sec > 0.0) {
    std::fprintf(
        f, ",\n  \"route_speedup_pruned_vs_plain\": %s",
        num(route_pruned->ops_per_sec / route_plain->ops_per_sec).c_str());
  }
  // Sharded-serving headlines (ISSUE 10): front-door throughput on
  // single-shard-hit requests relative to the monolithic engine on the
  // SAME requests, interleaved back to back (the bench aborts on any
  // ExactlyEquals divergence, so a present ratio certifies bit-identical
  // answers), plus the resident-footprint record — the largest attached
  // shard next to the unsplit model. scripts/ci.sh gates the ratio
  // >= PCDE_CI_MIN_SHARDED_RATIO and the footprint strictly below the
  // monolith.
  if (sharded_est != nullptr && sharded_mono != nullptr &&
      sharded_mono->ops_per_sec > 0.0) {
    std::fprintf(
        f, ",\n  \"sharded_vs_mono\": %s",
        num(sharded_est->ops_per_sec / sharded_mono->ops_per_sec).c_str());
  }
  if (sharded != nullptr && sharded->num_shards > 0) {
    std::fprintf(f,
                 ",\n  \"sharded_num_shards\": %zu"
                 ",\n  \"sharded_resident_bytes_max_shard\": %zu"
                 ",\n  \"sharded_mono_resident_bytes\": %zu",
                 sharded->num_shards, sharded->resident_bytes_max_shard,
                 sharded->mono_resident_bytes);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace bench
}  // namespace pcde
