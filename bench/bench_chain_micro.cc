// Chain-estimation microbench: isolates the Eq. 2 sweep (the JC phase that
// dominates Figs. 16-17) on pre-built decompositions of data-rich query
// paths, measures the rewritten ChainSweeper against the pre-rewrite
// reference kernel, then the serving layers on top — the batch and routing
// series run through serving::Engine (the production front door), with a
// paired direct-HybridEstimator batch series isolating the facade's
// overhead — and writes the BENCH_chain.json perf record at the path given
// by argv[1] (default: ./BENCH_chain.json). See bench/README.md for the
// schema.
//
// Usage: bench_chain_micro [output.json] [reps]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "common/scoped_file.h"
#include "core/chain_estimator_reference.h"
#include "core/serialization.h"
#include "core/shard_writer.h"
#include "routing/stochastic_router.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"

namespace pcde {
namespace bench {
namespace {

struct Workload {
  std::unique_ptr<BenchDataset> data;
  std::unique_ptr<core::PathWeightFunction> wp;
  std::vector<core::Decomposition> decompositions;
  std::vector<core::PathQuery> queries;
  core::InstantiationStats build_stats;

  Workload() {
    data = std::make_unique<BenchDataset>(MakeA());
    core::HybridParams params;
    params.beta = 20;  // the Fig. 16 instantiation
    wp = std::make_unique<core::PathWeightFunction>(
        core::InstantiateWeightFunction(*data->data.graph, data->store,
                                        params, &build_stats));
    // The Fig. 16 method mix: OD plus the chain-heavy HP and OD-2
    // baselines (rank-2 parts with a separator at every step are the
    // sweep's hot regime).
    core::EstimateOptions od, od2, hp;
    od2.rank_cap = 2;
    hp.policy = core::DecompositionPolicy::kPairwise;
    const double depart = traj::HoursToSeconds(8.2);
    Rng rng(616);
    for (size_t card : {20, 40, 60, 80}) {
      for (int i = 0; i < 4; ++i) {
        auto p = DataBiasedRandomPath(*data->data.graph, data->store, card,
                                      &rng);
        if (!p.ok()) continue;
        for (const core::EstimateOptions& options : {od, od2, hp}) {
          const core::HybridEstimator estimator(*wp, options);
          auto de = estimator.Decompose(p.value(), depart);
          if (!de.ok()) continue;
          queries.push_back(core::PathQuery{p.value(), depart});
          decompositions.push_back(std::move(de).value());
        }
      }
    }
  }
};

struct KernelRun {
  std::vector<double> latencies;
  size_t max_states = 0;
  size_t failures = 0;
  PhaseTimer jc, mc;

  KernelSeries Finish(const char* name) {
    if (failures > 0) {
      std::fprintf(stderr, "%s: %zu estimations failed\n", name, failures);
    }
    KernelSeries out =
        KernelSeries::FromLatencies(name, std::move(latencies), max_states);
    out.jc_seconds = jc.total_seconds();
    out.mc_seconds = mc.total_seconds();
    return out;
  }
};

template <typename EstimateFn>
void MeasureOne(KernelRun* run, const core::Decomposition& de,
                EstimateFn&& estimate) {
  Stopwatch watch;
  const size_t states = estimate(de, &run->failures, &run->jc, &run->mc);
  run->latencies.push_back(watch.ElapsedSeconds());
  run->max_states = std::max(run->max_states, states);
}

/// Measures both kernels interleaved, back to back on each decomposition
/// with alternating order, so machine noise (shared single-core boxes)
/// cancels out of the speedup ratio instead of landing on whichever
/// kernel ran in the noisier window.
template <typename NewFn, typename RefFn>
std::pair<KernelSeries, KernelSeries> MeasurePaired(const Workload& w,
                                                    int reps, NewFn&& fn_new,
                                                    RefFn&& fn_ref) {
  KernelRun run_new, run_ref;
  const size_t total =
      w.decompositions.size() * static_cast<size_t>(reps);
  run_new.latencies.reserve(total);
  run_ref.latencies.reserve(total);
  for (int r = 0; r < reps; ++r) {
    for (size_t i = 0; i < w.decompositions.size(); ++i) {
      const core::Decomposition& de = w.decompositions[i];
      if ((static_cast<size_t>(r) + i) % 2 == 0) {
        MeasureOne(&run_new, de, fn_new);
        MeasureOne(&run_ref, de, fn_ref);
      } else {
        MeasureOne(&run_ref, de, fn_ref);
        MeasureOne(&run_new, de, fn_new);
      }
    }
  }
  return {run_new.Finish("chain_sweep"),
          run_ref.Finish("chain_sweep_reference")};
}

/// The model series: offline build seconds, save/load latency and artifact
/// size per format, and the serving-resident footprint of the frozen model.
/// Every reload is checked against the built model's fingerprint — a
/// mismatch means the artifact path is broken, so the bench aborts.
bool MeasureModelSeries(const Workload& w, ModelSeries* out) {
  out->num_variables = w.wp->NumVariables();
  out->resident_bytes = w.wp->ResidentBytes();
  out->build_seconds = w.build_stats.build_seconds;
  const std::string text_path =
      MakeTempArtifactPath("pcde_bench_model", ".txt");
  const std::string bin_path = MakeTempArtifactPath("pcde_bench_model");
  // Removed on every exit path, including the error returns below.
  const ScopedFileRemover text_cleanup(text_path);
  const ScopedFileRemover bin_cleanup(bin_path);
  struct Case {
    const char* name;
    const std::string* path;
    bool binary;
  } cases[] = {{"text_v2", &text_path, false}, {"binary_v1", &bin_path, true}};
  for (const Case& c : cases) {
    ModelFormatSeries fmt;
    fmt.name = c.name;
    Stopwatch watch;
    const Status saved = c.binary
                             ? core::SaveWeightFunctionBinary(*w.wp, *c.path)
                             : core::SaveWeightFunction(*w.wp, *c.path);
    fmt.save_seconds = watch.ElapsedSeconds();
    if (!saved.ok()) {
      std::fprintf(stderr, "%s save failed: %s\n", c.name,
                   saved.ToString().c_str());
      return false;
    }
    fmt.artifact_bytes = static_cast<size_t>(std::filesystem::file_size(*c.path));
    watch.Restart();
    auto loaded = core::LoadWeightFunction(*c.path);
    fmt.load_seconds = watch.ElapsedSeconds();
    if (!loaded.ok() || loaded.value().fingerprint() != w.wp->fingerprint()) {
      std::fprintf(stderr, "%s reload failed or fingerprint mismatch\n",
                   c.name);
      return false;
    }
    if (c.binary) {
      // The flag-guarded mmap load path (shared page-cache copy across
      // co-resident server processes), fingerprint-checked like the rest.
      watch.Restart();
      auto mapped = core::LoadWeightFunctionBinary(*c.path, /*use_mmap=*/true);
      out->mmap_load_seconds = watch.ElapsedSeconds();
      if (!mapped.ok() ||
          mapped.value().fingerprint() != w.wp->fingerprint()) {
        std::fprintf(stderr, "mmap reload failed or fingerprint mismatch\n");
        return false;
      }
    }
    out->formats.push_back(std::move(fmt));
  }
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main(int argc, char** argv) {
  using namespace pcde;
  using namespace pcde::bench;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_chain.json";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 12;

  std::printf(
      "chain microbench: building workload (dataset A, Fig. 16 mix)...\n");
  Workload w;
  std::printf("  %zu decompositions over %zu queries\n",
              w.decompositions.size(), w.queries.size());
  if (w.decompositions.empty()) {
    std::fprintf(stderr, "no decompositions; aborting\n");
    return 1;
  }

  const core::ChainOptions chain_options;
  std::vector<KernelSeries> series;

  auto paired = MeasurePaired(
      w, reps,
      [&](const core::Decomposition& de, size_t* failures, PhaseTimer* jc,
          PhaseTimer* mc) -> size_t {
        core::ChainDiagnostics diag;
        auto est =
            core::EstimateFromDecomposition(de, chain_options, &diag, jc, mc);
        if (!est.ok()) ++*failures;
        return diag.max_states;
      },
      [&](const core::Decomposition& de, size_t* failures, PhaseTimer* jc,
          PhaseTimer* mc) -> size_t {
        core::ChainDiagnostics diag;
        auto est = core::reference::ReferenceEstimateFromDecomposition(
            de, chain_options, &diag, jc, mc);
        if (!est.ok()) ++*failures;
        return diag.max_states;
      });
  series.push_back(std::move(paired.first));
  series.push_back(std::move(paired.second));

  // The serving layers below all run against the reloaded artifact — the
  // production flow. The loaded model is fingerprint-identical to the
  // built one, so every estimate is bit-identical to direct wiring over
  // w.wp.
  const std::string serving_artifact =
      MakeTempArtifactPath("pcde_bench_serving");
  if (!core::SaveWeightFunctionBinary(*w.wp, serving_artifact).ok()) {
    std::fprintf(stderr, "failed to save the serving artifact\n");
    return 1;
  }
  const ScopedFileRemover serving_cleanup(serving_artifact);
  auto open_engine = [&](size_t threads, size_t cache_bytes,
                         size_t prefix_bytes,
                         routing::PruningOptions route_pruning =
                             routing::PruningOptions())
      -> std::unique_ptr<serving::Engine> {
    serving::EngineOptions options;
    options.model_path = serving_artifact;
    options.graph = w.data->data.graph.get();
    options.num_threads = threads;
    options.query_cache_bytes = cache_bytes;
    options.prefix_cache_bytes = prefix_bytes;
    options.route_max_expansions = 150000;
    options.route_max_path_edges = 24;
    options.route_pruning = route_pruning;
    auto engine = serving::Engine::Open(std::move(options));
    if (!engine.ok()) {
      std::fprintf(stderr, "Engine::Open failed: %s\n",
                   engine.status().ToString().c_str());
      return nullptr;
    }
    return std::move(engine).value();
  };

  // The batch layer over the same queries (end-to-end per query, so
  // request resolution + OI + JC + MC + summary, amortized across the
  // pool), served through the Engine, one series per worker count.
  // ops_per_sec is wall-clock batch throughput; p50/p99 are the per-query
  // latencies BatchMetrics records inside the fan-out.
  std::vector<serving::EstimateRequest> requests;
  requests.reserve(w.queries.size());
  for (const core::PathQuery& q : w.queries) {
    serving::EstimateRequest request;
    request.path = serving::PathSpec::ExplicitPath(q.path);
    request.departure_time = q.departure_time;
    requests.push_back(std::move(request));
  }
  const int batch_reps = std::max(1, reps / 4);
  struct BatchRun {
    std::vector<double> latencies;
    double wall_seconds = 0.0;
    size_t total = 0;
    uint64_t hits = 0, misses = 0;

    KernelSeries Finish(std::string name) {
      KernelSeries out =
          KernelSeries::FromLatencies(std::move(name), std::move(latencies), 0);
      out.iterations = total;
      out.ops_per_sec =
          static_cast<double>(total) / std::max(wall_seconds, 1e-12);
      out.cache_hits = hits;
      out.cache_misses = misses;
      return out;
    }
  };
  // Both batch runners abort the bench on any failed response (like the
  // routing identity check below): an error response is produced far
  // faster than a real estimate, so counting it as a served op would
  // silently inflate ops_per_sec and the engine_batch_vs_direct gate.
  auto engine_batch_once = [&](const serving::Engine& engine,
                               BatchRun* run) -> bool {
    // The cache columns stay 0 for cacheless engines, matching the direct
    // series' convention (they carry query-cache traffic, not a synthetic
    // all-miss count).
    const bool cache_attached = engine.query_cache() != nullptr;
    Stopwatch watch;
    auto responses = engine.EstimateBatch(requests);
    run->wall_seconds += watch.ElapsedSeconds();
    run->total += responses.size();
    for (const auto& response : responses) {
      if (!response.ok()) {
        std::fprintf(stderr, "engine batch request failed: %s\n",
                     response.status().ToString().c_str());
        return false;
      }
      run->latencies.push_back(response.value().serve_seconds);
      if (cache_attached) {
        (response.value().served_from_cache ? run->hits : run->misses) += 1;
      }
    }
    return true;
  };
  auto direct_batch_once = [&](const core::HybridEstimator& estimator,
                               ThreadPool* pool, BatchRun* run) -> bool {
    Stopwatch watch;
    core::BatchMetrics metrics;
    auto results = estimator.EstimateBatch(w.queries.data(),
                                           w.queries.size(), pool, &metrics);
    run->wall_seconds += watch.ElapsedSeconds();
    run->total += results.size();
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "direct batch query failed: %s\n",
                     result.status().ToString().c_str());
        return false;
      }
    }
    run->latencies.insert(run->latencies.end(), metrics.query_seconds.begin(),
                          metrics.query_seconds.end());
    return true;
  };

  // Facade-overhead pair at one worker: the Engine batch and the direct
  // HybridEstimator batch over the same queries and pool size, interleaved
  // back to back with alternating order (the MeasurePaired discipline) so
  // the engine-vs-direct ratio is stable on noisy shared machines.
  {
    auto engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                              /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    core::HybridEstimator direct(*w.wp);
    ThreadPool direct_pool(1);
    BatchRun engine_run, direct_run;
    const int paired_reps = std::max(2, batch_reps);
    for (int r = 0; r < paired_reps; ++r) {
      const bool ok =
          r % 2 == 0
              ? engine_batch_once(*engine, &engine_run) &&
                    direct_batch_once(direct, &direct_pool, &direct_run)
              : direct_batch_once(direct, &direct_pool, &direct_run) &&
                    engine_batch_once(*engine, &engine_run);
      if (!ok) return 1;
    }
    series.push_back(engine_run.Finish("estimate_batch_threads_1"));
    series.push_back(direct_run.Finish("estimate_batch_direct_threads_1"));
  }
  for (size_t threads : {2, 4, 8}) {
    auto engine = open_engine(threads, /*cache_bytes=*/0, /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    BatchRun run;
    for (int r = 0; r < batch_reps; ++r) {
      if (!engine_batch_once(*engine, &run)) return 1;
    }
    series.push_back(
        run.Finish("estimate_batch_threads_" + std::to_string(threads)));
  }
  {
    // The cached serving path: repeated batches against the engine's query
    // cache (reps > 1 turns every repeat into hits).
    auto engine = open_engine(/*threads=*/4,
                              /*cache_bytes=*/size_t{64} << 20,
                              /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    BatchRun run;
    for (int r = 0; r < std::max(2, batch_reps); ++r) {
      if (!engine_batch_once(*engine, &run)) return 1;
    }
    series.push_back(run.Finish("estimate_batch_cached_threads_4"));
  }

  // Routing series: the DFS stochastic router over OD pairs drawn from the
  // workload paths (12-edge windows at several offsets into each 20-edge
  // path, so the OD set mixes roots and regions), measured plain, with
  // prefix chain-state reuse (core/prefix_state_cache.h), and with the
  // full pruning arsenal (routing/pruning.h). Reuse must return the same
  // routes bit for bit; the pruned search must match the plain on-time
  // probability exactly — either divergence aborts the bench.
  {
    const roadnet::Graph& graph = *w.data->data.graph;
    struct RouteCase {
      roadnet::VertexId from, to;
      double budget;
    };
    std::vector<RouteCase> cases;
    for (const core::PathQuery& q : w.queries) {
      if (q.path.size() != 20) continue;  // shortest cardinality: bounded DFS
      for (const size_t offset : {size_t{0}, size_t{4}, size_t{8}}) {
        const size_t span = 12;
        if (offset + span > q.path.size()) break;
        double free_flow = 0.0;
        for (size_t i = offset; i < offset + span; ++i) {
          free_flow += graph.edge(q.path[i]).FreeFlowSeconds();
        }
        const RouteCase rc{graph.edge(q.path[offset]).from,
                           graph.edge(q.path[offset + span - 1]).to,
                           1.15 * free_flow};
        bool dup = false;
        for (const RouteCase& c : cases) {
          dup |= c.from == rc.from && c.to == rc.to;
        }
        if (dup) continue;
        cases.push_back(rc);
        if (cases.size() >= 12) break;
      }
      if (cases.size() >= 12) break;
    }
    if (cases.empty()) {
      // An empty case set would emit zero-iteration routing series and
      // make the reuse-vs-plain identity check vacuous.
      std::fprintf(stderr, "no routing cases in the workload; aborting\n");
      return 1;
    }
    // Three configurations route through the Engine (single worker so the
    // DFS itself is measured — Engine threads=1 keeps the root fan-out
    // sequential): plain, per-branch prefix reuse, and the pruned search
    // (incumbent + dominance + cheap-first, routing/pruning.h).
    auto plain_engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                                    /*prefix_bytes=*/0);
    auto reuse_engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                                    /*prefix_bytes=*/size_t{4} << 20);
    routing::PruningOptions all_pruners;
    all_pruners.incumbent = true;
    all_pruners.dominance = true;
    all_pruners.cheap_first = true;
    auto pruned_engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                                     /*prefix_bytes=*/0, all_pruners);
    if (plain_engine == nullptr || reuse_engine == nullptr ||
        pruned_engine == nullptr) {
      return 1;
    }
    const double depart = traj::HoursToSeconds(8.2);
    // Quality parity between the pruned and plain searches is only
    // contractual for complete (non-truncated) searches — a truncated
    // search is an anytime cutoff either way — so cases that hit the
    // expansion cap (or fail) are dropped up front. Cases whose budget is
    // barely makeable (plain on-time probability < 0.5) are dropped too:
    // the pruned series measures the regime probability-bound pruning
    // targets — budgets a route can actually make — not near-infeasible
    // budgets where no incumbent can dominate anything (bench/README.md
    // documents the selection).
    {
      std::vector<RouteCase> kept;
      for (const RouteCase& c : cases) {
        serving::RouteRequest request;
        request.from = c.from;
        request.to = c.to;
        request.departure_time = depart;
        request.budget_seconds = c.budget;
        auto response = plain_engine->Route(request);
        if (response.ok() && !response.value().truncated &&
            response.value().on_time_probability >= 0.5) {
          kept.push_back(c);
        }
      }
      if (kept.empty()) {
        std::fprintf(stderr,
                     "no non-truncated routing cases in the workload; "
                     "aborting\n");
        return 1;
      }
      cases.swap(kept);
    }
    const int route_reps = std::max(2, reps / 2);
    struct RouteOutcome {
      bool ok = false;
      serving::RouteResponse response;
    };
    // Interleaved back to back per (rep, case) with rotating order, the
    // MeasurePaired discipline: shared-machine noise cancels out of the
    // series-vs-series comparisons instead of landing on one series.
    std::vector<RouteOutcome> plain, reused, pruned;
    std::vector<double> plain_lat, reuse_lat, pruned_lat;
    plain_lat.reserve(cases.size() * static_cast<size_t>(route_reps));
    reuse_lat.reserve(cases.size() * static_cast<size_t>(route_reps));
    pruned_lat.reserve(cases.size() * static_cast<size_t>(route_reps));
    auto route_once = [&](const serving::Engine& engine, const RouteCase& c,
                          std::vector<double>* latencies,
                          std::vector<RouteOutcome>* outcomes, bool record) {
      serving::RouteRequest request;
      request.from = c.from;
      request.to = c.to;
      request.departure_time = depart;
      request.budget_seconds = c.budget;
      Stopwatch watch;
      auto response = engine.Route(request);
      latencies->push_back(watch.ElapsedSeconds());
      if (record) {
        RouteOutcome outcome;
        outcome.ok = response.ok();
        if (response.ok()) outcome.response = std::move(response).value();
        outcomes->push_back(std::move(outcome));
      }
    };
    struct Contender {
      const serving::Engine* engine;
      std::vector<double>* latencies;
      std::vector<RouteOutcome>* outcomes;
    };
    const Contender contenders[3] = {
        {plain_engine.get(), &plain_lat, &plain},
        {reuse_engine.get(), &reuse_lat, &reused},
        {pruned_engine.get(), &pruned_lat, &pruned},
    };
    for (int r = 0; r < route_reps; ++r) {
      for (size_t i = 0; i < cases.size(); ++i) {
        const RouteCase& c = cases[i];
        const bool record = r == 0;
        const size_t first = (static_cast<size_t>(r) + i) % 3;
        for (size_t k = 0; k < 3; ++k) {
          const Contender& t = contenders[(first + k) % 3];
          route_once(*t.engine, c, t.latencies, t.outcomes, record);
        }
      }
    }
    series.push_back(
        KernelSeries::FromLatencies("route_dfs", std::move(plain_lat), 0));
    KernelSeries reuse_series = KernelSeries::FromLatencies(
        "route_dfs_prefix_reuse", std::move(reuse_lat), 0);
    // The reuse series' cache columns carry the prefix-state traffic of
    // the recorded routes (first rep per case).
    for (const RouteOutcome& o : reused) {
      if (!o.ok) continue;
      reuse_series.cache_hits += o.response.prefix_cache_hits;
      reuse_series.cache_misses += o.response.prefix_cache_misses;
    }
    series.push_back(std::move(reuse_series));
    KernelSeries pruned_series = KernelSeries::FromLatencies(
        "route_dfs_pruned", std::move(pruned_lat), 0);
    // Per-pruner attribution of the recorded routes.
    for (const RouteOutcome& o : pruned) {
      if (!o.ok) continue;
      pruned_series.bound_pruned += o.response.bound_pruned;
      pruned_series.incumbent_pruned += o.response.incumbent_pruned;
      pruned_series.dominance_pruned += o.response.dominance_pruned;
      pruned_series.estimator_clones += o.response.estimator_clones;
    }
    series.push_back(std::move(pruned_series));
    for (size_t i = 0; i < plain.size(); ++i) {
      // Prefix reuse is bit-identical (probability and path); the pruned
      // search guarantees the exact probability, while cheap-first
      // expansion ordering may resolve an exact probability tie to a
      // different equally-good path.
      const bool reuse_same =
          plain[i].ok == reused[i].ok &&
          (!plain[i].ok ||
           (plain[i].response.on_time_probability ==
                reused[i].response.on_time_probability &&
            plain[i].response.best_path == reused[i].response.best_path));
      if (!reuse_same) {
        std::fprintf(stderr,
                     "routing with prefix reuse diverged on case %zu\n", i);
        return 1;
      }
      const bool pruned_same =
          plain[i].ok == pruned[i].ok &&
          (!plain[i].ok || plain[i].response.on_time_probability ==
                               pruned[i].response.on_time_probability);
      if (!pruned_same) {
        std::fprintf(stderr,
                     "pruned routing lost quality parity on case %zu "
                     "(plain p=%.17g pruned ok=%d p=%.17g)\n",
                     i, plain[i].ok ? plain[i].response.on_time_probability : -1.0,
                     static_cast<int>(pruned[i].ok),
                     pruned[i].ok ? pruned[i].response.on_time_probability : -1.0);
        return 1;
      }
    }
  }

  // Refresh series (zero-downtime model refresh, tests/refresh_fault_test.cc
  // is the correctness side): a second model generation — the speed-limit-
  // only baseline a fresh deployment serves before trajectories arrive — is
  // saved next to the data artifact, and Engine::Swap alternates between
  // the two generations so no swap short-circuits on the already-served
  // header checksum.
  core::HybridParams alt_params;
  alt_params.beta = 20;
  const core::PathWeightFunction alt_model = core::InstantiateWeightFunction(
      *w.data->data.graph, traj::TrajectoryStore(), alt_params);
  if (alt_model.fingerprint() == w.wp->fingerprint()) {
    std::fprintf(stderr, "refresh generations share a fingerprint; aborting\n");
    return 1;
  }
  const std::string alt_artifact = MakeTempArtifactPath("pcde_bench_refresh");
  if (!core::SaveWeightFunctionBinary(alt_model, alt_artifact).ok()) {
    std::fprintf(stderr, "failed to save the refresh artifact\n");
    return 1;
  }
  const ScopedFileRemover alt_cleanup(alt_artifact);
  {
    // swap_publish: wall time of one Engine::Swap end to end — artifact
    // read + validation + epoch wiring + atomic publish. This is the
    // refresh path's full cost; requests never wait on it (they pin the
    // old epoch), so it is a throughput tax, not a latency cliff.
    auto engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                              /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    std::vector<double> swap_lat;
    const int swap_reps = std::max(8, reps);
    swap_lat.reserve(2 * static_cast<size_t>(swap_reps));
    for (int r = 0; r < swap_reps; ++r) {
      for (const std::string* artifact : {&alt_artifact, &serving_artifact}) {
        Stopwatch watch;
        auto sequence = engine->Swap(*artifact);
        swap_lat.push_back(watch.ElapsedSeconds());
        if (!sequence.ok()) {
          std::fprintf(stderr, "Engine::Swap failed: %s\n",
                       sequence.status().ToString().c_str());
          return 1;
        }
      }
    }
    series.push_back(
        KernelSeries::FromLatencies("swap_publish", std::move(swap_lat), 0));
  }
  {
    // swap_verified_publish: the same alternating Engine::Swap, but every
    // candidate must answer K=8 golden probe queries bit-identically to
    // references stamped per generation before it publishes
    // (SwapPolicy probe verification, tests/fault_sweep_test.cc is the
    // correctness side). Paired against swap_publish this prices the
    // pre-publish verification; ci.sh gates the ratio at <= 2x. The run
    // aborts on any probe divergence — the references were stamped from
    // the very generations being republished, so a divergence means the
    // serving path broke.
    const size_t kProbes = 8;
    // Cheapest workload queries (shortest paths) keep the probe cost the
    // floor a deployment would actually pay.
    std::vector<size_t> by_cost(w.queries.size());
    for (size_t i = 0; i < by_cost.size(); ++i) by_cost[i] = i;
    std::sort(by_cost.begin(), by_cost.end(), [&](size_t a, size_t b) {
      return w.queries[a].path.size() < w.queries[b].path.size();
    });
    by_cost.resize(std::min(kProbes, by_cost.size()));
    // References are stamped per generation, from an engine serving it.
    auto stamp_probes =
        [&](const std::string& artifact,
            std::vector<serving::GoldenProbe>* probes) -> bool {
      serving::EngineOptions options;
      options.model_path = artifact;
      options.graph = w.data->data.graph.get();
      options.num_threads = 1;
      options.query_cache_bytes = 0;
      auto ref = serving::Engine::Open(std::move(options));
      if (!ref.ok()) {
        std::fprintf(stderr, "reference Engine::Open failed: %s\n",
                     ref.status().ToString().c_str());
        return false;
      }
      for (size_t i : by_cost) {
        serving::GoldenProbe probe;
        probe.request = requests[i];
        auto response = ref.value()->Estimate(probe.request);
        if (!response.ok()) {
          std::fprintf(stderr, "probe reference estimate failed: %s\n",
                       response.status().ToString().c_str());
          return false;
        }
        probe.has_reference = true;
        probe.reference = response.value().summary;
        probes->push_back(std::move(probe));
      }
      return true;
    };
    serving::SwapOptions verified_alt, verified_serving;
    if (!stamp_probes(alt_artifact, &verified_alt.probes) ||
        !stamp_probes(serving_artifact, &verified_serving.probes)) {
      return 1;
    }
    auto engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                              /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    std::vector<double> swap_lat;
    const int swap_reps = std::max(8, reps);
    swap_lat.reserve(2 * static_cast<size_t>(swap_reps));
    for (int r = 0; r < swap_reps; ++r) {
      for (const auto& step :
           {std::make_pair(&alt_artifact, &verified_alt),
            std::make_pair(&serving_artifact, &verified_serving)}) {
        Stopwatch watch;
        auto sequence = engine->Swap(*step.first, *step.second);
        swap_lat.push_back(watch.ElapsedSeconds());
        if (!sequence.ok()) {
          std::fprintf(stderr, "verified Engine::Swap failed: %s\n",
                       sequence.status().ToString().c_str());
          return 1;
        }
      }
    }
    series.push_back(KernelSeries::FromLatencies("swap_verified_publish",
                                                 std::move(swap_lat), 0));
  }
  {
    // estimate_steady vs estimate_during_swap: identical Engine batches,
    // the second run while a refresher thread republishes alternating
    // generations in a tight loop. The pair bounds the serving-latency
    // cost of continuous refresh (epoch loads + old-epoch teardown on the
    // same box); every response must still succeed — zero-downtime means
    // the swap churn is never visible as an error.
    auto engine = open_engine(/*threads=*/2, /*cache_bytes=*/0,
                              /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    // Enough batches that several epochs publish inside the measured
    // window (a swap costs ~swap_publish p50, so two batches would see
    // only a transition or two). The mixed-generation latencies are the
    // point: p50 reflects whichever generation answered, p99 carries the
    // churn interference — and the run aborts on any failed response,
    // the zero-downtime requirement.
    const int refresh_reps = std::max(6, batch_reps);
    BatchRun steady;
    for (int r = 0; r < refresh_reps; ++r) {
      if (!engine_batch_once(*engine, &steady)) return 1;
    }
    series.push_back(steady.Finish("estimate_steady"));
    std::atomic<bool> stop{false};
    std::atomic<bool> swap_failed{false};
    std::atomic<uint64_t> swaps{0};
    std::thread refresher([&]() {
      int generation = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& next =
            generation++ % 2 == 0 ? alt_artifact : serving_artifact;
        if (!engine->Swap(next).ok()) {
          swap_failed.store(true, std::memory_order_relaxed);
          return;
        }
        swaps.fetch_add(1, std::memory_order_relaxed);
      }
    });
    BatchRun churn;
    bool batches_ok = true;
    for (int r = 0; r < refresh_reps && batches_ok; ++r) {
      batches_ok = engine_batch_once(*engine, &churn);
    }
    stop.store(true, std::memory_order_relaxed);
    refresher.join();
    if (!batches_ok) return 1;
    if (swap_failed.load()) {
      std::fprintf(stderr, "refresher swap failed during churn\n");
      return 1;
    }
    series.push_back(churn.Finish("estimate_during_swap"));
    std::printf("  refresher published %llu epochs under estimate_during_swap\n",
                static_cast<unsigned long long>(swaps.load()));
  }

  // Degradation series: serving cost of the sparse-coverage fallback
  // ladder. A model covering only part of one workload path (unit
  // speed-limit variables copied from the baseline generation) forces the
  // two degraded regimes — maximal covered sub-path runs, and per-edge
  // convolution — and the bench aborts unless every response reports
  // exactly the expected provenance.
  {
    const core::PathQuery* sparse_query = nullptr;
    for (const core::PathQuery& q : w.queries) {
      if (q.path.size() == 20) {
        sparse_query = &q;
        break;
      }
    }
    if (sparse_query == nullptr) {
      std::fprintf(stderr, "no cardinality-20 query for fallback series\n");
      return 1;
    }
    auto sparse_engine = [&](const std::vector<size_t>& covered)
        -> std::unique_ptr<serving::Engine> {
      core::WeightFunctionBuilder builder(alt_model.binning());
      for (size_t pos : covered) {
        const core::InstantiatedVariable* v = alt_model.Lookup(
            roadnet::Path({sparse_query->path[pos]}), core::kAllDayInterval);
        if (v == nullptr) {
          std::fprintf(stderr, "no unit variable at position %zu\n", pos);
          return nullptr;
        }
        builder.Add(*v);
      }
      serving::EngineOptions options;
      options.graph = w.data->data.graph.get();
      options.num_threads = 1;
      options.query_cache_bytes = 0;
      auto engine = serving::Engine::Open(std::move(builder).Freeze(),
                                          std::move(options));
      if (!engine.ok()) {
        std::fprintf(stderr, "sparse Engine::Open failed: %s\n",
                     engine.status().ToString().c_str());
        return nullptr;
      }
      return std::move(engine).value();
    };
    auto measure_fallback = [&](const serving::Engine& engine,
                                core::DegradationLevel expected,
                                const char* name) -> bool {
      serving::EstimateRequest request;
      request.path = serving::PathSpec::ExplicitPath(sparse_query->path);
      request.departure_time = sparse_query->departure_time;
      const int iters = std::max(64, reps * 8);
      std::vector<double> lat;
      lat.reserve(static_cast<size_t>(iters));
      for (int i = 0; i < iters; ++i) {
        Stopwatch watch;
        auto response = engine.Estimate(request);
        lat.push_back(watch.ElapsedSeconds());
        if (!response.ok()) {
          std::fprintf(stderr, "%s: estimate failed: %s\n", name,
                       response.status().ToString().c_str());
          return false;
        }
        if (response.value().summary.degradation != expected) {
          std::fprintf(stderr, "%s: unexpected degradation level\n", name);
          return false;
        }
      }
      series.push_back(KernelSeries::FromLatencies(name, std::move(lat), 0));
      return true;
    };
    // One 10-edge covered prefix run -> the sub-path rung; isolated covered
    // singles -> the per-edge convolution rung.
    std::vector<size_t> prefix_half, even_singles;
    for (size_t pos = 0; pos < sparse_query->path.size(); ++pos) {
      if (pos < sparse_query->path.size() / 2) prefix_half.push_back(pos);
      if (pos % 2 == 0) even_singles.push_back(pos);
    }
    auto subpath_engine = sparse_engine(prefix_half);
    auto edge_engine = sparse_engine(even_singles);
    if (subpath_engine == nullptr || edge_engine == nullptr) return 1;
    if (!measure_fallback(*subpath_engine, core::DegradationLevel::kSubpath,
                          "fallback_subpath") ||
        !measure_fallback(*edge_engine, core::DegradationLevel::kEdge,
                          "fallback_edge")) {
      return 1;
    }
  }

  // Deadline-overshoot series (ISSUE 7): how far past its deadline a
  // cooperatively-cancelled estimate runs before unwinding. The slowest
  // workload query gets a deadline at a fraction of its own unconstrained
  // latency, so the trip lands mid-sweep; the recorded "latency" of each
  // tripped request is its overshoot (elapsed - timeout). Cooperative
  // checkpoints are per chain-part transition, so the overshoot must sit
  // far below the unconstrained latency (a request-granularity
  // implementation would overshoot by the full remaining estimate);
  // scripts/ci.sh gates p50 overshoot < 0.5x the unconstrained p50.
  {
    auto engine = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                              /*prefix_bytes=*/0);
    if (engine == nullptr) return 1;
    // The slowest query: longest path served through the engine.
    const core::PathQuery* slow = &w.queries.front();
    for (const core::PathQuery& q : w.queries) {
      if (q.path.size() > slow->path.size()) slow = &q;
    }
    serving::EstimateRequest request;
    request.path = serving::PathSpec::ExplicitPath(slow->path);
    request.departure_time = slow->departure_time;
    const int deadline_iters = std::max(128, reps * 16);
    std::vector<double> baseline_lat, overshoot_lat;
    baseline_lat.reserve(static_cast<size_t>(deadline_iters));
    overshoot_lat.reserve(static_cast<size_t>(deadline_iters));
    // Warm-up pass pins the unconstrained latency the timeouts scale from.
    double unconstrained = 0.0;
    {
      std::vector<double> warm;
      for (int i = 0; i < 16; ++i) {
        Stopwatch watch;
        auto response = engine->Estimate(request);
        warm.push_back(watch.ElapsedSeconds());
        if (!response.ok()) {
          std::fprintf(stderr, "deadline warmup estimate failed: %s\n",
                       response.status().ToString().c_str());
          return 1;
        }
      }
      std::sort(warm.begin(), warm.end());
      unconstrained = warm[warm.size() / 2];
    }
    const double fractions[] = {0.25, 0.5, 0.75};
    size_t completed_anyway = 0;
    for (int i = 0; i < deadline_iters; ++i) {
      // Interleave a baseline run with every deadline run (the
      // MeasurePaired discipline), so the overshoot-vs-baseline ratio is
      // taken under the same machine conditions.
      Stopwatch base_watch;
      auto base = engine->Estimate(request);
      baseline_lat.push_back(base_watch.ElapsedSeconds());
      if (!base.ok()) {
        std::fprintf(stderr, "deadline baseline estimate failed: %s\n",
                     base.status().ToString().c_str());
        return 1;
      }
      serving::EstimateRequest dead = request;
      dead.timeout_seconds =
          unconstrained * fractions[static_cast<size_t>(i) % 3];
      Stopwatch watch;
      auto response = engine->Estimate(dead);
      const double elapsed = watch.ElapsedSeconds();
      if (response.ok()) {
        ++completed_anyway;  // finished before the deadline: no overshoot
        continue;
      }
      if (response.status().code() != StatusCode::kDeadlineExceeded) {
        std::fprintf(stderr, "deadline run failed with %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      overshoot_lat.push_back(std::max(0.0, elapsed - dead.timeout_seconds));
    }
    if (overshoot_lat.empty()) {
      std::fprintf(stderr, "no deadline ever tripped; aborting\n");
      return 1;
    }
    if (completed_anyway > 0) {
      std::printf("  deadline series: %zu/%d runs finished under deadline\n",
                  completed_anyway, deadline_iters);
    }
    series.push_back(KernelSeries::FromLatencies(
        "estimate_deadline_baseline", std::move(baseline_lat), 0));
    series.push_back(KernelSeries::FromLatencies(
        "estimate_deadline_overshoot", std::move(overshoot_lat), 0));
  }

  // Overload-shed series (ISSUE 7): the cost of rejecting a request at
  // admission. Client threads hammer a 1-slot engine; every shed response's
  // latency is recorded — shedding must stay microseconds (the whole point
  // of admission control is that overload rejection is orders of magnitude
  // cheaper than serving), and ops_per_sec is the shed decision rate.
  {
    serving::EngineOptions options;
    options.model_path = serving_artifact;
    options.graph = w.data->data.graph.get();
    options.num_threads = 2;
    options.query_cache_bytes = 0;
    options.max_inflight_requests = 1;  // hard shed at the door
    auto opened = serving::Engine::Open(std::move(options));
    if (!opened.ok()) {
      std::fprintf(stderr, "overload Engine::Open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    serving::Engine& engine = *opened.value();
    serving::EstimateRequest request;
    request.path = serving::PathSpec::ExplicitPath(w.queries.front().path);
    request.departure_time = w.queries.front().departure_time;
    constexpr size_t kShedClients = 4;
    constexpr size_t kTargetSheds = 512;
    std::atomic<bool> stop{false};
    std::atomic<bool> bad_status{false};
    std::vector<std::vector<double>> shed_lat(kShedClients);
    std::vector<std::thread> clients;
    clients.reserve(kShedClients);
    for (size_t c = 0; c < kShedClients; ++c) {
      clients.emplace_back([&, c] {
        while (!stop.load(std::memory_order_relaxed)) {
          Stopwatch watch;
          auto response = engine.Estimate(request);
          const double elapsed = watch.ElapsedSeconds();
          if (response.ok()) continue;
          if (response.status().code() != StatusCode::kResourceExhausted) {
            bad_status.store(true, std::memory_order_relaxed);
            return;
          }
          shed_lat[c].push_back(elapsed);
        }
      });
    }
    Stopwatch storm;
    while (storm.ElapsedSeconds() < 5.0) {
      size_t sheds = 0;
      for (const auto& lane : shed_lat) sheds += lane.size();
      if (sheds >= kTargetSheds || bad_status.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true);
    for (std::thread& t : clients) t.join();
    if (bad_status.load()) {
      std::fprintf(stderr, "overload storm saw a non-shed failure\n");
      return 1;
    }
    std::vector<double> all_sheds;
    for (auto& lane : shed_lat) {
      all_sheds.insert(all_sheds.end(), lane.begin(), lane.end());
    }
    if (all_sheds.empty()) {
      std::fprintf(stderr, "overload storm never shed; aborting\n");
      return 1;
    }
    const auto admission_stats = engine.stats();
    KernelSeries shed_series = KernelSeries::FromLatencies(
        "overload_shed", std::move(all_sheds), 0);
    // The cache columns carry the storm's admission traffic: hits =
    // admitted, misses = shed (schema note in bench/README.md).
    shed_series.cache_hits = admission_stats.admitted;
    shed_series.cache_misses = admission_stats.shed;
    series.push_back(std::move(shed_series));
  }

  // Sharded-serving series (ISSUE 10): split the workload model into two
  // per-region shards, then serve through serving::ShardedEngine.
  //  * sharded_estimate / sharded_estimate_mono: the same single-shard-hit
  //    requests (each workload path's maximal prefix inside its owning
  //    shard) served through the sharded front door and the monolithic
  //    Engine, interleaved back to back; any summary that is not
  //    bit-identical aborts the bench, so the sharded_vs_mono headline
  //    certifies equivalence as well as pricing the routing layer.
  //  * sharded_estimate_cross: full workload paths that cross the shard
  //    boundary, served through the stitch; every response must carry the
  //    degraded provenance the stitch contract promises.
  //  * The footprint record: after serving (both shards attached), the
  //    largest shard's resident bytes must sit strictly below the
  //    monolithic model's.
  ShardedFootprint sharded_footprint;
  {
    struct Cleanup {
      std::vector<std::string> paths;
      ~Cleanup() {
        for (const std::string& p : paths) std::remove(p.c_str());
      }
    } cleanup;
    const std::string manifest_path =
        MakeTempArtifactPath("pcde_bench_shards", ".pcdemf");
    cleanup.paths.push_back(manifest_path);
    core::ShardWriteOptions shard_options;
    shard_options.num_shards = 2;
    shard_options.file_prefix =
        "pcde_bench_shards." + std::to_string(::getpid());
    auto split = core::WriteModelShards(*w.wp, manifest_path, shard_options);
    if (!split.ok()) {
      std::fprintf(stderr, "WriteModelShards failed: %s\n",
                   split.status().ToString().c_str());
      return 1;
    }
    const core::ShardManifest& manifest = split.value();
    for (const core::ShardInfo& shard : manifest.shards) {
      cleanup.paths.push_back(
          (std::filesystem::temp_directory_path() / shard.file).string());
    }
    serving::ShardedEngineOptions sharded_options;
    sharded_options.engine.graph = w.data->data.graph.get();
    sharded_options.engine.num_threads = 1;
    sharded_options.engine.query_cache_bytes = 0;
    auto opened = serving::ShardedEngine::Open(manifest_path, sharded_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "ShardedEngine::Open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    const std::unique_ptr<serving::ShardedEngine> sharded =
        std::move(opened).value();
    auto mono = open_engine(/*threads=*/1, /*cache_bytes=*/0,
                            /*prefix_bytes=*/0);
    if (mono == nullptr) return 1;

    // Single-shard-hit requests: each workload path's maximal prefix whose
    // edges share one owning shard (length >= 1 by construction, so the
    // set is never empty). Cross-shard requests: the full paths that span
    // both shards.
    std::vector<serving::EstimateRequest> single_hit, cross;
    for (const core::PathQuery& q : w.queries) {
      const size_t owner = manifest.ShardOf(q.path[0]);
      size_t prefix = 1;
      while (prefix < q.path.size() &&
             manifest.ShardOf(q.path[prefix]) == owner) {
        ++prefix;
      }
      serving::EstimateRequest request;
      request.path =
          serving::PathSpec::ExplicitPath(q.path.Slice(0, prefix));
      request.departure_time = q.departure_time;
      single_hit.push_back(std::move(request));
      if (prefix < q.path.size()) {
        serving::EstimateRequest full;
        full.path = serving::PathSpec::ExplicitPath(q.path);
        full.departure_time = q.departure_time;
        cross.push_back(std::move(full));
      }
    }
    // Warm both engines untimed so the series price steady-state routing,
    // not the one-time lazy shard attach (milliseconds against a
    // microsecond-scale request mean).
    for (const serving::EstimateRequest& request : single_hit) {
      if (!sharded->Estimate(request).ok() || !mono->Estimate(request).ok()) {
        std::fprintf(stderr, "sharded warm-up estimate failed\n");
        return 1;
      }
    }
    for (const serving::EstimateRequest& request : cross) {
      if (!sharded->Estimate(request).ok()) {
        std::fprintf(stderr, "cross-shard warm-up estimate failed\n");
        return 1;
      }
    }
    const int sharded_reps = std::max(2, reps / 4);
    std::vector<double> sharded_lat, mono_lat;
    sharded_lat.reserve(single_hit.size() * static_cast<size_t>(sharded_reps));
    mono_lat.reserve(single_hit.size() * static_cast<size_t>(sharded_reps));
    auto serve_once = [](const auto& engine,
                         const serving::EstimateRequest& request,
                         std::vector<double>* latencies,
                         serving::CostSummary* summary) -> bool {
      Stopwatch watch;
      auto response = engine.Estimate(request);
      latencies->push_back(watch.ElapsedSeconds());
      if (!response.ok()) {
        std::fprintf(stderr, "sharded series estimate failed: %s\n",
                     response.status().ToString().c_str());
        return false;
      }
      *summary = response.value().summary;
      return true;
    };
    for (int r = 0; r < sharded_reps; ++r) {
      for (size_t i = 0; i < single_hit.size(); ++i) {
        const serving::EstimateRequest& request = single_hit[i];
        serving::CostSummary from_sharded, from_mono;
        bool ok;
        if ((static_cast<size_t>(r) + i) % 2 == 0) {
          ok = serve_once(*sharded, request, &sharded_lat, &from_sharded) &&
               serve_once(*mono, request, &mono_lat, &from_mono);
        } else {
          ok = serve_once(*mono, request, &mono_lat, &from_mono) &&
               serve_once(*sharded, request, &sharded_lat, &from_sharded);
        }
        if (!ok) return 1;
        if (!from_sharded.ExactlyEquals(from_mono)) {
          std::fprintf(stderr,
                       "sharded serving diverged from monolithic on "
                       "single-shard request %zu\n",
                       i);
          return 1;
        }
      }
    }
    series.push_back(KernelSeries::FromLatencies("sharded_estimate",
                                                 std::move(sharded_lat), 0));
    series.push_back(KernelSeries::FromLatencies("sharded_estimate_mono",
                                                 std::move(mono_lat), 0));
    if (!cross.empty()) {
      std::vector<double> cross_lat;
      cross_lat.reserve(cross.size());
      for (const serving::EstimateRequest& request : cross) {
        Stopwatch watch;
        auto response = sharded->Estimate(request);
        cross_lat.push_back(watch.ElapsedSeconds());
        if (!response.ok()) {
          std::fprintf(stderr, "cross-shard estimate failed: %s\n",
                       response.status().ToString().c_str());
          return 1;
        }
        if (response.value().summary.degradation <
            core::DegradationLevel::kSubpath) {
          std::fprintf(stderr,
                       "cross-shard response claims undegraded provenance\n");
          return 1;
        }
      }
      series.push_back(KernelSeries::FromLatencies("sharded_estimate_cross",
                                                   std::move(cross_lat), 0));
    }
    sharded_footprint.num_shards = sharded->num_shards();
    sharded_footprint.resident_bytes_max_shard =
        sharded->MaxShardResidentBytes();
    sharded_footprint.mono_resident_bytes = mono->model().ResidentBytes();
    if (sharded->resident_shards() < sharded->num_shards()) {
      std::fprintf(stderr,
                   "sharded workload left a shard unattached; footprint "
                   "record would be vacuous\n");
      return 1;
    }
    if (sharded_footprint.resident_bytes_max_shard >=
        sharded_footprint.mono_resident_bytes) {
      std::fprintf(stderr,
                   "max shard resident bytes (%zu) not below monolithic "
                   "(%zu)\n",
                   sharded_footprint.resident_bytes_max_shard,
                   sharded_footprint.mono_resident_bytes);
      return 1;
    }
    std::printf(
        "  sharded footprint: max shard %.2f MB vs monolithic %.2f MB "
        "(%zu shards, %zu cross-shard requests)\n",
        static_cast<double>(sharded_footprint.resident_bytes_max_shard) /
            (1024.0 * 1024.0),
        static_cast<double>(sharded_footprint.mono_resident_bytes) /
            (1024.0 * 1024.0),
        sharded_footprint.num_shards, cross.size());
  }

  for (const KernelSeries& s : series) {
    std::printf("  %-32s %8zu its  %10.1f ops/s  p50 %8.3f ms  p99 %8.3f ms"
                "  max_states %zu  jc %.3fs  mc %.3fs",
                s.name.c_str(), s.iterations, s.ops_per_sec, s.p50_ms,
                s.p99_ms, s.max_states, s.jc_seconds, s.mc_seconds);
    if (s.cache_hits + s.cache_misses > 0) {
      std::printf("  cache %llu/%llu hits",
                  static_cast<unsigned long long>(s.cache_hits),
                  static_cast<unsigned long long>(s.cache_hits +
                                                  s.cache_misses));
    }
    std::printf("\n");
  }
  const double speedup =
      series[1].ops_per_sec > 0.0 ? series[0].ops_per_sec / series[1].ops_per_sec
                                  : 0.0;
  std::printf("speedup (chain_sweep vs reference): %.2fx\n", speedup);

  // The model series: build/save/load/footprint of the frozen model, the
  // offline-build / online-serve cost record.
  ModelSeries model;
  if (!MeasureModelSeries(w, &model)) return 1;
  std::printf("model: %zu variables, built in %.2f s, resident %.2f MB\n",
              model.num_variables, model.build_seconds,
              static_cast<double>(model.resident_bytes) / (1024.0 * 1024.0));
  for (const ModelFormatSeries& fmt : model.formats) {
    std::printf("  %-10s save %7.1f ms  load %7.1f ms  artifact %.2f MB\n",
                fmt.name.c_str(), fmt.save_seconds * 1e3,
                fmt.load_seconds * 1e3,
                static_cast<double>(fmt.artifact_bytes) / (1024.0 * 1024.0));
  }
  std::printf("binary load speedup vs text: %.1fx\n",
              model.BinaryLoadSpeedupVsText());

  if (!WriteChainBenchJson(out_path, "chain_estimation", series, &model,
                           &sharded_footprint)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
