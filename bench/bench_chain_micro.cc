// Chain-estimation microbench: isolates the Eq. 2 sweep (the JC phase that
// dominates Figs. 16-17) on pre-built decompositions of data-rich query
// paths, measures the rewritten ChainSweeper against the pre-rewrite
// reference kernel, and the batch estimation layer on top, then writes the
// BENCH_chain.json perf record at the path given by argv[1] (default:
// ./BENCH_chain.json). See bench/README.md for the schema.
//
// Usage: bench_chain_micro [output.json] [reps]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/chain_estimator_reference.h"
#include "core/serialization.h"
#include "routing/stochastic_router.h"

namespace pcde {
namespace bench {
namespace {

struct Workload {
  std::unique_ptr<BenchDataset> data;
  std::unique_ptr<core::PathWeightFunction> wp;
  std::vector<core::Decomposition> decompositions;
  std::vector<core::PathQuery> queries;
  core::InstantiationStats build_stats;

  Workload() {
    data = std::make_unique<BenchDataset>(MakeA());
    core::HybridParams params;
    params.beta = 20;  // the Fig. 16 instantiation
    wp = std::make_unique<core::PathWeightFunction>(
        core::InstantiateWeightFunction(*data->data.graph, data->store,
                                        params, &build_stats));
    // The Fig. 16 method mix: OD plus the chain-heavy HP and OD-2
    // baselines (rank-2 parts with a separator at every step are the
    // sweep's hot regime).
    core::EstimateOptions od, od2, hp;
    od2.rank_cap = 2;
    hp.policy = core::DecompositionPolicy::kPairwise;
    const double depart = traj::HoursToSeconds(8.2);
    Rng rng(616);
    for (size_t card : {20, 40, 60, 80}) {
      for (int i = 0; i < 4; ++i) {
        auto p = DataBiasedRandomPath(*data->data.graph, data->store, card,
                                      &rng);
        if (!p.ok()) continue;
        for (const core::EstimateOptions& options : {od, od2, hp}) {
          const core::HybridEstimator estimator(*wp, options);
          auto de = estimator.Decompose(p.value(), depart);
          if (!de.ok()) continue;
          queries.push_back(core::PathQuery{p.value(), depart});
          decompositions.push_back(std::move(de).value());
        }
      }
    }
  }
};

struct KernelRun {
  std::vector<double> latencies;
  size_t max_states = 0;
  size_t failures = 0;
  PhaseTimer jc, mc;

  KernelSeries Finish(const char* name) {
    if (failures > 0) {
      std::fprintf(stderr, "%s: %zu estimations failed\n", name, failures);
    }
    KernelSeries out =
        KernelSeries::FromLatencies(name, std::move(latencies), max_states);
    out.jc_seconds = jc.total_seconds();
    out.mc_seconds = mc.total_seconds();
    return out;
  }
};

template <typename EstimateFn>
void MeasureOne(KernelRun* run, const core::Decomposition& de,
                EstimateFn&& estimate) {
  Stopwatch watch;
  const size_t states = estimate(de, &run->failures, &run->jc, &run->mc);
  run->latencies.push_back(watch.ElapsedSeconds());
  run->max_states = std::max(run->max_states, states);
}

/// Measures both kernels interleaved, back to back on each decomposition
/// with alternating order, so machine noise (shared single-core boxes)
/// cancels out of the speedup ratio instead of landing on whichever
/// kernel ran in the noisier window.
template <typename NewFn, typename RefFn>
std::pair<KernelSeries, KernelSeries> MeasurePaired(const Workload& w,
                                                    int reps, NewFn&& fn_new,
                                                    RefFn&& fn_ref) {
  KernelRun run_new, run_ref;
  const size_t total =
      w.decompositions.size() * static_cast<size_t>(reps);
  run_new.latencies.reserve(total);
  run_ref.latencies.reserve(total);
  for (int r = 0; r < reps; ++r) {
    for (size_t i = 0; i < w.decompositions.size(); ++i) {
      const core::Decomposition& de = w.decompositions[i];
      if ((static_cast<size_t>(r) + i) % 2 == 0) {
        MeasureOne(&run_new, de, fn_new);
        MeasureOne(&run_ref, de, fn_ref);
      } else {
        MeasureOne(&run_ref, de, fn_ref);
        MeasureOne(&run_new, de, fn_new);
      }
    }
  }
  return {run_new.Finish("chain_sweep"),
          run_ref.Finish("chain_sweep_reference")};
}

/// The model series: offline build seconds, save/load latency and artifact
/// size per format, and the serving-resident footprint of the frozen model.
/// Every reload is checked against the built model's fingerprint — a
/// mismatch means the artifact path is broken, so the bench aborts.
bool MeasureModelSeries(const Workload& w, ModelSeries* out) {
  out->num_variables = w.wp->NumVariables();
  out->resident_bytes = w.wp->ResidentBytes();
  out->build_seconds = w.build_stats.build_seconds;
  // PID-suffixed names so concurrent runs on one host (CI + a developer
  // bench) cannot clobber each other's artifacts mid save/load.
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string suffix = std::to_string(::getpid());
  const std::string text_path =
      (tmp / ("pcde_bench_model." + suffix + ".txt")).string();
  const std::string bin_path =
      (tmp / ("pcde_bench_model." + suffix + ".pcdewf")).string();
  struct Case {
    const char* name;
    const std::string* path;
    bool binary;
  } cases[] = {{"text_v2", &text_path, false}, {"binary_v1", &bin_path, true}};
  for (const Case& c : cases) {
    ModelFormatSeries fmt;
    fmt.name = c.name;
    Stopwatch watch;
    const Status saved = c.binary
                             ? core::SaveWeightFunctionBinary(*w.wp, *c.path)
                             : core::SaveWeightFunction(*w.wp, *c.path);
    fmt.save_seconds = watch.ElapsedSeconds();
    if (!saved.ok()) {
      std::fprintf(stderr, "%s save failed: %s\n", c.name,
                   saved.ToString().c_str());
      return false;
    }
    fmt.artifact_bytes = static_cast<size_t>(std::filesystem::file_size(*c.path));
    watch.Restart();
    auto loaded = core::LoadWeightFunction(*c.path);
    fmt.load_seconds = watch.ElapsedSeconds();
    if (!loaded.ok() || loaded.value().fingerprint() != w.wp->fingerprint()) {
      std::fprintf(stderr, "%s reload failed or fingerprint mismatch\n",
                   c.name);
      return false;
    }
    if (c.binary) {
      // The flag-guarded mmap load path (shared page-cache copy across
      // co-resident server processes), fingerprint-checked like the rest.
      watch.Restart();
      auto mapped = core::LoadWeightFunctionBinary(*c.path, /*use_mmap=*/true);
      out->mmap_load_seconds = watch.ElapsedSeconds();
      if (!mapped.ok() ||
          mapped.value().fingerprint() != w.wp->fingerprint()) {
        std::fprintf(stderr, "mmap reload failed or fingerprint mismatch\n");
        return false;
      }
    }
    std::remove(c.path->c_str());
    out->formats.push_back(std::move(fmt));
  }
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main(int argc, char** argv) {
  using namespace pcde;
  using namespace pcde::bench;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_chain.json";
  const int reps = argc > 2 ? std::atoi(argv[2]) : 12;

  std::printf(
      "chain microbench: building workload (dataset A, Fig. 16 mix)...\n");
  Workload w;
  std::printf("  %zu decompositions over %zu queries\n",
              w.decompositions.size(), w.queries.size());
  if (w.decompositions.empty()) {
    std::fprintf(stderr, "no decompositions; aborting\n");
    return 1;
  }

  const core::ChainOptions chain_options;
  std::vector<KernelSeries> series;

  auto paired = MeasurePaired(
      w, reps,
      [&](const core::Decomposition& de, size_t* failures, PhaseTimer* jc,
          PhaseTimer* mc) -> size_t {
        core::ChainDiagnostics diag;
        auto est =
            core::EstimateFromDecomposition(de, chain_options, &diag, jc, mc);
        if (!est.ok()) ++*failures;
        return diag.max_states;
      },
      [&](const core::Decomposition& de, size_t* failures, PhaseTimer* jc,
          PhaseTimer* mc) -> size_t {
        core::ChainDiagnostics diag;
        auto est = core::reference::ReferenceEstimateFromDecomposition(
            de, chain_options, &diag, jc, mc);
        if (!est.ok()) ++*failures;
        return diag.max_states;
      });
  series.push_back(std::move(paired.first));
  series.push_back(std::move(paired.second));

  // The batch layer over the same queries (end-to-end per query, so OI +
  // JC + MC, amortized across the pool), one series per worker count.
  // ops_per_sec is wall-clock batch throughput; p50/p99 are the per-query
  // latencies BatchMetrics records inside EstimateBatch.
  const int batch_reps = std::max(1, reps / 4);
  auto run_batch = [&](const char* prefix, size_t threads,
                       core::QueryCache* cache) {
    core::HybridEstimator estimator(*w.wp);
    estimator.set_query_cache(cache);
    ThreadPool pool(threads);
    std::vector<double> latencies;
    latencies.reserve(w.queries.size() * static_cast<size_t>(batch_reps));
    uint64_t hits = 0, misses = 0;
    size_t total = 0;
    Stopwatch watch;
    for (int r = 0; r < batch_reps; ++r) {
      core::BatchMetrics metrics;
      auto results = estimator.EstimateBatch(w.queries.data(),
                                             w.queries.size(), &pool,
                                             &metrics);
      total += results.size();
      latencies.insert(latencies.end(), metrics.query_seconds.begin(),
                       metrics.query_seconds.end());
      hits += metrics.cache_hits;
      misses += metrics.cache_misses;
    }
    const double wall = watch.ElapsedSeconds();
    KernelSeries batch = KernelSeries::FromLatencies(
        std::string(prefix) + std::to_string(pool.num_threads()),
        std::move(latencies), 0);
    batch.iterations = total;
    batch.ops_per_sec = static_cast<double>(total) / std::max(wall, 1e-12);
    batch.cache_hits = hits;
    batch.cache_misses = misses;
    series.push_back(std::move(batch));
  };
  for (size_t threads : {1, 2, 4, 8}) {
    run_batch("estimate_batch_threads_", threads, nullptr);
  }
  {
    // The serving path: repeated batches against a shared query cache
    // (reps > 1 turns every repeat into hits).
    core::QueryCache cache;
    run_batch("estimate_batch_cached_threads_", 4, &cache);
  }

  // Routing series: the DFS stochastic router over OD pairs drawn from the
  // workload paths, with and without prefix chain-state reuse
  // (core/prefix_state_cache.h). Both configurations must return the same
  // routes bit for bit — a reuse-induced divergence aborts the bench.
  {
    const roadnet::Graph& graph = *w.data->data.graph;
    struct RouteCase {
      roadnet::VertexId from, to;
      double budget;
    };
    std::vector<RouteCase> cases;
    for (const core::PathQuery& q : w.queries) {
      if (q.path.size() != 20) continue;  // shortest cardinality: bounded DFS
      double free_flow = 0.0;
      for (roadnet::EdgeId e : q.path) {
        free_flow += graph.edge(e).FreeFlowSeconds();
      }
      const RouteCase rc{graph.edge(q.path.front()).from,
                         graph.edge(q.path.back()).to, 1.25 * free_flow};
      bool dup = false;
      for (const RouteCase& c : cases) {
        dup |= c.from == rc.from && c.to == rc.to;
      }
      if (dup) continue;
      cases.push_back(rc);
      if (cases.size() >= 6) break;
    }
    if (cases.empty()) {
      // An empty case set would emit zero-iteration routing series and
      // make the reuse-vs-plain identity check vacuous.
      std::fprintf(stderr, "no routing cases in the workload; aborting\n");
      return 1;
    }
    routing::RouterConfig base_config;
    base_config.num_threads = 1;  // paired series: measure the DFS, not the
                                  // pool
    base_config.max_expansions = 3000;
    base_config.max_path_edges = 40;
    const double depart = traj::HoursToSeconds(8.2);
    const int route_reps = std::max(2, reps / 2);
    struct RouteOutcome {
      bool ok = false;
      routing::RouteResult result;
    };
    // Interleaved back to back per (rep, case) with alternating order, the
    // MeasurePaired discipline: shared-machine noise cancels out of the
    // reuse-vs-no-reuse comparison instead of landing on one series.
    const routing::DfsStochasticRouter plain_router(
        graph, *w.wp, core::EstimateOptions(), base_config);
    routing::RouterConfig reuse_config = base_config;
    reuse_config.prefix_cache_bytes = size_t{4} << 20;
    const routing::DfsStochasticRouter reuse_router(
        graph, *w.wp, core::EstimateOptions(), reuse_config);
    std::vector<RouteOutcome> plain, reused;
    std::vector<double> plain_lat, reuse_lat;
    plain_lat.reserve(cases.size() * static_cast<size_t>(route_reps));
    reuse_lat.reserve(cases.size() * static_cast<size_t>(route_reps));
    auto route_once = [&](const routing::DfsStochasticRouter& router,
                          const RouteCase& c, std::vector<double>* latencies,
                          std::vector<RouteOutcome>* outcomes, bool record) {
      Stopwatch watch;
      auto result = router.Route(c.from, c.to, depart, c.budget);
      latencies->push_back(watch.ElapsedSeconds());
      if (record) {
        RouteOutcome outcome;
        outcome.ok = result.ok();
        if (result.ok()) outcome.result = std::move(result).value();
        outcomes->push_back(std::move(outcome));
      }
    };
    for (int r = 0; r < route_reps; ++r) {
      for (size_t i = 0; i < cases.size(); ++i) {
        const RouteCase& c = cases[i];
        const bool record = r == 0;
        if ((static_cast<size_t>(r) + i) % 2 == 0) {
          route_once(plain_router, c, &plain_lat, &plain, record);
          route_once(reuse_router, c, &reuse_lat, &reused, record);
        } else {
          route_once(reuse_router, c, &reuse_lat, &reused, record);
          route_once(plain_router, c, &plain_lat, &plain, record);
        }
      }
    }
    series.push_back(
        KernelSeries::FromLatencies("route_dfs", std::move(plain_lat), 0));
    KernelSeries reuse_series = KernelSeries::FromLatencies(
        "route_dfs_prefix_reuse", std::move(reuse_lat), 0);
    // The reuse series' cache columns carry the prefix-state traffic of
    // the recorded routes (first rep per case).
    for (const RouteOutcome& o : reused) {
      if (!o.ok) continue;
      reuse_series.cache_hits += o.result.prefix_cache_hits;
      reuse_series.cache_misses += o.result.prefix_cache_misses;
    }
    series.push_back(std::move(reuse_series));
    for (size_t i = 0; i < plain.size(); ++i) {
      const bool same =
          plain[i].ok == reused[i].ok &&
          (!plain[i].ok ||
           (plain[i].result.best_probability ==
                reused[i].result.best_probability &&
            plain[i].result.best_path == reused[i].result.best_path));
      if (!same) {
        std::fprintf(stderr,
                     "routing with prefix reuse diverged on case %zu\n", i);
        return 1;
      }
    }
  }

  for (const KernelSeries& s : series) {
    std::printf("  %-32s %8zu its  %10.1f ops/s  p50 %8.3f ms  p99 %8.3f ms"
                "  max_states %zu  jc %.3fs  mc %.3fs",
                s.name.c_str(), s.iterations, s.ops_per_sec, s.p50_ms,
                s.p99_ms, s.max_states, s.jc_seconds, s.mc_seconds);
    if (s.cache_hits + s.cache_misses > 0) {
      std::printf("  cache %llu/%llu hits",
                  static_cast<unsigned long long>(s.cache_hits),
                  static_cast<unsigned long long>(s.cache_hits +
                                                  s.cache_misses));
    }
    std::printf("\n");
  }
  const double speedup =
      series[1].ops_per_sec > 0.0 ? series[0].ops_per_sec / series[1].ops_per_sec
                                  : 0.0;
  std::printf("speedup (chain_sweep vs reference): %.2fx\n", speedup);

  // The model series: build/save/load/footprint of the frozen model, the
  // offline-build / online-serve cost record.
  ModelSeries model;
  if (!MeasureModelSeries(w, &model)) return 1;
  std::printf("model: %zu variables, built in %.2f s, resident %.2f MB\n",
              model.num_variables, model.build_seconds,
              static_cast<double>(model.resident_bytes) / (1024.0 * 1024.0));
  for (const ModelFormatSeries& fmt : model.formats) {
    std::printf("  %-10s save %7.1f ms  load %7.1f ms  artifact %.2f MB\n",
                fmt.name.c_str(), fmt.save_seconds * 1e3,
                fmt.load_seconds * 1e3,
                static_cast<double>(fmt.artifact_bytes) / (1024.0 * 1024.0));
  }
  std::printf("binary load speedup vs text: %.1fx\n",
              model.BinaryLoadSpeedupVsText());

  if (!WriteChainBenchJson(out_path, "chain_estimation", series, &model)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
