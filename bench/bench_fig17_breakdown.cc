// Figure 17 — run-time breakdown of the OD estimator (|P_query| = 20)
// into its three phases, across dataset sizes:
//   OI — identifying the optimal (coarsest) decomposition,
//   JC — computing the joint distribution (Eq. 2 sweep),
//   MC — reducing to the univariate cost distribution.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds) {
  std::printf("Figure 17 (dataset %s, |P_query| = 20, avg over 100 queries)\n",
              name);
  TableWriter table({"fraction", "OI (ms)", "JC (ms)", "MC (ms)",
                     "total (ms)", "avg parts"});
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    core::HybridParams params;
    params.beta = 20;
    traj::TrajectoryStore store(ds.data.MatchedSlice(fraction));
    const auto wp =
        core::InstantiateWeightFunction(*ds.data.graph, store, params);
    core::HybridEstimator od = baselines::MakeOd(wp);
    Rng rng(717);
    double oi = 0, jc = 0, mc = 0, parts = 0;
    size_t n = 0;
    for (int trial = 0; trial < 100; ++trial) {
      auto path = DataBiasedRandomPath(*ds.data.graph, store, 20, &rng);
      if (!path.ok()) continue;
      core::EstimateBreakdown breakdown;
      auto est = od.EstimateCostDistribution(
          path.value(), traj::HoursToSeconds(8.2), &breakdown);
      if (!est.ok()) continue;
      oi += breakdown.oi_seconds * 1e3;
      jc += breakdown.jc_seconds * 1e3;
      mc += breakdown.mc_seconds * 1e3;
      parts += static_cast<double>(breakdown.parts);
      ++n;
    }
    const double dn = static_cast<double>(std::max<size_t>(n, 1));
    table.AddRow({TableWriter::Num(fraction * 100, 0) + "%",
                  TableWriter::Num(oi / dn, 3), TableWriter::Num(jc / dn, 3),
                  TableWriter::Num(mc / dn, 3),
                  TableWriter::Num((oi + jc + mc) / dn, 3),
                  TableWriter::Num(parts / dn, 1)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: JC (joint computation) dominates; OI is cheap\n"
              "(Theorem 4's greedy scan); MC is cheap. More data gives\n"
              "coarser decompositions (fewer parts), which *reduces* the\n"
              "query time.\n");
  return 0;
}
