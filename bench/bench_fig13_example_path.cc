// Figure 13 — accuracy comparison on a particular path: the distributions
// estimated by OD, LB, HP, and RD for one held-out path, against the
// ground truth (the paper's Fig. 1(b) path).
#include <cstdio>

#include "bench/bench_common.h"

namespace {

void PrintHistogram(const char* name, const pcde::hist::Histogram1D& h,
                    double kl) {
  using pcde::TableWriter;
  std::printf("%s (KL vs ground truth = %.3f)\n", name, kl);
  TableWriter table({"travel time (s)", "probability"});
  for (const auto& b : h.buckets()) {
    table.AddRow({"[" + TableWriter::Num(b.range.lo, 0) + "," +
                      TableWriter::Num(b.range.hi, 0) + ")",
                  TableWriter::Num(b.prob, 4)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace pcde;
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  core::HybridParams params;
  params.beta = 20;
  const core::TimeBinning binning(params.alpha_minutes);

  const auto candidates =
      HeldOutCandidates(a.store, binning, /*cardinality=*/5, params.beta,
                        /*slack=*/20, /*limit=*/1);
  if (candidates.empty()) {
    std::printf("no held-out candidate found\n");
    return 1;
  }
  const WindowGroup& w = candidates.front();
  const Interval ij = binning.IntervalOf(w.interval);
  std::printf("Figure 13: path %s, interval [%.0f, %.0f) s, %zu qualified "
              "trajectories held out\n\n",
              w.path.ToString().c_str(), ij.lo, ij.hi, w.occurrences.size());

  baselines::AccuracyOptimal gt(a.store, params);
  auto truth = gt.GroundTruthCompact(w.path, ij);
  if (!truth.ok()) {
    std::printf("ground truth failed: %s\n", truth.status().ToString().c_str());
    return 1;
  }
  PrintHistogram("Ground truth (accuracy-optimal, held-out trajectories)",
                 truth.value(), 0.0);

  const traj::TrajectoryStore sparse = ExcludeWindows(a.store, candidates);
  const auto wp =
      core::InstantiateWeightFunction(*a.data.graph, sparse, params);

  struct Method {
    const char* name;
    core::HybridEstimator estimator;
  };
  std::vector<Method> methods;
  methods.push_back({"OD (coarsest decomposition)", baselines::MakeOd(wp)});
  methods.push_back({"LB (legacy convolution)", baselines::MakeLb(wp)});
  methods.push_back({"HP (pairwise joints)", baselines::MakeHp(wp)});
  methods.push_back({"RD (random decomposition)", baselines::MakeRd(wp)});
  const double depart = ij.lo + 60.0;
  for (auto& m : methods) {
    auto est = m.estimator.EstimateCostDistribution(w.path, depart);
    if (!est.ok()) {
      std::printf("%s failed: %s\n", m.name, est.status().ToString().c_str());
      continue;
    }
    PrintHistogram(m.name, est.value(),
                   hist::KlDivergence(truth.value(), est.value()));
  }
  std::printf("Paper shape: OD captures the ground-truth characteristics;\n"
              "LB tends toward a central-limit bell that misses the true\n"
              "shape; HP and RD sit in between.\n");
  return 0;
}
