// Figure 12 — memory use of the instantiated random variables as the
// trajectory volume grows; histograms keep W_P small enough for RAM.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds) {
  std::printf("Figure 12 (dataset %s)\n", name);
  TableWriter table({"fraction", "variables (data)", "memory (with fallbacks)",
                     "memory (data only)"});
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    core::HybridParams params;
    traj::TrajectoryStore store(ds.data.MatchedSlice(fraction));
    const auto wp =
        core::InstantiateWeightFunction(*ds.data.graph, store, params);
    size_t variables = 0;
    for (const auto& [rank, count] : wp.CountByRank(false)) variables += count;
    table.AddRow({TableWriter::Num(fraction * 100, 0) + "%",
                  std::to_string(variables), Mb(wp.MemoryUsageBytes(true)),
                  Mb(wp.MemoryUsageBytes(false))});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: memory grows roughly linearly with data volume\n"
              "and stays small (the paper: 1.8 GB / 4.2 GB at fleet scale;\n"
              "proportionally tiny at this laptop scale), so W_P fits in\n"
              "main memory.\n");
  return 0;
}
