// Figure 3 — the data sparseness problem: the maximum number of
// trajectories that occurred on any path drops rapidly with path
// cardinality, across dataset sizes (no time constraint applied).
#include <cstdio>
#include <unordered_map>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

size_t MaxWindowCount(const std::vector<traj::MatchedTrajectory>& trips,
                      size_t cardinality) {
  struct KeyHash {
    size_t operator()(const std::vector<roadnet::EdgeId>& k) const {
      size_t h = 1469598103934665603ull;
      for (roadnet::EdgeId e : k) {
        h ^= static_cast<size_t>(e) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<roadnet::EdgeId>, size_t, KeyHash> counts;
  size_t best = 0;
  for (const auto& t : trips) {
    if (t.path.size() < cardinality) continue;
    for (size_t pos = 0; pos + cardinality <= t.path.size(); ++pos) {
      std::vector<roadnet::EdgeId> key(
          t.path.edges().begin() + static_cast<ptrdiff_t>(pos),
          t.path.edges().begin() + static_cast<ptrdiff_t>(pos + cardinality));
      best = std::max(best, ++counts[key]);
    }
  }
  return best;
}

void Run(const char* name, const traj::Dataset& ds) {
  std::printf("Figure 3(%s): max #trajectories on a path vs |P| "
              "(dataset %s, %zu trips)\n",
              name, name, ds.trips.size());
  TableWriter table({"|P|", "25% data", "50% data", "75% data", "100% data"});
  const std::vector<double> fractions = {0.25, 0.5, 0.75, 1.0};
  std::vector<std::vector<traj::MatchedTrajectory>> slices;
  for (double f : fractions) slices.push_back(ds.MatchedSlice(f));
  for (size_t card : {1, 5, 9, 13, 17, 21, 25}) {
    std::vector<std::string> row{std::to_string(card)};
    for (const auto& slice : slices) {
      row.push_back(std::to_string(MaxWindowCount(slice, card)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a.data);
  const BenchDataset b = MakeB();
  Run("B", b.data);
  std::printf("Paper shape: maxima fall by orders of magnitude as |P| grows;"
              " larger datasets shift the curve up but cannot cover long"
              " paths (the sparseness the hybrid graph addresses).\n");
  return 0;
}
