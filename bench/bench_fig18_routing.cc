// Figure 18 — stochastic routing time: the DFS budget-routing algorithm
// of [10] runs with LB, HP, and OD as its cost-distribution estimator;
// the hybrid graph accelerates the existing routing algorithm.
#include <cstdio>

#include "bench/bench_common.h"
#include "roadnet/shortest_path.h"
#include "routing/stochastic_router.h"

namespace pcde {
namespace bench {
namespace {

struct Pair {
  roadnet::VertexId from;
  roadnet::VertexId to;
  double min_time;
};

void Run(const char* name, const BenchDataset& ds) {
  core::HybridParams params;
  params.beta = 20;
  const auto wp =
      core::InstantiateWeightFunction(*ds.data.graph, ds.store, params);
  const roadnet::Graph& g = *ds.data.graph;

  // Source-destination pairs with moderate distance (budget-feasible but
  // non-trivial searches).
  Rng rng(818);
  std::vector<Pair> pairs;
  const auto weight = roadnet::FreeFlowWeight(g);
  while (pairs.size() < 20) {
    const auto from = static_cast<roadnet::VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    const auto to = static_cast<roadnet::VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(g.NumVertices()) - 1));
    if (from == to) continue;
    const double t = roadnet::ShortestPathCost(g, from, to, weight);
    if (t == roadnet::kInfCost || t < 120.0 || t > 330.0) continue;
    pairs.push_back(Pair{from, to, t});
  }

  std::printf("Figure 18 (dataset %s): avg routing time over %zu pairs\n",
              name, pairs.size());
  TableWriter table({"budget", "LB-DFS (ms)", "HP-DFS (ms)", "OD-DFS (ms)",
                     "solved LB/HP/OD"});
  struct MethodCfg {
    const char* name;
    core::EstimateOptions options;
  };
  std::vector<MethodCfg> methods(3);
  methods[0].name = "LB";
  methods[0].options.policy = core::DecompositionPolicy::kUnit;
  methods[0].options.rank_cap = 1;
  methods[1].name = "HP";
  methods[1].options.policy = core::DecompositionPolicy::kPairwise;
  methods[1].options.rank_cap = 2;
  methods[2].name = "OD";
  methods[2].options.policy = core::DecompositionPolicy::kCoarsest;

  routing::RouterConfig router_config;
  router_config.max_expansions = 15000;

  for (double scale : {1.1, 1.2, 1.3}) {  // S1 < S2 < S3 budgets
    double ms[3] = {0, 0, 0};
    size_t solved[3] = {0, 0, 0};
    for (int m = 0; m < 3; ++m) {
      routing::DfsStochasticRouter router(g, wp, methods[m].options,
                                          router_config);
      Stopwatch watch;
      for (const Pair& p : pairs) {
        auto result = router.Route(p.from, p.to, traj::HoursToSeconds(8.0),
                                   p.min_time * scale);
        if (result.ok()) ++solved[m];
      }
      ms[m] = watch.ElapsedMillis() / static_cast<double>(pairs.size());
    }
    table.AddRow({"S x " + TableWriter::Num(scale, 2),
                  TableWriter::Num(ms[0], 1), TableWriter::Num(ms[1], 1),
                  TableWriter::Num(ms[2], 1),
                  std::to_string(solved[0]) + "/" + std::to_string(solved[1]) +
                      "/" + std::to_string(solved[2])});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: OD-DFS outperforms HP-DFS and LB-DFS at every\n"
              "budget — swapping the estimator accelerates an existing\n"
              "stochastic routing algorithm.\n");
  return 0;
}
