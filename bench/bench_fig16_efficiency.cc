// Figure 16 — efficiency of cost-distribution estimation as the query
// path grows, for OD, RD, HP, LB and the rank-capped OD-2/3/4 variants
// (google-benchmark; one timing series per method and cardinality).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

struct Fig16State {
  std::unique_ptr<BenchDataset> data;
  std::unique_ptr<core::PathWeightFunction> wp;
  // Pre-generated query paths per cardinality (same paths for all
  // methods, so the series are comparable).
  std::map<size_t, std::vector<roadnet::Path>> queries;
  double depart = traj::HoursToSeconds(8.2);

  Fig16State() {
    data = std::make_unique<BenchDataset>(MakeA());
    core::HybridParams params;
    params.beta = 20;
    wp = std::make_unique<core::PathWeightFunction>(
        core::InstantiateWeightFunction(*data->data.graph, data->store,
                                        params));
    Rng rng(616);
    for (size_t card : {20, 40, 60, 80, 100}) {
      std::vector<roadnet::Path>& list = queries[card];
      while (list.size() < 10) {
        auto p = DataBiasedRandomPath(*data->data.graph, data->store, card,
                                      &rng);
        if (p.ok()) list.push_back(std::move(p).value());
      }
    }
  }
};

Fig16State* state = nullptr;

void EstimateLoop(benchmark::State& bench_state,
                  const core::HybridEstimator& estimator, size_t card) {
  const auto& paths = state->queries[card];
  size_t i = 0;
  for (auto _ : bench_state) {
    auto est = estimator.EstimateCostDistribution(paths[i % paths.size()],
                                                  state->depart);
    benchmark::DoNotOptimize(est);
    ++i;
  }
}

/// The serving-layer shape: all queries of one cardinality issued as one
/// concurrent batch on a shared pool (items/sec is the per-query rate).
void BatchEstimateLoop(benchmark::State& bench_state,
                       const core::HybridEstimator& estimator, size_t card,
                       ThreadPool* pool) {
  const auto& paths = state->queries[card];
  std::vector<core::PathQuery> queries;
  queries.reserve(paths.size());
  for (const auto& p : paths) {
    queries.push_back(core::PathQuery{p, state->depart});
  }
  for (auto _ : bench_state) {
    auto results = estimator.EstimateBatch(queries.data(), queries.size(),
                                           pool);
    benchmark::DoNotOptimize(results);
  }
  bench_state.SetItemsProcessed(
      static_cast<int64_t>(bench_state.iterations() * queries.size()));
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main(int argc, char** argv) {
  using namespace pcde;
  using namespace pcde::bench;
  std::printf("Figure 16: run time of path cost distribution estimation\n"
              "(dataset A; series per method, Args = |P_query|)\n");
  state = new Fig16State();

  struct Method {
    const char* name;
    core::HybridEstimator estimator;
  };
  std::vector<Method>* methods = new std::vector<Method>();
  methods->push_back({"OD", baselines::MakeOd(*state->wp)});
  methods->push_back({"RD", baselines::MakeRd(*state->wp)});
  methods->push_back({"HP", baselines::MakeHp(*state->wp)});
  methods->push_back({"LB", baselines::MakeLb(*state->wp)});
  methods->push_back({"OD-2", baselines::MakeOdCapped(*state->wp, 2)});
  methods->push_back({"OD-3", baselines::MakeOdCapped(*state->wp, 3)});
  methods->push_back({"OD-4", baselines::MakeOdCapped(*state->wp, 4)});

  for (const auto& m : *methods) {
    auto* bench = benchmark::RegisterBenchmark(
        m.name,
        [&m](benchmark::State& s) {
          pcde::bench::EstimateLoop(s, m.estimator,
                                    static_cast<size_t>(s.range(0)));
        });
    for (size_t card : {20, 40, 60, 80, 100}) {
      bench->Arg(static_cast<int>(card));
    }
    bench->Unit(benchmark::kMillisecond);
  }

  // OD through the parallel batch layer (the multi-user serving path).
  ThreadPool* pool = new ThreadPool(0);
  const core::HybridEstimator* od_batch =
      new core::HybridEstimator(baselines::MakeOd(*state->wp));
  auto* batch_bench = benchmark::RegisterBenchmark(
      "OD-batch", [od_batch, pool](benchmark::State& s) {
        pcde::bench::BatchEstimateLoop(s, *od_batch,
                                       static_cast<size_t>(s.range(0)), pool);
      });
  for (size_t card : {20, 40, 60, 80, 100}) {
    batch_bench->Arg(static_cast<int>(card));
  }
  batch_bench->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\nPaper shape: OD is fastest (fewest, coarsest variables);\n"
              "OD-x gets slower as x shrinks; HP and LB are slowest since\n"
              "they touch at least |P_query| variables.\n");
  return 0;
}
