// Figure 15 — entropy comparison without ground truth: for long query
// paths the estimated-joint entropy H_DE (Theorem 2: KL = H_DE - H, so
// lower is better) is compared across methods.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds,
         const core::PathWeightFunction& wp) {
  std::printf("Figure 15 (dataset %s): average H_DE\n", name);
  TableWriter table({"|P_query|", "OD", "HP", "RD", "LB", "paths"});
  Rng rng(515);
  for (size_t card : {20, 40, 60, 80, 100}) {
    double h[4] = {0, 0, 0, 0};
    size_t n = 0;
    for (int trial = 0; trial < 100; ++trial) {
      auto path = DataBiasedRandomPath(*ds.data.graph, ds.store, card, &rng);
      if (!path.ok()) continue;
      const double depart = traj::HoursToSeconds(rng.Bernoulli(0.6) ? rng.Uniform(7.2, 9.0) : rng.Uniform(15.8, 18.0));
      auto od = baselines::MakeOd(wp).EstimateEntropy(path.value(), depart);
      auto hp = baselines::MakeHp(wp).EstimateEntropy(path.value(), depart);
      auto rd = baselines::MakeRd(wp).EstimateEntropy(path.value(), depart);
      auto lb = baselines::MakeLb(wp).EstimateEntropy(path.value(), depart);
      if (!od.ok() || !hp.ok() || !rd.ok() || !lb.ok()) continue;
      h[0] += od.value();
      h[1] += hp.value();
      h[2] += rd.value();
      h[3] += lb.value();
      ++n;
    }
    if (n == 0) {
      table.AddRow({std::to_string(card), "-", "-", "-", "-", "0"});
      continue;
    }
    const double dn = static_cast<double>(n);
    table.AddRow({std::to_string(card), TableWriter::Num(h[0] / dn, 2),
                  TableWriter::Num(h[1] / dn, 2),
                  TableWriter::Num(h[2] / dn, 2),
                  TableWriter::Num(h[3] / dn, 2), std::to_string(n)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde;
  using namespace pcde::bench;
  core::HybridParams params;
  params.beta = 20;
  {
    const BenchDataset a = MakeA();
    const auto wp =
        core::InstantiateWeightFunction(*a.data.graph, a.store, params);
    Run("A", a, wp);
  }
  {
    const BenchDataset b = MakeB();
    const auto wp =
        core::InstantiateWeightFunction(*b.data.graph, b.store, params);
    Run("B", b, wp);
  }
  std::printf("Paper shape: H_DE grows with |P_query| for every method; OD\n"
              "produces the least entropy (most informative estimate), LB\n"
              "the most; HP and RD lie in between. (At this data scale the\n"
              "plug-in entropy of small-support joints carries a slight\n"
              "upward bias — see EXPERIMENTS.md.)\n");
  return 0;
}
