// Figure 10 — varying dataset sizes: more trajectories instantiate more
// variables, and in particular more variables of high rank.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds) {
  std::printf("Figure 10 (dataset %s)\n", name);
  TableWriter table(
      {"fraction", "|V|=1", "|V|=2", "|V|=3", "|V|>=4", "total"});
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    core::HybridParams params;
    params.beta = 30;
    traj::TrajectoryStore store(ds.data.MatchedSlice(fraction));
    const auto wp =
        core::InstantiateWeightFunction(*ds.data.graph, store, params);
    size_t by_group[4] = {0, 0, 0, 0};
    size_t total = 0;
    for (const auto& [rank, count] : wp.CountByRank(false)) {
      by_group[std::min<size_t>(rank, 4) - 1] += count;
      total += count;
    }
    table.AddRow({TableWriter::Num(fraction * 100, 0) + "%",
                  std::to_string(by_group[0]), std::to_string(by_group[1]),
                  std::to_string(by_group[2]), std::to_string(by_group[3]),
                  std::to_string(total)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: variable counts (and especially high-rank\n"
              "counts) grow steadily with data volume — more data lets the\n"
              "hybrid graph capture longer dependencies.\n");
  return 0;
}
