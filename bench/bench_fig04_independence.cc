// Figure 4 — examining the independence assumption: (a) the distribution
// of KL(D_GT, D_LB) over 2-edge paths with many trajectories in the
// morning peak; (b) the average divergence grows with path cardinality.
// D_GT comes from whole-path trajectories; D_LB convolves the per-edge
// marginals of the very same trajectories, assuming independence.
#include <cstdio>

#include "bench/bench_common.h"
#include "hist/raw_distribution.h"

namespace pcde {
namespace bench {
namespace {

/// KL between the ground-truth total-cost distribution of a window and the
/// independence convolution of its per-edge marginals.
StatusOr<double> IndependenceGap(const traj::TrajectoryStore& store,
                                 const WindowGroup& group) {
  const auto rows = store.CostMatrix(group.path, group.occurrences);
  const size_t dims = group.path.size();
  // Ground truth: empirical totals.
  std::vector<double> totals(rows.size(), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (double c : rows[i]) totals[i] += c;
  }
  hist::AutoBucketOptions opts;
  PCDE_ASSIGN_OR_RETURN(gt, hist::BuildAutoHistogram(totals, opts));
  // Legacy: convolve per-edge marginals.
  std::vector<double> column(rows.size());
  StatusOr<hist::Histogram1D> conv = Status::NotFound("");
  for (size_t d = 0; d < dims; ++d) {
    for (size_t i = 0; i < rows.size(); ++i) column[i] = rows[i][d];
    PCDE_ASSIGN_OR_RETURN(marginal, hist::BuildAutoHistogram(column, opts));
    conv = d == 0 ? StatusOr<hist::Histogram1D>(marginal)
                  : hist::Convolve(conv.value(), marginal);
    if (!conv.ok()) return conv.status();
  }
  return hist::KlDivergence(gt, conv.value());
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde;
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  const core::TimeBinning binning(30.0);

  // ---- (a): 2-edge paths in the morning peak with high support.
  {
    std::printf("Figure 4(a): KL(D_GT, D_LB) histogram, 2-edge paths, "
                "morning peak, dataset A\n");
    const auto windows = FrequentWindows(a.store, binning, 2,
                                         /*min_support=*/60, /*limit=*/500);
    size_t bins[4] = {0, 0, 0, 0};
    size_t evaluated = 0;
    for (const auto& w : windows) {
      const Interval ij = binning.IntervalOf(w.interval);
      const double hour = ij.lo / 3600.0;
      if (hour < 6.0 || hour > 10.0) continue;  // morning traffic
      auto kl = IndependenceGap(a.store, w);
      if (!kl.ok()) continue;
      ++evaluated;
      const double v = kl.value();
      if (v < 0.5) {
        ++bins[0];
      } else if (v < 1.0) {
        ++bins[1];
      } else if (v < 1.5) {
        ++bins[2];
      } else {
        ++bins[3];
      }
    }
    TableWriter table({"KL range", "percentage"});
    const char* labels[4] = {"[0,0.5)", "[0.5,1)", "[1,1.5)", ">=1.5"};
    for (int i = 0; i < 4; ++i) {
      table.AddRow({labels[i],
                    TableWriter::Num(evaluated > 0
                                         ? 100.0 * static_cast<double>(bins[i]) /
                                               static_cast<double>(evaluated)
                                         : 0.0,
                                     1) +
                        "%"});
    }
    table.Print();
    std::printf("(%zu paths evaluated)\n\n", evaluated);
  }

  // ---- (b): average KL vs |P|.
  {
    std::printf("Figure 4(b): average KL(D_GT, D_LB) vs |P|, dataset A\n");
    TableWriter table({"|P|", "avg KL", "paths"});
    for (size_t card : {2, 4, 6, 8, 10, 12}) {
      const auto windows =
          FrequentWindows(a.store, binning, card, /*min_support=*/30,
                          /*limit=*/100);
      double total = 0.0;
      size_t n = 0;
      for (const auto& w : windows) {
        auto kl = IndependenceGap(a.store, w);
        if (!kl.ok()) continue;
        total += kl.value();
        ++n;
      }
      table.AddRow({std::to_string(card),
                    TableWriter::Num(n > 0 ? total / static_cast<double>(n) : 0.0, 3),
                    std::to_string(n)});
    }
    table.Print();
  }
  std::printf("\nPaper shape: a large share of adjacent edge pairs is NOT\n"
              "independent, and the divergence of the convolution from the\n"
              "ground truth grows with path cardinality.\n");
  return 0;
}
