// Figure 14 — accuracy against held-out ground truth as the query path
// grows: paths with >= beta trajectories are selected, those trajectories
// are removed from the training data (restoring sparseness), and each
// method's estimate is compared to the held-out ground truth by KL
// divergence.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds, size_t slack) {
  core::HybridParams params;
  params.beta = 20;
  const core::TimeBinning binning(params.alpha_minutes);
  std::printf("Figure 14 (dataset %s, coverage slack %zu): "
              "avg KL(ground truth, estimate)\n",
              name, slack);
  TableWriter table({"|P_query|", "OD", "LB", "RD", "HP", "paths"});

  for (size_t card : {4, 5, 6, 8}) {
    auto selected = HeldOutCandidates(ds.store, binning, card, params.beta,
                                      slack, /*limit=*/12);
    if (selected.empty()) {
      table.AddRow({std::to_string(card), "-", "-", "-", "-", "0"});
      continue;
    }
    baselines::AccuracyOptimal gt(ds.store, params);
    const traj::TrajectoryStore sparse = ExcludeWindows(ds.store, selected);
    const auto wp =
        core::InstantiateWeightFunction(*ds.data.graph, sparse, params);
    core::HybridEstimator od = baselines::MakeOd(wp);
    core::HybridEstimator lb = baselines::MakeLb(wp);
    core::HybridEstimator rd = baselines::MakeRd(wp);
    core::HybridEstimator hp = baselines::MakeHp(wp);

    double kl[4] = {0, 0, 0, 0};
    size_t n = 0;
    for (const auto& w : selected) {
      const Interval ij = binning.IntervalOf(w.interval);
      auto truth = gt.GroundTruthCompact(w.path, ij);
      if (!truth.ok()) continue;
      const double depart = ij.lo + 60.0;
      core::HybridEstimator* methods[4] = {&od, &lb, &rd, &hp};
      bool all_ok = true;
      double kls[4];
      for (int m = 0; m < 4 && all_ok; ++m) {
        auto est = methods[m]->EstimateCostDistribution(w.path, depart);
        all_ok = est.ok();
        if (all_ok) kls[m] = hist::KlDivergence(truth.value(), est.value());
      }
      if (!all_ok) continue;
      for (int m = 0; m < 4; ++m) kl[m] += kls[m];
      ++n;
    }
    if (n == 0) {
      table.AddRow({std::to_string(card), "-", "-", "-", "-", "0"});
      continue;
    }
    const double dn = static_cast<double>(n);
    table.AddRow({std::to_string(card), TableWriter::Num(kl[0] / dn, 3),
                  TableWriter::Num(kl[1] / dn, 3),
                  TableWriter::Num(kl[2] / dn, 3),
                  TableWriter::Num(kl[3] / dn, 3), std::to_string(n)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  // The paper's regime: the held-out path's edges keep substantial
  // independent traffic, so sub-path joints are well estimated.
  const BenchDataset a = MakeA();
  Run("A", a, /*slack=*/20);
  const BenchDataset b = MakeB();
  Run("B", b, /*slack=*/20);
  // Borderline regime: surviving sub-path coverage barely clears beta and
  // comes from crossing traffic whose cost mix differs from the held-out
  // through-trips; the coarsest decomposition then conditions on biased
  // joints, and LB's pooled unit marginals can match or beat it. The
  // paper's fleet-scale data sits firmly in the first regime.
  Run("A (borderline coverage)", a, /*slack=*/0);
  std::printf("Paper shape: with adequate sub-path coverage OD's KL stays\n"
              "below LB's and grows more slowly with |P_query| (independence\n"
              "errors accumulate); RD and HP sit between them.\n");
  return 0;
}
