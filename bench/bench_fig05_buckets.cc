// Figure 5 — identifying the number of buckets: (a) the cross-validation
// error E_b drops sharply, then slowly (the elbow picks b); (b) the Auto
// histogram against the raw travel-time distribution.
#include <cstdio>

#include "bench/bench_common.h"
#include "hist/raw_distribution.h"
#include "hist/voptimal.h"

int main() {
  using namespace pcde;
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  const core::TimeBinning binning(30.0);

  // Among dense (window, interval) samples, pick the one with the most
  // pronounced elbow (sharpest E_1 -> E_2 drop): a clearly multi-modal
  // travel-time distribution like the paper's [8:00, 8:30) Fig. 1(b) path.
  const auto windows = FrequentWindows(a.store, binning, 2, 50, 40);
  if (windows.empty()) {
    std::printf("no dense window found\n");
    return 1;
  }
  size_t best = 0;
  double best_drop = -1.0;
  for (size_t i = 0; i < windows.size(); ++i) {
    const std::vector<double> xs =
        a.store.TotalCosts(windows[i].path, windows[i].occurrences);
    hist::AutoBucketOptions probe;
    probe.max_buckets = 3;
    std::vector<double> errs;
    hist::AutoSelectBucketCount(xs, probe, &errs);
    if (errs.size() >= 2 && errs[0] > 0.0) {
      const double drop = (errs[0] - errs[1]) / errs[0];
      if (drop > best_drop) {
        best_drop = drop;
        best = i;
      }
    }
  }
  const WindowGroup& w = windows[best];
  const std::vector<double> samples =
      a.store.TotalCosts(w.path, w.occurrences);
  std::printf("Figure 5: path %s, interval %d, %zu qualified trajectories\n\n",
              w.path.ToString().c_str(), w.interval, samples.size());

  hist::AutoBucketOptions opts;
  opts.max_buckets = 10;
  std::vector<double> series;
  const size_t chosen = hist::AutoSelectBucketCount(samples, opts, &series);

  std::printf("Figure 5(a): E_b vs b (Auto stops at b = %zu)\n", chosen);
  TableWriter ta({"b", "E_b"});
  for (size_t b = 1; b <= series.size(); ++b) {
    ta.AddRow({std::to_string(b), TableWriter::Num(series[b - 1], 6)});
  }
  ta.Print();

  std::printf("\nFigure 5(b): raw distribution vs Auto histogram\n");
  const hist::RawDistribution raw =
      hist::RawDistribution::FromSamples(samples, opts.resolution);
  auto h = hist::BuildAutoHistogram(samples, opts);
  if (!h.ok()) {
    std::printf("histogram failed: %s\n", h.status().ToString().c_str());
    return 1;
  }
  TableWriter tb({"bucket", "probability", "density/s"});
  for (const auto& b : h.value().buckets()) {
    tb.AddRow({"[" + TableWriter::Num(b.range.lo, 0) + "," +
                   TableWriter::Num(b.range.hi, 0) + ")",
               TableWriter::Num(b.prob, 4),
               TableWriter::Num(b.prob / b.range.width(), 5)});
  }
  tb.Print();
  std::printf("raw support: %zu distinct costs in [%.0f, %.0f), mean %.1f s\n",
              raw.NumDistinct(), raw.Min(), raw.Max(), raw.Mean());
  std::printf("\nPaper shape: E_b falls sharply for the first few buckets,\n"
              "then flattens; the Auto histogram tracks the raw shape with\n"
              "a handful of buckets.\n");
  return 0;
}
