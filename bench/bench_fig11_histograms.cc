// Figure 11 — performance of the histogram representation:
// (a) KL of parametric MLE fits (Gaussian, Gamma; Exponential reported
//     separately, it is far worse) vs the Auto histogram;
// (b) KL of fixed-bucket V-Optimal (Sta-3, Sta-4) vs Auto;
// (c) space-saving ratio 1 - S_H / S_R of the histograms vs raw data.
#include <cstdio>

#include "bench/bench_common.h"
#include "hist/fit.h"
#include "hist/raw_distribution.h"
#include "hist/voptimal.h"

namespace pcde {
namespace bench {
namespace {

struct Aggregate {
  double kl_gauss = 0, kl_gamma = 0, kl_exp = 0;
  double kl_sta3 = 0, kl_sta4 = 0, kl_auto = 0;
  double save_sta3 = 0, save_sta4 = 0, save_auto = 0;
  size_t n = 0;
};

void Run(const char* name, const BenchDataset& ds) {
  const core::TimeBinning binning(30.0);
  // Unit-path sample sets with enough support (the instantiated rank-1
  // variables' underlying data).
  const auto windows = FrequentWindows(ds.store, binning, 1, 40, 250);
  Aggregate agg;
  for (const auto& w : windows) {
    const std::vector<double> xs = ds.store.TotalCosts(w.path, w.occurrences);
    const hist::RawDistribution raw = hist::RawDistribution::FromSamples(xs);
    hist::AutoBucketOptions opts;
    auto h_auto = hist::BuildAutoHistogram(xs, opts);
    auto h3 = hist::BuildStaticHistogram(xs, 3);
    auto h4 = hist::BuildStaticHistogram(xs, 4);
    if (!h_auto.ok() || !h3.ok() || !h4.ok()) continue;
    agg.kl_gauss += hist::KlRawVsFit(
        raw, hist::ParametricFit::Fit(hist::FitKind::kGaussian, xs));
    agg.kl_gamma += hist::KlRawVsFit(
        raw, hist::ParametricFit::Fit(hist::FitKind::kGamma, xs));
    agg.kl_exp += hist::KlRawVsFit(
        raw, hist::ParametricFit::Fit(hist::FitKind::kExponential, xs));
    agg.kl_auto += hist::KlRawVsHistogram(raw, h_auto.value());
    agg.kl_sta3 += hist::KlRawVsHistogram(raw, h3.value());
    agg.kl_sta4 += hist::KlRawVsHistogram(raw, h4.value());
    const double raw_bytes = static_cast<double>(raw.MemoryUsageBytes());
    agg.save_auto +=
        1.0 - static_cast<double>(h_auto.value().MemoryUsageBytes()) / raw_bytes;
    agg.save_sta3 +=
        1.0 - static_cast<double>(h3.value().MemoryUsageBytes()) / raw_bytes;
    agg.save_sta4 +=
        1.0 - static_cast<double>(h4.value().MemoryUsageBytes()) / raw_bytes;
    ++agg.n;
  }
  const double n = static_cast<double>(std::max<size_t>(agg.n, 1));
  std::printf("Figure 11 (dataset %s, %zu rank-1 sample sets)\n", name, agg.n);
  TableWriter ta({"method", "avg KL vs raw", "avg space saving"});
  ta.AddRow({"Gaussian (MLE)", TableWriter::Num(agg.kl_gauss / n, 3), "-"});
  ta.AddRow({"Gamma (MLE)", TableWriter::Num(agg.kl_gamma / n, 3), "-"});
  ta.AddRow({"Exponential (MLE)", TableWriter::Num(agg.kl_exp / n, 3),
             "(omitted in the paper: off the chart)"});
  ta.AddRow({"Sta-3", TableWriter::Num(agg.kl_sta3 / n, 3),
             TableWriter::Num(100.0 * agg.save_sta3 / n, 1) + "%"});
  ta.AddRow({"Sta-4", TableWriter::Num(agg.kl_sta4 / n, 3),
             TableWriter::Num(100.0 * agg.save_sta4 / n, 1) + "%"});
  ta.AddRow({"Auto", TableWriter::Num(agg.kl_auto / n, 3),
             TableWriter::Num(100.0 * agg.save_auto / n, 1) + "%"});
  ta.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: Auto is the most accurate (travel-time\n"
              "distributions do not follow standard families; exponential\n"
              "is worst by far); Auto matches Sta-4's accuracy while\n"
              "saving more space.\n");
  return 0;
}
