// Figure 9 — the effect of the qualified-trajectory threshold beta on the
// number of instantiated random variables, grouped by rank.
#include <cstdio>

#include "bench/bench_common.h"

namespace pcde {
namespace bench {
namespace {

void Run(const char* name, const BenchDataset& ds) {
  std::printf("Figure 9 (dataset %s): instantiated variables by rank\n", name);
  TableWriter table({"beta", "|V|=1", "|V|=2", "|V|=3", "|V|>=4", "total"});
  for (size_t beta : {15, 30, 45, 60}) {
    core::HybridParams params;
    params.beta = beta;
    const auto wp =
        core::InstantiateWeightFunction(*ds.data.graph, ds.store, params);
    size_t by_group[4] = {0, 0, 0, 0};
    size_t total = 0;
    for (const auto& [rank, count] : wp.CountByRank(false)) {
      by_group[std::min<size_t>(rank, 4) - 1] += count;
      total += count;
    }
    table.AddRow({std::to_string(beta), std::to_string(by_group[0]),
                  std::to_string(by_group[1]), std::to_string(by_group[2]),
                  std::to_string(by_group[3]), std::to_string(total)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pcde

int main() {
  using namespace pcde::bench;
  const BenchDataset a = MakeA();
  Run("A", a);
  const BenchDataset b = MakeB();
  Run("B", b);
  std::printf("Paper shape: the variable count drops as beta grows; the\n"
              "paper picks beta = 30 because the count is only slightly\n"
              "below beta = 15 while the variables are more reliable.\n");
  return 0;
}
