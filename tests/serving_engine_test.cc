// Tests for the serving Engine facade (src/serving/engine.h): estimates
// served through the Engine — explicit-path and OD-pair request forms,
// with and without the attached caches, from an adopted model or a
// reloaded artifact — must be bit-identical to direct HybridEstimator
// wiring with the same options; the batch path must isolate per-request
// failures; Route must match the directly-wired DFS router.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/scoped_file.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "hist/histogram_nd.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "traj/store.h"

namespace pcde {
namespace serving {
namespace {

using core::EstimateOptions;
using core::HybridEstimator;
using core::PathWeightFunction;
using hist::Histogram1D;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

/// City-A speed-limit-fallback model, saved once as a binary artifact so
/// every test can Open independent engines over the same frozen model.
class ServingEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new Graph(roadnet::MakeCity(roadnet::CityAConfig()));
    wp_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(), core::HybridParams()));
    artifact_ = MakeTempArtifactPath("pcde_engine_test");
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_, artifact_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(artifact_.c_str());
    delete wp_;
    delete graph_;
    wp_ = nullptr;
    graph_ = nullptr;
  }

  /// Engine over the shared artifact; `cache_bytes` sizes the QueryCache
  /// (0 disables), single worker for determinism.
  static std::unique_ptr<Engine> OpenEngine(size_t cache_bytes,
                                            bool use_mmap = false) {
    EngineOptions options;
    options.model_path = artifact_;
    options.use_mmap = use_mmap;
    options.graph = graph_;
    options.num_threads = 1;
    options.query_cache_bytes = cache_bytes;
    auto engine = Engine::Open(std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(engine).value() : nullptr;
  }

  static Path PathBetween(VertexId from, VertexId to) {
    auto p = roadnet::ShortestPath(*graph_, from, to,
                                   roadnet::FreeFlowWeight(*graph_));
    EXPECT_TRUE(p.ok());
    return p.ok() ? p.value() : Path();
  }

  static Graph* graph_;
  static PathWeightFunction* wp_;
  static std::string artifact_;
};

Graph* ServingEngineTest::graph_ = nullptr;
PathWeightFunction* ServingEngineTest::wp_ = nullptr;
std::string ServingEngineTest::artifact_;

constexpr double kDepart = 8 * 3600.0;

EstimateRequest WithDistribution(PathSpec spec) {
  EstimateRequest request;
  request.path = std::move(spec);
  request.departure_time = kDepart;
  request.want_distribution = true;
  return request;
}

// ---------------------------------------------------------------------------
// Bit-identity against direct HybridEstimator wiring
// ---------------------------------------------------------------------------

TEST_F(ServingEngineTest, ExplicitPathMatchesDirectWiringBitForBit) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  // Direct wiring over the engine's own model: same frozen arrays, same
  // options — the reference the facade must not perturb.
  HybridEstimator direct(engine->model(), engine->options().estimate);
  for (auto [from, to] : {std::pair<VertexId, VertexId>{0, 30},
                          {5, 40},
                          {2, 61}}) {
    const Path path = PathBetween(from, to);
    ASSERT_FALSE(path.empty());
    auto expected = direct.EstimateCostDistribution(path, kDepart);
    auto response = engine->Estimate(
        WithDistribution(PathSpec::ExplicitPath(path)));
    ASSERT_EQ(expected.ok(), response.ok());
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response.value().distribution.has_value());
    EXPECT_TRUE(
        response.value().distribution->BitIdentical(expected.value()));
    EXPECT_EQ(response.value().resolved_path, path);
    EXPECT_FALSE(response.value().served_from_cache);
  }
}

TEST_F(ServingEngineTest, OdPairResolvesAndMatchesDirectWiring) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  const VertexId from = 0, to = 30;
  auto response =
      engine->Estimate(WithDistribution(PathSpec::OdPair(from, to)));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // The OD form resolves to the free-flow shortest path...
  const Path expected_path = PathBetween(from, to);
  EXPECT_EQ(response.value().resolved_path, expected_path);
  // ...and serves exactly what direct wiring over that path serves.
  HybridEstimator direct(engine->model(), engine->options().estimate);
  auto expected = direct.EstimateCostDistribution(expected_path, kDepart);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(response.value().distribution.has_value());
  EXPECT_TRUE(response.value().distribution->BitIdentical(expected.value()));
  // The explicit form of the resolved path is bit-identical too.
  auto explicit_response = engine->Estimate(
      WithDistribution(PathSpec::ExplicitPath(expected_path)));
  ASSERT_TRUE(explicit_response.ok());
  EXPECT_TRUE(explicit_response.value().distribution->BitIdentical(
      *response.value().distribution));
}

TEST_F(ServingEngineTest, CachedEngineIsBitIdenticalAndRecordsProvenance) {
  auto cached = OpenEngine(/*cache_bytes=*/size_t{8} << 20);
  auto uncached = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(cached, nullptr);
  ASSERT_NE(uncached, nullptr);
  ASSERT_NE(cached->query_cache(), nullptr);
  EXPECT_EQ(uncached->query_cache(), nullptr);
  const EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(0, 30)));
  auto cold = cached->Estimate(request);
  auto warm = cached->Estimate(request);  // same decomposition: cache hit
  auto plain = uncached->Estimate(request);
  ASSERT_TRUE(cold.ok() && warm.ok() && plain.ok());
  EXPECT_FALSE(cold.value().served_from_cache);
  EXPECT_TRUE(warm.value().served_from_cache);
  EXPECT_GT(cached->query_cache()->stats().hits, 0u);
  EXPECT_TRUE(cold.value().distribution->BitIdentical(
      *plain.value().distribution));
  EXPECT_TRUE(warm.value().distribution->BitIdentical(
      *plain.value().distribution));
  EXPECT_TRUE(
      warm.value().summary.ExactlyEquals(plain.value().summary));
}

TEST_F(ServingEngineTest, AdoptedModelAndMmapLoadServeIdentically) {
  // Adopt a freshly-instantiated model (no artifact round trip)...
  EngineOptions adopt_options;
  adopt_options.graph = graph_;
  adopt_options.num_threads = 1;
  adopt_options.query_cache_bytes = 0;
  auto adopted = Engine::Open(
      core::InstantiateWeightFunction(*graph_, traj::TrajectoryStore(),
                                      core::HybridParams()),
      std::move(adopt_options));
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted.value()->model().fingerprint(), wp_->fingerprint());
  // ...and open the saved artifact through the mmap path; both must serve
  // the exact same bytes as the buffered-read engine.
  auto mapped = OpenEngine(/*cache_bytes=*/0, /*use_mmap=*/true);
  auto buffered = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(mapped, nullptr);
  ASSERT_NE(buffered, nullptr);
  const EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(5, 40)));
  auto a = adopted.value()->Estimate(request);
  auto m = mapped->Estimate(request);
  auto b = buffered->Estimate(request);
  ASSERT_TRUE(a.ok() && m.ok() && b.ok());
  EXPECT_TRUE(a.value().distribution->BitIdentical(*b.value().distribution));
  EXPECT_TRUE(m.value().distribution->BitIdentical(*b.value().distribution));
}

// ---------------------------------------------------------------------------
// CostSummary derivation
// ---------------------------------------------------------------------------

TEST_F(ServingEngineTest, SummaryStatsMatchTheDistribution) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(0, 30)));
  request.budget_seconds = 600.0;
  request.quantiles = {0.0, 0.25, 0.5, 0.95, 1.0};
  auto response = engine->Estimate(request);
  ASSERT_TRUE(response.ok());
  const Histogram1D& dist = *response.value().distribution;
  const CostSummary& s = response.value().summary;
  EXPECT_EQ(s.mean, dist.Mean());
  EXPECT_EQ(s.variance, dist.Variance());
  EXPECT_EQ(s.support_lo, dist.Min());
  EXPECT_EQ(s.support_hi, dist.Max());
  EXPECT_EQ(s.prob_within_budget, dist.ProbWithin(600.0));
  EXPECT_EQ(s.num_buckets, dist.NumBuckets());
  ASSERT_EQ(s.quantiles.size(), request.quantiles.size());
  for (size_t i = 0; i < s.quantiles.size(); ++i) {
    EXPECT_EQ(s.quantiles[i], dist.Quantile(request.quantiles[i]));
  }
}

TEST_F(ServingEngineTest, StatsMaskSkipsUnrequestedFields) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  EstimateRequest request;
  request.path = PathSpec::ExplicitPath(PathBetween(0, 30));
  request.departure_time = kDepart;
  request.stats = kStatMean;
  request.budget_seconds = 600.0;  // ignored: kStatCdfAtBudget not set
  auto response = engine->Estimate(request);
  ASSERT_TRUE(response.ok());
  const CostSummary& s = response.value().summary;
  EXPECT_FALSE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.variance));
  EXPECT_TRUE(std::isnan(s.support_lo));
  EXPECT_TRUE(std::isnan(s.prob_within_budget));
  EXPECT_TRUE(s.quantiles.empty());
  EXPECT_FALSE(response.value().distribution.has_value());
}

// ---------------------------------------------------------------------------
// Batch: per-request status, one bad request never fails the batch
// ---------------------------------------------------------------------------

TEST_F(ServingEngineTest, BatchMixedValidityIsolatesFailuresPerRequest) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  const Path good1 = PathBetween(0, 30);
  const Path good2 = PathBetween(5, 40);
  std::vector<EstimateRequest> requests;
  requests.push_back(WithDistribution(PathSpec::ExplicitPath(good1)));
  requests.push_back(WithDistribution(PathSpec::ExplicitPath(Path())));
  requests.push_back(WithDistribution(
      PathSpec::ExplicitPath(Path({roadnet::EdgeId{999999}}))));
  requests.push_back(WithDistribution(PathSpec::OdPair(0, 0)));
  requests.push_back(WithDistribution(PathSpec::OdPair(5, 40)));
  requests.push_back(WithDistribution(PathSpec::ExplicitPath(good2)));
  auto responses = engine->EstimateBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());

  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(responses[3].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(responses[4].ok());
  EXPECT_TRUE(responses[5].ok());

  // The valid requests are served exactly as single Estimate serves them.
  for (size_t i : {size_t{0}, size_t{4}, size_t{5}}) {
    auto single = engine->Estimate(requests[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE(responses[i].value().distribution->BitIdentical(
        *single.value().distribution))
        << "request " << i;
    EXPECT_EQ(responses[i].value().resolved_path,
              single.value().resolved_path);
  }
}

TEST_F(ServingEngineTest, BatchMatchesSequentialAcrossWorkerCounts) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  std::vector<EstimateRequest> requests;
  for (auto [from, to] : {std::pair<VertexId, VertexId>{0, 30},
                          {5, 40},
                          {2, 61},
                          {0, 60}}) {
    requests.push_back(WithDistribution(PathSpec::ExplicitPath(
        PathBetween(from, to))));
  }
  auto batched = engine->EstimateBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    auto single = engine->Estimate(requests[i]);
    ASSERT_EQ(batched[i].ok(), single.ok());
    ASSERT_TRUE(batched[i].ok());
    EXPECT_TRUE(batched[i].value().distribution->BitIdentical(
        *single.value().distribution));
    EXPECT_GT(batched[i].value().serve_seconds, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Routing through the Engine
// ---------------------------------------------------------------------------

TEST_F(ServingEngineTest, RouteMatchesDirectlyWiredRouter) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  const VertexId from = 0, to = 30;
  const double min_time = roadnet::ShortestPathCost(
      *graph_, from, to, roadnet::FreeFlowWeight(*graph_));
  ASSERT_LT(min_time, roadnet::kInfCost);
  RouteRequest request;
  request.from = from;
  request.to = to;
  request.departure_time = kDepart;
  request.budget_seconds = min_time * 1.3;
  auto response = engine->Route(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  routing::RouterConfig config;
  config.num_threads = 1;
  routing::DfsStochasticRouter direct(*graph_, engine->model(),
                                      engine->options().estimate, config);
  auto expected = direct.Route(from, to, kDepart, min_time * 1.3);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(response.value().best_path, expected.value().best_path);
  EXPECT_EQ(response.value().on_time_probability,
            expected.value().best_probability);
  EXPECT_EQ(response.value().candidate_paths,
            expected.value().candidate_paths);

  // Infeasible budgets surface the router's NotFound unchanged.
  request.budget_seconds = min_time * 0.1;
  EXPECT_EQ(engine->Route(request).status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Deadlines, cancellation, admission (ISSUE 7)
// ---------------------------------------------------------------------------

TEST_F(ServingEngineTest, ExpiredDeadlineReturnsCleanStatusNoPartialResponse) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(2, 61)));
  request.timeout_seconds = 1e-9;  // expired before the first checkpoint
  auto response = engine->Estimate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine->stats().deadline_exceeded, 1u);

  // Route honours the same deadline contract.
  RouteRequest route;
  route.from = 0;
  route.to = 30;
  route.departure_time = kDepart;
  route.budget_seconds = 3600.0;
  route.timeout_seconds = 1e-9;
  EXPECT_EQ(engine->Route(route).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine->stats().deadline_exceeded, 2u);

  // The same requests without a deadline still serve normally — the
  // unwinds left no broken state behind.
  request.timeout_seconds = 0.0;
  EXPECT_TRUE(engine->Estimate(request).ok());
  route.timeout_seconds = 0.0;
  EXPECT_TRUE(engine->Route(route).ok());
}

TEST_F(ServingEngineTest, ExternalCancelTokenUnwindsWithCancelled) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  CancelToken token;
  token.Cancel();
  EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(0, 30)));
  request.cancel = &token;
  auto response = engine->Estimate(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);

  RouteRequest route;
  route.from = 0;
  route.to = 30;
  route.departure_time = kDepart;
  route.budget_seconds = 3600.0;
  route.cancel = &token;
  EXPECT_EQ(engine->Route(route).status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine->stats().cancelled, 2u);

  // A live (untripped) token is inert.
  CancelToken live;
  request.cancel = &live;
  EXPECT_TRUE(engine->Estimate(request).ok());
}

TEST_F(ServingEngineTest, BatchDeadlinesAndCancelAreScopedPerRequest) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  CancelToken tripped;
  tripped.Cancel();
  std::vector<EstimateRequest> requests;
  requests.push_back(WithDistribution(PathSpec::ExplicitPath(
      PathBetween(0, 30))));  // plain
  EstimateRequest dead =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(5, 40)));
  dead.timeout_seconds = 1e-9;
  requests.push_back(dead);
  EstimateRequest cancelled =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(2, 61)));
  cancelled.cancel = &tripped;
  requests.push_back(cancelled);
  requests.push_back(WithDistribution(PathSpec::ExplicitPath(
      PathBetween(0, 60))));  // plain again

  auto responses = engine->EstimateBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  EXPECT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[1].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(responses[2].status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(responses[3].ok());

  // The surviving requests serve exactly what single Estimate serves —
  // a neighbour's deadline or cancellation never bleeds into them.
  for (size_t i : {size_t{0}, size_t{3}}) {
    auto single = engine->Estimate(requests[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE(responses[i].value().summary.ExactlyEquals(
        single.value().summary))
        << "request " << i;
  }
}

TEST_F(ServingEngineTest, AdmissionCountersAndInflightStampOnResponses) {
  auto engine = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(engine, nullptr);
  const EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(0, 30)));
  auto first = engine->Estimate(request);
  auto second = engine->Estimate(request);
  ASSERT_TRUE(first.ok() && second.ok());
  // Sequential single requests: exactly one in flight at admission.
  EXPECT_EQ(first.value().inflight_at_admit, 1u);
  EXPECT_EQ(second.value().inflight_at_admit, 1u);
  const EngineStats stats = engine->stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.inflight, 0u);  // both finished
  EXPECT_GE(stats.inflight_highwater, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST_F(ServingEngineTest, OverloadShedsWithResourceExhausted) {
  EngineOptions options;
  options.model_path = artifact_;
  options.graph = graph_;
  options.num_threads = 2;
  options.query_cache_bytes = 0;
  options.max_inflight_requests = 1;  // queue depth 0, timeout 0: hard shed
  auto opened = Engine::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine& engine = *opened.value();

  const EstimateRequest request =
      WithDistribution(PathSpec::ExplicitPath(PathBetween(2, 61)));
  // Hammer the 1-slot engine from several concurrently looping threads
  // until a shed is observed (bounded iterations; individual requests are
  // microseconds, so the threads must loop to overlap reliably).
  constexpr int kThreads = 4;
  constexpr int kMaxItersPerThread = 20000;
  std::atomic<uint64_t> ok_count{0}, shed_count{0}, other_count{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kMaxItersPerThread && shed_count.load() == 0;
             ++i) {
          auto response = engine.Estimate(request);
          if (response.ok()) {
            ok_count.fetch_add(1);
          } else if (response.status().code() ==
                     StatusCode::kResourceExhausted) {
            shed_count.fetch_add(1);
          } else {
            other_count.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_GT(shed_count.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);  // shedding never starves everyone
  EXPECT_EQ(other_count.load(), 0u);  // only OK or clean shed, nothing else
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.admitted, ok_count.load());
  EXPECT_EQ(stats.shed, shed_count.load());
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.inflight_highwater, 1u);  // the cap held

  // After the storm the engine serves normally.
  auto calm = engine.Estimate(request);
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(calm.value().inflight_at_admit, 1u);
}

TEST_F(ServingEngineTest, GenerousLimitsAreBitIdenticalToNoLimits) {
  // The no-pressure contract: an engine with admission + deadlines
  // configured but not binding serves byte-for-byte what the default
  // engine serves.
  EngineOptions options;
  options.model_path = artifact_;
  options.graph = graph_;
  options.num_threads = 1;
  options.query_cache_bytes = 0;
  options.max_inflight_requests = 64;
  options.max_queue_depth = 16;
  options.queue_timeout_seconds = 10.0;
  auto limited = Engine::Open(std::move(options));
  ASSERT_TRUE(limited.ok());
  auto plain = OpenEngine(/*cache_bytes=*/0);
  ASSERT_NE(plain, nullptr);
  for (auto [from, to] : {std::pair<VertexId, VertexId>{0, 30}, {5, 40}}) {
    EstimateRequest request =
        WithDistribution(PathSpec::ExplicitPath(PathBetween(from, to)));
    request.timeout_seconds = 300.0;  // generous: never trips
    auto a = limited.value()->Estimate(request);
    request.timeout_seconds = 0.0;
    auto b = plain->Estimate(request);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(a.value().summary.ExactlyEquals(b.value().summary));
    EXPECT_TRUE(a.value().distribution->BitIdentical(*b.value().distribution));
  }
}

// ---------------------------------------------------------------------------
// Open / resolution error contract
// ---------------------------------------------------------------------------

TEST_F(ServingEngineTest, OpenAndResolutionErrors) {
  EngineOptions no_path;
  EXPECT_EQ(Engine::Open(std::move(no_path)).status().code(),
            StatusCode::kInvalidArgument);

  EngineOptions missing;
  missing.model_path = "/nonexistent/pcde-model.pcdewf";
  EXPECT_FALSE(Engine::Open(std::move(missing)).ok());

  // OD spec against an engine with no graph: FailedPrecondition.
  EngineOptions graphless;
  graphless.model_path = artifact_;
  graphless.num_threads = 1;
  auto engine = Engine::Open(std::move(graphless));
  ASSERT_TRUE(engine.ok());
  EstimateRequest od;
  od.path = PathSpec::OdPair(0, 30);
  EXPECT_EQ(engine.value()->Estimate(od).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.value()->Route([] {
                  RouteRequest r;
                  r.from = 0;
                  r.to = 30;
                  r.budget_seconds = 1e6;
                  return r;
                }())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Explicit paths still serve without a graph (no validation possible).
  auto response = engine.value()->Estimate(
      WithDistribution(PathSpec::ExplicitPath(PathBetween(0, 30))));
  EXPECT_TRUE(response.ok()) << response.status().ToString();
}

}  // namespace
}  // namespace serving
}  // namespace pcde
