// Tests for persistence: graph CSV, matched-trajectory CSV, and weight
// function serialization round-trips, plus GHG-emission cost support end
// to end (the paper's second cost type).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "roadnet/generators.h"
#include "roadnet/io.h"
#include "traj/generator.h"
#include "traj/io.h"
#include "traj/store.h"

namespace pcde {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

// ---------------------------------------------------------------------------
// Graph CSV
// ---------------------------------------------------------------------------

TEST_F(IoTest, GraphRoundTrip) {
  const roadnet::Graph g = roadnet::MakeCity(roadnet::CityAConfig());
  const std::string path = Track(TempPath("pcde_graph.csv"));
  ASSERT_TRUE(roadnet::SaveGraphCsv(g, path).ok());
  auto loaded = roadnet::LoadGraphCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().NumVertices(), g.NumVertices());
  ASSERT_EQ(loaded.value().NumEdges(), g.NumEdges());
  for (size_t i = 0; i < g.NumEdges(); ++i) {
    const auto& a = g.edge(i);
    const auto& b = loaded.value().edge(i);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_NEAR(a.length_m, b.length_m, 1e-6);
    EXPECT_NEAR(a.speed_limit_mps, b.speed_limit_mps, 1e-9);
    EXPECT_EQ(a.road_class, b.road_class);
  }
  for (size_t i = 0; i < g.NumVertices(); ++i) {
    EXPECT_NEAR(g.vertex(i).x, loaded.value().vertex(i).x, 1e-6);
  }
}

TEST_F(IoTest, GraphLoadRejectsGarbage) {
  const std::string path = Track(TempPath("pcde_bad_graph.csv"));
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("V,0,0,0\nE,0,0,7,100,13.9,0\n", f);  // unknown endpoint 7
    std::fclose(f);
  }
  EXPECT_FALSE(roadnet::LoadGraphCsv(path).ok());
  EXPECT_FALSE(roadnet::LoadGraphCsv("/nonexistent/graph.csv").ok());
}

TEST_F(IoTest, GraphLoadRejectsOutOfOrderIds) {
  const std::string path = Track(TempPath("pcde_ooo_graph.csv"));
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("V,1,0,0\n", f);  // must start at 0
    std::fclose(f);
  }
  EXPECT_FALSE(roadnet::LoadGraphCsv(path).ok());
}

// ---------------------------------------------------------------------------
// Matched trajectory CSV
// ---------------------------------------------------------------------------

TEST_F(IoTest, TrajectoryRoundTrip) {
  traj::Dataset ds = traj::MakeDatasetA(50);
  const auto original = ds.MatchedSlice(1.0);
  const std::string path = Track(TempPath("pcde_trips.csv"));
  ASSERT_TRUE(traj::SaveMatchedCsv(original, path).ok());
  auto loaded = traj::LoadMatchedCsv(*ds.graph, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].id, original[i].id);
    EXPECT_EQ(loaded.value()[i].path, original[i].path);
    ASSERT_EQ(loaded.value()[i].NumEdges(), original[i].NumEdges());
    for (size_t d = 0; d < original[i].NumEdges(); ++d) {
      EXPECT_NEAR(loaded.value()[i].edge_travel_seconds[d],
                  original[i].edge_travel_seconds[d], 1e-6);
      EXPECT_NEAR(loaded.value()[i].edge_emission_grams[d],
                  original[i].edge_emission_grams[d], 1e-6);
    }
  }
}

TEST_F(IoTest, TrajectoryLoadValidatesPaths) {
  traj::Dataset ds = traj::MakeDatasetA(5);
  const std::string path = Track(TempPath("pcde_bad_trips.csv"));
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    // Edges 0 and 2 are unlikely to be adjacent in the generated city;
    // use two copies of edge 0 which is definitely invalid (revisit).
    std::fputs("1,0,100,10,5\n1,0,110,10,5\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(traj::LoadMatchedCsv(*ds.graph, path).ok());
}

// ---------------------------------------------------------------------------
// Weight function serialization
// ---------------------------------------------------------------------------

TEST_F(IoTest, WeightFunctionRoundTrip) {
  traj::Dataset ds = traj::MakeDatasetA(2000);
  traj::TrajectoryStore store(ds.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*ds.graph, store, params);

  const std::string path = Track(TempPath("pcde_wp.txt"));
  ASSERT_TRUE(core::SaveWeightFunction(wp, path).ok());
  // v2 text embeds the binning; no caller-supplied alpha.
  auto loaded = core::LoadWeightFunction(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().binning().alpha_seconds(),
            wp.binning().alpha_seconds());
  EXPECT_EQ(loaded.value().fingerprint(), wp.fingerprint());
  ASSERT_EQ(loaded.value().NumVariables(), wp.NumVariables());
  EXPECT_EQ(loaded.value().CountByRank(false), wp.CountByRank(false));
  EXPECT_EQ(loaded.value().MemoryUsageBytes(), wp.MemoryUsageBytes());

  // Every original variable must be recoverable with identical content.
  size_t checked = 0;
  for (const auto& v : wp.variables()) {
    const auto* lv = loaded.value().Lookup(v.path, v.interval);
    ASSERT_NE(lv, nullptr);
    EXPECT_EQ(lv->support, v.support);
    EXPECT_EQ(lv->from_speed_limit, v.from_speed_limit);
    EXPECT_EQ(lv->joint.NumBuckets(), v.joint.NumBuckets());
    EXPECT_NEAR(lv->joint.DifferentialEntropy(),
                v.joint.DifferentialEntropy(), 1e-9);
    if (++checked >= 200) break;  // spot check
  }

  // Queries through the reloaded function match the original.
  core::HybridEstimator est_orig{wp};
  core::HybridEstimator est_loaded{loaded.value()};
  for (const auto& trip : ds.trips) {
    if (trip.truth.path.size() < 5) continue;
    const roadnet::Path q = trip.truth.path.Slice(0, 5);
    auto a = est_orig.EstimateCostDistribution(q, trip.truth.DepartureTime());
    auto b =
        est_loaded.EstimateCostDistribution(q, trip.truth.DepartureTime());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_LT(hist::L1Distance(a.value(), b.value()), 1e-9);
    break;
  }
}

TEST_F(IoTest, WeightFunctionLoadRejectsGarbage) {
  const std::string path = Track(TempPath("pcde_bad_wp.txt"));
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("BINNING,30\nVAR,16,40,0,2,1,2\nDIM,0,1\nHB,1.0,0,0\n",
               f);  // 1 DIM, rank 2
    std::fclose(f);
  }
  EXPECT_FALSE(core::LoadWeightFunction(path).ok());
  EXPECT_FALSE(core::LoadWeightFunction("/nonexistent/wp.txt").ok());
}

TEST_F(IoTest, TextV1ShimAndBinningMismatch) {
  // A v1-era file (no BINNING record) loads only through the shim, with
  // the caller supplying the binning it was built with.
  const std::string v1 = Track(TempPath("pcde_wp_v1.txt"));
  {
    std::FILE* f = std::fopen(v1.c_str(), "w");
    std::fputs("# pcde weight function v1\nVAR,16,40,0,1,3\nDIM,20,30\n"
               "HB,1,0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(core::LoadWeightFunction(v1).ok());  // v1 rejected here
  auto shimmed = core::LoadWeightFunctionTextV1(v1, 30.0);
  ASSERT_TRUE(shimmed.ok()) << shimmed.status().ToString();
  EXPECT_EQ(shimmed.value().binning().alpha_seconds(), 1800.0);
  EXPECT_NE(shimmed.value().Lookup(roadnet::Path({3}), 16), nullptr);

  // A v2 file whose embedded binning disagrees with the caller's alpha is
  // a load-time error (this mismatch used to be silent model corruption).
  const std::string v2 = Track(TempPath("pcde_wp_v2.txt"));
  {
    std::FILE* f = std::fopen(v2.c_str(), "w");
    std::fputs("BINNING,30\nVAR,16,40,0,1,3\nDIM,20,30\nHB,1,0\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(core::LoadWeightFunctionTextV1(v2, 30.0).ok());
  auto mismatch = core::LoadWeightFunctionTextV1(v2, 60.0);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// GHG emissions cost type (the paper's second travel cost)
// ---------------------------------------------------------------------------

TEST(EmissionCostTest, InstantiationAndQueryOnEmissions) {
  traj::Dataset ds = traj::MakeDatasetA(3000);
  traj::TrajectoryStore store(ds.MatchedSlice(1.0));
  core::HybridParams params;
  params.beta = 15;
  params.cost_type = traj::CostType::kEmissionGrams;
  const core::PathWeightFunction wp =
      core::InstantiateWeightFunction(*ds.graph, store, params);
  const auto counts = wp.CountByRank(false);
  ASSERT_TRUE(counts.count(1));
  EXPECT_GT(counts.at(1), 10u);

  // Query a data-covered window and compare against realized emissions.
  core::HybridEstimator od{wp};
  for (const auto& trip : ds.trips) {
    if (trip.truth.path.size() < 4) continue;
    const roadnet::Path q = trip.truth.path.Slice(0, 4);
    auto dist = od.EstimateCostDistribution(q, trip.truth.DepartureTime());
    ASSERT_TRUE(dist.ok());
    EXPECT_GT(dist.value().Mean(), 0.0);
    // The emission surrogate is tens of grams per edge at this scale.
    EXPECT_LT(dist.value().Mean(), 5000.0);
    break;
  }
}

}  // namespace
}  // namespace pcde
