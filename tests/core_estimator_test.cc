// Integration tests for the HybridEstimator on a full synthetic dataset:
// OD vs LB/HP/RD accuracy (the paper's headline claim), entropy ordering
// (Fig. 15), phase breakdowns (Fig. 17), and the incremental "path +
// another edge" API (Sec. 4.3).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/accuracy_optimal.h"
#include "baselines/methods.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace core {
namespace {

using baselines::AccuracyOptimal;
using hist::Histogram1D;
using roadnet::Path;
using traj::TrajectoryStore;

/// Shared expensive fixture: one dataset + one instantiated weight
/// function for all tests in this file.
class EstimatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(12000));
    params_ = new HybridParams();
    params_->beta = 20;
    store_ = new TrajectoryStore(dataset_->MatchedSlice(1.0));
    wp_ = new PathWeightFunction(
        InstantiateWeightFunction(*dataset_->graph, *store_, *params_));
  }
  static void TearDownTestSuite() {
    delete wp_;
    delete store_;
    delete params_;
    delete dataset_;
    wp_ = nullptr;
    store_ = nullptr;
    params_ = nullptr;
    dataset_ = nullptr;
  }

  /// Paths with an instantiated variable of rank >= min_rank, paired with
  /// a departure time inside the variable's interval.
  static std::vector<std::pair<Path, double>> PathsWithVariables(
      size_t min_rank, size_t limit) {
    std::vector<std::pair<Path, double>> out;
    for (const InstantiatedVariable& v : wp_->variables()) {
      if (v.from_speed_limit || v.rank() < min_rank) continue;
      const Interval ij = wp_->binning().IntervalOf(v.interval);
      out.emplace_back(v.path, ij.lo + 60.0);
      if (out.size() >= limit) break;
    }
    return out;
  }

  static traj::Dataset* dataset_;
  static HybridParams* params_;
  static TrajectoryStore* store_;
  static PathWeightFunction* wp_;
};

traj::Dataset* EstimatorFixture::dataset_ = nullptr;
HybridParams* EstimatorFixture::params_ = nullptr;
TrajectoryStore* EstimatorFixture::store_ = nullptr;
PathWeightFunction* EstimatorFixture::wp_ = nullptr;

TEST_F(EstimatorFixture, InstantiationProducedJointVariables) {
  const auto counts = wp_->CountByRank(false);
  ASSERT_TRUE(counts.count(1));
  EXPECT_GT(counts.at(1), 100u);
  ASSERT_TRUE(counts.count(2)) << "no rank-2 variables instantiated";
  EXPECT_GT(counts.at(2), 10u);
}

TEST_F(EstimatorFixture, OdUsesFullVariableWhenAvailable) {
  const auto paths = PathsWithVariables(3, 5);
  ASSERT_FALSE(paths.empty()) << "no rank-3 variables; increase dataset";
  HybridEstimator od = baselines::MakeOd(*wp_);
  for (const auto& [path, depart] : paths) {
    auto de = od.Decompose(path, depart);
    ASSERT_TRUE(de.ok());
    ASSERT_EQ(de.value().size(), 1u);
    EXPECT_EQ(de.value()[0].variable->path, path);
    auto est = od.EstimateCostDistribution(path, depart);
    ASSERT_TRUE(est.ok());
    auto direct = de.value()[0].variable->joint.SumDistribution();
    ASSERT_TRUE(direct.ok());
    EXPECT_LT(hist::L1Distance(est.value(), direct.value()), 1e-6);
  }
}

TEST_F(EstimatorFixture, AllMethodsProduceValidDistributions) {
  const auto paths = PathsWithVariables(2, 10);
  ASSERT_FALSE(paths.empty());
  std::vector<HybridEstimator> methods = {
      baselines::MakeOd(*wp_), baselines::MakeLb(*wp_),
      baselines::MakeHp(*wp_), baselines::MakeRd(*wp_),
      baselines::MakeOdCapped(*wp_, 3)};
  for (const auto& [path, depart] : paths) {
    for (const auto& m : methods) {
      auto est = m.EstimateCostDistribution(path, depart);
      ASSERT_TRUE(est.ok()) << est.status().ToString();
      double total = 0;
      for (const auto& b : est.value().buckets()) total += b.prob;
      EXPECT_NEAR(total, 1.0, 1e-6);
      EXPECT_GT(est.value().Mean(), 0.0);
    }
  }
}

TEST_F(EstimatorFixture, OdBeatsLbAgainstHeldOutGroundTruth) {
  // The Fig. 14 protocol: pick paths with >= beta qualified trajectories,
  // remove exactly those trajectories from the training store, rebuild
  // W_P, and compare estimates to the held-out ground truth.
  const TimeBinning& binning = wp_->binning();
  AccuracyOptimal gt_oracle(*store_, *params_);

  // Collect test paths from rank >= 4 variables whose edges also carry
  // substantial traffic from *other* routes in the same interval, so that
  // holding out the full-path trajectories leaves sub-path coverage — the
  // regime the hybrid graph targets (Sec. 4.1: derive long-path
  // distributions from data-rich sub-paths).
  std::vector<const InstantiatedVariable*> candidates;
  for (const InstantiatedVariable& v : wp_->variables()) {
    if (v.from_speed_limit || v.rank() < 4) continue;
    if (v.support < 2 * params_->beta) continue;
    const Interval ij = binning.IntervalOf(v.interval);
    bool covered = true;
    for (size_t d = 0; d < v.path.size() && covered; ++d) {
      const size_t unit_quals =
          store_->FindQualified(Path({v.path[d]}), ij).size();
      covered = unit_quals >= v.support + params_->beta + 20;
    }
    if (covered) candidates.push_back(&v);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const InstantiatedVariable* a, const InstantiatedVariable* b) {
              return a->support > b->support;
            });
  std::vector<std::pair<Path, int32_t>> selected;
  for (const InstantiatedVariable* v : candidates) {
    selected.emplace_back(v->path, v->interval);
    if (selected.size() >= 8) break;
  }
  ASSERT_GE(selected.size(), 3u);

  // Exclude every trajectory that occurred on a selected (path, interval).
  std::set<size_t> excluded;
  for (const auto& [path, interval] : selected) {
    for (const auto& occ :
         store_->FindQualified(path, binning.IntervalOf(interval))) {
      excluded.insert(occ.traj_index);
    }
  }
  std::vector<traj::MatchedTrajectory> remaining;
  for (size_t i = 0; i < store_->NumTrajectories(); ++i) {
    if (excluded.count(i) == 0) remaining.push_back(store_->trajectory(i));
  }
  TrajectoryStore sparse_store(std::move(remaining));
  const PathWeightFunction sparse_wp =
      InstantiateWeightFunction(*dataset_->graph, sparse_store, *params_);

  HybridEstimator od = baselines::MakeOd(sparse_wp);
  HybridEstimator lb = baselines::MakeLb(sparse_wp);
  double od_kl = 0.0, lb_kl = 0.0;
  size_t evaluated = 0;
  for (const auto& [path, interval] : selected) {
    const Interval ij = binning.IntervalOf(interval);
    // Histogram-vs-histogram comparison (the exact 1-second empirical
    // histogram makes KL sampling-noise dominated).
    auto truth = gt_oracle.GroundTruthCompact(path, ij);
    if (!truth.ok()) continue;
    // The full-path variable must be gone now (sparseness restored).
    EXPECT_EQ(sparse_wp.Lookup(path, interval), nullptr);
    auto od_est = od.EstimateCostDistribution(path, ij.lo + 60.0);
    auto lb_est = lb.EstimateCostDistribution(path, ij.lo + 60.0);
    ASSERT_TRUE(od_est.ok());
    ASSERT_TRUE(lb_est.ok());
    od_kl += hist::KlDivergence(truth.value(), od_est.value());
    lb_kl += hist::KlDivergence(truth.value(), lb_est.value());
    ++evaluated;
  }
  ASSERT_GE(evaluated, 3u);
  // The paper's headline: OD strictly more accurate than LB on average.
  EXPECT_LT(od_kl, lb_kl) << "OD avg KL " << od_kl / evaluated << " vs LB "
                          << lb_kl / evaluated;
}

TEST_F(EstimatorFixture, EntropyOrderingMatchesFig15) {
  const auto paths = PathsWithVariables(2, 1);
  ASSERT_FALSE(paths.empty());
  // Longer query: extend by walking the graph (random simple path through
  // data-rich edges is hard to guarantee; reuse trajectory paths).
  double od_h = 0, hp_h = 0, lb_h = 0, rd_h = 0;
  size_t n = 0;
  for (size_t i = 0; i < store_->NumTrajectories() && n < 20; ++i) {
    const auto& t = store_->trajectory(i);
    if (t.path.size() < 8) continue;
    const Path q = t.path.Slice(0, 8);
    const double depart = t.DepartureTime();
    auto od = baselines::MakeOd(*wp_).EstimateEntropy(q, depart);
    auto hp = baselines::MakeHp(*wp_).EstimateEntropy(q, depart);
    auto lb = baselines::MakeLb(*wp_).EstimateEntropy(q, depart);
    auto rd = baselines::MakeRd(*wp_).EstimateEntropy(q, depart);
    if (!od.ok() || !hp.ok() || !lb.ok() || !rd.ok()) continue;
    od_h += od.value();
    hp_h += hp.value();
    lb_h += lb.value();
    rd_h += rd.value();
    ++n;
  }
  ASSERT_GE(n, 5u);
  // Fig. 15 ordering: OD lowest; LB highest; HP and RD in between. The
  // OD-vs-RD comparison gets a 1% tolerance: with beta-sized supports the
  // plug-in differential entropy of high-rank histograms carries a small
  // upward bias (documented in EXPERIMENTS.md); the paper's fleet data has
  // orders of magnitude more support per variable.
  EXPECT_LE(od_h, hp_h + 1e-9);
  EXPECT_LE(od_h, rd_h * 1.01);
  EXPECT_LE(hp_h, lb_h + 1e-9);
  EXPECT_LE(rd_h, lb_h + 1e-9);
  EXPECT_LE(od_h, lb_h + 1e-9);
}

TEST_F(EstimatorFixture, OdUsesFewerVariablesThanLb) {
  size_t checked = 0;
  for (size_t i = 0; i < store_->NumTrajectories() && checked < 10; ++i) {
    const auto& t = store_->trajectory(i);
    if (t.path.size() < 10) continue;
    const Path q = t.path.Slice(0, 10);
    auto od_de = baselines::MakeOd(*wp_).Decompose(q, t.DepartureTime());
    auto lb_de = baselines::MakeLb(*wp_).Decompose(q, t.DepartureTime());
    ASSERT_TRUE(od_de.ok());
    ASSERT_TRUE(lb_de.ok());
    EXPECT_LE(od_de.value().size(), lb_de.value().size());
    ++checked;
  }
  ASSERT_GT(checked, 0u);
}

TEST_F(EstimatorFixture, BreakdownPhasesPopulated) {
  const auto paths = PathsWithVariables(2, 1);
  ASSERT_FALSE(paths.empty());
  HybridEstimator od = baselines::MakeOd(*wp_);
  EstimateBreakdown breakdown;
  auto est = od.EstimateCostDistribution(paths[0].first, paths[0].second,
                                         &breakdown);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(breakdown.parts, 0u);
  EXPECT_GE(breakdown.oi_seconds, 0.0);
  EXPECT_GE(breakdown.jc_seconds, 0.0);
  EXPECT_GE(breakdown.mc_seconds, 0.0);
  EXPECT_GT(breakdown.oi_seconds + breakdown.jc_seconds +
                breakdown.mc_seconds,
            0.0);
}

TEST_F(EstimatorFixture, RandomPolicyDeterministicPerSeed) {
  size_t found = 0;
  for (size_t i = 0; i < store_->NumTrajectories() && found < 3; ++i) {
    const auto& t = store_->trajectory(i);
    if (t.path.size() < 6) continue;
    ++found;
    const Path q = t.path.Slice(0, 6);
    HybridEstimator rd1 = baselines::MakeRd(*wp_, 99);
    HybridEstimator rd2 = baselines::MakeRd(*wp_, 99);
    auto e1 = rd1.EstimateCostDistribution(q, t.DepartureTime());
    auto e2 = rd2.EstimateCostDistribution(q, t.DepartureTime());
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    EXPECT_LT(hist::L1Distance(e1.value(), e2.value()), 1e-12);
  }
  ASSERT_GT(found, 0u);
}

TEST_F(EstimatorFixture, IncrementalTracksBatchEstimate) {
  size_t found = 0;
  for (size_t i = 0; i < store_->NumTrajectories() && found < 5; ++i) {
    const auto& t = store_->trajectory(i);
    if (t.path.size() < 6) continue;
    ++found;
    const Path q = t.path.Slice(0, 6);
    const double depart = t.DepartureTime();
    EstimateOptions options;
    IncrementalEstimator inc(*wp_, options, q[0], depart);
    for (size_t k = 1; k < q.size(); ++k) {
      ASSERT_TRUE(inc.ExtendByEdge(q[k]).ok());
    }
    auto inc_dist = inc.CurrentDistribution();
    ASSERT_TRUE(inc_dist.ok());
    auto batch = baselines::MakeOd(*wp_).EstimateCostDistribution(q, depart);
    ASSERT_TRUE(batch.ok());
    // Greedy incremental decomposition may differ from Algorithm 1, but
    // the estimates must agree closely on the mean.
    EXPECT_NEAR(inc_dist.value().Mean(), batch.value().Mean(),
                0.2 * batch.value().Mean());
    EXPECT_LE(inc.MinTotalCost(), inc_dist.value().Mean());
  }
  ASSERT_GT(found, 0u);
}

TEST_F(EstimatorFixture, SpeedLimitFallbackCoversColdPaths) {
  // A path over edges without data still gets a distribution.
  for (size_t i = 0; i < store_->NumTrajectories(); ++i) {
    const auto& t = store_->trajectory(i);
    if (t.path.size() < 4) continue;
    const Path q = t.path.Slice(0, 4);
    // 3 AM: no data anywhere.
    auto est = baselines::MakeOd(*wp_).EstimateCostDistribution(q, 3 * 3600.0);
    ASSERT_TRUE(est.ok());
    const double fft = q.FreeFlowSeconds(*dataset_->graph);
    EXPECT_NEAR(est.value().Mean(), fft, 0.6 * fft);
    break;
  }
}

}  // namespace
}  // namespace core
}  // namespace pcde
