// Golden-equivalence tests for the flat-keyed-state ChainSweeper rewrite:
// on randomized decomposition chains, the optimized sweeper must reproduce
// the pre-rewrite reference kernel's output distribution — same mass, same
// bucket boundaries and probabilities within 1e-12 — and the same peak
// state count (the compaction decisions are identical).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/chain_estimator.h"
#include "core/chain_estimator_reference.h"
#include "hist/histogram_nd.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using hist::HistogramND;
using roadnet::EdgeId;
using roadnet::Path;

/// A random sparse HistogramND with `rank` dims, 1-3 buckets per dim,
/// random boundaries anchored per global position (so adjacent parts have
/// mismatched but overlapping separator boundaries).
HistogramND RandomJoint(size_t start, size_t rank, Rng* rng) {
  std::vector<std::vector<double>> bounds(rank);
  for (size_t d = 0; d < rank; ++d) {
    const double base = 10.0 * static_cast<double>(start + d);
    const size_t k = 1 + static_cast<size_t>(rng->UniformInt(0, 2));
    std::vector<double> cuts{base, base + 20.0};
    for (size_t c = 1; c < k; ++c) {
      cuts.push_back(base + rng->Uniform(1.0, 19.0));
    }
    std::sort(cuts.begin(), cuts.end());
    bounds[d] = cuts;
  }
  // Enumerate all index combinations; keep each with probability ~0.75.
  std::vector<HistogramND::HyperBucket> hbs;
  std::vector<uint32_t> idx(rank, 0);
  for (;;) {
    if (rng->Uniform(0.0, 1.0) < 0.75) {
      hbs.push_back({idx, rng->Uniform(0.05, 1.0)});
    }
    size_t d = 0;
    while (d < rank) {
      if (++idx[d] < bounds[d].size() - 1) break;
      idx[d] = 0;
      ++d;
    }
    if (d == rank) break;
  }
  if (hbs.empty()) hbs.push_back({std::vector<uint32_t>(rank, 0), 1.0});
  double total = 0.0;
  for (const auto& hb : hbs) total += hb.prob;
  for (auto& hb : hbs) hb.prob /= total;
  auto made = HistogramND::Make(std::move(bounds), std::move(hbs));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  return made.value();
}

/// A random chain: parts of rank 1-3, consecutive overlap 0 to rank-1.
struct RandomChain {
  std::vector<InstantiatedVariable> vars;
  Decomposition de;

  RandomChain(size_t num_parts, Rng* rng) {
    vars.reserve(num_parts);
    size_t start = 0;
    size_t prev_rank = 0;
    for (size_t i = 0; i < num_parts; ++i) {
      const size_t rank = 1 + static_cast<size_t>(rng->UniformInt(0, 2));
      if (i > 0) {
        const size_t max_overlap = std::min(prev_rank - 1, rank - 1);
        const size_t overlap =
            max_overlap == 0
                ? 0
                : static_cast<size_t>(
                      rng->UniformInt(0, static_cast<int64_t>(max_overlap)));
        start += prev_rank - overlap;
      }
      InstantiatedVariable v;
      std::vector<EdgeId> edges;
      for (size_t d = 0; d < rank; ++d) {
        edges.push_back(static_cast<EdgeId>(start + d));
      }
      v.path = Path(std::move(edges));
      v.interval = 3;
      v.joint = RandomJoint(start, rank, rng);
      v.support = 50;
      vars.push_back(std::move(v));
      prev_rank = rank;
    }
    // Vector is fully built: stable addresses. Each part starts at its
    // first edge id (edge ids were assigned to equal global positions).
    for (size_t i = 0; i < num_parts; ++i) {
      de.push_back(
          DecompositionPart{&vars[i], static_cast<size_t>(vars[i].path[0])});
    }
  }
};

void ExpectHistogramsIdentical(const Histogram1D& got,
                               const Histogram1D& want, const char* what) {
  ASSERT_EQ(got.NumBuckets(), want.NumBuckets()) << what;
  double got_mass = 0.0, want_mass = 0.0;
  for (size_t b = 0; b < got.NumBuckets(); ++b) {
    EXPECT_NEAR(got.bucket(b).range.lo, want.bucket(b).range.lo, 1e-12)
        << what << " bucket " << b;
    EXPECT_NEAR(got.bucket(b).range.hi, want.bucket(b).range.hi, 1e-12)
        << what << " bucket " << b;
    EXPECT_NEAR(got.bucket(b).prob, want.bucket(b).prob, 1e-12)
        << what << " bucket " << b;
    got_mass += got.bucket(b).prob;
    want_mass += want.bucket(b).prob;
  }
  EXPECT_NEAR(got_mass, want_mass, 1e-12) << what;
}

TEST(ChainGoldenTest, RandomizedChainsMatchReferenceKernel) {
  Rng rng(20260730);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t num_parts = 1 + static_cast<size_t>(rng.UniformInt(0, 7));
    RandomChain chain(num_parts, &rng);

    ChainDiagnostics new_diag, ref_diag;
    auto got = EstimateFromDecomposition(chain.de, ChainOptions(), &new_diag);
    auto want = reference::ReferenceEstimateFromDecomposition(
        chain.de, ChainOptions(), &ref_diag);
    ASSERT_EQ(got.ok(), want.ok()) << "trial " << trial;
    if (!got.ok()) continue;
    EXPECT_EQ(new_diag.independence_fallback, ref_diag.independence_fallback)
        << "trial " << trial;
    EXPECT_EQ(new_diag.max_states, ref_diag.max_states) << "trial " << trial;
    ExpectHistogramsIdentical(got.value(), want.value(), "trial");
  }
}

TEST(ChainGoldenTest, ForcedIndependenceMatchesReferenceKernel) {
  Rng rng(42);
  ChainOptions options;
  options.force_independence = true;
  for (int trial = 0; trial < 40; ++trial) {
    RandomChain chain(1 + static_cast<size_t>(rng.UniformInt(0, 5)), &rng);
    auto got = EstimateFromDecomposition(chain.de, options);
    auto want =
        reference::ReferenceEstimateFromDecomposition(chain.de, options);
    ASSERT_EQ(got.ok(), want.ok());
    if (!got.ok()) continue;
    ExpectHistogramsIdentical(got.value(), want.value(), "independent trial");
  }
}

TEST(ChainGoldenTest, TightStateCapsStillMatchReference) {
  // Drive the per-group compaction path hard; the two kernels share the
  // compaction routine, so the outputs must still coincide.
  Rng rng(7);
  ChainOptions options;
  options.sums_per_box_cap = 8;
  options.max_result_buckets = 16;
  for (int trial = 0; trial < 40; ++trial) {
    RandomChain chain(4 + static_cast<size_t>(rng.UniformInt(0, 4)), &rng);
    ChainDiagnostics new_diag, ref_diag;
    auto got = EstimateFromDecomposition(chain.de, options, &new_diag);
    auto want = reference::ReferenceEstimateFromDecomposition(chain.de,
                                                              options,
                                                              &ref_diag);
    ASSERT_EQ(got.ok(), want.ok());
    if (!got.ok()) continue;
    EXPECT_EQ(new_diag.max_states, ref_diag.max_states);
    ExpectHistogramsIdentical(got.value(), want.value(), "capped trial");
  }
}

/// A rank-`rank` joint anchored at global position `start` (same per-
/// position boundaries as RandomJoint, so parts sharing a position share
/// its boundaries exactly). The last `two_bucket_dims` dims get two
/// buckets, the rest one, keeping the hyper-bucket count 2^two_bucket_dims
/// even at rank 18+; trailing placement keeps the leading positions — the
/// ones the open-dim cap closes early — at identical single-bucket
/// marginals in every part that covers them, so graceful degradation on
/// independent joints is exactly lossless. With `correlated == false` the
/// hyper-bucket masses factor into per-dim marginals.
HistogramND WideJoint(size_t start, size_t rank, size_t two_bucket_dims,
                      bool correlated, Rng* rng) {
  std::vector<std::vector<double>> bounds(rank);
  for (size_t d = 0; d < rank; ++d) {
    const double base = 10.0 * static_cast<double>(start + d);
    if (d >= rank - two_bucket_dims) {
      bounds[d] = {base, base + 8.0, base + 20.0};
    } else {
      bounds[d] = {base, base + 20.0};
    }
  }
  std::vector<HistogramND::HyperBucket> hbs;
  const size_t combos = size_t{1} << two_bucket_dims;
  double total = 0.0;
  for (size_t c = 0; c < combos; ++c) {
    std::vector<uint32_t> idx(rank, 0);
    double p = 1.0;
    for (size_t d = 0; d < two_bucket_dims; ++d) {
      const uint32_t bit = (c >> d) & 1;
      idx[rank - two_bucket_dims + d] = bit;
      p *= bit == 0 ? 0.3 : 0.7;
    }
    if (correlated) p *= rng->Uniform(0.2, 1.0);
    hbs.push_back({std::move(idx), p});
    total += p;
  }
  for (auto& hb : hbs) hb.prob /= total;
  auto made = HistogramND::Make(std::move(bounds), std::move(hbs));
  EXPECT_TRUE(made.ok()) << made.status().ToString();
  return made.value();
}

/// A chain of `num_parts` wide parts, each of rank `rank`, consecutive
/// parts overlapping on rank - 1 positions — every separator wider than
/// ChainSweeper::kMaxOpenDims once rank > kMaxOpenDims + 1.
struct WideChain {
  std::vector<InstantiatedVariable> vars;
  Decomposition de;

  WideChain(size_t num_parts, size_t rank, size_t two_bucket_dims,
            bool correlated, Rng* rng) {
    vars.reserve(num_parts);
    for (size_t i = 0; i < num_parts; ++i) {
      const size_t start = i;  // overlap rank - 1
      InstantiatedVariable v;
      std::vector<EdgeId> edges;
      for (size_t d = 0; d < rank; ++d) {
        edges.push_back(static_cast<EdgeId>(start + d));
      }
      v.path = Path(std::move(edges));
      v.interval = 3;
      v.joint = WideJoint(start, rank, two_bucket_dims, correlated, rng);
      v.support = 50;
      vars.push_back(std::move(v));
    }
    for (size_t i = 0; i < num_parts; ++i) {
      de.push_back(DecompositionPart{&vars[i], i});
    }
  }
};

TEST(ChainGoldenTest, OpenDimOverflowOnIndependentJointsMatchesReference) {
  // Separators wider than kMaxOpenDims force the sweeper to close the
  // excess leading dimensions early — graceful degradation toward
  // independence for those dims only. On joints that are exactly
  // independent across dims, that degradation is lossless, so the capped
  // sweeper must still reproduce the uncapped reference kernel.
  static_assert(ChainSweeper::kMaxOpenDims == 16,
                "overflow fixtures assume the 16-dim cap");
  Rng rng(20260731);
  // Marginalization merges states the reference keeps apart, so the
  // per-group compaction cap can fire on different inputs; raise it to
  // isolate the degradation semantics from bounded-memory compaction.
  ChainOptions options;
  options.sums_per_box_cap = 256;
  for (size_t rank : {18, 20}) {  // separators of 17 and 19 open dims
    WideChain chain(3, rank, 2, /*correlated=*/false, &rng);
    ChainDiagnostics new_diag, ref_diag;
    auto got = EstimateFromDecomposition(chain.de, options, &new_diag);
    auto want = reference::ReferenceEstimateFromDecomposition(
        chain.de, options, &ref_diag);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_FALSE(new_diag.independence_fallback);
    ASSERT_EQ(got.value().NumBuckets(), want.value().NumBuckets())
        << "rank " << rank;
    for (size_t b = 0; b < got.value().NumBuckets(); ++b) {
      EXPECT_NEAR(got.value().bucket(b).range.lo,
                  want.value().bucket(b).range.lo, 1e-8)
          << "rank " << rank << " bucket " << b;
      EXPECT_NEAR(got.value().bucket(b).range.hi,
                  want.value().bucket(b).range.hi, 1e-8)
          << "rank " << rank << " bucket " << b;
      EXPECT_NEAR(got.value().bucket(b).prob, want.value().bucket(b).prob,
                  1e-9)
          << "rank " << rank << " bucket " << b;
    }
  }
}

TEST(ChainGoldenTest, OpenDimOverflowOnCorrelatedJointsDegradesGracefully) {
  // With correlated joints the capped sweeper's estimate is a genuine
  // approximation (independence for the excess dims only), so assert the
  // semantic invariants: estimation succeeds without the all-parts
  // independence fallback, produces a unit-mass histogram, and stays close
  // to the uncapped reference in mean.
  Rng rng(424242);
  for (int trial = 0; trial < 4; ++trial) {
    WideChain chain(3, 18, 2, /*correlated=*/true, &rng);
    ChainDiagnostics diag;
    auto got = EstimateFromDecomposition(chain.de, ChainOptions(), &diag);
    auto want = reference::ReferenceEstimateFromDecomposition(chain.de,
                                                              ChainOptions());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_FALSE(diag.independence_fallback);
    double mass = 0.0;
    for (const auto& b : got.value().buckets()) mass += b.prob;
    EXPECT_NEAR(mass, 1.0, 1e-9);
    EXPECT_NEAR(got.value().Mean(), want.value().Mean(),
                0.02 * std::abs(want.value().Mean()))
        << "trial " << trial;
  }
}

TEST(ChainGoldenTest, GroupOverflowDemotionConservesMassAndMean) {
  // With max_groups tiny, the demotion order between the kernels may
  // differ on mass ties, so assert the semantic invariants rather than
  // bitwise equality: both conserve total mass and stay close in mean.
  Rng rng(99);
  ChainOptions options;
  options.max_groups = 3;
  for (int trial = 0; trial < 20; ++trial) {
    RandomChain chain(5, &rng);
    auto got = EstimateFromDecomposition(chain.de, options);
    auto want =
        reference::ReferenceEstimateFromDecomposition(chain.de, options);
    ASSERT_EQ(got.ok(), want.ok());
    if (!got.ok()) continue;
    double got_mass = 0.0, want_mass = 0.0;
    for (const auto& b : got.value().buckets()) got_mass += b.prob;
    for (const auto& b : want.value().buckets()) want_mass += b.prob;
    EXPECT_NEAR(got_mass, want_mass, 1e-9);
    EXPECT_NEAR(got.value().Mean(), want.value().Mean(),
                1e-6 * std::max(1.0, std::abs(want.value().Mean())));
  }
}

}  // namespace
}  // namespace core
}  // namespace pcde
