// Tests for the sharded LRU query cache: hit/miss accounting, LRU
// memory-budget eviction, and the serving-layer equivalence guarantee —
// a batch served with a cache must be bit-identical to the sequential
// estimator without one.
#include <gtest/gtest.h>

#include <memory>

#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/query_cache.h"
#include "hist/histogram1d.h"
#include "hist/histogram_nd.h"
#include "routing/stochastic_router.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using traj::TrajectoryStore;

Histogram1D TwoBucketHistogram(double base) {
  return Histogram1D::Make(
             {{base, base + 10.0, 0.25}, {base + 10.0, base + 30.0, 0.75}})
      .value();
}

QueryCache::Key KeyOf(uint64_t tag) { return QueryCache::Key{tag, tag ^ 7}; }

TEST(QueryCacheTest, HitMissAndInsertionAccounting) {
  QueryCache cache;
  Histogram1D out;
  EXPECT_FALSE(cache.Lookup(KeyOf(1), &out));
  cache.Insert(KeyOf(1), TwoBucketHistogram(0.0));
  EXPECT_TRUE(cache.Lookup(KeyOf(1), &out));
  EXPECT_EQ(out.NumBuckets(), 2u);
  EXPECT_DOUBLE_EQ(out.bucket(0).prob, 0.25);
  EXPECT_FALSE(cache.Lookup(KeyOf(2), &out));

  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_NEAR(stats.HitRate(), 1.0 / 3.0, 1e-12);
}

TEST(QueryCacheTest, InsertIsIdempotentPerKey) {
  QueryCache cache;
  cache.Insert(KeyOf(5), TwoBucketHistogram(0.0));
  cache.Insert(KeyOf(5), TwoBucketHistogram(0.0));  // concurrent-miss replay
  const QueryCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCacheTest, BudgetEvictionIsLeastRecentlyUsedFirst) {
  QueryCacheOptions options;
  options.num_shards = 1;  // deterministic: one LRU list
  // Room for roughly three entries (each ~ 200 + 2 buckets).
  options.max_bytes = 3 * (160 + 2 * 16 + 2 * sizeof(hist::Bucket)) + 200;
  QueryCache cache(options);

  cache.Insert(KeyOf(1), TwoBucketHistogram(1.0));
  cache.Insert(KeyOf(2), TwoBucketHistogram(2.0));
  cache.Insert(KeyOf(3), TwoBucketHistogram(3.0));
  Histogram1D out;
  ASSERT_TRUE(cache.Lookup(KeyOf(1), &out));  // refresh 1: LRU order 2 < 3 < 1

  cache.Insert(KeyOf(4), TwoBucketHistogram(4.0));  // evicts 2 first
  EXPECT_FALSE(cache.Lookup(KeyOf(2), &out));
  EXPECT_TRUE(cache.Lookup(KeyOf(1), &out));
  EXPECT_TRUE(cache.Lookup(KeyOf(4), &out));

  const QueryCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, options.max_bytes);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(QueryCacheTest, OversizedEntriesAreNotAdmitted) {
  QueryCacheOptions options;
  options.num_shards = 1;
  options.max_bytes = 64;  // smaller than any entry
  QueryCache cache(options);
  cache.Insert(KeyOf(1), TwoBucketHistogram(0.0));
  EXPECT_EQ(cache.stats().entries, 0u);
  Histogram1D out;
  EXPECT_FALSE(cache.Lookup(KeyOf(1), &out));
}

TEST(QueryCacheTest, KeySeparatesOptionsTimeBucketPartsAndModel) {
  InstantiatedVariable var;
  var.id = 9;
  const Decomposition de{DecompositionPart{&var, 3}};
  const uint64_t fp = QueryCache::Fingerprint(ChainOptions());
  ChainOptions independent;
  independent.force_independence = true;

  const auto base = QueryCache::MakeKey(de, 100.0, 300.0, fp, 1);
  EXPECT_EQ(base, QueryCache::MakeKey(de, 250.0, 300.0, fp, 1));  // same bucket
  EXPECT_NE(base, QueryCache::MakeKey(de, 400.0, 300.0, fp, 1));  // next bucket
  EXPECT_NE(base,
            QueryCache::MakeKey(de, 100.0, 300.0,
                                QueryCache::Fingerprint(independent), 1));
  const Decomposition shifted{DecompositionPart{&var, 4}};
  EXPECT_NE(base, QueryCache::MakeKey(shifted, 100.0, 300.0, fp, 1));
  // Keys carry frozen variable ids, not addresses: an equal-id variable at
  // a different address (a reloaded model) keys the same entry...
  InstantiatedVariable reloaded;
  reloaded.id = 9;
  const Decomposition same_id{DecompositionPart{&reloaded, 3}};
  EXPECT_EQ(base, QueryCache::MakeKey(same_id, 100.0, 300.0, fp, 1));
  // ...while a different id or a different model fingerprint never
  // false-hits.
  reloaded.id = 10;
  EXPECT_NE(base, QueryCache::MakeKey(same_id, 100.0, 300.0, fp, 1));
  EXPECT_NE(base, QueryCache::MakeKey(de, 100.0, 300.0, fp, 2));
}

class CachedEstimationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(3000));
    HybridParams params;
    params.beta = 10;
    store_ = new TrajectoryStore(dataset_->MatchedSlice(1.0));
    wp_ = new PathWeightFunction(
        InstantiateWeightFunction(*dataset_->graph, *store_, params));
  }
  static void TearDownTestSuite() {
    delete wp_;
    delete store_;
    delete dataset_;
    wp_ = nullptr;
    store_ = nullptr;
    dataset_ = nullptr;
  }

  static std::vector<PathQuery> MakeQueries(size_t limit) {
    std::vector<PathQuery> queries;
    for (const InstantiatedVariable& v : wp_->variables()) {
      if (v.from_speed_limit) continue;
      const Interval ij = wp_->binning().IntervalOf(v.interval);
      queries.push_back(PathQuery{v.path, ij.lo + 60.0});
      if (queries.size() >= limit) break;
    }
    return queries;
  }

  static traj::Dataset* dataset_;
  static TrajectoryStore* store_;
  static PathWeightFunction* wp_;
};

traj::Dataset* CachedEstimationFixture::dataset_ = nullptr;
TrajectoryStore* CachedEstimationFixture::store_ = nullptr;
PathWeightFunction* CachedEstimationFixture::wp_ = nullptr;

void ExpectBitIdentical(const StatusOr<Histogram1D>& got,
                        const StatusOr<Histogram1D>& want, size_t i) {
  ASSERT_EQ(got.ok(), want.ok()) << "query " << i;
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code()) << "query " << i;
    return;
  }
  ASSERT_EQ(got.value().NumBuckets(), want.value().NumBuckets())
      << "query " << i;
  for (size_t b = 0; b < got.value().NumBuckets(); ++b) {
    EXPECT_EQ(got.value().bucket(b).range.lo, want.value().bucket(b).range.lo)
        << "query " << i << " bucket " << b;
    EXPECT_EQ(got.value().bucket(b).range.hi, want.value().bucket(b).range.hi)
        << "query " << i << " bucket " << b;
    EXPECT_EQ(got.value().bucket(b).prob, want.value().bucket(b).prob)
        << "query " << i << " bucket " << b;
  }
}

TEST_F(CachedEstimationFixture, BatchWithCacheMatchesSequentialWithout) {
  const std::vector<PathQuery> base = MakeQueries(30);
  ASSERT_GE(base.size(), 10u);
  // Duplicate every query so the batch exercises real hits.
  std::vector<PathQuery> queries = base;
  queries.insert(queries.end(), base.begin(), base.end());

  const HybridEstimator plain(*wp_);
  QueryCache cache;
  HybridEstimator cached_estimator(*wp_);
  cached_estimator.set_query_cache(&cache);

  ThreadPool pool(4);
  BatchMetrics metrics;
  const auto batch = cached_estimator.EstimateBatch(
      queries.data(), queries.size(), &pool, &metrics);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = plain.EstimateCostDistribution(
        queries[i].path, queries[i].departure_time);
    ExpectBitIdentical(batch[i], sequential, i);
  }

  // The duplicated half must have been served from the cache (with 4
  // workers a duplicate can race its original, so allow a small shortfall).
  EXPECT_EQ(metrics.cache_hits + metrics.cache_misses, queries.size());
  EXPECT_GE(metrics.cache_hits, base.size() / 2);
  EXPECT_EQ(metrics.query_seconds.size(), queries.size());
  for (double s : metrics.query_seconds) EXPECT_GE(s, 0.0);
  EXPECT_GE(cache.stats().hits, metrics.cache_hits);
}

TEST(CachedRoutingTest, CachedRouterMatchesUncachedAndReusesResults) {
  // A small grid with per-edge unit variables; routing the same query twice
  // against a shared cache must return the uncached result and serve the
  // second run's candidate-path distributions from the cache.
  constexpr int kSide = 4;
  roadnet::Graph g;
  std::vector<roadnet::VertexId> v;
  for (int i = 0; i < kSide; ++i) {
    for (int j = 0; j < kSide; ++j) {
      v.push_back(g.AddVertex(1000.0 * i, 1000.0 * j));
    }
  }
  WeightFunctionBuilder wp_builder{TimeBinning(30.0)};
  Rng rng(11);
  auto connect = [&](roadnet::VertexId a, roadnet::VertexId b) {
    const roadnet::EdgeId e = g.AddEdge(a, b, 1000.0, 13.9).value();
    const double fast = rng.Uniform(60.0, 90.0);
    InstantiatedVariable var;
    var.path = roadnet::Path({e});
    var.interval = kAllDayInterval;
    var.joint = hist::HistogramND::FromHistogram1D(
        Histogram1D::Make({{fast, fast + 30.0, 0.8},
                           {fast + 60.0, fast + 120.0, 0.2}})
            .value());
    var.from_speed_limit = true;
    wp_builder.Add(std::move(var));
  };
  for (int i = 0; i < kSide; ++i) {
    for (int j = 0; j < kSide; ++j) {
      if (i + 1 < kSide) connect(v[i * kSide + j], v[(i + 1) * kSide + j]);
      if (j + 1 < kSide) connect(v[i * kSide + j], v[i * kSide + j + 1]);
    }
  }
  const PathWeightFunction wp = std::move(wp_builder).Freeze();

  routing::RouterConfig plain_config;
  plain_config.num_threads = 1;
  QueryCache cache;
  routing::RouterConfig cached_config = plain_config;
  cached_config.query_cache = &cache;
  const routing::DfsStochasticRouter plain(g, wp, EstimateOptions(),
                                           plain_config);
  const routing::DfsStochasticRouter cached(g, wp, EstimateOptions(),
                                            cached_config);

  const double depart = 8 * 3600.0;
  const double budget = 900.0;
  auto want = plain.Route(v.front(), v.back(), depart, budget);
  auto first = cached.Route(v.front(), v.back(), depart, budget);
  auto second = cached.Route(v.front(), v.back(), depart, budget);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (const auto* got : {&first.value(), &second.value()}) {
    EXPECT_DOUBLE_EQ(got->best_probability, want.value().best_probability);
    EXPECT_EQ(got->best_path.edges(), want.value().best_path.edges());
    EXPECT_EQ(got->candidate_paths, want.value().candidate_paths);
  }
  const QueryCacheStats stats = cache.stats();
  EXPECT_GT(stats.insertions, 0u);
  // The second run re-evaluates the same candidate paths: all hits.
  EXPECT_GE(stats.hits, want.value().candidate_paths);
}

TEST_F(CachedEstimationFixture, RepeatedSingleQueriesHitTheCache) {
  QueryCache cache;
  HybridEstimator estimator(*wp_);
  estimator.set_query_cache(&cache);
  const std::vector<PathQuery> queries = MakeQueries(5);
  ASSERT_FALSE(queries.empty());

  EstimateBreakdown first, second;
  auto a = estimator.EstimateCostDistribution(queries[0].path,
                                              queries[0].departure_time,
                                              &first);
  auto b = estimator.EstimateCostDistribution(queries[0].path,
                                              queries[0].departure_time,
                                              &second);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  ExpectBitIdentical(b, a, 0);
}

}  // namespace
}  // namespace core
}  // namespace pcde
