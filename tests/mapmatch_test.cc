// Unit and property tests for the Newson-Krumm HMM map matcher — the
// pipeline stage the paper applies to align raw GPS with road paths.
#include <gtest/gtest.h>

#include "mapmatch/hmm_matcher.h"
#include "roadnet/generators.h"
#include "traj/generator.h"

namespace pcde {
namespace mapmatch {
namespace {

using roadnet::Graph;
using roadnet::Path;
using traj::GpsRecord;
using traj::Trajectory;

TEST(RouteRecoveryTest, LcsMetric) {
  const Path truth({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(HmmMatcher::RouteRecovery(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(HmmMatcher::RouteRecovery(truth, Path({1, 2})), 0.5);
  EXPECT_DOUBLE_EQ(HmmMatcher::RouteRecovery(truth, Path({9, 8})), 0.0);
  EXPECT_DOUBLE_EQ(HmmMatcher::RouteRecovery(truth, Path({1, 9, 2, 3, 4})),
                   1.0);  // extra edges don't reduce recall
}

TEST(HmmMatcherTest, RejectsDegenerateInput) {
  const Graph g = roadnet::MakeCity(roadnet::CityAConfig());
  HmmMatcher matcher(g, MapMatchConfig());
  Trajectory t;
  EXPECT_FALSE(matcher.Match(t).ok());
  t.records.push_back(GpsRecord{0, 0, 0});
  EXPECT_FALSE(matcher.Match(t).ok());
}

TEST(HmmMatcherTest, NoCandidatesMeansNotFound) {
  const Graph g = roadnet::MakeCity(roadnet::CityAConfig());
  HmmMatcher matcher(g, MapMatchConfig());
  Trajectory t;
  // Far outside the city.
  t.records.push_back(GpsRecord{1e7, 1e7, 0});
  t.records.push_back(GpsRecord{1e7 + 10, 1e7, 1});
  const auto result = matcher.Match(t);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture() : ds_(traj::MakeDatasetA(60, /*emit_gps=*/true)) {}
  traj::Dataset ds_;
};

TEST_F(MatcherFixture, NearNoiselessTracesRecoverExactPath) {
  traj::GeneratorConfig gen_config = ds_.generator_config;
  gen_config.gps_noise_std_m = 0.5;
  gen_config.seed = 777;
  gen_config.num_trips = 15;
  traj::TrajectoryGenerator gen(*ds_.traffic, gen_config);
  MapMatchConfig mm;
  mm.gps_sigma_m = 2.0;
  HmmMatcher matcher(*ds_.graph, mm);
  Rng rng(71);
  size_t matched = 0;
  double recovery = 0.0;
  for (int i = 0; i < 15; ++i) {
    auto sp = roadnet::RandomSimplePath(*ds_.graph, 12, &rng);
    ASSERT_TRUE(sp.ok());
    const auto trip =
        gen.GenerateOnPath(sp.value(), traj::HoursToSeconds(10), &rng);
    if (trip.gps.records.size() < 5) continue;
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) continue;
    ++matched;
    recovery +=
        HmmMatcher::RouteRecovery(trip.truth.path, result.value().matched.path);
  }
  ASSERT_GT(matched, 10u);
  EXPECT_GT(recovery / static_cast<double>(matched), 0.97);
}

TEST_F(MatcherFixture, NoisyTracesRecoverMostEdges) {
  HmmMatcher matcher(*ds_.graph, MapMatchConfig());  // 5 m noise data
  size_t matched = 0;
  double recovery = 0.0;
  for (const auto& trip : ds_.trips) {
    if (trip.gps.records.size() < 5 || trip.truth.NumEdges() < 3) continue;
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) continue;
    ++matched;
    recovery +=
        HmmMatcher::RouteRecovery(trip.truth.path, result.value().matched.path);
  }
  ASSERT_GT(matched, 30u);
  EXPECT_GT(recovery / static_cast<double>(matched), 0.9);
}

TEST_F(MatcherFixture, MatchedTimingIsConsistent) {
  HmmMatcher matcher(*ds_.graph, MapMatchConfig());
  for (const auto& trip : ds_.trips) {
    if (trip.gps.records.size() < 10) continue;
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) continue;
    const traj::MatchedTrajectory& m = result.value().matched;
    ASSERT_EQ(m.edge_enter_times.size(), m.NumEdges());
    ASSERT_EQ(m.edge_travel_seconds.size(), m.NumEdges());
    for (size_t i = 0; i < m.NumEdges(); ++i) {
      EXPECT_GT(m.edge_travel_seconds[i], 0.0);
    }
    for (size_t i = 1; i < m.NumEdges(); ++i) {
      EXPECT_GE(m.edge_enter_times[i] + 1e-9, m.edge_enter_times[i - 1]);
    }
    // Total matched duration within 25% of the GPS time span.
    const double span =
        trip.gps.records.back().time - trip.gps.records.front().time;
    EXPECT_NEAR(m.TotalSeconds(), span, span * 0.25 + 10.0);
    break;  // one detailed check is enough
  }
}

TEST_F(MatcherFixture, MatchedTravelTimesApproximateTruth) {
  HmmMatcher matcher(*ds_.graph, MapMatchConfig());
  double truth_total = 0.0, matched_total = 0.0;
  size_t n = 0;
  for (const auto& trip : ds_.trips) {
    if (trip.gps.records.size() < 10) continue;
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) continue;
    truth_total += trip.truth.TotalSeconds();
    matched_total += result.value().matched.TotalSeconds();
    ++n;
  }
  ASSERT_GT(n, 20u);
  EXPECT_NEAR(matched_total / truth_total, 1.0, 0.1);
}

// Property sweep over noise levels: recovery degrades gracefully, not
// catastrophically, as GPS noise grows.
class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, RecoveryAboveFloor) {
  traj::Dataset ds = traj::MakeDatasetA(1);
  traj::GeneratorConfig gen_config = ds.generator_config;
  gen_config.emit_gps = true;
  gen_config.gps_noise_std_m = GetParam();
  gen_config.seed = 999;
  traj::TrajectoryGenerator gen(*ds.traffic, gen_config);
  MapMatchConfig mm;
  mm.gps_sigma_m = std::max(GetParam(), 2.0);
  HmmMatcher matcher(*ds.graph, mm);
  Rng rng(73);
  double recovery = 0.0;
  size_t matched = 0;
  for (int i = 0; i < 8; ++i) {
    auto sp = roadnet::RandomSimplePath(*ds.graph, 10, &rng);
    ASSERT_TRUE(sp.ok());
    const auto trip =
        gen.GenerateOnPath(sp.value(), traj::HoursToSeconds(11), &rng);
    auto result = matcher.Match(trip.gps);
    if (!result.ok()) continue;
    ++matched;
    recovery +=
        HmmMatcher::RouteRecovery(trip.truth.path, result.value().matched.path);
  }
  ASSERT_GT(matched, 4u);
  EXPECT_GT(recovery / static_cast<double>(matched), 0.75);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseSweep,
                         ::testing::Values(1.0, 3.0, 5.0, 8.0, 12.0));

}  // namespace
}  // namespace mapmatch
}  // namespace pcde
