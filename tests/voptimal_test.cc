// Unit tests for V-Optimal histogram construction and the paper's Auto
// bucket-count selection (Sec. 3.1, Fig. 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "hist/raw_distribution.h"
#include "hist/voptimal.h"

namespace pcde {
namespace hist {
namespace {

// ---------------------------------------------------------------------------
// RawDistribution
// ---------------------------------------------------------------------------

TEST(RawDistributionTest, TalliesGridCells) {
  const RawDistribution raw =
      RawDistribution::FromSamples({1.2, 1.7, 2.3, 2.9, 2.1, 5.0}, 1.0);
  EXPECT_EQ(raw.SampleCount(), 6u);
  EXPECT_EQ(raw.NumDistinct(), 3u);  // cells 1, 2, 5
  EXPECT_NEAR(raw.ProbAt(1.0), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(raw.ProbAt(2.5), 3.0 / 6.0, 1e-12);  // same cell as 2.0
  EXPECT_NEAR(raw.ProbAt(5.9), 1.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(raw.ProbAt(3.0), 0.0);
  EXPECT_DOUBLE_EQ(raw.Min(), 1.0);
  EXPECT_DOUBLE_EQ(raw.Max(), 6.0);
}

TEST(RawDistributionTest, CoarserResolution) {
  const RawDistribution raw =
      RawDistribution::FromSamples({12.0, 13.0, 17.0, 22.0}, 5.0);
  EXPECT_EQ(raw.NumDistinct(), 3u);  // cells 10, 15, 20
  EXPECT_NEAR(raw.ProbAt(14.0), 0.5, 1e-12);
}

TEST(RawDistributionTest, ExactHistogramRoundTrip) {
  const RawDistribution raw =
      RawDistribution::FromSamples({1.0, 1.0, 3.0, 3.0, 3.0, 8.0}, 1.0);
  auto h = raw.ToExactHistogram();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().NumBuckets(), 3u);
  EXPECT_NEAR(h.value().Mass(Interval(3.0, 4.0)), 0.5, 1e-12);
}

TEST(RawDistributionTest, SquaredErrorZeroForExactHistogram) {
  const RawDistribution raw =
      RawDistribution::FromSamples({1.0, 2.0, 2.0, 7.0}, 1.0);
  auto h = raw.ToExactHistogram();
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(raw.SquaredError(h.value()), 0.0, 1e-12);
}

TEST(RawDistributionTest, SquaredErrorPositiveForCoarseHistogram) {
  const RawDistribution raw =
      RawDistribution::FromSamples({1.0, 1.0, 1.0, 9.0}, 1.0);
  const Histogram1D coarse = Histogram1D::Single(1.0, 10.0);
  EXPECT_GT(raw.SquaredError(coarse), 0.1);
}

TEST(RawDistributionTest, MemoryIsTwoDoublesPerDistinctValue) {
  const RawDistribution raw =
      RawDistribution::FromSamples({1.0, 2.0, 3.0, 4.0}, 1.0);
  EXPECT_EQ(raw.MemoryUsageBytes(), 4u * 16u);
}

// ---------------------------------------------------------------------------
// VOptimalPartition: compare the DP against brute force on small inputs.
// ---------------------------------------------------------------------------

double PartitionError(const std::vector<double>& probs,
                      const std::vector<size_t>& starts) {
  double total = 0.0;
  for (size_t k = 0; k < starts.size(); ++k) {
    const size_t first = starts[k];
    const size_t last = k + 1 < starts.size() ? starts[k + 1] : probs.size();
    double mean = 0.0;
    for (size_t i = first; i < last; ++i) mean += probs[i];
    mean /= static_cast<double>(last - first);
    for (size_t i = first; i < last; ++i) {
      total += (probs[i] - mean) * (probs[i] - mean);
    }
  }
  return total;
}

double BruteForceBest(const std::vector<double>& probs, size_t b,
                      std::vector<size_t>* best_starts) {
  const size_t n = probs.size();
  double best = std::numeric_limits<double>::infinity();
  // Enumerate all boundary placements via bitmasks over the n-1 gaps.
  for (uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) != b - 1) continue;
    std::vector<size_t> starts{0};
    for (size_t i = 0; i + 1 < n; ++i) {
      if (mask & (1u << i)) starts.push_back(i + 1);
    }
    const double err = PartitionError(probs, starts);
    if (err < best) {
      best = err;
      *best_starts = starts;
    }
  }
  return best;
}

class VOptimalBruteForce
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(VOptimalBruteForce, MatchesBruteForceError) {
  const auto [seed, b] = GetParam();
  Rng rng(seed);
  const size_t n = 4 + static_cast<size_t>(rng.UniformInt(0, 8));
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.Uniform(0.0, 1.0);
  if (b > n) return;
  const std::vector<size_t> dp = VOptimalPartition(probs, b);
  std::vector<size_t> bf_starts;
  const double bf = BruteForceBest(probs, b, &bf_starts);
  EXPECT_NEAR(PartitionError(probs, dp), bf, 1e-9) << "n=" << n << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VOptimalBruteForce,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(2, 3, 4)));

TEST(VOptimalTest, SingleBucketIsWholeRange) {
  EXPECT_EQ(VOptimalPartition({0.1, 0.2, 0.7}, 1), std::vector<size_t>{0});
}

TEST(VOptimalTest, MoreBucketsThanValuesClamped) {
  const auto starts = VOptimalPartition({0.5, 0.5}, 10);
  EXPECT_EQ(starts.size(), 2u);
}

TEST(VOptimalTest, PerfectSplitOnTwoLevels) {
  // Probabilities form two flat plateaus; two buckets should split exactly
  // between them (zero error).
  const std::vector<double> probs = {0.05, 0.05, 0.05, 0.25, 0.25, 0.35};
  const auto starts = VOptimalPartition(probs, 2);
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 3u);
}

// ---------------------------------------------------------------------------
// BuildVOptimalHistogram
// ---------------------------------------------------------------------------

TEST(VOptimalHistogramTest, BucketBoundsAndMass) {
  // Values 10,11,12 with mass 0.2 each; value 50 with mass 0.4.
  std::vector<double> samples;
  for (int i = 0; i < 2; ++i) {
    samples.push_back(10);
    samples.push_back(11);
    samples.push_back(12);
  }
  samples.insert(samples.end(), 4, 50.0);
  const RawDistribution raw = RawDistribution::FromSamples(samples, 1.0);
  auto h = BuildVOptimalHistogram(raw, 2);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h.value().NumBuckets(), 2u);
  EXPECT_DOUBLE_EQ(h.value().bucket(0).range.lo, 10.0);
  EXPECT_DOUBLE_EQ(h.value().bucket(0).range.hi, 13.0);  // last value + res
  EXPECT_NEAR(h.value().bucket(0).prob, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(h.value().bucket(1).range.lo, 50.0);
  EXPECT_DOUBLE_EQ(h.value().bucket(1).range.hi, 51.0);
  EXPECT_NEAR(h.value().bucket(1).prob, 0.4, 1e-12);
}

TEST(VOptimalHistogramTest, EmptyInputRejected) {
  EXPECT_FALSE(BuildVOptimalHistogram(RawDistribution(), 3).ok());
}

// ---------------------------------------------------------------------------
// Cross-validation error and Auto selection
// ---------------------------------------------------------------------------

std::vector<double> BimodalSamples(size_t n, Rng* rng) {
  std::vector<double> xs;
  xs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    xs.push_back(rng->Bernoulli(0.6) ? rng->Gaussian(100, 4)
                                     : rng->Gaussian(140, 5));
  }
  return xs;
}

TEST(CrossValidationTest, ErrorDecreasesWithBuckets) {
  Rng rng(31);
  const std::vector<double> xs = BimodalSamples(400, &rng);
  AutoBucketOptions opt;
  const double e1 = CrossValidationError(xs, 1, opt);
  const double e4 = CrossValidationError(xs, 4, opt);
  EXPECT_GT(e1, e4);
}

TEST(AutoSelectTest, BimodalNeedsMultipleBuckets) {
  Rng rng(32);
  const std::vector<double> xs = BimodalSamples(500, &rng);
  AutoBucketOptions opt;
  std::vector<double> series;
  const size_t b = AutoSelectBucketCount(xs, opt, &series);
  EXPECT_GE(b, 2u);
  EXPECT_LE(b, opt.max_buckets);
  ASSERT_GE(series.size(), 2u);
  EXPECT_GT(series[0], series[1]);  // the elbow: E_b drops sharply first
}

TEST(AutoSelectTest, ConstantSamplesNeedOneBucket) {
  const std::vector<double> xs(100, 42.0);
  AutoBucketOptions opt;
  EXPECT_EQ(AutoSelectBucketCount(xs, opt), 1u);
}

TEST(AutoSelectTest, TinySampleFallsBackToOne) {
  AutoBucketOptions opt;
  EXPECT_EQ(AutoSelectBucketCount({1.0, 2.0}, opt), 1u);
}

TEST(AutoHistogramTest, MassSumsToOneAndCoversSupport) {
  Rng rng(33);
  const std::vector<double> xs = BimodalSamples(600, &rng);
  AutoBucketOptions opt;
  auto h = BuildAutoHistogram(xs, opt);
  ASSERT_TRUE(h.ok());
  double total = 0;
  for (const auto& b : h.value().buckets()) total += b.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double xmax = *std::max_element(xs.begin(), xs.end());
  EXPECT_LE(h.value().Min(), xmin);
  EXPECT_GE(h.value().Max(), xmax);
}

TEST(AutoHistogramTest, ApproximatesBimodalShape) {
  Rng rng(34);
  const std::vector<double> xs = BimodalSamples(2000, &rng);
  AutoBucketOptions opt;
  auto h = BuildAutoHistogram(xs, opt);
  ASSERT_TRUE(h.ok());
  // Mass near each mode should be substantial, the valley nearly empty.
  EXPECT_GT(h.value().Mass(Interval(90, 110)), 0.4);
  EXPECT_GT(h.value().Mass(Interval(130, 150)), 0.25);
  EXPECT_LT(h.value().Mass(Interval(115, 125)), 0.1);
}

TEST(StaticHistogramTest, ExactBucketCount) {
  Rng rng(35);
  const std::vector<double> xs = BimodalSamples(300, &rng);
  auto h3 = BuildStaticHistogram(xs, 3);
  auto h4 = BuildStaticHistogram(xs, 4);
  ASSERT_TRUE(h3.ok());
  ASSERT_TRUE(h4.ok());
  EXPECT_EQ(h3.value().NumBuckets(), 3u);
  EXPECT_EQ(h4.value().NumBuckets(), 4u);
}

TEST(StaticHistogramTest, MoreBucketsFitRawBetter) {
  Rng rng(36);
  const std::vector<double> xs = BimodalSamples(1000, &rng);
  const RawDistribution raw = RawDistribution::FromSamples(xs, 1.0);
  auto h2 = BuildStaticHistogram(xs, 2);
  auto h8 = BuildStaticHistogram(xs, 8);
  ASSERT_TRUE(h2.ok());
  ASSERT_TRUE(h8.ok());
  EXPECT_LE(raw.SquaredError(h8.value()), raw.SquaredError(h2.value()));
}

// Auto picks a bucket count whose full-data fit is close to the best
// achievable with a generous fixed budget (the paper's claim that Auto
// matches Sta-4 in accuracy, Fig. 11b).
TEST(AutoHistogramTest, CompetitiveWithGenerousStatic) {
  Rng rng(37);
  const std::vector<double> xs = BimodalSamples(1500, &rng);
  const RawDistribution raw = RawDistribution::FromSamples(xs, 1.0);
  auto ha = BuildAutoHistogram(xs, AutoBucketOptions());
  auto h8 = BuildStaticHistogram(xs, 8);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(h8.ok());
  EXPECT_LT(raw.SquaredError(ha.value()),
            4.0 * raw.SquaredError(h8.value()) + 1e-4);
}

}  // namespace
}  // namespace hist
}  // namespace pcde
