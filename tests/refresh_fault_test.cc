// Fault-injection harness for zero-downtime model refresh (ISSUE 6):
//
//  * Delta rebuild: WeightFunctionBuilder::FromFrozen reproduces the frozen
//    fingerprint exactly, and folding a second trajectory batch into a
//    FromFrozen builder freezes to a model fingerprint-identical to folding
//    both batches into one fresh builder.
//  * Epoch swap: Engine::Swap publishes a new epoch whose answers are
//    bit-identical to a directly opened engine over the same artifact;
//    corrupt, truncated, version-skewed, empty, and missing artifacts are
//    rejected with a clean Status while the old epoch keeps serving
//    byte-identically; a swap to already-served content short-circuits.
//  * Fallback chain: sparse-coverage paths degrade to covered sub-paths and
//    per-edge synthesis with exact DegradationLevel / covered_fraction
//    provenance instead of failing; full coverage stays kFull and
//    bit-identical to the plain estimator.
//  * Swap-under-load stress: >= 4 client threads hammer EstimateBatch and
//    Route while >= 8 swaps (interleaved with corrupt swap attempts) run;
//    zero failed responses and zero cross-epoch-mixed responses — every
//    response's summary must ExactlyEqual the reference summary of the one
//    model named by its fingerprint. scripts/ci.sh runs this under ASan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fault_injection.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/serialization.h"
#include "core/weight_function.h"
#include "roadnet/shortest_path.h"
#include "serving/engine.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace serving {
namespace {

using core::DegradationLevel;
using core::FallbackProvenance;
using core::HybridEstimator;
using core::HybridParams;
using core::InstantiatedVariable;
using core::PathWeightFunction;
using core::WeightFunctionBuilder;
using hist::Histogram1D;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

constexpr double kDepart = 8 * 3600.0;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Two models over one City-A network: the speed-limit-only baseline and the
/// trajectory-instantiated model, both saved as binary artifacts — the two
/// generations a refresh alternates between. Built once for the suite.
class RefreshFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new traj::Dataset(traj::MakeDatasetA(2000));
    graph_ = dataset_->graph.get();
    HybridParams params;
    params.beta = 15;
    wp_base_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(), params));
    wp_data_ = new PathWeightFunction(core::InstantiateWeightFunction(
        *graph_, traj::TrajectoryStore(dataset_->MatchedSlice(1.0)), params));
    ASSERT_NE(wp_base_->fingerprint(), wp_data_->fingerprint());
    artifact_base_ = TempPath("pcde_refresh_base." +
                              std::to_string(::getpid()) + ".bin");
    artifact_data_ = TempPath("pcde_refresh_data." +
                              std::to_string(::getpid()) + ".bin");
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_base_, artifact_base_).ok());
    ASSERT_TRUE(core::SaveWeightFunctionBinary(*wp_data_, artifact_data_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(artifact_base_.c_str());
    std::remove(artifact_data_.c_str());
    delete wp_data_;
    delete wp_base_;
    delete dataset_;
    wp_data_ = nullptr;
    wp_base_ = nullptr;
    dataset_ = nullptr;
    graph_ = nullptr;
  }

  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }

  static std::unique_ptr<Engine> OpenEngine(const std::string& artifact,
                                            size_t cache_bytes,
                                            size_t num_threads) {
    EngineOptions options;
    options.model_path = artifact;
    options.graph = graph_;
    options.num_threads = num_threads;
    options.query_cache_bytes = cache_bytes;
    auto engine = Engine::Open(std::move(options));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return engine.ok() ? std::move(engine).value() : nullptr;
  }

  static Path PathBetween(VertexId from, VertexId to) {
    auto p = roadnet::ShortestPath(*graph_, from, to,
                                   roadnet::FreeFlowWeight(*graph_));
    EXPECT_TRUE(p.ok());
    return p.ok() ? p.value() : Path();
  }

  /// A model covering only the given positions of `path`: each covered
  /// position gets the baseline's all-day speed-limit unit variable for its
  /// edge, every other position has no unit variable at all.
  static PathWeightFunction MakeSparseModel(
      const Path& path, const std::vector<size_t>& covered_positions) {
    WeightFunctionBuilder builder(wp_base_->binning());
    for (size_t pos : covered_positions) {
      const InstantiatedVariable* v =
          wp_base_->Lookup(Path({path[pos]}), core::kAllDayInterval);
      EXPECT_NE(v, nullptr);
      if (v != nullptr) builder.Add(*v);
    }
    return std::move(builder).Freeze();
  }

  /// The synthesizer serving::Engine injects, wired by hand for direct
  /// estimator tests.
  static core::EdgeFallbackFn FallbackFn() {
    return [](roadnet::EdgeId e) -> StatusOr<Histogram1D> {
      return core::FreeFlowEdgeHistogram(graph_->edge(e), HybridParams());
    };
  }

  static traj::Dataset* dataset_;
  static const Graph* graph_;
  static PathWeightFunction* wp_base_;  // speed-limit-only generation
  static PathWeightFunction* wp_data_;  // trajectory-instantiated generation
  static std::string artifact_base_;
  static std::string artifact_data_;
  std::vector<std::string> cleanup_;
};

traj::Dataset* RefreshFaultTest::dataset_ = nullptr;
const Graph* RefreshFaultTest::graph_ = nullptr;
PathWeightFunction* RefreshFaultTest::wp_base_ = nullptr;
PathWeightFunction* RefreshFaultTest::wp_data_ = nullptr;
std::string RefreshFaultTest::artifact_base_;
std::string RefreshFaultTest::artifact_data_;

// ---------------------------------------------------------------------------
// Delta rebuild: FromFrozen + InstantiateIntoBuilder
// ---------------------------------------------------------------------------

TEST_F(RefreshFaultTest, FromFrozenRoundTripReproducesFingerprint) {
  WeightFunctionBuilder builder = WeightFunctionBuilder::FromFrozen(*wp_data_);
  EXPECT_EQ(builder.NumVariables(), wp_data_->NumVariables());
  const PathWeightFunction refrozen = std::move(builder).Freeze();
  EXPECT_EQ(refrozen.fingerprint(), wp_data_->fingerprint());
  ASSERT_EQ(refrozen.NumVariables(), wp_data_->NumVariables());
  // Ids (and therefore query-cache keys) are reproduced, not just content.
  for (size_t i = 0; i < refrozen.NumVariables(); ++i) {
    EXPECT_EQ(refrozen.variables()[i].id, wp_data_->variables()[i].id);
    EXPECT_EQ(refrozen.variables()[i].path, wp_data_->variables()[i].path);
  }
}

TEST_F(RefreshFaultTest, DeltaRebuildMatchesSequentialFullBuild) {
  HybridParams params;
  // Lower beta than the fixture: each half-batch alone must still qualify
  // some (edge, interval) windows, or the delta would be a no-op.
  params.beta = 8;
  std::vector<traj::MatchedTrajectory> all = dataset_->MatchedSlice(1.0);
  ASSERT_GE(all.size(), 100u);
  const size_t half = all.size() / 2;
  const traj::TrajectoryStore batch1(
      std::vector<traj::MatchedTrajectory>(all.begin(), all.begin() + half));
  const traj::TrajectoryStore batch2(
      std::vector<traj::MatchedTrajectory>(all.begin() + half, all.end()));

  // Reference: both batches folded into one fresh builder.
  WeightFunctionBuilder fresh(wp_base_->binning());
  ASSERT_TRUE(
      core::InstantiateIntoBuilder(*graph_, batch1, params, &fresh).ok());
  ASSERT_TRUE(
      core::InstantiateIntoBuilder(*graph_, batch2, params, &fresh).ok());
  const PathWeightFunction sequential = std::move(fresh).Freeze();

  // Delta: freeze after batch 1, re-hydrate, fold batch 2, re-freeze.
  WeightFunctionBuilder first(wp_base_->binning());
  ASSERT_TRUE(
      core::InstantiateIntoBuilder(*graph_, batch1, params, &first).ok());
  const PathWeightFunction generation1 = std::move(first).Freeze();
  WeightFunctionBuilder delta = WeightFunctionBuilder::FromFrozen(generation1);
  core::InstantiationStats stats;
  ASSERT_TRUE(
      core::InstantiateIntoBuilder(*graph_, batch2, params, &delta, &stats)
          .ok());
  const PathWeightFunction generation2 = std::move(delta).Freeze();

  EXPECT_EQ(generation2.fingerprint(), sequential.fingerprint());
  EXPECT_EQ(generation2.NumVariables(), sequential.NumVariables());
  EXPECT_GT(stats.unit_from_trajectories, 0u);  // the batch actually folded
  // And the delta actually changed the model (batch 2 brought new data).
  EXPECT_NE(generation2.fingerprint(), generation1.fingerprint());
}

TEST_F(RefreshFaultTest, InstantiateIntoBuilderRejectsBinningMismatch) {
  WeightFunctionBuilder builder{core::TimeBinning(15.0)};
  HybridParams params;  // alpha_minutes = 30 != the builder's 15
  EXPECT_EQ(core::InstantiateIntoBuilder(*graph_, traj::TrajectoryStore(),
                                         params, &builder)
                .code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Epoch swap: publish
// ---------------------------------------------------------------------------

TEST_F(RefreshFaultTest, SwapPublishesNewEpochWithProvenance) {
  auto engine = OpenEngine(artifact_base_, /*cache_bytes=*/0, 1);
  ASSERT_NE(engine, nullptr);
  auto ref_base = OpenEngine(artifact_base_, 0, 1);
  auto ref_data = OpenEngine(artifact_data_, 0, 1);
  ASSERT_NE(ref_base, nullptr);
  ASSERT_NE(ref_data, nullptr);
  EXPECT_EQ(engine->epoch_sequence(), 1u);
  EXPECT_EQ(engine->model().fingerprint(), wp_base_->fingerprint());

  EstimateRequest request;
  request.path = PathSpec::ExplicitPath(PathBetween(0, 30));
  request.departure_time = kDepart;

  auto before = engine->Estimate(request);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().model_fingerprint, wp_base_->fingerprint());
  EXPECT_EQ(before.value().epoch, 1u);
  EXPECT_EQ(before.value().summary.degradation, DegradationLevel::kFull);
  EXPECT_EQ(before.value().summary.covered_fraction, 1.0);
  auto expected_base = ref_base->Estimate(request);
  ASSERT_TRUE(expected_base.ok());
  EXPECT_TRUE(
      before.value().summary.ExactlyEquals(expected_base.value().summary));

  // Publish the trajectory-instantiated generation.
  auto swapped = engine->Swap(artifact_data_);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(engine->epoch_sequence(), 2u);
  EXPECT_EQ(engine->model().fingerprint(), wp_data_->fingerprint());

  auto after = engine->Estimate(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().model_fingerprint, wp_data_->fingerprint());
  EXPECT_EQ(after.value().epoch, 2u);
  auto expected_data = ref_data->Estimate(request);
  ASSERT_TRUE(expected_data.ok());
  EXPECT_TRUE(
      after.value().summary.ExactlyEquals(expected_data.value().summary));

  // Route carries the same provenance.
  const double min_time = roadnet::ShortestPathCost(
      *graph_, 0, 30, roadnet::FreeFlowWeight(*graph_));
  RouteRequest route;
  route.from = 0;
  route.to = 30;
  route.departure_time = kDepart;
  route.budget_seconds = min_time * 1.3;
  auto routed = engine->Route(route);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed.value().model_fingerprint, wp_data_->fingerprint());
  EXPECT_EQ(routed.value().epoch, 2u);

  // Swapping to the content already being served short-circuits: same
  // sequence back, no new epoch.
  auto again = engine->Swap(artifact_data_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 2u);
  EXPECT_EQ(engine->epoch_sequence(), 2u);

  // A snapshot pinned before a swap outlives the epoch it came from.
  auto pinned = engine->model_snapshot();
  ASSERT_TRUE(engine->Swap(artifact_base_).ok());
  EXPECT_EQ(pinned->fingerprint(), wp_data_->fingerprint());
  EXPECT_EQ(engine->model().fingerprint(), wp_base_->fingerprint());
  EXPECT_EQ(engine->epoch_sequence(), 3u);
}

TEST_F(RefreshFaultTest, SwapAdoptsDeltaRebuiltModelInProcess) {
  auto engine = OpenEngine(artifact_base_, /*cache_bytes=*/0, 1);
  ASSERT_NE(engine, nullptr);
  // Delta-rebuild in process: re-hydrate the served model, fold the full
  // trajectory set, re-freeze, and swap without touching disk.
  WeightFunctionBuilder builder =
      WeightFunctionBuilder::FromFrozen(engine->model());
  HybridParams params;
  params.beta = 15;
  const traj::TrajectoryStore store(dataset_->MatchedSlice(1.0));
  ASSERT_TRUE(
      core::InstantiateIntoBuilder(*graph_, store, params, &builder).ok());
  auto swapped = engine->Swap(std::move(builder).Freeze());
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  // The delta equals its sequential counterpart: the same two batches
  // (empty, then full) folded into one fresh builder. (Not the one-shot
  // full build — that one never saw the empty batch, so its speed-limit
  // fallbacks land at different insertion positions / ids.)
  WeightFunctionBuilder sequential(wp_base_->binning());
  ASSERT_TRUE(core::InstantiateIntoBuilder(*graph_, traj::TrajectoryStore(),
                                           params, &sequential)
                  .ok());
  ASSERT_TRUE(
      core::InstantiateIntoBuilder(*graph_, store, params, &sequential).ok());
  const PathWeightFunction counterpart = std::move(sequential).Freeze();
  EXPECT_EQ(engine->model().fingerprint(), counterpart.fingerprint());
  EXPECT_NE(engine->model().fingerprint(), wp_base_->fingerprint());
}

// ---------------------------------------------------------------------------
// Epoch swap: rejection
// ---------------------------------------------------------------------------

TEST_F(RefreshFaultTest, SwapRejectsCorruptArtifactsAndKeepsServing) {
  auto engine = OpenEngine(artifact_base_, /*cache_bytes=*/0, 1);
  ASSERT_NE(engine, nullptr);
  EstimateRequest request;
  request.path = PathSpec::ExplicitPath(PathBetween(5, 40));
  request.departure_time = kDepart;
  auto baseline = engine->Estimate(request);
  ASSERT_TRUE(baseline.ok());

  const std::vector<char> bytes = ReadAll(artifact_data_);
  ASSERT_GT(bytes.size(), 1000u);
  const std::string bad = Track(TempPath(
      "pcde_refresh_bad." + std::to_string(::getpid()) + ".bin"));

  auto expect_rejected = [&](const Status& status, const std::string& what) {
    EXPECT_FALSE(status.ok()) << what << " swapped in";
    EXPECT_EQ(engine->epoch_sequence(), 1u) << what;
    EXPECT_EQ(engine->model().fingerprint(), wp_base_->fingerprint()) << what;
    auto still = engine->Estimate(request);
    ASSERT_TRUE(still.ok()) << what;
    EXPECT_TRUE(still.value().summary.ExactlyEquals(baseline.value().summary))
        << what;
    EXPECT_EQ(still.value().model_fingerprint, wp_base_->fingerprint())
        << what;
  };

  // Truncations, header to last byte.
  for (size_t n : {size_t{0}, size_t{15}, size_t{63}, size_t{100},
                   bytes.size() / 2, bytes.size() - 1}) {
    WriteAll(bad, std::vector<char>(bytes.begin(),
                                    bytes.begin() + static_cast<long>(n)));
    expect_rejected(engine->Swap(bad).status(),
                    "truncation at " + std::to_string(n));
  }
  // Version skew.
  {
    std::vector<char> skewed = bytes;
    skewed[8] = static_cast<char>(99);  // header.version
    WriteAll(bad, skewed);
    expect_rejected(engine->Swap(bad).status(), "version skew");
  }
  // Header-field corruption the checksum is guaranteed to catch: the magic,
  // the checksum field itself, and the variable count. (The exhaustive
  // payload byte-flip sweep through Swap lives in model_artifact_test.cc,
  // which tolerates the rare checksum-exempt padding flip.)
  for (size_t off : {size_t{0}, size_t{16}, size_t{33}}) {
    std::vector<char> flipped = bytes;
    flipped[off] = static_cast<char>(flipped[off] ^ 0x5a);
    WriteAll(bad, flipped);
    expect_rejected(engine->Swap(bad).status(),
                    "byte flip at " + std::to_string(off));
  }
  // Missing file and empty path.
  expect_rejected(engine->Swap(bad + ".does-not-exist").status(),
                  "missing file");
  expect_rejected(engine->Swap("").status(), "empty path");

  // After all that abuse a good artifact still swaps in.
  auto swapped = engine->Swap(artifact_data_);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(engine->model().fingerprint(), wp_data_->fingerprint());
}

// ---------------------------------------------------------------------------
// Sparse-coverage fallback chain
// ---------------------------------------------------------------------------

TEST_F(RefreshFaultTest, FallbackDegradesToCoveredSubpaths) {
  const Path path = PathBetween(2, 61);
  ASSERT_GE(path.size(), 6u);
  // Cover a 4-edge prefix run; the tail positions have no unit variable.
  const PathWeightFunction sparse = MakeSparseModel(path, {0, 1, 2, 3});
  HybridEstimator estimator(sparse);
  estimator.set_edge_fallback(FallbackFn());

  // The plain estimator fails on the gap; the ladder serves instead.
  EXPECT_FALSE(estimator.EstimateCostDistribution(path, kDepart).ok());
  FallbackProvenance provenance;
  auto dist = estimator.EstimateWithFallback(path, kDepart, &provenance);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_GT(dist.value().NumBuckets(), 0u);
  EXPECT_EQ(provenance.level, DegradationLevel::kSubpath);
  EXPECT_EQ(provenance.covered_fraction, 4.0 / static_cast<double>(path.size()));
  EXPECT_EQ(provenance.covered_runs, 1u);
  EXPECT_EQ(provenance.synthesized_edges, path.size() - 4);
}

TEST_F(RefreshFaultTest, FallbackDegradesToEdgeConvolution) {
  const Path path = PathBetween(2, 61);
  ASSERT_GE(path.size(), 6u);
  // Isolated covered singles only — no multi-edge run survives.
  const PathWeightFunction sparse = MakeSparseModel(path, {0, 2, 4});
  HybridEstimator estimator(sparse);
  estimator.set_edge_fallback(FallbackFn());

  FallbackProvenance provenance;
  auto dist = estimator.EstimateWithFallback(path, kDepart, &provenance);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(provenance.level, DegradationLevel::kEdge);
  EXPECT_EQ(provenance.covered_fraction, 3.0 / static_cast<double>(path.size()));
  EXPECT_EQ(provenance.covered_runs, 3u);
  EXPECT_EQ(provenance.synthesized_edges, path.size() - 3);
}

TEST_F(RefreshFaultTest, SynthesizedEdgeMatchesSpeedLimitPriorExactly) {
  const Path path = PathBetween(2, 61);
  ASSERT_GE(path.size(), 2u);
  // A model that knows a different edge: position 0 of `path` is uncovered.
  const PathWeightFunction sparse = MakeSparseModel(path, {1});
  HybridEstimator estimator(sparse);
  estimator.set_edge_fallback(FallbackFn());

  const Path single({path[0]});
  FallbackProvenance provenance;
  auto dist = estimator.EstimateWithFallback(single, kDepart, &provenance);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  // The synthesizer is exactly the instantiation-time speed-limit prior: a
  // missing edge estimates identically to a baked-in fallback variable.
  EXPECT_TRUE(dist.value().BitIdentical(
      core::FreeFlowEdgeHistogram(graph_->edge(path[0]), HybridParams())));
  EXPECT_EQ(provenance.level, DegradationLevel::kEdge);
  EXPECT_EQ(provenance.covered_fraction, 0.0);
  EXPECT_EQ(provenance.covered_runs, 0u);
  EXPECT_EQ(provenance.synthesized_edges, 1u);
}

TEST_F(RefreshFaultTest, FullCoverageStaysBitIdenticalWithKFullProvenance) {
  const Path path = PathBetween(0, 30);
  HybridEstimator estimator(*wp_data_);
  estimator.set_edge_fallback(FallbackFn());
  auto plain = estimator.EstimateCostDistribution(path, kDepart);
  FallbackProvenance provenance;
  auto ladder = estimator.EstimateWithFallback(path, kDepart, &provenance);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(ladder.ok());
  EXPECT_TRUE(ladder.value().BitIdentical(plain.value()));
  EXPECT_EQ(provenance.level, DegradationLevel::kFull);
  EXPECT_EQ(provenance.covered_fraction, 1.0);
}

TEST_F(RefreshFaultTest, SparseCoverageWithoutSynthesizerKeepsFailing) {
  const Path path = PathBetween(2, 61);
  ASSERT_GE(path.size(), 6u);
  const PathWeightFunction sparse = MakeSparseModel(path, {0, 1});
  HybridEstimator estimator(sparse);  // no edge fallback attached
  auto plain = estimator.EstimateCostDistribution(path, kDepart);
  auto ladder = estimator.EstimateWithFallback(path, kDepart);
  ASSERT_FALSE(plain.ok());
  ASSERT_FALSE(ladder.ok());
  // The original error passes through unchanged.
  EXPECT_EQ(ladder.status().code(), plain.status().code());
  EXPECT_EQ(ladder.status().message(), plain.status().message());
}

TEST_F(RefreshFaultTest, EngineServesSparseModelWithDegradedSummary) {
  const Path path = PathBetween(2, 61);
  ASSERT_GE(path.size(), 6u);
  EngineOptions options;
  options.graph = graph_;
  options.num_threads = 1;
  options.query_cache_bytes = 0;
  auto engine =
      Engine::Open(MakeSparseModel(path, {0, 1, 2, 3}), std::move(options));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  EstimateRequest request;
  request.path = PathSpec::ExplicitPath(path);
  request.departure_time = kDepart;
  auto response = engine.value()->Estimate(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().summary.degradation, DegradationLevel::kSubpath);
  EXPECT_EQ(response.value().summary.covered_fraction,
            4.0 / static_cast<double>(path.size()));

  // The engine answer equals the hand-wired ladder bit for bit.
  const PathWeightFunction sparse = MakeSparseModel(path, {0, 1, 2, 3});
  HybridEstimator direct(sparse, engine.value()->options().estimate);
  direct.set_edge_fallback(FallbackFn());
  FallbackProvenance provenance;
  auto expected = direct.EstimateWithFallback(path, kDepart, &provenance);
  ASSERT_TRUE(expected.ok());
  CostSummary reference = SummarizeDistribution(
      expected.value(), request.stats, request.budget_seconds,
      request.quantiles);
  reference.degradation = provenance.level;
  reference.covered_fraction = provenance.covered_fraction;
  EXPECT_TRUE(response.value().summary.ExactlyEquals(reference));

  // The batch path degrades identically to the single path.
  auto batch = engine.value()->EstimateBatch(
      std::vector<EstimateRequest>{request, request});
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& r : batch) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().summary.ExactlyEquals(response.value().summary));
  }
}

// ---------------------------------------------------------------------------
// Swap under concurrent load
// ---------------------------------------------------------------------------

TEST_F(RefreshFaultTest, SwapUnderConcurrentLoadNeverMixesEpochs) {
  constexpr size_t kClients = 4;
  constexpr int kSwaps = 12;
  constexpr size_t kEngineThreads = 2;

  // Tiny evicting cache: entries churn across epochs the whole time.
  EngineOptions options;
  options.model_path = artifact_base_;
  options.graph = graph_;
  options.num_threads = kEngineThreads;
  options.query_cache_bytes = size_t{1} << 14;
  auto opened = Engine::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine& engine = *opened.value();

  // Reference engines (same estimate options and thread count, ample
  // non-evicting caches — results are bit-identical either way).
  auto ref_base = OpenEngine(artifact_base_, size_t{64} << 20, kEngineThreads);
  auto ref_data = OpenEngine(artifact_data_, size_t{64} << 20, kEngineThreads);
  ASSERT_NE(ref_base, nullptr);
  ASSERT_NE(ref_data, nullptr);

  std::vector<EstimateRequest> requests;
  for (auto [from, to] : {std::pair<VertexId, VertexId>{0, 30},
                          {5, 40},
                          {2, 61},
                          {7, 33},
                          {11, 52}}) {
    EstimateRequest request;
    request.path = PathSpec::ExplicitPath(PathBetween(from, to));
    request.departure_time = kDepart;
    requests.push_back(std::move(request));
  }
  requests.push_back(requests.front());
  requests.back().path = PathSpec::OdPair(0, 30);

  const double min_time = roadnet::ShortestPathCost(
      *graph_, 0, 30, roadnet::FreeFlowWeight(*graph_));
  RouteRequest route_request;
  route_request.from = 0;
  route_request.to = 30;
  route_request.departure_time = kDepart;
  route_request.budget_seconds = min_time * 1.3;

  // Per-model references every served response must ExactlyEqual: a
  // response whose summary matches neither model's reference (or whose
  // fingerprint names neither) mixed state across epochs.
  std::unordered_map<uint64_t, std::vector<CostSummary>> ref_summaries;
  std::unordered_map<uint64_t, RouteResponse> ref_routes;
  for (auto* ref : {ref_base.get(), ref_data.get()}) {
    const uint64_t fp = ref->model().fingerprint();
    for (const EstimateRequest& request : requests) {
      auto response = ref->Estimate(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ref_summaries[fp].push_back(response.value().summary);
    }
    auto routed = ref->Route(route_request);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    ref_routes[fp] = std::move(routed).value();
  }

  // A corrupt artifact the swapper keeps throwing at the engine mid-storm.
  // The flip hits the header checksum field, so the peek never matches a
  // served fingerprint (no short-circuit) and the full load always runs —
  // and always rejects on the checksum mismatch, whichever generation is
  // currently published.
  std::vector<char> corrupt_bytes = ReadAll(artifact_data_);
  corrupt_bytes[16] = static_cast<char>(corrupt_bytes[16] ^ 0x5a);
  const std::string corrupt = Track(TempPath(
      "pcde_refresh_stress_bad." + std::to_string(::getpid()) + ".bin"));
  WriteAll(corrupt, corrupt_bytes);

  std::atomic<bool> done{false};
  std::atomic<size_t> failed{0};   // responses with a Status
  std::atomic<size_t> mixed{0};    // responses matching no single epoch
  std::atomic<size_t> batches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto responses = engine.EstimateBatch(requests);
        for (size_t i = 0; i < responses.size(); ++i) {
          if (!responses[i].ok()) {
            ++failed;
            continue;
          }
          const EstimateResponse& r = responses[i].value();
          auto it = ref_summaries.find(r.model_fingerprint);
          if (it == ref_summaries.end() || r.epoch == 0 ||
              !r.summary.ExactlyEquals(it->second[i])) {
            ++mixed;
          }
        }
        auto routed = engine.Route(route_request);
        if (!routed.ok()) {
          ++failed;
        } else {
          const RouteResponse& r = routed.value();
          auto it = ref_routes.find(r.model_fingerprint);
          if (it == ref_routes.end() ||
              !(r.best_path == it->second.best_path) ||
              r.on_time_probability != it->second.on_time_probability) {
            ++mixed;
          }
        }
        ++batches;
      }
    });
  }

  // The swapper: corrupt attempt + good swap per round, alternating the two
  // generations so every good swap publishes a genuinely different model.
  // No ASSERTs inside the loop — the clients must be joined on every path.
  uint64_t sequence = 1;
  bool swaps_ok = true;
  for (int s = 0; s < kSwaps && swaps_ok; ++s) {
    EXPECT_FALSE(engine.Swap(corrupt).ok());
    EXPECT_EQ(engine.epoch_sequence(), sequence);
    const std::string& next = (s % 2 == 0) ? artifact_data_ : artifact_base_;
    auto swapped = engine.Swap(next);
    EXPECT_TRUE(swapped.ok()) << swapped.status().ToString();
    swaps_ok = swapped.ok();
    if (swaps_ok) {
      EXPECT_EQ(swapped.value(), ++sequence);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(swaps_ok);
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(mixed.load(), 0u);
  if (swaps_ok) {
    EXPECT_EQ(engine.epoch_sequence(), 1u + kSwaps);
  }
  // The storm actually overlapped the swaps.
  EXPECT_GE(batches.load(), kClients);
}

// ---------------------------------------------------------------------------
// SwapPolicy retries (ISSUE 9): transient failures are absorbed, persistent
// ones exhaust the attempt budget
// ---------------------------------------------------------------------------

TEST_F(RefreshFaultTest, TransientSwapFailureRetriesAndLands) {
  EngineOptions options;
  options.model_path = artifact_base_;
  options.graph = graph_;
  options.num_threads = 2;
  options.swap_policy.max_attempts = 3;
  options.swap_policy.initial_backoff_seconds = 0.0005;
  options.swap_policy.max_backoff_seconds = 0.002;
  auto opened = Engine::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine& engine = *opened.value();

  // Clients hammer throughout the faulted swap: retries must cost ZERO
  // failed in-flight requests (the old epoch serves until the retry lands).
  std::atomic<bool> done{false};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&] {
      EstimateRequest request;
      request.path = PathSpec::ExplicitPath(PathBetween(0, 30));
      request.departure_time = 8 * 3600.0;
      while (!done.load(std::memory_order_relaxed)) {
        auto response = engine.Estimate(request);
        if (response.ok()) {
          answered.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }

  // First load attempt fails (injected, transient); the second lands.
  fault::ScopedFaultInjection injection;
  fault::FaultPlan plan;
  plan.fail_on_hit = 1;
  ASSERT_TRUE(injection.Arm("serving.swap.load", plan).ok());
  auto swapped = engine.Swap(artifact_data_);
  done.store(true);
  for (std::thread& t : clients) t.join();

  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value(), 2u);
  EXPECT_EQ(engine.model().fingerprint(), wp_data_->fingerprint());
  EXPECT_EQ(failed.load(), 0u) << "a retrying swap failed in-flight requests";
  EXPECT_GT(answered.load(), 0u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.swap_attempts, 2u);
  EXPECT_EQ(stats.swap_retries, 1u);
}

TEST_F(RefreshFaultTest, PersistentSwapFailureExhaustsAttempts) {
  EngineOptions options;
  options.model_path = artifact_base_;
  options.graph = graph_;
  options.num_threads = 1;
  options.query_cache_bytes = 0;
  options.swap_policy.max_attempts = 3;
  options.swap_policy.initial_backoff_seconds = 0.0005;
  options.swap_policy.max_backoff_seconds = 0.002;
  auto opened = Engine::Open(std::move(options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Engine& engine = *opened.value();

  fault::ScopedFaultInjection injection;
  fault::FaultPlan plan;
  plan.fail_every = 1;  // every attempt fails: the fault is persistent
  ASSERT_TRUE(injection.Arm("serving.swap.load", plan).ok());
  auto swapped = engine.Swap(artifact_data_);
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kInternal)
      << swapped.status().ToString();

  // All attempts were spent, the last error surfaced, and the old epoch is
  // untouched.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.swap_attempts, 3u);
  EXPECT_EQ(stats.swap_retries, 2u);
  EXPECT_EQ(engine.epoch_sequence(), 1u);
  EXPECT_EQ(engine.model().fingerprint(), wp_base_->fingerprint());

  // Disarmed, the very next swap lands first try.
  fault::DisarmAllFaults();
  auto clean = engine.Swap(artifact_data_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value(), 2u);
  EXPECT_EQ(engine.stats().swap_retries, 2u);
}

}  // namespace
}  // namespace serving
}  // namespace pcde
