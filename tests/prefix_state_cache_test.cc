// Tests for prefix chain-state reuse (core/prefix_state_cache.h): routing
// with a prefix cache attached must be bit-identical to routing without
// one — including under a budget so tiny the cache evicts constantly —
// and the cache itself must account, refresh, and evict like the bounded
// LRU it claims to be.
#include <gtest/gtest.h>

#include <vector>

#include "core/estimator.h"
#include "core/instantiation.h"
#include "core/prefix_state_cache.h"
#include "hist/histogram_nd.h"
#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "routing/stochastic_router.h"
#include "traj/store.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using roadnet::Graph;
using roadnet::VertexId;
using routing::DfsStochasticRouter;
using routing::RouteResult;
using routing::RouterConfig;

// ---------------------------------------------------------------------------
// PrefixStateCache unit behavior
// ---------------------------------------------------------------------------

ChainSweeper MakeSweeperState(double lo, double hi) {
  // Distinct, recognizable sweep states: one rank-1 part with a [lo, hi)
  // cost box applied and closed, so MinSum() identifies the snapshot.
  ChainSweeper sweeper{ChainOptions()};
  InstantiatedVariable v;
  v.path = roadnet::Path({0});
  v.joint = hist::HistogramND::FromHistogram1D(
      hist::Histogram1D::Make({{lo, hi, 1.0}}).value());
  sweeper.ApplyPart(DecompositionPart{&v, 0}, 1);
  return sweeper;
}

TEST(PrefixStateCacheTest, LookupMissThenHit) {
  PrefixStateCache cache;
  const PrefixStateCache::Key key{1, 2, 3};
  ChainSweeper out{ChainOptions()};
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, MakeSweeperState(5.0, 6.0));
  EXPECT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.MinSum(), 5.0);  // the snapshot belonging to this key
  const PrefixStateCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(PrefixStateCacheTest, EvictsLeastRecentlyUsedUnderTinyBudget) {
  PrefixStateCacheOptions options;
  // Budget that fits roughly two entries.
  options.max_bytes =
      2 * (MakeSweeperState(1.0, 2.0).MemoryBytes() +
           3 * 2 * sizeof(uint64_t) + 160) +
      64;
  PrefixStateCache cache(options);
  const PrefixStateCache::Key a{1, 0, 0}, b{2, 0, 0}, c{3, 0, 0};
  cache.Insert(a, MakeSweeperState(1.0, 2.0));
  cache.Insert(b, MakeSweeperState(2.0, 3.0));
  ChainSweeper out{ChainOptions()};
  EXPECT_TRUE(cache.Lookup(a, &out));  // refresh a: b becomes LRU
  EXPECT_EQ(out.MinSum(), 1.0);
  cache.Insert(c, MakeSweeperState(3.0, 4.0));
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_EQ(out.MinSum(), 1.0);
  EXPECT_FALSE(cache.Lookup(b, &out));  // the LRU victim
  EXPECT_TRUE(cache.Lookup(c, &out));
  EXPECT_EQ(out.MinSum(), 3.0);
  EXPECT_LE(cache.stats().bytes, options.max_bytes);
}

TEST(PrefixStateCacheTest, OversizedEntryIsNotAdmittedAndClearWorks) {
  PrefixStateCacheOptions options;
  options.max_bytes = 8;  // smaller than any sweeper snapshot
  PrefixStateCache cache(options);
  cache.Insert(PrefixStateCache::Key{1}, MakeSweeperState(0.0, 1.0));
  EXPECT_EQ(cache.stats().entries, 0u);
  PrefixStateCache normal;
  normal.Insert(PrefixStateCache::Key{1}, MakeSweeperState(0.0, 1.0));
  EXPECT_EQ(normal.stats().entries, 1u);
  normal.Clear();
  EXPECT_EQ(normal.stats().entries, 0u);
  EXPECT_EQ(normal.stats().bytes, 0u);
}

// ---------------------------------------------------------------------------
// Routing equivalence: with reuse == without reuse, bit for bit
// ---------------------------------------------------------------------------

class PrefixRoutingTest : public ::testing::Test {
 protected:
  PrefixRoutingTest()
      : graph_(roadnet::MakeCity(roadnet::CityAConfig())),
        wp_(InstantiateWeightFunction(graph_, traj::TrajectoryStore(),
                                      HybridParams())) {}

  StatusOr<RouteResult> RouteWith(size_t prefix_cache_bytes, VertexId from,
                                  VertexId to, double budget_factor) {
    RouterConfig config;
    config.num_threads = 1;  // deterministic expansion order
    config.max_expansions = 4000;
    config.prefix_cache_bytes = prefix_cache_bytes;
    DfsStochasticRouter router(graph_, wp_, EstimateOptions(), config);
    const double min_time = roadnet::ShortestPathCost(
        graph_, from, to, roadnet::FreeFlowWeight(graph_));
    return router.Route(from, to, 8 * 3600.0, min_time * budget_factor);
  }

  Graph graph_;
  PathWeightFunction wp_;
};

TEST_F(PrefixRoutingTest, ReuseIsBitIdenticalToNoReuse) {
  const struct {
    VertexId from, to;
    double budget_factor;
  } cases[] = {{0, 30, 1.3}, {5, 40, 1.25}, {0, 60, 1.2}};
  for (const auto& c : cases) {
    auto plain = RouteWith(0, c.from, c.to, c.budget_factor);
    auto reused = RouteWith(size_t{4} << 20, c.from, c.to, c.budget_factor);
    ASSERT_EQ(plain.ok(), reused.ok());
    if (!plain.ok()) continue;
    EXPECT_EQ(plain.value().best_path, reused.value().best_path);
    EXPECT_EQ(plain.value().best_probability,
              reused.value().best_probability);  // exact, not approximate
    EXPECT_EQ(plain.value().candidate_paths, reused.value().candidate_paths);
    EXPECT_EQ(plain.value().expansions, reused.value().expansions);
    EXPECT_EQ(plain.value().prefix_cache_hits, 0u);
    // The reuse run must actually have exercised the cache.
    EXPECT_GT(reused.value().prefix_cache_hits +
                  reused.value().prefix_cache_misses,
              0u);
  }
}

TEST_F(PrefixRoutingTest, ReuseIsBitIdenticalUnderTinyEvictingBudget) {
  // A budget of a few KB holds at most a couple of snapshots, so the LRU
  // evicts throughout the search; results must not change.
  auto plain = RouteWith(0, 0, 30, 1.3);
  auto tiny = RouteWith(4096, 0, 30, 1.3);
  ASSERT_EQ(plain.ok(), tiny.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().best_path, tiny.value().best_path);
  EXPECT_EQ(plain.value().best_probability, tiny.value().best_probability);
  EXPECT_EQ(plain.value().candidate_paths, tiny.value().candidate_paths);
}

// ---------------------------------------------------------------------------
// IncrementalEstimator-level equivalence along one growing path
// ---------------------------------------------------------------------------

TEST_F(PrefixRoutingTest, IncrementalDistributionsMatchWithCacheAttached) {
  // Walk a path edge by edge; at every step the cached-prefix estimator
  // must produce the same distribution as a cache-less twin.
  const VertexId from = 0;
  auto out_edges = graph_.OutEdges(from);
  ASSERT_FALSE(out_edges.empty());
  const roadnet::EdgeId first = out_edges.front();
  PrefixStateCache cache;
  IncrementalEstimator with_cache(wp_, EstimateOptions(), first, 8 * 3600.0);
  IncrementalEstimator without(wp_, EstimateOptions(), first, 8 * 3600.0);
  with_cache.set_prefix_cache(&cache);
  VertexId at = graph_.edge(first).to;
  for (int step = 0; step < 10; ++step) {
    auto a = with_cache.CurrentDistribution();
    auto b = without.CurrentDistribution();
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_TRUE(a.value().BitIdentical(b.value())) << "step " << step;
    }
    // Re-evaluate with the now-warm cache: still identical.
    auto a2 = with_cache.CurrentDistribution();
    ASSERT_EQ(a2.ok(), b.ok());
    if (a2.ok()) {
      EXPECT_TRUE(a2.value().BitIdentical(b.value())) << "step " << step;
    }
    const auto& next_edges = graph_.OutEdges(at);
    bool extended = false;
    for (roadnet::EdgeId e : next_edges) {
      if (with_cache.ExtendByEdge(e).ok()) {
        ASSERT_TRUE(without.ExtendByEdge(e).ok());
        at = graph_.edge(e).to;
        extended = true;
        break;
      }
    }
    if (!extended) break;
  }
  EXPECT_GT(cache.stats().insertions, 0u);
}

}  // namespace
}  // namespace core
}  // namespace pcde
