// Unit tests for the trajectory substrate: the traffic model's designed
// pathologies (time variation, inter-edge dependence, multi-modality), the
// trip/GPS generator, and the trajectory store — including the paper's
// Fig. 2 qualified-trajectory example.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/mathutil.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/store.h"
#include "traj/traffic_model.h"
#include "traj/types.h"

namespace pcde {
namespace traj {
namespace {

using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::Path;
using roadnet::VertexId;

// ---------------------------------------------------------------------------
// TrafficModel
// ---------------------------------------------------------------------------

class TrafficModelTest : public ::testing::Test {
 protected:
  TrafficModelTest()
      : graph_(roadnet::MakeCity(roadnet::CityAConfig())),
        model_(graph_, TrafficConfig()) {}
  Graph graph_;
  TrafficModel model_;
};

TEST_F(TrafficModelTest, RushHourCongestsMoreThanNight) {
  const EdgeId e = 0;
  EXPECT_GT(model_.CongestionFactor(e, HoursToSeconds(8.0)),
            model_.CongestionFactor(e, HoursToSeconds(3.0)));
  EXPECT_GT(model_.CongestionFactor(e, HoursToSeconds(17.0)),
            model_.CongestionFactor(e, HoursToSeconds(12.5)));
  EXPECT_GE(model_.CongestionFactor(e, HoursToSeconds(3.0)), 1.0);
}

TEST_F(TrafficModelTest, SampleAboveHalfFreeFlow) {
  Rng rng(61);
  const TripContext ctx = model_.SampleTrip(&rng);
  for (EdgeId e = 0; e < 20; ++e) {
    const double t = model_.SampleTravelSeconds(e, roadnet::kInvalidEdge,
                                                HoursToSeconds(10), ctx, &rng);
    EXPECT_GT(t, 0.5 * graph_.edge(e).FreeFlowSeconds());
  }
}

TEST_F(TrafficModelTest, DeterministicUnderSeed) {
  TrafficModel m1(graph_, TrafficConfig());
  TrafficModel m2(graph_, TrafficConfig());
  EXPECT_DOUBLE_EQ(m1.CongestionFactor(5, HoursToSeconds(8)),
                   m2.CongestionFactor(5, HoursToSeconds(8)));
}

TEST_F(TrafficModelTest, DriverFactorSharedAcrossTripInducesCorrelation) {
  // Sample many trips over the same two-edge path at the same time; the
  // per-trip driver/incident factors must induce positive correlation
  // between the two edge costs — the Fig. 4 phenomenon.
  Rng rng(62);
  EdgeId e1 = roadnet::kInvalidEdge, e2 = roadnet::kInvalidEdge;
  for (EdgeId e = 0; e < graph_.NumEdges(); ++e) {
    for (EdgeId f : graph_.OutEdges(graph_.edge(e).to)) {
      if (graph_.edge(f).to != graph_.edge(e).from) {
        e1 = e;
        e2 = f;
        break;
      }
    }
    if (e1 != roadnet::kInvalidEdge) break;
  }
  ASSERT_NE(e1, roadnet::kInvalidEdge);
  SampleStats s1, s2;
  double cross = 0.0;
  const int n = 4000;
  std::vector<double> c1s, c2s;
  for (int i = 0; i < n; ++i) {
    const TripContext ctx = model_.SampleTrip(&rng);
    const double t0 = HoursToSeconds(8);
    const double c1 =
        model_.SampleTravelSeconds(e1, roadnet::kInvalidEdge, t0, ctx, &rng);
    const double c2 = model_.SampleTravelSeconds(e2, e1, t0 + c1, ctx, &rng);
    s1.Add(c1);
    s2.Add(c2);
    c1s.push_back(c1);
    c2s.push_back(c2);
  }
  for (int i = 0; i < n; ++i) {
    cross += (c1s[i] - s1.mean) * (c2s[i] - s2.mean);
  }
  const double corr = cross / n / (s1.Stddev() * s2.Stddev());
  EXPECT_GT(corr, 0.15);
}

TEST_F(TrafficModelTest, TurnClassesOnCross) {
  // Build a plus-shaped intersection to test geometry classification.
  Graph g;
  const VertexId c = g.AddVertex(0, 0);
  const VertexId w = g.AddVertex(-100, 0);
  const VertexId e = g.AddVertex(100, 0);
  const VertexId n = g.AddVertex(0, 100);
  const VertexId s = g.AddVertex(0, -100);
  const EdgeId in = g.AddEdge(w, c, 100, 13.9).value();     // heading east
  const EdgeId straight = g.AddEdge(c, e, 100, 13.9).value();
  const EdgeId left = g.AddEdge(c, n, 100, 13.9).value();   // turn north
  const EdgeId right = g.AddEdge(c, s, 100, 13.9).value();  // turn south
  const EdgeId back = g.AddEdge(c, w, 100, 13.9).value();   // U-turn
  TrafficModel m(g, TrafficConfig());
  EXPECT_EQ(m.TurnClass(in, straight), 0);
  EXPECT_EQ(m.TurnClass(in, left), 2);
  EXPECT_EQ(m.TurnClass(in, right), 1);
  EXPECT_EQ(m.TurnClass(in, back), 3);
  EXPECT_EQ(m.TurnClass(roadnet::kInvalidEdge, straight), 0);
}

TEST_F(TrafficModelTest, EntryDelayDependsOnPreviousEdge) {
  // Expected traversal entered via a left turn must exceed trip-start
  // traversal: the path-dependent cost component per-edge models cannot
  // see. Use a plus intersection so the turn geometry is unambiguous.
  Graph g;
  const VertexId c = g.AddVertex(0, 0);
  const VertexId w = g.AddVertex(-100, 0);
  const VertexId n = g.AddVertex(0, 100);
  const EdgeId in = g.AddEdge(w, c, 100, 13.9).value();
  const EdgeId left = g.AddEdge(c, n, 100, 13.9).value();
  TrafficModel m(g, TrafficConfig());
  EXPECT_GT(m.ExpectedTravelSeconds(left, in, HoursToSeconds(8)),
            m.ExpectedTravelSeconds(left, roadnet::kInvalidEdge,
                                    HoursToSeconds(8)) +
                5.0);
}

TEST_F(TrafficModelTest, EmissionsPositiveAndScaleWithIncidents) {
  TripContext normal;
  TripContext incident;
  incident.incident_factor = 2.0;
  const double g_normal = model_.EmissionGrams(0, 30.0, normal);
  EXPECT_GT(g_normal, 0.0);
  EXPECT_GT(model_.EmissionGrams(0, 30.0, incident), g_normal);
  EXPECT_DOUBLE_EQ(model_.EmissionGrams(0, 0.0, normal), 0.0);
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(GeneratorTest, TripsAreValidAndConsistent) {
  Dataset ds = MakeDatasetA(300);
  ASSERT_GE(ds.trips.size(), 290u);
  for (const GeneratedTrip& trip : ds.trips) {
    const MatchedTrajectory& t = trip.truth;
    ASSERT_GT(t.NumEdges(), 0u);
    EXPECT_TRUE(roadnet::ValidatePath(*ds.graph, t.path.edges()).ok());
    ASSERT_EQ(t.edge_enter_times.size(), t.NumEdges());
    ASSERT_EQ(t.edge_travel_seconds.size(), t.NumEdges());
    ASSERT_EQ(t.edge_emission_grams.size(), t.NumEdges());
    // Enter times are cumulative sums of travel times.
    for (size_t i = 1; i < t.NumEdges(); ++i) {
      EXPECT_NEAR(t.edge_enter_times[i],
                  t.edge_enter_times[i - 1] + t.edge_travel_seconds[i - 1],
                  1e-6);
      EXPECT_GT(t.edge_travel_seconds[i], 0.0);
    }
    EXPECT_GE(t.DepartureTime(), 0.0);
    EXPECT_LT(t.DepartureTime(), kSecondsPerDay);
  }
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  Dataset a = MakeDatasetA(50);
  Dataset b = MakeDatasetA(50);
  ASSERT_EQ(a.trips.size(), b.trips.size());
  for (size_t i = 0; i < a.trips.size(); ++i) {
    EXPECT_EQ(a.trips[i].truth.path, b.trips[i].truth.path);
    EXPECT_DOUBLE_EQ(a.trips[i].truth.DepartureTime(),
                     b.trips[i].truth.DepartureTime());
  }
}

TEST(GeneratorTest, DepartureMixtureHitsRushHours) {
  Dataset ds = MakeDatasetA(2000);
  size_t morning = 0, night = 0;
  for (const auto& trip : ds.trips) {
    const double h = trip.truth.DepartureTime() / 3600.0;
    morning += h >= 7.0 && h < 9.5 ? 1 : 0;
    night += h < 5.0 ? 1 : 0;
  }
  EXPECT_GT(morning, ds.trips.size() / 5);  // rush-hour heavy
  EXPECT_LT(night, ds.trips.size() / 20);   // few night trips
}

TEST(GeneratorTest, HubDemandRepeatsSubPaths) {
  // Commuter flows converge on hubs, so 3-edge windows near hubs must be
  // traversed by many trips — the precondition for instantiating
  // high-rank variables (Fig. 10).
  Dataset ds = MakeDatasetA(2000);
  std::unordered_map<Path, size_t, roadnet::PathHash> counts;
  for (const auto& trip : ds.trips) {
    const Path& p = trip.truth.path;
    for (size_t i = 0; i + 3 <= p.size(); ++i) counts[p.Slice(i, 3)] += 1;
  }
  size_t max_count = 0;
  for (const auto& [p, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 60u);

  // And routes must join corridors at many points: the most popular
  // window's trips should come from several distinct full paths.
  Path top;
  for (const auto& [p, c] : counts) {
    if (c == max_count) top = p;
  }
  std::set<std::vector<roadnet::EdgeId>> distinct_routes;
  for (const auto& trip : ds.trips) {
    if (trip.truth.path.ContainsSubPath(top)) {
      distinct_routes.insert(trip.truth.path.edges());
    }
  }
  EXPECT_GT(distinct_routes.size(), 5u);
}

TEST(GeneratorTest, GpsEmissionTracksPath) {
  Dataset ds = MakeDatasetA(30, /*emit_gps=*/true);
  size_t with_gps = 0;
  for (const auto& trip : ds.trips) {
    if (trip.gps.records.empty()) continue;
    ++with_gps;
    // 1 Hz sampling: roughly one record per second of travel.
    const double duration = trip.truth.TotalSeconds();
    EXPECT_NEAR(static_cast<double>(trip.gps.records.size()), duration,
                duration * 0.2 + 3.0);
    // Records in time order and near the path (10 sigma bound).
    for (size_t i = 1; i < trip.gps.records.size(); ++i) {
      EXPECT_GT(trip.gps.records[i].time, trip.gps.records[i - 1].time);
    }
    double max_dist = 0.0;
    for (const GpsRecord& r : trip.gps.records) {
      double best = 1e30;
      for (EdgeId e : trip.truth.path) {
        best = std::min(best, ds.graph->DistanceToEdge(e, r.x, r.y));
      }
      max_dist = std::max(max_dist, best);
    }
    EXPECT_LT(max_dist, 50.0);
  }
  EXPECT_EQ(with_gps, ds.trips.size());
}

TEST(GeneratorTest, GenerateOnPathUsesGivenPath) {
  Dataset ds = MakeDatasetA(10);
  TrajectoryGenerator gen(*ds.traffic, ds.generator_config);
  Rng rng(63);
  const Path path = ds.trips[0].truth.path;
  const GeneratedTrip trip = gen.GenerateOnPath(path, HoursToSeconds(9), &rng);
  EXPECT_EQ(trip.truth.path, path);
  EXPECT_DOUBLE_EQ(trip.truth.DepartureTime(), HoursToSeconds(9));
}

TEST(GeneratorTest, MatchedSliceFractions) {
  Dataset ds = MakeDatasetA(100);
  EXPECT_EQ(ds.MatchedSlice(0.25).size(), ds.trips.size() / 4);
  EXPECT_EQ(ds.MatchedSlice(1.0).size(), ds.trips.size());
}

TEST(GeneratorTest, DatasetBIsSparserSampled) {
  Dataset b = MakeDatasetB(20, /*emit_gps=*/true);
  for (const auto& trip : b.trips) {
    if (trip.gps.records.size() < 2) continue;
    const double gap =
        trip.gps.records[1].time - trip.gps.records[0].time;
    EXPECT_NEAR(gap, 5.0, 1e-9);  // 0.2 Hz
  }
}

// ---------------------------------------------------------------------------
// TrajectoryStore — the paper's Fig. 2 example.
// ---------------------------------------------------------------------------

/// Builds the Fig. 2 trajectories T1..T10 over a graph shaped like the
/// paper's example (e1..e4 chain; e4-e5 adjacent; e6-e5 adjacent).
class PaperStoreTest : public ::testing::Test {
 protected:
  PaperStoreTest() {
    va_ = g_.AddVertex(0, 0);
    vb_ = g_.AddVertex(100, 0);
    vc_ = g_.AddVertex(200, 0);
    vd_ = g_.AddVertex(300, 0);
    ve_ = g_.AddVertex(400, 0);
    vf_ = g_.AddVertex(500, 0);
    vg_ = g_.AddVertex(400, 100);
    e1_ = g_.AddEdge(va_, vb_, 100, 13.9).value();
    e2_ = g_.AddEdge(vb_, vc_, 100, 13.9).value();
    e3_ = g_.AddEdge(vc_, vd_, 100, 13.9).value();
    e4_ = g_.AddEdge(vd_, ve_, 100, 13.9).value();
    e5_ = g_.AddEdge(ve_, vf_, 100, 13.9).value();
    e6_ = g_.AddEdge(vg_, ve_, 100, 13.9).value();

    auto add = [&](uint64_t id, std::vector<EdgeId> edges, double depart_h,
                   double depart_min) {
      MatchedTrajectory t;
      t.id = id;
      t.path = Path(std::move(edges));
      double at = HoursToSeconds(depart_h) + MinutesToSeconds(depart_min);
      for (size_t i = 0; i < t.path.size(); ++i) {
        t.edge_enter_times.push_back(at);
        t.edge_travel_seconds.push_back(30.0);
        t.edge_emission_grams.push_back(10.0);
        at += 30.0;
      }
      store_.Add(std::move(t));
    };
    // The Fig. 2(b) table.
    add(1, {e1_, e2_, e3_, e4_}, 8, 1);
    add(2, {e1_, e2_, e3_, e4_}, 8, 2);
    add(3, {e1_, e2_, e3_}, 8, 10);
    add(4, {e1_, e2_, e3_}, 8, 7);
    add(5, {e2_, e3_, e4_}, 8, 1);
    add(6, {e2_, e3_, e4_}, 8, 10);
    add(7, {e2_, e3_, e4_}, 15, 21);
    add(8, {e4_, e5_}, 8, 7);
    add(9, {e4_, e5_}, 8, 7);
    add(10, {e6_, e5_}, 8, 8);
  }

  Graph g_;
  VertexId va_, vb_, vc_, vd_, ve_, vf_, vg_;
  EdgeId e1_, e2_, e3_, e4_, e5_, e6_;
  TrajectoryStore store_;
};

TEST_F(PaperStoreTest, QualifiedTrajectoriesMatchPaperExample) {
  // Sec. 2.2: "to estimate <e2,e3,e4> at 8:05 (threshold 30 min), T1, T2,
  // T5, T6 are qualified, but not T7."
  const Path path({e2_, e3_, e4_});
  const double t = HoursToSeconds(8) + MinutesToSeconds(5);
  const Interval window(t - MinutesToSeconds(30), t + MinutesToSeconds(30));
  const auto qualified = store_.FindQualified(path, window);
  ASSERT_EQ(qualified.size(), 4u);
  std::set<uint64_t> ids;
  for (const auto& occ : qualified) ids.insert(store_.trajectory(occ.traj_index).id);
  EXPECT_EQ(ids, (std::set<uint64_t>{1, 2, 5, 6}));
}

TEST_F(PaperStoreTest, OccurrenceEntryTimesShiftWithPosition) {
  // T1 occurred on <e2,e3,e4> 30 s after its 8:01 departure.
  const auto occs = store_.FindOccurrences(Path({e2_, e3_, e4_}));
  for (const auto& occ : occs) {
    if (store_.trajectory(occ.traj_index).id == 1) {
      EXPECT_EQ(occ.pos, 1u);
      EXPECT_DOUBLE_EQ(occ.entry_time,
                       HoursToSeconds(8) + MinutesToSeconds(1) + 30.0);
    }
  }
}

TEST_F(PaperStoreTest, TrajectoryOccursOnItsSubPathsOnly) {
  EXPECT_EQ(store_.FindOccurrences(Path({e1_, e2_, e3_, e4_})).size(), 2u);
  EXPECT_EQ(store_.FindOccurrences(Path({e1_, e2_, e3_})).size(), 4u);
  EXPECT_EQ(store_.FindOccurrences(Path({e4_, e5_})).size(), 2u);
  EXPECT_EQ(store_.FindOccurrences(Path({e5_})).size(), 3u);
  EXPECT_EQ(store_.FindOccurrences(Path({e1_, e3_})).size(), 0u);
  // <e3,e4,e5> is not a sub-path of any trajectory (no one continued).
  EXPECT_EQ(store_.FindOccurrences(Path({e3_, e4_, e5_})).size(), 0u);
}

TEST_F(PaperStoreTest, CostMatrixShapesAndSums) {
  const Path path({e2_, e3_, e4_});
  const auto occs = store_.FindOccurrences(path);
  const auto rows = store_.CostMatrix(path, occs);
  ASSERT_EQ(rows.size(), occs.size());
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 3u);
    for (double c : row) EXPECT_DOUBLE_EQ(c, 30.0);
  }
  const auto totals = store_.TotalCosts(path, occs);
  for (double t : totals) EXPECT_DOUBLE_EQ(t, 90.0);
}

TEST_F(PaperStoreTest, EdgeObservations) {
  EXPECT_TRUE(store_.EdgeObserved(e1_));
  EXPECT_TRUE(store_.EdgeObserved(e6_));
  EXPECT_EQ(store_.NumObservedEdges(), 6u);
}

TEST_F(PaperStoreTest, EmissionCostTypeSelectsOtherVector) {
  const Path path({e4_, e5_});
  const auto occs = store_.FindOccurrences(path);
  const auto totals = store_.TotalCosts(path, occs, CostType::kEmissionGrams);
  for (double t : totals) EXPECT_DOUBLE_EQ(t, 20.0);
}

}  // namespace
}  // namespace traj
}  // namespace pcde
