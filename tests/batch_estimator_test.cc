// Concurrency tests for the EstimateBatch layer: the parallel batch must
// match the sequential estimator result-for-result (estimation is
// read-only over the weight function), reuse an external pool, and the
// parallel routing root fan-out must agree with a single-threaded run.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "core/estimator.h"
#include "core/instantiation.h"
#include "hist/histogram_nd.h"
#include "routing/stochastic_router.h"
#include "traj/generator.h"
#include "traj/store.h"

namespace pcde {
namespace core {
namespace {

using hist::Histogram1D;
using roadnet::Path;
using traj::TrajectoryStore;

class BatchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small dataset: the point is concurrency coverage, not statistics.
    dataset_ = new traj::Dataset(traj::MakeDatasetA(3000));
    HybridParams params;
    params.beta = 10;
    store_ = new TrajectoryStore(dataset_->MatchedSlice(1.0));
    wp_ = new PathWeightFunction(
        InstantiateWeightFunction(*dataset_->graph, *store_, params));
  }
  static void TearDownTestSuite() {
    delete wp_;
    delete store_;
    delete dataset_;
    wp_ = nullptr;
    store_ = nullptr;
    dataset_ = nullptr;
  }

  /// Queries drawn from instantiated variables (so decompositions are
  /// nontrivial), departing inside each variable's interval.
  static std::vector<PathQuery> MakeQueries(size_t limit) {
    std::vector<PathQuery> queries;
    for (const InstantiatedVariable& v : wp_->variables()) {
      if (v.from_speed_limit) continue;
      const Interval ij = wp_->binning().IntervalOf(v.interval);
      queries.push_back(PathQuery{v.path, ij.lo + 60.0});
      if (queries.size() >= limit) break;
    }
    return queries;
  }

  static traj::Dataset* dataset_;
  static TrajectoryStore* store_;
  static PathWeightFunction* wp_;
};

traj::Dataset* BatchFixture::dataset_ = nullptr;
TrajectoryStore* BatchFixture::store_ = nullptr;
PathWeightFunction* BatchFixture::wp_ = nullptr;

void ExpectSameResult(const StatusOr<Histogram1D>& got,
                      const StatusOr<Histogram1D>& want, size_t i) {
  ASSERT_EQ(got.ok(), want.ok()) << "query " << i;
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code()) << "query " << i;
    return;
  }
  ASSERT_EQ(got.value().NumBuckets(), want.value().NumBuckets())
      << "query " << i;
  for (size_t b = 0; b < got.value().NumBuckets(); ++b) {
    EXPECT_DOUBLE_EQ(got.value().bucket(b).range.lo,
                     want.value().bucket(b).range.lo);
    EXPECT_DOUBLE_EQ(got.value().bucket(b).range.hi,
                     want.value().bucket(b).range.hi);
    EXPECT_DOUBLE_EQ(got.value().bucket(b).prob, want.value().bucket(b).prob);
  }
}

TEST_F(BatchFixture, BatchMatchesSequentialResultForResult) {
  const HybridEstimator estimator(*wp_);
  const std::vector<PathQuery> queries = MakeQueries(60);
  ASSERT_GE(queries.size(), 20u);

  const auto batch = estimator.EstimateBatch(queries, 4);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = estimator.EstimateCostDistribution(
        queries[i].path, queries[i].departure_time);
    ExpectSameResult(batch[i], sequential, i);
  }
}

TEST_F(BatchFixture, ExternalPoolIsReusableAcrossBatches) {
  const HybridEstimator estimator(*wp_);
  const std::vector<PathQuery> queries = MakeQueries(24);
  ThreadPool pool(3);
  const auto first = estimator.EstimateBatch(queries.data(), queries.size(),
                                             &pool);
  const auto second = estimator.EstimateBatch(queries.data(), queries.size(),
                                              &pool);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameResult(first[i], second[i], i);
  }
}

TEST_F(BatchFixture, NullPoolRunsInlineAndMatchesSequential) {
  // Regression: EstimateBatch with pool == nullptr used to dereference the
  // null pool. It now runs the batch inline on the caller's thread and
  // must still match the sequential estimator result-for-result.
  const HybridEstimator estimator(*wp_);
  const std::vector<PathQuery> queries = MakeQueries(16);
  ASSERT_GE(queries.size(), 8u);
  BatchMetrics metrics;
  const auto batch = estimator.EstimateBatch(queries.data(), queries.size(),
                                             nullptr, &metrics);
  ASSERT_EQ(batch.size(), queries.size());
  EXPECT_EQ(metrics.query_seconds.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto sequential = estimator.EstimateCostDistribution(
        queries[i].path, queries[i].departure_time);
    ExpectSameResult(batch[i], sequential, i);
  }
}

TEST_F(BatchFixture, CancelledBatchReturnsPerQueryStatusNotPartialResults) {
  // A pre-tripped token: every query unwinds with the token's Status, no
  // partial histograms leak out — on the pooled path and the inline path.
  const HybridEstimator estimator(*wp_);
  const std::vector<PathQuery> queries = MakeQueries(12);
  CancelToken token;
  token.Cancel();
  ThreadPool pool(3);
  for (ThreadPool* p : {&pool, static_cast<ThreadPool*>(nullptr)}) {
    const auto batch =
        estimator.EstimateBatch(queries.data(), queries.size(), p, nullptr,
                                &token);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_FALSE(batch[i].ok()) << i;
      EXPECT_EQ(batch[i].status().code(), StatusCode::kCancelled) << i;
    }
  }
}

TEST_F(BatchFixture, RandomPolicyBatchIsDeterministicPerQuery) {
  // The kRandom policy seeds its Rng from the query path, so the batch
  // must be reproducible run-to-run even under concurrency.
  EstimateOptions options;
  options.policy = DecompositionPolicy::kRandom;
  const HybridEstimator estimator(*wp_, options);
  const std::vector<PathQuery> queries = MakeQueries(20);
  const auto a = estimator.EstimateBatch(queries, 4);
  const auto b = estimator.EstimateBatch(queries, 2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectSameResult(a[i], b[i], i);
}

TEST(ParallelRoutingTest, RootFanOutMatchesSingleThreaded) {
  // A 4x4 grid with per-edge unit variables: the root fan-out explores
  // the two out-edges of the corner source as independent branches; the
  // merged result must match the single-threaded run exactly (pruning is
  // budget-driven, so the branch partition cannot change the answer).
  constexpr int kSide = 4;
  roadnet::Graph g;
  std::vector<roadnet::VertexId> v;
  for (int i = 0; i < kSide; ++i) {
    for (int j = 0; j < kSide; ++j) {
      v.push_back(g.AddVertex(1000.0 * i, 1000.0 * j));
    }
  }
  Rng rng(11);
  WeightFunctionBuilder wp_builder{TimeBinning(30.0)};
  auto connect = [&](roadnet::VertexId a, roadnet::VertexId b) {
    const roadnet::EdgeId e = g.AddEdge(a, b, 1000.0, 13.9).value();
    const double fast = rng.Uniform(60.0, 90.0);
    InstantiatedVariable var;
    var.path = Path({e});
    var.interval = kAllDayInterval;
    var.joint = hist::HistogramND::FromHistogram1D(
        Histogram1D::Make({{fast, fast + 30.0, 0.8},
                           {fast + 60.0, fast + 120.0, 0.2}})
            .value());
    var.from_speed_limit = true;
    wp_builder.Add(std::move(var));
  };
  for (int i = 0; i < kSide; ++i) {
    for (int j = 0; j < kSide; ++j) {
      if (i + 1 < kSide) connect(v[i * kSide + j], v[(i + 1) * kSide + j]);
      if (j + 1 < kSide) connect(v[i * kSide + j], v[i * kSide + j + 1]);
    }
  }
  const PathWeightFunction wp = std::move(wp_builder).Freeze();

  routing::RouterConfig sequential;
  sequential.num_threads = 1;
  routing::RouterConfig parallel;
  parallel.num_threads = 4;
  const routing::DfsStochasticRouter router_seq(g, wp, EstimateOptions(),
                                                sequential);
  const routing::DfsStochasticRouter router_par(g, wp, EstimateOptions(),
                                                parallel);
  size_t compared = 0;
  for (double budget_s : {500.0, 700.0, 900.0, 1200.0}) {
    auto seq = router_seq.Route(v.front(), v.back(), 8 * 3600.0, budget_s);
    auto par = router_par.Route(v.front(), v.back(), 8 * 3600.0, budget_s);
    ASSERT_EQ(seq.ok(), par.ok()) << budget_s;
    if (!seq.ok()) continue;
    EXPECT_FALSE(seq.value().truncated);
    EXPECT_FALSE(par.value().truncated);
    EXPECT_DOUBLE_EQ(seq.value().best_probability,
                     par.value().best_probability)
        << budget_s;
    EXPECT_EQ(seq.value().best_path.edges(), par.value().best_path.edges())
        << budget_s;
    EXPECT_EQ(seq.value().candidate_paths, par.value().candidate_paths)
        << budget_s;
    EXPECT_EQ(seq.value().expansions, par.value().expansions) << budget_s;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

}  // namespace
}  // namespace core
}  // namespace pcde
